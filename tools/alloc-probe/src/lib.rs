//! A counting [`GlobalAlloc`] wrapper: the runtime half of the workspace's
//! hot-path allocation policy.
//!
//! `opal-tidy` proves *lexically* that declared hot functions contain no
//! allocating calls; this crate proves it *at runtime*: install
//! [`CountingAlloc`] as the `#[global_allocator]`, snapshot
//! [`allocations()`] around a `ServeEngine::step()`, and assert the count
//! did not move. The integration tests in `tests/decode_allocs.rs` pin
//! **zero allocations per decode step** in steady state for bf16 and
//! MX-OPAL models at batch 1 and 16.
//!
//! The counter is a process-global `AtomicU64`, so measured regions must
//! not run concurrently with other allocating tests — serialize them with
//! [`probe_lock()`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`] while counting every `alloc`/`realloc` call.
pub struct CountingAlloc;

// SAFETY-free: this is plain delegation; no unsafe beyond the trait's own
// contract, which System upholds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh acquisition from the hot path's point of
        // view: growing a Vec in a decode step is exactly what the policy
        // forbids.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events (alloc + alloc_zeroed + realloc) since process
/// start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Total deallocation events since process start.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::SeqCst)
}

/// Serializes measured regions: the counter is process-global, so two
/// concurrently running probe tests would see each other's traffic.
pub fn probe_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` and returns how many allocation events it performed.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let value = f();
    (value, allocations() - before)
}
