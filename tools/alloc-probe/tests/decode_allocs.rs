//! Zero-allocation proof for the serve decode hot path.
//!
//! `opal-tidy` proves lexically that the declared hot functions contain no
//! allocating calls; these tests prove the same property at runtime by
//! installing a counting global allocator and asserting that a
//! steady-state `ServeEngine::step()` performs **zero** allocation events.
//!
//! ## The measurement window
//!
//! Allocation-free holds only in *steady state* — a handful of step
//! indices legitimately touch the allocator by design:
//!
//! - admission and prefill (step 1 here: every request is admitted and
//!   fully prefilled under `prefill_chunk = usize::MAX`);
//! - attention-scratch growth: the per-sequence score/weight buffers grow
//!   amortized with sequence length (reallocs at capacities 8, 16, 32 → at
//!   sequence lengths 9, 17, 33 with an 8-token prompt);
//! - KV block boundaries: a fresh page is allocated each time a sequence
//!   length crosses a multiple of `block_size` (16 here → lengths 17, 33).
//!
//! With an 8-token prompt, sequence length after step `s` is `8 + s`, so
//! steps 13..=23 (lengths 21..=31) sit strictly between every such event:
//! the window this file pins to zero. All probe tests serialize on
//! [`opal_alloc_probe::probe_lock`] because the counter is process-global.
//!
//! Strict assertions are release-only: debug builds run the engine's
//! `debug_assertions` invariant auditor, which allocates on purpose.

use opal_alloc_probe::{allocations, probe_lock, CountingAlloc};
use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{DraftSource, KvScheme, ServeConfig, ServeEngine, SpecConfig, StepMode};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steps outside the window warm the engine up; these are measured.
const MEASURED_STEPS: std::ops::RangeInclusive<u64> = 13..=23;
const PROMPT_LEN: usize = 8;
const LIMIT: usize = 40;

fn engine_for(model: &Model, batch: usize, mode: StepMode, threads: usize) -> ServeEngine<'_> {
    engine_for_kv(model, batch, mode, threads, KvScheme::Exact)
}

fn engine_for_kv(
    model: &Model,
    batch: usize,
    mode: StepMode,
    threads: usize,
    kv_scheme: KvScheme,
) -> ServeEngine<'_> {
    let config = ServeConfig {
        max_batch: batch,
        max_tokens: LIMIT,
        num_threads: threads,
        step_mode: mode,
        // Whole prompts prefill in the admission step so the window holds
        // pure decode.
        prefill_chunk: usize::MAX,
        block_size: 16,
        prefix_sharing: false,
        kv_scheme,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(model, config);
    let vocab = model.config().vocab as u32;
    for i in 0..batch {
        let prompt: Vec<u32> =
            (0..PROMPT_LEN).map(|p| ((i * 53 + p * 19) as u32) % vocab).collect();
        engine.submit_with_limit(&prompt, LIMIT).expect("probe submit");
    }
    engine
}

/// Runs the warmup + measured window and returns the per-measured-step
/// allocation counts.
fn measure_steps(engine: &mut ServeEngine<'_>) -> Vec<u64> {
    let mut counts = Vec::new();
    for step in 1..=*MEASURED_STEPS.end() {
        let before = allocations();
        let summary = engine.step();
        let after = allocations();
        assert!(summary.generated > 0 || summary.prefilled > 0, "engine drained mid-probe");
        if MEASURED_STEPS.contains(&step) {
            counts.push(after - before);
        }
    }
    counts
}

fn assert_zero_alloc_decode(scheme: QuantScheme, batch: usize, mode: StepMode) {
    assert_zero_alloc_decode_kv(scheme, KvScheme::Exact, batch, mode);
}

/// Same window arithmetic as the exact-cache probes: quantized pages use
/// the identical 16-row block geometry (only the bytes inside a page
/// differ), so block boundaries still fall at sequence lengths 17 and 33
/// — outside steps 13..=23 — and the `EncodeScratch` the append encoder
/// reuses reaches its full capacity during warmup.
fn assert_zero_alloc_decode_kv(scheme: QuantScheme, kv: KvScheme, batch: usize, mode: StepMode) {
    let _serial = probe_lock();
    let model = Model::new(ModelConfig::tiny(), scheme, 7).expect("probe model");
    let mut engine = engine_for_kv(&model, batch, mode, 1, kv);
    let counts = measure_steps(&mut engine);
    assert_eq!(counts.len(), 11);
    // Debug builds run the engine's allocating invariant auditor after
    // every step; the zero-allocation contract is a release property.
    if cfg!(not(debug_assertions)) {
        assert_eq!(
            counts.iter().sum::<u64>(),
            0,
            "steady-state decode allocated (per measured step: {counts:?})"
        );
    }
}

#[test]
fn bf16_batch1_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::bf16(), 1, StepMode::ForcePool);
}

#[test]
fn bf16_batch16_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::bf16(), 16, StepMode::ForcePool);
}

#[test]
fn bf16_batch16_scoped_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::bf16(), 16, StepMode::ForceScoped);
}

#[test]
fn mxopal_batch1_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::mxopal_w4a47(), 1, StepMode::ForcePool);
}

#[test]
fn mxopal_batch16_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::mxopal_w4a47(), 16, StepMode::ForcePool);
}

#[test]
fn mxopal_batch16_scoped_steady_state_is_allocation_free() {
    assert_zero_alloc_decode(QuantScheme::mxopal_w4a47(), 16, StepMode::ForceScoped);
}

#[test]
fn kv_mxopal_batch1_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode_kv(QuantScheme::bf16(), KvScheme::mxopal(), 1, StepMode::ForcePool);
}

#[test]
fn kv_mxopal_batch16_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode_kv(QuantScheme::bf16(), KvScheme::mxopal(), 16, StepMode::ForcePool);
}

#[test]
fn kv_mxopal_batch16_scoped_steady_state_is_allocation_free() {
    assert_zero_alloc_decode_kv(QuantScheme::bf16(), KvScheme::mxopal(), 16, StepMode::ForceScoped);
}

#[test]
fn kv_mxint_batch16_pool_steady_state_is_allocation_free() {
    assert_zero_alloc_decode_kv(
        QuantScheme::mxopal_w4a47(),
        KvScheme::mxint(),
        16,
        StepMode::ForcePool,
    );
}

/// Multi-threaded pool dispatch allocates by design (channel nodes, chunk
/// splits), but the traffic must stay a small per-step constant — it must
/// not scale with sequence length or accumulate.
#[test]
fn multithreaded_pool_dispatch_allocations_are_bounded() {
    let _serial = probe_lock();
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 7).expect("probe model");
    let mut engine = engine_for(&model, 16, StepMode::ForcePool, 2);
    let counts = measure_steps(&mut engine);
    if cfg!(not(debug_assertions)) {
        for (i, &n) in counts.iter().enumerate() {
            assert!(n < 256, "pool dispatch allocated {n} times in measured step {i} ({counts:?})");
        }
    }
}

/// Steady-state *speculative* decode is allocation-free too: the
/// draft-propose / fused-verify / rollback loop reuses the buffers
/// preallocated in `SpecState` (and the draft sibling's own scratch), so
/// a pure-decode step allocates exactly as much as a plain one — nothing.
///
/// A full-depth truncated draft (`layers` = the model's own depth) makes
/// the window arithmetic deterministic: the draft is the same network, its
/// argmax always matches the greedy sampler's pick, and every step accepts
/// all `k` proposals. With `k = 1` each spec step commits 2 tokens, so
/// sequence length after step `s` is `9 + 2(s - 1)`. Steps up to 8 still
/// see one-time events — 16-row block boundaries at length 17 and the
/// amortized width growth of the verify pass's `chunk × seq` score
/// buffers — and the next block/doubling boundary is length 33 (step 13),
/// so steps 9..=12 are the pinned-zero window.
#[test]
fn speculative_decode_steady_state_is_allocation_free() {
    let _serial = probe_lock();
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 7).expect("probe model");
    let config = ServeConfig {
        max_batch: 2,
        max_tokens: LIMIT,
        num_threads: 1,
        step_mode: StepMode::ForcePool,
        prefill_chunk: usize::MAX,
        block_size: 16,
        prefix_sharing: false,
        spec: Some(SpecConfig {
            draft: DraftSource::Truncated { layers: ModelConfig::tiny().n_layers },
            k: 1,
        }),
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&model, config);
    let vocab = model.config().vocab as u32;
    for i in 0..2usize {
        let prompt: Vec<u32> =
            (0..PROMPT_LEN).map(|p| ((i * 53 + p * 19) as u32) % vocab).collect();
        engine.submit_with_limit(&prompt, LIMIT).expect("probe submit");
    }
    let mut counts = Vec::new();
    for step in 1..=12u64 {
        let before = allocations();
        let summary = engine.step();
        let after = allocations();
        assert!(summary.generated > 0 || summary.prefilled > 0, "engine drained mid-probe");
        if step >= 2 {
            // Full acceptance: every pure-decode step commits t0 plus the
            // accepted draft token, per sequence.
            assert_eq!(summary.generated, 4, "speculation not active in step {step}");
            assert_eq!(summary.accepted, 2, "draft token rejected in step {step}");
        }
        if (9..=12).contains(&step) {
            counts.push(after - before);
        }
    }
    assert_eq!(counts.len(), 4);
    if cfg!(not(debug_assertions)) {
        assert_eq!(
            counts.iter().sum::<u64>(),
            0,
            "steady-state speculative decode allocated (per measured step: {counts:?})"
        );
    }
}

/// The probe itself must fire: a deliberate allocation inside a measured
/// region moves the counter. Guards against the counting allocator being
/// silently bypassed (e.g. a future `#[global_allocator]` mixup), which
/// would make every zero-assertion above vacuous.
#[test]
fn probe_detects_deliberate_allocation() {
    let _serial = probe_lock();
    let before = allocations();
    let v: Vec<u64> = Vec::with_capacity(1000);
    let after = allocations();
    drop(v);
    assert!(after > before, "counting allocator did not observe a 1000-element Vec");
}
