//! Minimal, wall-clock stand-in for the [`criterion`] benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so the
//! benches under `crates/bench/benches/` compile against this shim. It
//! implements the API subset those benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — and reports a simple
//! median wall-clock time per iteration instead of criterion's full
//! statistical analysis:
//!
//! ```text
//! softmax_row/exact/128           median   1.234 µs/iter   (41 samples)
//! ```
//!
//! Each benchmark warms up briefly, then collects timing samples until a
//! fixed time budget is spent. Run with `cargo bench`.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `exact/128`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`]
/// (accepted for API parity; the shim times every call individually).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would amortize setup over large batches.
    #[default]
    SmallInput,
    /// Large inputs: criterion would use small batches.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    budget: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly, recording one timing sample per call,
    /// until the sample budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only the
    /// routine. The shim prepares one input per sample (setup time is
    /// excluded from the recorded duration either way). This is the one
    /// timing policy — warm-up count, minimum samples, sample cap — that
    /// every entry point shares.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: a few unrecorded calls to fault in caches/allocations.
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < self.budget || self.samples.len() < 10 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }
}

fn run_one(path: &str, f: impl FnOnce(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    let mut b = Bencher { samples: &mut samples, budget: Duration::from_millis(300) };
    f(&mut b);
    samples.sort();
    let median = if samples.is_empty() { Duration::ZERO } else { samples[samples.len() / 2] };
    println!(
        "{path:<48} median {:>12} /iter   ({} samples)",
        format_duration(median),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parses CLI configuration (a no-op in the shim, kept for API parity).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Benchmarks `f` under a bare name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&name.to_string(), |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
