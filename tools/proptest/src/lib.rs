//! Minimal, deterministic stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the property-based tests under `crates/*/tests/proptests.rs` are compiled
//! against this in-tree shim instead of the real library. It implements
//! exactly the API subset those tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` headers),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//!   `prop_flat_map`,
//! * range strategies for the integer and float types the tests sample,
//! * tuple strategies and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking and no persistence of failing
//! cases: inputs are drawn from a [SplitMix64] generator seeded from the
//! test name, so every run of a given test replays the identical case
//! sequence. A failing case therefore reproduces exactly under
//! `cargo test <name>`.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

/// Strategies over collections ([`collection::vec`]).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (an exact `usize`, a `Range`, or a
    /// `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The `use proptest::prelude::*` surface: the
/// [`Strategy`](crate::strategy::Strategy) trait, the
/// config type, and the assertion/result plumbing used by [`proptest!`].
pub mod prelude {
    pub use crate::strategy::{Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Per-test configuration. Only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep parity so the properties
            // see the same amount of input diversity.
            ProptestConfig { cases: 256 }
        }
    }
}

/// The property-test harness macro.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(-1.0f32..1.0, 8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::prelude::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases && attempts < config.cases * 16 {
                    attempts += 1;
                    $(let $arg = ($strat).sample(&mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::strategy::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::strategy::TestCaseError::Reject) => {}
                        Err($crate::strategy::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name), accepted, msg
                            );
                        }
                    }
                }
                // Mirror real proptest: a property that discards too many
                // cases must error out rather than pass vacuously.
                assert!(
                    accepted >= config.cases,
                    "property {} rejected too many cases: only {}/{} accepted in {} attempts",
                    stringify!($name),
                    accepted,
                    config.cases,
                    attempts,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::prelude::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(
                ::std::format!("{:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(::std::vec![$($strat),+])
    };
}
