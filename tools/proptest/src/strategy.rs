//! Strategies: deterministic value generators for the [`proptest!`] harness.
//!
//! [`proptest!`]: crate::proptest

use std::ops::{Range, RangeInclusive};

/// Outcome of one property case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assertions failed with this message.
    Fail(String),
    /// The case was discarded by [`prop_assume!`](crate::prop_assume).
    Reject,
}

/// SplitMix64 generator: tiny, fast, and good enough for test-input
/// sampling. Seeded from the test name so each property replays the same
/// case sequence on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}

/// A generator of test values; the shim's analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.sample(rng);
        (self.f)(first).sample(rng)
    }
}

/// Uniform choice between same-typed strategies
/// (see [`prop_oneof!`](crate::prop_oneof)).
#[derive(Clone, Debug)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let idx = rng.int_in(0, self.0.len() as i128 - 1) as usize;
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range");
                let u = rng.unit_f64();
                let v = f64::from(self.start)
                    + u * (f64::from(self.end) - f64::from(self.start));
                let v = v as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_float_range!(f32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Length specification accepted by [`collection::vec`](crate::collection::vec).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// See [`collection::vec`](crate::collection::vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u32..=8).sample(&mut rng);
            assert!((3..=8).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = (1usize..64).sample(&mut rng);
            assert!((1..64).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::from_name("lens");
        let s = crate::collection::vec(0.0f32..1.0, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(0.0f32..1.0, 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
    }
}
