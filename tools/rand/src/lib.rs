//! Minimal, deterministic stand-in for the [`rand`] crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! `opal_tensor::rng` compiles against this shim. It provides the API
//! subset that module uses — [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! (`gen`, `gen_range`) and [`distributions::Distribution`] — with the
//! same determinism contract: a given seed always yields the same stream.
//!
//! The generator is SplitMix64 rather than the real `StdRng`'s ChaCha12;
//! statistically ample for synthetic-weight generation, but the concrete
//! streams differ from upstream `rand`. Nothing in this workspace depends
//! on upstream's exact values.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// The standard seeded generator (SplitMix64 in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        StdRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }
}

/// Uniform sampling of a value type from raw generator output.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

/// Sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its natural domain.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&Standard, self)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let v = (f64::from(self.start)
            + unit_f64(rng) * (f64::from(self.end) - f64::from(self.start))) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{Rng, Standard};

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            super::unit_f64(rng) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::*;

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn standard_distribution_samples() {
        let mut r = StdRng::seed_from_u64(2);
        let u: u64 = r.gen();
        let v: u64 = Standard.sample(&mut r);
        assert_ne!(u, v);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
