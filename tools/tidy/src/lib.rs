//! `opal-tidy`: the workspace invariant linter.
//!
//! A tidy-style static-analysis pass (in the spirit of rust-lang's own
//! `tidy` source checks) that walks every `crates/*/src` file and enforces
//! the policy declared in `tools/tidy/tidy.policy`:
//!
//! 1. **hot-path allocation** — no allocating calls inside declared
//!    allocation-free hot functions (`// tidy: allow(alloc) -- reason`
//!    escapes);
//! 2. **unsafe discipline** — `unsafe` only in allowlisted files, every
//!    use with an adjacent `// SAFETY:` comment;
//! 3. **panic discipline** — no `unwrap`/`expect`/`panic!` family in
//!    non-test library code (`// tidy: allow(panic) -- reason` escapes);
//! 4. **determinism** — wall-clock reads only in the declared clock shim;
//!    no `HashMap`/`HashSet` in modules promising bit-identical output;
//! 5. **lock order** — nested `.lock()` acquisitions must follow the
//!    declared global ranking.
//!
//! The pass is purely lexical: a small comment/string/raw-string-aware
//! lexer produces a blanked *code view* (see [`lexer::SourceView`]), so no
//! pattern ever matches inside prose, string data, or doc examples. Run it
//! with `cargo run -p opal-tidy`; it exits non-zero on any violation.

use std::path::{Path, PathBuf};

pub mod lexer;
pub mod lints;
pub mod policy;

pub use lints::{Lint, Violation};
pub use policy::Policy;

/// Lints one file's source text under `policy`. `rel_path` is the
/// workspace-relative path used both for diagnostics and for policy
/// matching.
pub fn check_source(rel_path: &str, source: &str, policy: &Policy) -> Vec<Violation> {
    let view = lexer::SourceView::lex(source);
    let fns = lints::function_spans(&view);
    let tests = lints::test_spans(&view);
    let mut out = Vec::new();
    lints::check_escape_hygiene(rel_path, &view, &mut out);
    lints::lint_hot_alloc(rel_path, &view, policy, &fns, &tests, &mut out);
    lints::lint_unsafe(rel_path, &view, policy, &mut out);
    lints::lint_panic(rel_path, &view, &tests, &mut out);
    lints::lint_determinism(rel_path, &view, policy, &tests, &mut out);
    lints::lint_lock_order(rel_path, &view, policy, &fns, &tests, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

/// Collects every library source under `crates/*/src`, skipping `bin/`
/// directories (binaries are exempt from the library lints, like tests
/// and benches).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                // Only descend into each crate's `src`, and skip `bin/`.
                let is_crate_root = path.parent() == Some(root.join("crates").as_path());
                if is_crate_root {
                    stack.push(path.join("src"));
                } else if name != "bin" && path.exists() {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the whole pass over the workspace at `root`. Returns every
/// violation plus the number of files checked.
pub fn run(root: &Path, policy: &Policy) -> std::io::Result<(Vec<Violation>, usize)> {
    let files = workspace_sources(root)?;
    let mut all = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        all.extend(check_source(&rel, &source, policy));
    }
    Ok((all, files.len()))
}

#[cfg(test)]
mod fixtures {
    //! Fixture-based tests: each lint family is fed a violating snippet
    //! (as a string fixture) and must fire, then a compliant or escaped
    //! variant and must stay quiet.

    use super::*;

    fn test_policy() -> Policy {
        Policy::parse(
            "[hot_alloc]\n\
             crates/model/src/infer.rs: decode_core, *_into\n\
             [unsafe_files]\n\
             crates/serve/src/pool.rs\n\
             [determinism]\n\
             crates/scenario/src/replay.rs\n\
             [clock]\n\
             crates/serve/src/clock.rs\n\
             [locks]\n\
             inner: 10 kv-block-pool\n\
             trie_guard: 20 prefix-trie\n",
        )
        .expect("fixture policy parses")
    }

    fn lint_names(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.lint.name()).collect()
    }

    #[test]
    fn alloc_lint_fires_in_hot_fn_only() {
        let p = test_policy();
        let bad = "fn decode_core(x: &[f32]) -> Vec<f32> {\n    let v = x.to_vec();\n    v\n}\n";
        let hits = check_source("crates/model/src/infer.rs", bad, &p);
        assert!(lint_names(&hits).contains(&"alloc"), "to_vec in hot fn must fire: {hits:?}");

        // Same code in a non-hot function: quiet.
        let cold = "fn helper(x: &[f32]) -> Vec<f32> {\n    x.to_vec()\n}\n";
        assert!(check_source("crates/model/src/infer.rs", cold, &p).is_empty());

        // Wildcard coverage and escape.
        let escaped = "fn softmax_into(out: &mut Vec<f32>) {\n    \
                       // tidy: allow(alloc) -- amortized: capacity reused across calls\n    \
                       out.push(1.0);\n}\n";
        assert!(check_source("crates/model/src/infer.rs", escaped, &p).is_empty());

        let wildcard = "fn softmax_into(out: &mut Vec<f32>) {\n    out.push(1.0);\n}\n";
        let hits = check_source("crates/model/src/infer.rs", wildcard, &p);
        assert_eq!(lint_names(&hits), vec!["alloc"]);
    }

    #[test]
    fn alloc_lint_ignores_strings_and_comments() {
        let p = test_policy();
        let src = "fn decode_core() {\n    // calls Vec::new() conceptually\n    \
                   let s = \"Vec::new()\";\n    let _ = s;\n}\n";
        assert!(check_source("crates/model/src/infer.rs", src, &p).is_empty());
    }

    #[test]
    fn unsafe_lint_needs_allowlist_and_safety_comment() {
        let p = test_policy();
        let outside = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let hits = check_source("crates/model/src/infer.rs", outside, &p);
        assert!(lint_names(&hits).contains(&"unsafe"), "unsafe outside allowlist: {hits:?}");

        let undocumented = "fn f() {\n    let x = unsafe { *p };\n}\n";
        let hits = check_source("crates/serve/src/pool.rs", undocumented, &p);
        assert_eq!(lint_names(&hits), vec!["unsafe"]);

        let documented =
            "fn f() {\n    // SAFETY: p is valid for reads; see dispatch protocol.\n    \
                          let x = unsafe { *p };\n}\n";
        assert!(check_source("crates/serve/src/pool.rs", documented, &p).is_empty());
    }

    #[test]
    fn panic_lint_exempts_tests_and_honors_escapes() {
        let p = test_policy();
        let bad = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", bad, &p);
        assert_eq!(lint_names(&hits), vec!["panic"]);

        let in_tests = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                        Some(1).unwrap();\n        panic!(\"boom\");\n    }\n}\n";
        assert!(check_source("crates/serve/src/engine.rs", in_tests, &p).is_empty());

        let escaped = "fn f(x: Option<u32>) -> u32 {\n    \
                       x.expect(\"invariant: x is set by admit()\") \
                       // tidy: allow(panic) -- scheduler invariant, audited per step\n}\n";
        assert!(check_source("crates/serve/src/engine.rs", escaped, &p).is_empty());

        // An escape without a reason is itself a violation.
        let unjustified = "fn f(x: Option<u32>) -> u32 {\n    \
                           // tidy: allow(panic)\n    x.unwrap()\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", unjustified, &p);
        assert!(
            hits.iter().any(|v| v.message.contains("justification")),
            "unjustified escape must be reported: {hits:?}"
        );
    }

    #[test]
    fn determinism_lint_covers_clock_and_hash_iteration() {
        let p = test_policy();
        let clock = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", clock, &p);
        assert_eq!(lint_names(&hits), vec!["determinism"]);

        // The declared clock shim may read the wall clock.
        assert!(check_source("crates/serve/src/clock.rs", clock, &p).is_empty());

        let hash = "use std::collections::HashMap;\nfn f() {\n    \
                    let m: HashMap<u32, u32> =\n        HashMap::new();\n}\n";
        let hits = check_source("crates/scenario/src/replay.rs", hash, &p);
        assert!(hits.iter().all(|v| v.lint == Lint::Determinism));
        assert_eq!(hits.len(), 3, "use + type + ctor lines: {hits:?}");

        // HashMap outside a determinism module is fine.
        assert!(check_source("crates/serve/src/trie.rs", hash, &p).is_empty());
    }

    #[test]
    fn lock_order_lint_checks_rank_and_declaration() {
        let p = test_policy();
        // trie (rank 20) then inner (rank 10) while the guard is held:
        // out of order.
        let bad = "fn f(&self) {\n    let g = self.trie_guard.lock();\n    \
                   let h = self.inner.lock();\n    drop((g, h));\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", bad, &p);
        assert_eq!(lint_names(&hits), vec!["lock_order"], "{hits:?}");

        // The declared order is fine.
        let good = "fn f(&self) {\n    let g = self.inner.lock();\n    \
                    let h = self.trie_guard.lock();\n    drop((g, h));\n}\n";
        assert!(check_source("crates/serve/src/engine.rs", good, &p).is_empty());

        // Sequential (non-nested) acquisition in separate blocks is fine.
        let seq = "fn f(&self) {\n    {\n        let g = self.trie_guard.lock();\n    }\n    \
                   let h = self.inner.lock();\n}\n";
        assert!(check_source("crates/serve/src/engine.rs", seq, &p).is_empty());

        // An undeclared receiver must be added to the manifest.
        let unknown = "fn f(&self) {\n    let g = self.mystery.lock();\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", unknown, &p);
        assert!(hits.iter().any(|v| v.message.contains("undeclared")), "{hits:?}");
    }

    #[test]
    fn violations_carry_position_and_render() {
        let p = test_policy();
        let bad = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let hits = check_source("crates/serve/src/engine.rs", bad, &p);
        assert_eq!(hits[0].line, 2);
        let rendered = hits[0].to_string();
        assert!(rendered.contains("crates/serve/src/engine.rs:2"), "{rendered}");
        assert!(rendered.contains("[panic]"), "{rendered}");
    }
}
