//! A comment/string/raw-string-aware view of one Rust source file.
//!
//! The linter never parses Rust; it works on a *code view* in which every
//! comment and every string/char-literal body has been blanked to spaces —
//! so a lexical pattern like `.unwrap()` or `unsafe` can only match real
//! code, never prose or test data — plus a parallel *comment view* holding
//! each line's comment text, where `// SAFETY:` and `// tidy: allow(..)`
//! annotations live. Both views preserve the line structure of the input
//! byte-for-line, so every finding maps straight back to a `file:line`.

/// The two parallel per-line views of one source file.
#[derive(Debug)]
pub struct SourceView {
    /// Line `i` of the input with comments and literal bodies blanked
    /// (string delimiters are kept, so `format!("…")` still shows the
    /// macro name and the quotes).
    pub code: Vec<String>,
    /// Comment text found on line `i` (both `//…` and the lines of
    /// `/* … */` blocks), empty when the line has none.
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; `true` after a backslash.
    Str(bool),
    /// Inside `r##"…"##` with this many hashes.
    RawStr(u32),
    /// Inside `'…'`; `true` after a backslash.
    CharLit(bool),
}

impl SourceView {
    /// Lexes `source` into the blanked code view and the comment view.
    pub fn lex(source: &str) -> SourceView {
        let bytes: Vec<char> = source.chars().collect();
        let mut code = Vec::new();
        let mut comments = Vec::new();
        let mut code_line = String::new();
        let mut comment_line = String::new();
        let mut state = State::Code;
        let mut i = 0usize;

        // Number of leading `#`s if a raw string opens at `i` (the `r` /
        // `br` has already been consumed by the caller's check).
        let raw_open = |at: usize| -> Option<u32> {
            let mut j = at;
            let mut hashes = 0u32;
            while j < bytes.len() && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            (j < bytes.len() && bytes[j] == '"').then_some(hashes)
        };

        while i < bytes.len() {
            let c = bytes[i];
            if c == '\n' {
                // A newline ends the current line in every state; line
                // comments also end here.
                if state == State::LineComment {
                    state = State::Code;
                }
                code.push(std::mem::take(&mut code_line));
                comments.push(std::mem::take(&mut comment_line));
                i += 1;
                continue;
            }
            match state {
                State::Code => {
                    let next = bytes.get(i + 1).copied();
                    let prev_ident = i
                        .checked_sub(1)
                        .map(|p| bytes[p].is_alphanumeric() || bytes[p] == '_')
                        .unwrap_or(false);
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        code_line.push_str("  ");
                        comment_line.push_str("//");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        code_line.push_str("  ");
                        comment_line.push_str("/*");
                        i += 2;
                        continue;
                    }
                    // Raw / byte-raw strings: r"…", r#"…"#, br#"…"#.
                    if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                        let after = if c == 'b' { i + 2 } else { i + 1 };
                        if let Some(h) = raw_open(after) {
                            // Emit the prefix, hashes and opening quote.
                            for &d in &bytes[i..after + h as usize + 1] {
                                code_line.push(d);
                                comment_line.push(' ');
                            }
                            state = State::RawStr(h);
                            i = after + h as usize + 1;
                            continue;
                        }
                    }
                    // Byte strings: b"…".
                    if !prev_ident && c == 'b' && next == Some('"') {
                        code_line.push_str("b\"");
                        comment_line.push_str("  ");
                        state = State::Str(false);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code_line.push('"');
                        comment_line.push(' ');
                        state = State::Str(false);
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Distinguish a char literal from a lifetime: after
                        // the quote, an escape or a `X'` pair is a literal;
                        // anything else (`'a`, `'static`) is a lifetime.
                        let is_char = match next {
                            Some('\\') => true,
                            Some(_) => bytes.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            code_line.push('\'');
                            comment_line.push(' ');
                            state = State::CharLit(false);
                            i += 1;
                            continue;
                        }
                    }
                    // Non-ASCII code characters are blanked so byte and
                    // char indices agree everywhere downstream.
                    code_line.push(if c.is_ascii() { c } else { ' ' });
                    comment_line.push(' ');
                    i += 1;
                }
                State::LineComment => {
                    code_line.push(' ');
                    comment_line.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    let next = bytes.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        state =
                            if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                        code_line.push_str("  ");
                        comment_line.push_str("*/");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code_line.push_str("  ");
                        comment_line.push_str("/*");
                        i += 2;
                        continue;
                    }
                    code_line.push(' ');
                    comment_line.push(c);
                    i += 1;
                }
                State::Str(escaped) => {
                    if escaped {
                        state = State::Str(false);
                        code_line.push(' ');
                    } else if c == '\\' {
                        state = State::Str(true);
                        code_line.push(' ');
                    } else if c == '"' {
                        state = State::Code;
                        code_line.push('"');
                    } else {
                        code_line.push(' ');
                    }
                    comment_line.push(' ');
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        // Closes only when followed by the right number of
                        // hashes.
                        let mut j = i + 1;
                        let mut h = 0u32;
                        while h < hashes && j < bytes.len() && bytes[j] == '#' {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            code_line.push('"');
                            for _ in 0..hashes {
                                code_line.push('#');
                            }
                            for _ in 0..=hashes {
                                comment_line.push(' ');
                            }
                            state = State::Code;
                            i = j;
                            continue;
                        }
                    }
                    code_line.push(' ');
                    comment_line.push(' ');
                    i += 1;
                }
                State::CharLit(escaped) => {
                    if escaped {
                        state = State::CharLit(false);
                        code_line.push(' ');
                    } else if c == '\\' {
                        state = State::CharLit(true);
                        code_line.push(' ');
                    } else if c == '\'' {
                        state = State::Code;
                        code_line.push('\'');
                    } else {
                        code_line.push(' ');
                    }
                    comment_line.push(' ');
                    i += 1;
                }
            }
        }
        code.push(code_line);
        comments.push(comment_line);
        SourceView { code, comments }
    }

    /// Number of lines (code and comment views always agree).
    pub fn lines(&self) -> usize {
        self.code.len()
    }
}

/// Whether `line` contains `pat` starting at a non-ident boundary (so
/// `unsafe` never matches inside `unsafe_code`, and `fn` never matches
/// inside `often`). Only the *leading* edge is checked — trailing
/// punctuation like `(` is part of most patterns already.
pub fn find_token(line: &str, pat: &str) -> Option<usize> {
    let ident_start = pat.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(rel) = line[from..].find(pat) {
        let at = from + rel;
        let boundary = !ident_start
            || at == 0
            || !line[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            let end_ok = pat
                .chars()
                .next_back()
                .map(|last| {
                    if last.is_alphanumeric() || last == '_' {
                        !line[at + pat.len()..]
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    } else {
                        true
                    }
                })
                .unwrap_or(true);
            if end_ok {
                return Some(at);
            }
        }
        from = at + pat.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let v = SourceView::lex("let x = \"panic!()\"; // real panic!()\nlet y = 1;");
        assert!(!v.code[0].contains("panic"));
        assert!(v.comments[0].contains("panic!()"));
        assert_eq!(v.code[1].trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let v = SourceView::lex("let s = r#\"unsafe \"# ; let c = '{'; let l: &'static str = s;");
        assert!(!v.code[0].contains("unsafe"));
        assert!(!v.code[0].contains('{'), "char literal body must be blanked");
        assert!(v.code[0].contains("'static"), "lifetimes stay in the code view");
    }

    #[test]
    fn nested_block_comments() {
        let v = SourceView::lex("a /* x /* y */ z */ b");
        assert_eq!(v.code[0].replace(' ', ""), "ab");
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("unsafe_code", "unsafe").is_none());
        assert!(find_token("deny(unsafe)", "unsafe").is_some());
        assert!(find_token("x.unwrap_or(1)", ".unwrap()").is_none());
        assert!(find_token("x.unwrap();", ".unwrap()").is_some());
        assert!(find_token("std::collections::HashMap", "HashMap").is_some());
        assert!(find_token("MyHashMap", "HashMap").is_none());
    }
}
