//! The declared invariant manifest (`tools/tidy/tidy.policy`).
//!
//! The policy file is the single place where the workspace's enforced
//! invariants are *declared*: which functions are allocation-free hot
//! paths, which file may contain `unsafe`, which modules promise
//! bit-deterministic output, where wall-clock reads are allowed, and the
//! global lock acquisition order. The linter is generic; the policy is
//! the contract.
//!
//! Format: `#` comments, `[section]` headers, then one entry per line.
//!
//! ```text
//! [hot_alloc]
//! crates/model/src/infer.rs: decode_core, *_into
//!
//! [unsafe_files]
//! crates/serve/src/pool.rs
//!
//! [determinism]
//! crates/scenario/src/replay.rs
//!
//! [clock]
//! crates/serve/src/clock.rs
//!
//! [locks]
//! inner: 10 kv-block-pool
//! ```
//!
//! `hot_alloc` values are comma-separated function-name patterns; a
//! pattern may use one leading or trailing `*` wildcard (`*_into`,
//! `quant_*`). `locks` maps a lock-guard receiver identifier to its rank
//! in the global acquisition order (lower rank must be taken first) and a
//! human-readable class name.

/// One hot-path declaration: a file and its allocation-free functions.
#[derive(Debug)]
pub struct HotFile {
    /// Workspace-relative path (matched by suffix).
    pub path: String,
    /// Function-name patterns (exact, `prefix*`, or `*suffix`).
    pub functions: Vec<String>,
}

/// One declared lock class.
#[derive(Debug)]
pub struct LockClass {
    /// The receiver identifier a `.lock()` call is recognized by
    /// (`self.inner.lock()` → `inner`).
    pub receiver: String,
    /// Position in the global acquisition order; a lock may only be taken
    /// while holding strictly lower-ranked guards.
    pub rank: u32,
    /// Human-readable name used in diagnostics.
    pub name: String,
}

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Policy {
    /// Files with declared allocation-free hot functions.
    pub hot: Vec<HotFile>,
    /// Files allowed to contain `unsafe` (each use still needs a
    /// `// SAFETY:` comment).
    pub unsafe_files: Vec<String>,
    /// Modules promising bit-deterministic output: no `HashMap`/`HashSet`,
    /// no wall-clock reads.
    pub determinism: Vec<String>,
    /// The only files allowed to read the wall clock
    /// (`Instant::now` / `SystemTime`).
    pub clock_files: Vec<String>,
    /// The global lock acquisition order.
    pub locks: Vec<LockClass>,
}

impl Policy {
    /// Parses the manifest text. Unknown sections and malformed entries
    /// are hard errors — a policy typo must not silently disable a lint.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "hot_alloc" | "unsafe_files" | "determinism" | "clock" | "locks" => {}
                    other => {
                        return Err(format!("policy line {lineno}: unknown section [{other}]"))
                    }
                }
                continue;
            }
            match section.as_str() {
                "hot_alloc" => {
                    let (path, fns) = line
                        .split_once(':')
                        .ok_or_else(|| format!("policy line {lineno}: expected `path: fns`"))?;
                    let functions: Vec<String> = fns
                        .split(',')
                        .map(|f| f.trim().to_string())
                        .filter(|f| !f.is_empty())
                        .collect();
                    if functions.is_empty() {
                        return Err(format!("policy line {lineno}: no functions declared"));
                    }
                    policy.hot.push(HotFile { path: path.trim().to_string(), functions });
                }
                "unsafe_files" => policy.unsafe_files.push(line.to_string()),
                "determinism" => policy.determinism.push(line.to_string()),
                "clock" => policy.clock_files.push(line.to_string()),
                "locks" => {
                    let (recv, rest) = line.split_once(':').ok_or_else(|| {
                        format!("policy line {lineno}: expected `recv: rank name`")
                    })?;
                    let mut parts = rest.split_whitespace();
                    let rank = parts
                        .next()
                        .and_then(|r| r.parse().ok())
                        .ok_or_else(|| format!("policy line {lineno}: missing numeric rank"))?;
                    let name = parts.next().unwrap_or("lock").to_string();
                    policy.locks.push(LockClass { receiver: recv.trim().to_string(), rank, name });
                }
                _ => return Err(format!("policy line {lineno}: entry outside any section")),
            }
        }
        Ok(policy)
    }

    /// Whether `rel_path` is covered by a path list (suffix match, so the
    /// policy stays valid when the repo is checked out under any root).
    pub fn matches(list: &[String], rel_path: &str) -> bool {
        list.iter().any(|p| rel_path.ends_with(p.as_str()))
    }

    /// The hot-function patterns for `rel_path`, if it is a declared hot
    /// file.
    pub fn hot_functions(&self, rel_path: &str) -> Option<&[String]> {
        self.hot
            .iter()
            .find(|h| rel_path.ends_with(h.path.as_str()))
            .map(|h| h.functions.as_slice())
    }

    /// The declared lock class for a `.lock()` receiver identifier.
    pub fn lock_class(&self, receiver: &str) -> Option<&LockClass> {
        self.locks.iter().find(|l| l.receiver == receiver)
    }
}

/// Whether `name` matches a function pattern (exact, `prefix*`, `*suffix`).
pub fn fn_pattern_matches(pattern: &str, name: &str) -> bool {
    if let Some(prefix) = pattern.strip_suffix('*') {
        name.starts_with(prefix)
    } else if let Some(suffix) = pattern.strip_prefix('*') {
        name.ends_with(suffix)
    } else {
        pattern == name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections() {
        let p = Policy::parse(
            "# comment\n[hot_alloc]\na/b.rs: dot, *_into\n[unsafe_files]\npool.rs\n\
             [determinism]\nreplay.rs\n[clock]\nclock.rs\n[locks]\ninner: 10 kv-pool\n",
        )
        .unwrap();
        assert_eq!(p.hot.len(), 1);
        assert_eq!(p.hot[0].functions, vec!["dot", "*_into"]);
        assert!(Policy::matches(&p.unsafe_files, "crates/serve/src/pool.rs"));
        assert_eq!(p.lock_class("inner").unwrap().rank, 10);
    }

    #[test]
    fn rejects_unknown_section_and_loose_entries() {
        assert!(Policy::parse("[nope]\n").is_err());
        assert!(Policy::parse("entry-before-any-section\n").is_err());
        assert!(Policy::parse("[locks]\ninner: notanumber\n").is_err());
    }

    #[test]
    fn wildcards() {
        assert!(fn_pattern_matches("*_into", "softmax_into"));
        assert!(fn_pattern_matches("quant_*", "quant_low_into"));
        assert!(fn_pattern_matches("dot", "dot"));
        assert!(!fn_pattern_matches("dot", "dots"));
    }
}
