//! The five lint families, all running over a [`SourceView`].
//!
//! Escapes: a finding on line `L` is suppressed when line `L` (or a
//! directly preceding run of comment-only lines) carries
//! `// tidy: allow(<lint>) -- <reason>`. The reason is mandatory — an
//! escape without one is itself reported.

use crate::lexer::{find_token, SourceView};
use crate::policy::{fn_pattern_matches, Policy};

/// The lint family a violation belongs to (also the name accepted by
/// `// tidy: allow(<name>)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// Heap allocation inside a declared hot function.
    Alloc,
    /// `unsafe` outside the allowlist or without a `// SAFETY:` comment.
    Unsafe,
    /// Panicking call in non-test library code.
    Panic,
    /// Iteration-order or wall-clock nondeterminism in a module that
    /// promises bit-identical output.
    Determinism,
    /// Nested lock acquisition violating the declared global order.
    LockOrder,
}

impl Lint {
    /// The name used in escape comments and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Alloc => "alloc",
            Lint::Unsafe => "unsafe",
            Lint::Panic => "panic",
            Lint::Determinism => "determinism",
            Lint::LockOrder => "lock_order",
        }
    }
}

/// One finding: a file, a 1-based line, the family and a message.
#[derive(Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint family.
    pub lint: Lint,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint.name(), self.message)
    }
}

/// Whether a finding on 0-based `line` is escaped for `lint`. Checks the
/// line's own trailing comment, then walks up through directly preceding
/// comment-only lines. Only escapes carrying a ` -- reason` count.
fn allowed(view: &SourceView, line: usize, lint: Lint) -> bool {
    let needle = format!("tidy: allow({})", lint.name());
    let justified = |l: usize| {
        view.comments[l]
            .find(needle.as_str())
            .is_some_and(|at| view.comments[l][at..].contains("--"))
    };
    if justified(line) {
        return true;
    }
    let mut l = line;
    while l > 0 {
        l -= 1;
        if !view.code[l].trim().is_empty() {
            return false; // a code line breaks the comment run
        }
        if view.comments[l].trim().is_empty() {
            return false; // a blank line breaks it too
        }
        if justified(l) {
            return true;
        }
    }
    false
}

/// Reports every `tidy: allow(..)` escape that lacks a `-- reason`, and
/// every escape naming an unknown lint.
pub fn check_escape_hygiene(file: &str, view: &SourceView, out: &mut Vec<Violation>) {
    for (i, comment) in view.comments.iter().enumerate() {
        let Some(at) = comment.find("tidy: allow(") else { continue };
        let rest = &comment[at + "tidy: allow(".len()..];
        let Some(end) = rest.find(')') else {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                lint: Lint::Panic,
                message: "malformed tidy escape: missing `)`".to_string(),
            });
            continue;
        };
        let name = &rest[..end];
        let known = ["alloc", "unsafe", "panic", "determinism", "lock_order"];
        if !known.contains(&name) {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                lint: Lint::Panic,
                message: format!("tidy escape names unknown lint `{name}`"),
            });
        }
        if !rest[end..].contains("--") {
            out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                lint: Lint::Panic,
                message: format!("tidy escape `allow({name})` has no `-- <reason>` justification"),
            });
        }
    }
}

/// A half-open 0-based line span.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    fn contains(&self, line: usize) -> bool {
        (self.start..=self.end).contains(&line)
    }
}

/// A function body found lexically: its name and line span (signature
/// line through closing brace).
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub span: Span,
}

/// Finds the first `{` at or after (`line`, `col`) and returns the line
/// holding its matching `}`. Stops early (returns `None`) if a `;` is hit
/// at depth 0 first — a bodyless trait method or declaration.
fn brace_match(view: &SourceView, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut started = false;
    let mut l = line;
    let mut c = col;
    while l < view.lines() {
        let chars: Vec<char> = view.code[l].chars().collect();
        while c < chars.len() {
            match chars[c] {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        return Some((l, c));
                    }
                }
                ';' if !started => return None,
                _ => {}
            }
            c += 1;
        }
        l += 1;
        c = 0;
    }
    None
}

/// Lexically extracts every `fn name … { … }` body span (nested functions
/// included, each under its own name).
pub fn function_spans(view: &SourceView) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for l in 0..view.lines() {
        let line = &view.code[l];
        let mut from = 0usize;
        while let Some(rel) = line[from..].find("fn ") {
            let at = from + rel;
            from = at + 3;
            let boundary = at == 0
                || !line[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|ch| ch.is_alphanumeric() || ch == '_');
            if !boundary {
                continue;
            }
            let name: String = line[at + 3..]
                .chars()
                .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            if let Some((end, _)) = brace_match(view, l, at) {
                spans.push(FnSpan { name, span: Span { start: l, end } });
            }
        }
    }
    spans
}

/// Line spans exempt from the panic/alloc/determinism lints:
/// `#[cfg(test)]` items (typically `mod tests { … }`).
pub fn test_spans(view: &SourceView) -> Vec<Span> {
    let mut spans = Vec::new();
    for l in 0..view.lines() {
        if let Some(at) = view.code[l].find("#[cfg(test)]") {
            if let Some((end, _)) = brace_match(view, l, at) {
                spans.push(Span { start: l, end });
            }
        }
    }
    spans
}

fn in_any(spans: &[Span], line: usize) -> bool {
    spans.iter().any(|s| s.contains(line))
}

/// Allocation-introducing patterns denied inside declared hot functions.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec!",
    "with_capacity",
    ".push(",
    ".collect",
    ".to_vec",
    ".clone(",
    "format!",
    "Box::new",
    "String::from",
    "String::new",
    ".to_string",
    ".to_owned",
];

/// Lint 1: no heap allocation inside declared hot functions.
pub fn lint_hot_alloc(
    file: &str,
    view: &SourceView,
    policy: &Policy,
    fns: &[FnSpan],
    tests: &[Span],
    out: &mut Vec<Violation>,
) {
    let Some(patterns) = policy.hot_functions(file) else { return };
    for f in fns {
        if !patterns.iter().any(|p| fn_pattern_matches(p, &f.name)) {
            continue;
        }
        for l in f.span.start..=f.span.end.min(view.lines() - 1) {
            if in_any(tests, l) {
                continue;
            }
            for pat in ALLOC_PATTERNS {
                if find_token(&view.code[l], pat).is_some() && !allowed(view, l, Lint::Alloc) {
                    out.push(Violation {
                        file: file.to_string(),
                        line: l + 1,
                        lint: Lint::Alloc,
                        message: format!(
                            "`{pat}` in hot function `{}` (declared allocation-free)",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// Lint 2: `unsafe` only in allowlisted files, each use with an adjacent
/// `// SAFETY:` comment (same line or within the 8 preceding lines).
pub fn lint_unsafe(file: &str, view: &SourceView, policy: &Policy, out: &mut Vec<Violation>) {
    let allowlisted = Policy::matches(&policy.unsafe_files, file);
    for l in 0..view.lines() {
        if find_token(&view.code[l], "unsafe").is_none() {
            continue;
        }
        if !allowlisted {
            out.push(Violation {
                file: file.to_string(),
                line: l + 1,
                lint: Lint::Unsafe,
                message: "`unsafe` outside the policy's unsafe_files allowlist".to_string(),
            });
            continue;
        }
        let documented = (l.saturating_sub(8)..=l).any(|k| view.comments[k].contains("SAFETY:"));
        if !documented {
            out.push(Violation {
                file: file.to_string(),
                line: l + 1,
                lint: Lint::Unsafe,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            });
        }
    }
}

/// Panicking patterns denied in non-test library code.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

/// Lint 3: no panicking calls in non-test library code.
pub fn lint_panic(file: &str, view: &SourceView, tests: &[Span], out: &mut Vec<Violation>) {
    for l in 0..view.lines() {
        if in_any(tests, l) {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if find_token(&view.code[l], pat).is_some() && !allowed(view, l, Lint::Panic) {
                out.push(Violation {
                    file: file.to_string(),
                    line: l + 1,
                    lint: Lint::Panic,
                    message: format!("`{pat}` in library code (tests are exempt)"),
                });
            }
        }
    }
}

/// Lint 4: determinism. Wall-clock reads (`Instant::now` / `SystemTime`)
/// are denied everywhere except the declared clock shim; `HashMap` /
/// `HashSet` are additionally denied in modules that promise
/// bit-deterministic output.
pub fn lint_determinism(
    file: &str,
    view: &SourceView,
    policy: &Policy,
    tests: &[Span],
    out: &mut Vec<Violation>,
) {
    let clock_home = Policy::matches(&policy.clock_files, file);
    let deterministic = Policy::matches(&policy.determinism, file);
    for l in 0..view.lines() {
        if in_any(tests, l) {
            continue;
        }
        if !clock_home {
            for pat in ["Instant::now", "SystemTime"] {
                if find_token(&view.code[l], pat).is_some() && !allowed(view, l, Lint::Determinism)
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line: l + 1,
                        lint: Lint::Determinism,
                        message: format!(
                            "`{pat}` outside the clock shim (route wall-clock reads \
                             through the declared clock module)"
                        ),
                    });
                }
            }
        }
        if deterministic {
            for pat in ["HashMap", "HashSet"] {
                if find_token(&view.code[l], pat).is_some() && !allowed(view, l, Lint::Determinism)
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line: l + 1,
                        lint: Lint::Determinism,
                        message: format!(
                            "`{pat}` in a module promising bit-deterministic output \
                             (iteration order is unstable; use BTreeMap/Vec)"
                        ),
                    });
                }
            }
        }
    }
}

/// Lint 5: lock order. Within each function, a `.lock()` on a declared
/// receiver while a lower-or-equal-ranked guard is still live (let-bound,
/// in scope) violates the declared global acquisition order. Undeclared
/// receivers are violations too — every Mutex must be in the manifest.
pub fn lint_lock_order(
    file: &str,
    view: &SourceView,
    policy: &Policy,
    fns: &[FnSpan],
    tests: &[Span],
    out: &mut Vec<Violation>,
) {
    for f in fns {
        // Guards held: (brace depth at binding, rank, receiver).
        let mut held: Vec<(usize, u32, String)> = Vec::new();
        let mut depth = 0usize;
        for l in f.span.start..=f.span.end.min(view.lines() - 1) {
            let line = view.code[l].as_str();
            // Scan the line once for depth *and* lock calls, in order.
            let chars: Vec<char> = line.chars().collect();
            let mut col = 0usize;
            while col < chars.len() {
                match chars[col] {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        held.retain(|&(d, _, _)| d <= depth);
                    }
                    '.' if line[col..].starts_with(".lock()") && !in_any(tests, l) => {
                        // Receiver: trailing ident before the dot.
                        let recv: String = line[..col]
                            .chars()
                            .rev()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect::<Vec<_>>()
                            .into_iter()
                            .rev()
                            .collect();
                        let escaped = allowed(view, l, Lint::LockOrder);
                        match policy.lock_class(&recv) {
                            None if !escaped => out.push(Violation {
                                file: file.to_string(),
                                line: l + 1,
                                lint: Lint::LockOrder,
                                message: format!(
                                    "`.lock()` on undeclared receiver `{recv}` — add it \
                                     to the [locks] section of tidy.policy"
                                ),
                            }),
                            Some(class) => {
                                if let Some((_, r, other)) =
                                    held.iter().find(|(_, r, _)| *r >= class.rank)
                                {
                                    if !escaped {
                                        out.push(Violation {
                                            file: file.to_string(),
                                            line: l + 1,
                                            lint: Lint::LockOrder,
                                            message: format!(
                                                "lock `{}` (rank {}) acquired while holding \
                                                 `{other}` (rank {r}) — violates the declared \
                                                 acquisition order",
                                                class.name, class.rank
                                            ),
                                        });
                                    }
                                }
                                // A let-bound guard lives to the end of
                                // the current block; a temporary is
                                // released within the statement.
                                if view.code[l].trim_start().starts_with("let ") {
                                    held.push((depth, class.rank, class.name.clone()));
                                }
                            }
                            None => {}
                        }
                    }
                    _ => {}
                }
                col += 1;
            }
        }
    }
}
