//! CLI entry point: `cargo run -p opal-tidy`.
//!
//! Loads `tools/tidy/tidy.policy`, lints every `crates/*/src` source, and
//! exits non-zero when any violation is found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary lives at tools/tidy, so the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);

    let policy_path = root.join("tools/tidy/tidy.policy");
    let policy_text = match std::fs::read_to_string(&policy_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tidy: cannot read {}: {e}", policy_path.display());
            return ExitCode::FAILURE;
        }
    };
    let policy = match opal_tidy::Policy::parse(&policy_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tidy: bad policy: {e}");
            return ExitCode::FAILURE;
        }
    };

    match opal_tidy::run(&root, &policy) {
        Ok((violations, files)) => {
            if violations.is_empty() {
                println!("tidy: {files} files checked, no violations");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("tidy: {} violation(s) in {files} files", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tidy: walk failed: {e}");
            ExitCode::FAILURE
        }
    }
}
