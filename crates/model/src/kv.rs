//! Paged key/value cache: fixed-size refcounted blocks from a shared pool.
//!
//! The flat per-sequence KV buffers scaled memory with
//! `max_batch × longest-sequence` and stored identical prompt prefixes once
//! per request. This module pages the cache instead, vLLM-style:
//!
//! * a [`BlockPool`] owns every page — `block_size` rows of `width` floats
//!   for K and the same for V — behind a free-list allocator with a hard
//!   `max_blocks` bound and `in_use`/`peak` accounting,
//! * each sequence's [`DecodeState`](crate::DecodeState) holds a per-layer
//!   *block table* (`Vec<Arc<KvBlock>>`) that attention walks instead of a
//!   contiguous slice,
//! * blocks are refcounted ([`Arc`]), so two sequences with a common token
//!   prefix can map the same prefix blocks read-only, and
//! * writes are **copy-on-write**: appending a row into a block something
//!   else still references (a prefix-sharing peer, the serve engine's
//!   prefix trie) clones the filled rows into a fresh block first —
//!   [`Arc::get_mut`] is the entire aliasing proof, no `unsafe` anywhere.
//!
//! Dropping the last `Arc` to a block returns its storage to the pool's
//! free list, so releasing a sequence (retirement, cancellation, or a
//! memory-pressure preemption) frees exactly the blocks nobody else maps.

use std::sync::{Arc, Mutex};

/// Storage of one recycled page pair (K rows, V rows).
type FreePage = (Vec<f32>, Vec<f32>);

#[derive(Debug)]
struct PoolInner {
    free: Vec<FreePage>,
    in_use: usize,
    peak: usize,
    max_blocks: usize,
}

/// A workspace-wide allocator of fixed-size KV pages.
///
/// One pool serves every layer of every sequence decoding under it
/// (`opal-serve` creates one per engine; [`crate::Model::begin_decode`]
/// creates a private unbounded one per state). Allocation pops the free
/// list — pages are recycled without zeroing, callers never read past the
/// rows they wrote — and a hard `max_blocks` bound caps total KV memory at
/// `max_blocks × block_size × width × 2` floats.
#[derive(Debug)]
pub struct BlockPool {
    block_size: usize,
    width: usize,
    inner: Mutex<PoolInner>,
}

impl BlockPool {
    /// Block size of the private pool behind [`crate::Model::begin_decode`].
    pub const DEFAULT_BLOCK_SIZE: usize = 32;

    /// Creates a pool of up to `max_blocks` pages of `block_size` rows ×
    /// `width` floats (per K and V each). `usize::MAX` means unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `width` is zero.
    pub fn new(block_size: usize, width: usize, max_blocks: usize) -> Self {
        assert!(block_size > 0, "block_size must be at least 1");
        assert!(width > 0, "row width must be at least 1");
        BlockPool {
            block_size,
            width,
            inner: Mutex::new(PoolInner { free: Vec::new(), in_use: 0, peak: 0, max_blocks }),
        }
    }

    /// Rows per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Floats per row (the model's `d_model`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Blocks currently allocated (live block tables plus any prefix-cache
    /// references; a block shared by many sequences counts once).
    pub fn in_use(&self) -> usize {
        self.guard().in_use
    }

    /// High-water mark of [`BlockPool::in_use`] over the pool's lifetime.
    pub fn peak(&self) -> usize {
        self.guard().peak
    }

    /// The configured block bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.guard().max_blocks
    }

    /// Blocks still allocatable before the pool is exhausted.
    pub fn free_blocks(&self) -> usize {
        let inner = self.guard();
        inner.max_blocks.saturating_sub(inner.in_use)
    }

    /// Allocates one block, recycling a free page when available.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted. A scheduler driving a bounded pool
    /// must reserve blocks (and preempt or evict) *before* stepping
    /// sequences — see `opal-serve`'s memory-aware admission — so this
    /// firing indicates a reservation bug, not a recoverable condition.
    pub fn alloc(self: &Arc<Self>) -> Arc<KvBlock> {
        let cap = self.block_size * self.width;
        let (k, v) = {
            let mut inner = self.guard();
            assert!(
                inner.in_use < inner.max_blocks,
                "KV block pool exhausted ({} blocks): the scheduler must reserve blocks \
                 before stepping",
                inner.max_blocks
            );
            inner.in_use += 1;
            inner.peak = inner.peak.max(inner.in_use);
            inner.free.pop().unwrap_or_else(|| (vec![0.0; cap], vec![0.0; cap]))
        };
        Arc::new(KvBlock { pool: Arc::clone(self), k, v })
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A worker panic mid-step poisons nothing we care about: the inner
        // counters are updated atomically under the lock and the free list
        // holds plain storage, so recover the guard instead of cascading.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One fixed-size KV page: `block_size` rows × `width` floats for K and V.
///
/// Blocks are handed out as `Arc<KvBlock>` so prefix sharing is a refcount
/// bump; the storage returns to its pool's free list when the last
/// reference drops.
#[derive(Debug)]
pub struct KvBlock {
    pool: Arc<BlockPool>,
    pub(crate) k: Vec<f32>,
    pub(crate) v: Vec<f32>,
}

impl KvBlock {
    /// Whether this block came from `pool`.
    pub fn from_pool(&self, pool: &Arc<BlockPool>) -> bool {
        Arc::ptr_eq(&self.pool, pool)
    }
}

impl Drop for KvBlock {
    fn drop(&mut self) {
        let k = std::mem::take(&mut self.k);
        let v = std::mem::take(&mut self.v);
        let mut inner = self.pool.guard();
        inner.in_use -= 1;
        inner.free.push((k, v));
    }
}

/// A sequence's paged KV cache: one block table per layer over a shared
/// [`BlockPool`].
///
/// All layers advance in lockstep (every appended position writes one row
/// per layer), so the tables always hold `ceil(pos / block_size)` blocks
/// each. Reads are bounded by the caller's sequence length — rows past it
/// are recycled-page garbage by design.
#[derive(Debug)]
pub(crate) struct PagedKv {
    pub(crate) pool: Arc<BlockPool>,
    /// `layers[l]` is layer `l`'s block table.
    pub(crate) layers: Vec<Vec<Arc<KvBlock>>>,
}

impl PagedKv {
    pub(crate) fn new(pool: Arc<BlockPool>, n_layers: usize) -> Self {
        PagedKv { pool, layers: (0..n_layers).map(|_| Vec::new()).collect() }
    }

    /// Writable K/V row spans for positions `pos..pos + n` of `layer`,
    /// allocating the block on first touch and copy-on-writing it when it
    /// is shared. The span must not cross a block boundary (callers split
    /// chunks into per-block segments).
    pub(crate) fn rows_mut(
        &mut self,
        layer: usize,
        pos: usize,
        n: usize,
    ) -> (&mut [f32], &mut [f32]) {
        let bs = self.pool.block_size();
        let w = self.pool.width();
        let bi = pos / bs;
        let r = pos % bs;
        debug_assert!(n > 0 && r + n <= bs, "row span must stay inside one block");
        let table = &mut self.layers[layer];
        debug_assert!(bi <= table.len(), "append must be contiguous");
        if bi == table.len() {
            debug_assert_eq!(r, 0, "a fresh block starts at its first row");
            table.push(self.pool.alloc());
        } else if Arc::get_mut(&mut table[bi]).is_none() {
            // Copy-on-write: the tail block is mapped by someone else (a
            // prefix-sharing peer or the prefix cache). Clone the rows
            // filled so far into a fresh block and divert this sequence's
            // table to it; the shared original stays untouched.
            let mut fresh = self.pool.alloc();
            {
                // tidy: allow(panic) -- alloc() returns a fresh Arc with refcount 1
                let fb = Arc::get_mut(&mut fresh).expect("freshly allocated block is unshared");
                fb.k[..r * w].copy_from_slice(&table[bi].k[..r * w]);
                fb.v[..r * w].copy_from_slice(&table[bi].v[..r * w]);
            }
            table[bi] = fresh;
        }
        // tidy: allow(panic) -- the branch above just made the tail block exclusive
        let block = Arc::get_mut(&mut table[bi]).expect("tail block just made exclusive");
        (&mut block.k[r * w..(r + n) * w], &mut block.v[r * w..(r + n) * w])
    }

    /// The first `len` cached K rows of `layer`, in position order.
    pub(crate) fn k_rows(&self, layer: usize, len: usize) -> impl Iterator<Item = &[f32]> + '_ {
        let w = self.pool.width();
        self.layers[layer].iter().flat_map(move |b| b.k.chunks_exact(w)).take(len)
    }

    /// The first `len` cached V rows of `layer`, in position order.
    pub(crate) fn v_rows(&self, layer: usize, len: usize) -> impl Iterator<Item = &[f32]> + '_ {
        let w = self.pool.width();
        self.layers[layer].iter().flat_map(move |b| b.v.chunks_exact(w)).take(len)
    }

    /// Whether any layer's tail block is mapped by someone else (an append
    /// at a non-boundary position would copy-on-write).
    pub(crate) fn tail_shared(&self) -> bool {
        self.layers.iter().any(|t| t.last().is_some_and(|b| Arc::strong_count(b) > 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(bs: usize, max: usize) -> Arc<BlockPool> {
        Arc::new(BlockPool::new(bs, 4, max))
    }

    #[test]
    fn alloc_free_accounting() {
        let p = pool(2, 8);
        assert_eq!((p.in_use(), p.peak(), p.free_blocks()), (0, 0, 8));
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!((p.in_use(), p.peak(), p.free_blocks()), (2, 2, 6));
        drop(a);
        assert_eq!((p.in_use(), p.peak()), (1, 2));
        drop(b);
        assert_eq!((p.in_use(), p.peak()), (0, 2));
        // Recycled storage: a fresh alloc reuses a freed page.
        let _c = p.alloc();
        assert_eq!((p.in_use(), p.peak()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let p = pool(2, 1);
        let _a = p.alloc();
        let _b = p.alloc();
    }

    #[test]
    fn rows_mut_allocates_and_cows() {
        let p = pool(2, usize::MAX);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        // Fill positions 0 and 1 (one block).
        kv.rows_mut(0, 0, 1).0.copy_from_slice(&[1.0; 4]);
        kv.rows_mut(0, 1, 1).0.copy_from_slice(&[2.0; 4]);
        assert_eq!(p.in_use(), 1);
        // Share the block, then append position 2 (new block — no CoW).
        let shared = kv.layers[0][0].clone();
        kv.rows_mut(0, 2, 1).0.copy_from_slice(&[3.0; 4]);
        assert_eq!(p.in_use(), 2);
        assert!(Arc::ptr_eq(&shared, &kv.layers[0][0]), "full shared block must stay mapped");

        // Share the partial tail; the next append must copy-on-write it.
        let tail = kv.layers[0][1].clone();
        assert!(kv.tail_shared());
        kv.rows_mut(0, 3, 1).0.copy_from_slice(&[4.0; 4]);
        assert_eq!(p.in_use(), 3, "CoW allocates a fresh block");
        assert!(!Arc::ptr_eq(&tail, &kv.layers[0][1]), "table must divert to the copy");
        assert_eq!(&tail.k[..4], &[3.0; 4], "donor block must be untouched");
        assert_eq!(&kv.layers[0][1].k[..4], &[3.0; 4], "filled rows must be copied");
        assert_eq!(&kv.layers[0][1].k[4..], &[4.0; 4]);
        assert!(!kv.tail_shared());
    }
}
