//! Paged key/value cache: fixed-size refcounted blocks from a shared pool.
//!
//! The flat per-sequence KV buffers scaled memory with
//! `max_batch × longest-sequence` and stored identical prompt prefixes once
//! per request. This module pages the cache instead, vLLM-style:
//!
//! * a [`BlockPool`] owns every page — `block_size` rows of `width` elements
//!   for K and the same for V — behind a free-list allocator with a hard
//!   `max_blocks` bound and `in_use`/`peak` accounting,
//! * each sequence's [`DecodeState`](crate::DecodeState) holds a per-layer
//!   *block table* (`Vec<Arc<KvBlock>>`) that attention walks instead of a
//!   contiguous slice,
//! * blocks are refcounted ([`Arc`]), so two sequences with a common token
//!   prefix can map the same prefix blocks read-only, and
//! * writes are **copy-on-write**: appending a row into a block something
//!   else still references (a prefix-sharing peer, the serve engine's
//!   prefix trie) clones the filled rows into a fresh block first —
//!   [`Arc::get_mut`] is the entire aliasing proof, no `unsafe` anywhere.
//!
//! Pages come in two storage formats, fixed per pool by a [`KvScheme`]:
//!
//! * **Exact** — `f32` rows, bit-identical to the pre-paged cache, and
//! * **quantized** — MX-OPAL or MXINT pages holding packed `i8` codes with
//!   per-quant-block shared exponents (plus bf16 outlier slots for
//!   MX-OPAL). Rows are encoded once at append time with the
//!   allocation-free `opal-quant` row encoders, and attention walks them in
//!   the quantized domain: the q·k inner product runs over integer codes
//!   with one power-of-two scale multiply per shared-exponent block
//!   ([`opal_tensor::ops::dot_codes`]), and V aggregation dequantizes
//!   per-element on the walk. Copy-on-write clones packed codes exactly
//!   like it clones `f32` rows, so prefix sharing is format-agnostic.
//!
//! Dropping the last `Arc` to a block returns its storage to the pool's
//! free list, so releasing a sequence (retirement, cancellation, or a
//! memory-pressure preemption) frees exactly the blocks nobody else maps.

use opal_numerics::shift::step_size;
use opal_numerics::Bf16;
use opal_quant::{EncodeScratch, MxIntQuantizer, MxOpalQuantizer};
use opal_tensor::ops;
use std::sync::{Arc, Mutex};

/// Storage format for the KV-cache pages of one [`BlockPool`].
///
/// The scheme is fixed at pool construction: every page the pool hands out
/// has the same layout, and blocks are only shareable between sequences on
/// the same pool (see [`AdoptError::SchemeMismatch`]). `Exact` is the
/// default and keeps decode bit-identical to the unquantized cache;
/// the quantized schemes trade bounded accuracy for ~3.5× smaller pages,
/// which a bounded pool converts directly into more resident sequences.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KvScheme {
    /// Full-precision `f32` rows.
    #[default]
    Exact,
    /// MX-OPAL pages: `bits`-bit integer codes over shared-exponent blocks
    /// of `qblock` elements, with the top `outliers` magnitudes per block
    /// preserved exactly in bf16 side slots.
    MxOpal {
        /// Code width in bits (2..=8; codes at 5..=8 bits occupy one `i8`
        /// slot each, codes at `<= 4` bits are nibble-packed two per byte).
        bits: u32,
        /// Elements per shared-exponent block.
        qblock: usize,
        /// bf16 outliers preserved per block (must be `< qblock`).
        outliers: usize,
    },
    /// MXINT pages: `bits`-bit integer codes over shared-exponent blocks of
    /// `qblock` elements, no outlier slots.
    MxInt {
        /// Code width in bits (2..=8; codes at 5..=8 bits occupy one `i8`
        /// slot each, codes at `<= 4` bits are nibble-packed two per byte).
        bits: u32,
        /// Elements per shared-exponent block.
        qblock: usize,
    },
}

/// `i8` storage slots behind one row of `width` codes: nibble-packed pages
/// (`bits <= 4`) hold two codes per byte, wider codes one per byte.
fn code_slots(bits: u32, width: usize) -> usize {
    if bits <= 4 {
        width.div_ceil(2)
    } else {
        width
    }
}

impl KvScheme {
    /// The default exact (`f32`) scheme.
    pub fn exact() -> Self {
        KvScheme::Exact
    }

    /// The preset MX-OPAL KV scheme: 8-bit codes, 128-element blocks, 4
    /// bf16 outliers per block (~9.2 stored bits per element).
    pub fn mxopal() -> Self {
        KvScheme::MxOpal { bits: 8, qblock: 128, outliers: 4 }
    }

    /// The preset MXINT KV scheme: 8-bit codes, 32-element blocks (~8.8
    /// stored bits per element).
    pub fn mxint() -> Self {
        KvScheme::MxInt { bits: 8, qblock: 32 }
    }

    /// The preset 4-bit MX-OPAL KV scheme: 4-bit codes nibble-packed two
    /// per byte, 32-element blocks, 2 bf16 outliers per block (~6.75
    /// stored bits per element at `width = 128`) — roughly 1.4× smaller
    /// pages than [`KvScheme::mxopal`] and ~4.7× smaller than `Exact`.
    pub fn mxopal4() -> Self {
        KvScheme::MxOpal { bits: 4, qblock: 32, outliers: 2 }
    }

    /// Whether pages under this scheme store packed codes rather than
    /// `f32` rows.
    pub fn quantized(&self) -> bool {
        !matches!(self, KvScheme::Exact)
    }

    /// Short stable name for reports and bench output (nibble-packed
    /// variants are named separately so byte-budget tables stay legible).
    pub fn name(&self) -> &'static str {
        match self {
            KvScheme::Exact => "exact",
            KvScheme::MxOpal { bits: 0..=4, .. } => "mxopal4",
            KvScheme::MxOpal { .. } => "mxopal",
            KvScheme::MxInt { bits: 0..=4, .. } => "mxint4",
            KvScheme::MxInt { .. } => "mxint",
        }
    }

    /// Bytes of storage behind one K *or* V page of `block_size` rows ×
    /// `width` elements (codes, shared exponents, and outlier slots; not
    /// counting per-`Vec` headers).
    pub fn page_bytes(&self, block_size: usize, width: usize) -> usize {
        match *self {
            KvScheme::Exact => block_size * width * std::mem::size_of::<f32>(),
            KvScheme::MxOpal { bits, qblock, outliers } => {
                let qpr = width.div_ceil(qblock);
                // i8 slot per code (nibble-packed below 5 bits); i16 scale
                // + u8 outlier count per quant block; (u16 index, bf16
                // value) per outlier slot.
                block_size * (code_slots(bits, width) + qpr * 3 + qpr * outliers * 4)
            }
            KvScheme::MxInt { bits, qblock } => {
                let qpr = width.div_ceil(qblock);
                block_size * (code_slots(bits, width) + qpr * 3)
            }
        }
    }

    /// Average stored bits per cached element for rows of `width`.
    pub fn bits_per_element(&self, width: usize) -> f64 {
        self.page_bytes(1, width) as f64 * 8.0 / width as f64
    }
}

/// Why [`DecodeState::try_adopt_shared_prefix`] refused a donor block
/// table.
///
/// [`DecodeState::try_adopt_shared_prefix`]: crate::DecodeState::try_adopt_shared_prefix
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdoptError {
    /// The donor blocks store a different page format than the adopting
    /// sequence's pool — an exact walk cannot read packed codes and vice
    /// versa, so sharing across schemes is rejected up front.
    SchemeMismatch {
        /// Scheme of the adopting sequence's pool.
        ours: KvScheme,
        /// Scheme of the donor block's pool.
        theirs: KvScheme,
    },
    /// The donor blocks belong to a different [`BlockPool`] instance, so
    /// their storage would escape this pool's accounting.
    ForeignPool,
}

impl std::fmt::Display for AdoptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdoptError::SchemeMismatch { ours, theirs } => {
                write!(f, "cannot adopt {} KV pages into a {} cache", theirs.name(), ours.name())
            }
            AdoptError::ForeignPool => write!(f, "shared block from a foreign pool"),
        }
    }
}

impl std::error::Error for AdoptError {}

/// Validated row codec for a quantized pool (constructed once at
/// [`BlockPool::with_scheme`] so the hot append path never re-validates).
#[derive(Clone, Copy, Debug)]
enum Codec {
    Opal(MxOpalQuantizer),
    Int(MxIntQuantizer),
}

/// One recycled page pair (K page, V page) on the free list.
type FreePage = (PageStore, PageStore);

#[derive(Debug)]
struct PoolInner {
    free: Vec<FreePage>,
    in_use: usize,
    peak: usize,
    max_blocks: usize,
}

/// A workspace-wide allocator of fixed-size KV pages.
///
/// One pool serves every layer of every sequence decoding under it
/// (`opal-serve` creates one per engine; [`crate::Model::begin_decode`]
/// creates a private unbounded one per state). Allocation pops the free
/// list — pages are recycled without zeroing, callers never read past the
/// rows they wrote — and a hard `max_blocks` bound caps total KV memory at
/// `max_blocks × 2 ×` [`KvScheme::page_bytes`].
#[derive(Debug)]
pub struct BlockPool {
    block_size: usize,
    width: usize,
    scheme: KvScheme,
    codec: Option<Codec>,
    inner: Mutex<PoolInner>,
}

impl BlockPool {
    /// Block size of the private pool behind [`crate::Model::begin_decode`].
    pub const DEFAULT_BLOCK_SIZE: usize = 32;

    /// Creates an exact (`f32`-page) pool of up to `max_blocks` pages of
    /// `block_size` rows × `width` elements (per K and V each).
    /// `usize::MAX` means unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `width` is zero.
    pub fn new(block_size: usize, width: usize, max_blocks: usize) -> Self {
        Self::with_scheme(block_size, width, max_blocks, KvScheme::Exact)
    }

    /// As [`BlockPool::new`] with an explicit page storage scheme.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` or `width` is zero, or if a quantized
    /// scheme's parameters are invalid (`bits` ∉ 2..=8, zero `qblock`, or
    /// `outliers >= qblock`).
    pub fn with_scheme(
        block_size: usize,
        width: usize,
        max_blocks: usize,
        scheme: KvScheme,
    ) -> Self {
        assert!(block_size > 0, "block_size must be at least 1");
        assert!(width > 0, "row width must be at least 1");
        let codec = match scheme {
            KvScheme::Exact => None,
            KvScheme::MxOpal { bits, qblock, outliers } => {
                let q = MxOpalQuantizer::new(bits, qblock, outliers);
                // tidy: allow(panic) -- pool construction validates the scheme once
                Some(Codec::Opal(q.expect("invalid MX-OPAL scheme")))
            }
            KvScheme::MxInt { bits, qblock } => {
                // tidy: allow(panic) -- pool construction validates the scheme once
                Some(Codec::Int(MxIntQuantizer::new(bits, qblock).expect("invalid MXINT scheme")))
            }
        };
        BlockPool {
            block_size,
            width,
            scheme,
            codec,
            inner: Mutex::new(PoolInner { free: Vec::new(), in_use: 0, peak: 0, max_blocks }),
        }
    }

    /// Rows per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Elements per row (the model's `d_model`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The page storage scheme every block of this pool uses.
    pub fn scheme(&self) -> KvScheme {
        self.scheme
    }

    /// Blocks currently allocated (live block tables plus any prefix-cache
    /// references; a block shared by many sequences counts once).
    pub fn in_use(&self) -> usize {
        self.guard().in_use
    }

    /// High-water mark of [`BlockPool::in_use`] over the pool's lifetime.
    pub fn peak(&self) -> usize {
        self.guard().peak
    }

    /// The configured block bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.guard().max_blocks
    }

    /// Blocks still allocatable before the pool is exhausted.
    pub fn free_blocks(&self) -> usize {
        let inner = self.guard();
        inner.max_blocks.saturating_sub(inner.in_use)
    }

    /// `(bits, qblock, outlier slots per qblock)` of a quantized pool.
    fn quant_params(&self) -> (u32, usize, usize) {
        match self.scheme {
            KvScheme::MxOpal { bits, qblock, outliers } => (bits, qblock, outliers),
            KvScheme::MxInt { bits, qblock } => (bits, qblock, 0),
            KvScheme::Exact => unreachable!("quant_params on an exact pool"),
        }
    }

    /// Shared-exponent blocks per row of a quantized pool.
    fn qblocks_per_row(&self) -> usize {
        let (_, qblock, _) = self.quant_params();
        self.width.div_ceil(qblock)
    }

    /// Builds one zeroed page pair matching the pool's scheme.
    fn fresh_pages(&self) -> FreePage {
        match self.scheme {
            KvScheme::Exact => {
                let cap = self.block_size * self.width;
                (PageStore::Exact(vec![0.0; cap]), PageStore::Exact(vec![0.0; cap]))
            }
            _ => {
                let (bits, _, nout) = self.quant_params();
                let qpr = self.qblocks_per_row();
                let cw = code_slots(bits, self.width);
                (
                    PageStore::Quant(QuantPage::zeroed(self.block_size, cw, qpr, nout)),
                    PageStore::Quant(QuantPage::zeroed(self.block_size, cw, qpr, nout)),
                )
            }
        }
    }

    /// Allocates one block, recycling a free page when available.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted. A scheduler driving a bounded pool
    /// must reserve blocks (and preempt or evict) *before* stepping
    /// sequences — see `opal-serve`'s memory-aware admission — so this
    /// firing indicates a reservation bug, not a recoverable condition.
    pub fn alloc(self: &Arc<Self>) -> Arc<KvBlock> {
        let (k, v) = {
            let mut inner = self.guard();
            assert!(
                inner.in_use < inner.max_blocks,
                "KV block pool exhausted ({} blocks): the scheduler must reserve blocks \
                 before stepping",
                inner.max_blocks
            );
            inner.in_use += 1;
            inner.peak = inner.peak.max(inner.in_use);
            inner.free.pop().unwrap_or_else(|| self.fresh_pages())
        };
        Arc::new(KvBlock { pool: Arc::clone(self), k, v })
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A worker panic mid-step poisons nothing we care about: the inner
        // counters are updated atomically under the lock and the free list
        // holds plain storage, so recover the guard instead of cascading.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One page's backing storage: `f32` rows or packed quantized rows.
#[derive(Debug)]
enum PageStore {
    Exact(Vec<f32>),
    Quant(QuantPage),
}

impl PageStore {
    /// The `f32` rows of an exact page.
    fn exact(&self) -> &[f32] {
        match self {
            PageStore::Exact(rows) => rows,
            PageStore::Quant(_) => unreachable!("exact row access on a quantized page"),
        }
    }

    fn exact_mut(&mut self) -> &mut [f32] {
        match self {
            PageStore::Exact(rows) => rows,
            PageStore::Quant(_) => unreachable!("exact row access on a quantized page"),
        }
    }

    /// The packed rows of a quantized page.
    fn quant(&self) -> &QuantPage {
        match self {
            PageStore::Quant(page) => page,
            PageStore::Exact(_) => unreachable!("quantized row access on an exact page"),
        }
    }

    fn quant_mut(&mut self) -> &mut QuantPage {
        match self {
            PageStore::Quant(page) => page,
            PageStore::Exact(_) => unreachable!("quantized row access on an exact page"),
        }
    }

    /// Copies the first `rows` rows of `src` into `self` (copy-on-write
    /// body; both pages come from the same pool, hence the same layout).
    /// `cw` is the `i8` code stride per quantized row (`code_slots`).
    fn copy_rows_from(
        &mut self,
        src: &PageStore,
        rows: usize,
        w: usize,
        cw: usize,
        qpr: usize,
        nout: usize,
    ) {
        match (self, src) {
            (PageStore::Exact(dst), PageStore::Exact(s)) => {
                dst[..rows * w].copy_from_slice(&s[..rows * w]);
            }
            (PageStore::Quant(dst), PageStore::Quant(s)) => {
                dst.codes[..rows * cw].copy_from_slice(&s.codes[..rows * cw]);
                dst.scales[..rows * qpr].copy_from_slice(&s.scales[..rows * qpr]);
                dst.out_len[..rows * qpr].copy_from_slice(&s.out_len[..rows * qpr]);
                let slots = rows * qpr * nout;
                dst.out_idx[..slots].copy_from_slice(&s.out_idx[..slots]);
                dst.out_val[..slots].copy_from_slice(&s.out_val[..slots]);
            }
            _ => unreachable!("copy-on-write across page formats"),
        }
    }
}

/// Packed storage for one quantized page: `block_size` rows of `width`
/// elements, each row split into `qpr` shared-exponent blocks.
///
/// Layout per row: `code_slots(bits, width)` `i8` code slots (one code per
/// slot, or two nibble-packed codes per byte below 5 bits), `qpr` effective
/// `i16` scales (the post-clamp shared exponents the codes were quantized
/// against; `0` for an all-zero block, whose codes are all `0`), and — for
/// MX-OPAL — `qpr × nout` fixed outlier slots of `(u16 in-block index,
/// bf16 exact value)` with a `u8` live count per quant block. Codes at
/// outlier positions are `0`, so a walk adds outlier contributions without
/// double-counting.
#[derive(Debug)]
struct QuantPage {
    codes: Vec<i8>,
    scales: Vec<i16>,
    out_idx: Vec<u16>,
    out_val: Vec<Bf16>,
    out_len: Vec<u8>,
}

impl QuantPage {
    /// `cw` is the `i8` code stride per row ([`code_slots`]).
    fn zeroed(rows: usize, cw: usize, qpr: usize, nout: usize) -> Self {
        QuantPage {
            codes: vec![0; rows * cw],
            scales: vec![0; rows * qpr],
            out_idx: vec![0; rows * qpr * nout],
            out_val: vec![Bf16::default(); rows * qpr * nout],
            out_len: vec![0; rows * qpr],
        }
    }

    /// The page's rows as borrowed [`QuantRow`] views, in position order.
    fn rows(
        &self,
        w: usize,
        qpr: usize,
        nout: usize,
        bits: u32,
        qblock: usize,
    ) -> impl Iterator<Item = QuantRow<'_>> + '_ {
        let cw = code_slots(bits, w);
        (0..self.out_len.len() / qpr).map(move |row| QuantRow {
            codes: &self.codes[row * cw..(row + 1) * cw],
            scales: &self.scales[row * qpr..(row + 1) * qpr],
            out_idx: &self.out_idx[row * qpr * nout..(row + 1) * qpr * nout],
            out_val: &self.out_val[row * qpr * nout..(row + 1) * qpr * nout],
            out_len: &self.out_len[row * qpr..(row + 1) * qpr],
            width: w,
            bits,
            qblock,
            nout,
        })
    }
}

/// A borrowed view of one quantized KV row, walkable without full
/// dequantization.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QuantRow<'a> {
    codes: &'a [i8],
    scales: &'a [i16],
    out_idx: &'a [u16],
    out_val: &'a [Bf16],
    out_len: &'a [u8],
    /// Logical elements per row (`codes` holds `code_slots(bits, width)`).
    width: usize,
    bits: u32,
    qblock: usize,
    nout: usize,
}

impl QuantRow<'_> {
    /// Whether this row stores two nibble-packed codes per byte.
    fn packed(&self) -> bool {
        self.bits <= 4
    }

    /// The sign-extended code of element `e` of a nibble-packed row (even
    /// elements in the low nibble, odd in the high nibble).
    #[inline]
    fn packed_code(&self, e: usize) -> i8 {
        let byte = self.codes[e / 2] as u8;
        if e % 2 == 0 {
            ((byte << 4) as i8) >> 4
        } else {
            (byte as i8) >> 4
        }
    }

    /// Integer-code dot of `q` against nibble-packed columns `lo..hi`, in
    /// ascending element order (the packed counterpart of
    /// [`ops::dot_codes`]; fixed order keeps it bit-deterministic).
    #[inline]
    fn dot_codes_packed(&self, q: &[f32], lo: usize, hi: usize) -> f32 {
        let mut acc = 0.0f32;
        for (qv, e) in q.iter().zip(lo..hi) {
            acc += qv * f32::from(self.packed_code(e));
        }
        acc
    }

    /// q·k over columns `start..start + q.len()` in the quantized domain:
    /// one integer-code dot ([`ops::dot_codes`], or its nibble-unpacking
    /// counterpart on packed rows) and one power-of-two scale multiply per
    /// overlapping shared-exponent block, plus exact bf16 outlier terms.
    /// Accumulation order is fixed (ascending blocks, then slot order), so
    /// the result is bit-deterministic.
    pub(crate) fn dot_range(&self, q: &[f32], start: usize) -> f32 {
        let end = start + q.len();
        debug_assert!(end <= self.width, "column range out of row");
        let mut acc = 0.0f64;
        for qb in start / self.qblock..=(end - 1) / self.qblock {
            let b0 = qb * self.qblock;
            let lo = start.max(b0);
            let hi = end.min(b0 + self.qblock);
            let step = step_size(i32::from(self.scales[qb]), self.bits);
            let d = if self.packed() {
                self.dot_codes_packed(&q[lo - start..hi - start], lo, hi)
            } else {
                ops::dot_codes(&q[lo - start..hi - start], &self.codes[lo..hi])
            };
            acc += f64::from(step) * f64::from(d);
            let so = qb * self.nout;
            for slot in so..so + usize::from(self.out_len[qb]) {
                let idx = b0 + usize::from(self.out_idx[slot]);
                if idx >= lo && idx < hi {
                    acc += f64::from(q[idx - start]) * f64::from(self.out_val[slot].to_f32());
                }
            }
        }
        acc as f32
    }

    /// `ctx[j] += w · dequant(row[start + j])` for `j` in
    /// `0..ctx.len()` — V aggregation by dequantize-on-walk: each code is
    /// rescaled by its block's power-of-two step in place, outlier slots
    /// contribute their exact bf16 value (their codes are `0`).
    pub(crate) fn axpy_range(&self, w: f32, start: usize, ctx: &mut [f32]) {
        let end = start + ctx.len();
        debug_assert!(end <= self.width, "column range out of row");
        for qb in start / self.qblock..=(end - 1) / self.qblock {
            let b0 = qb * self.qblock;
            let lo = start.max(b0);
            let hi = end.min(b0 + self.qblock);
            let step = step_size(i32::from(self.scales[qb]), self.bits);
            if self.packed() {
                for (c, e) in ctx[lo - start..hi - start].iter_mut().zip(lo..hi) {
                    *c += w * (f32::from(self.packed_code(e)) * step);
                }
            } else {
                for (c, &code) in ctx[lo - start..hi - start].iter_mut().zip(&self.codes[lo..hi]) {
                    *c += w * (f32::from(code) * step);
                }
            }
            let so = qb * self.nout;
            for slot in so..so + usize::from(self.out_len[qb]) {
                let idx = b0 + usize::from(self.out_idx[slot]);
                if idx >= lo && idx < hi {
                    ctx[idx - start] += w * self.out_val[slot].to_f32();
                }
            }
        }
    }
}

/// One fixed-size KV page: `block_size` rows × `width` elements for K and
/// V, stored per the pool's [`KvScheme`].
///
/// Blocks are handed out as `Arc<KvBlock>` so prefix sharing is a refcount
/// bump; the storage returns to its pool's free list when the last
/// reference drops.
#[derive(Debug)]
pub struct KvBlock {
    pool: Arc<BlockPool>,
    k: PageStore,
    v: PageStore,
}

impl KvBlock {
    /// Whether this block came from `pool`.
    pub fn from_pool(&self, pool: &Arc<BlockPool>) -> bool {
        Arc::ptr_eq(&self.pool, pool)
    }

    /// The page storage scheme of this block's pool.
    pub fn scheme(&self) -> KvScheme {
        self.pool.scheme
    }
}

impl Drop for KvBlock {
    fn drop(&mut self) {
        let k = std::mem::replace(&mut self.k, PageStore::Exact(Vec::new()));
        let v = std::mem::replace(&mut self.v, PageStore::Exact(Vec::new()));
        let mut inner = self.pool.guard();
        inner.in_use -= 1;
        inner.free.push((k, v));
    }
}

/// A sequence's paged KV cache: one block table per layer over a shared
/// [`BlockPool`].
///
/// All layers advance in lockstep (every appended position writes one row
/// per layer), so the tables always hold `ceil(pos / block_size)` blocks
/// each. Reads are bounded by the caller's sequence length — rows past it
/// are recycled-page garbage by design.
#[derive(Debug)]
pub(crate) struct PagedKv {
    pub(crate) pool: Arc<BlockPool>,
    /// `layers[l]` is layer `l`'s block table.
    pub(crate) layers: Vec<Vec<Arc<KvBlock>>>,
    /// Reusable `i8` staging row for nibble-packed appends: the row
    /// encoders emit one code per slot, which is then packed two-per-byte
    /// into the page. Grows to `width` once and is reused thereafter.
    stage: Vec<i8>,
}

impl PagedKv {
    pub(crate) fn new(pool: Arc<BlockPool>, n_layers: usize) -> Self {
        PagedKv { pool, layers: (0..n_layers).map(|_| Vec::new()).collect(), stage: Vec::new() }
    }

    /// Drops every cached row at position `>= len`, returning now-unused
    /// tail blocks to the pool: each layer's table keeps its first
    /// `ceil(len / block_size)` blocks (rows past `len` inside a kept tail
    /// block are recycled-page garbage by design, like rows past the
    /// sequence length always were). Dropping a block that a prefix-cache
    /// entry or a sharing peer still maps only releases this table's
    /// reference — the storage stays live for the other holders.
    pub(crate) fn truncate(&mut self, len: usize) {
        let keep = len.div_ceil(self.pool.block_size());
        for table in &mut self.layers {
            table.truncate(keep);
        }
    }

    /// Whether this cache stores quantized pages.
    pub(crate) fn quantized(&self) -> bool {
        self.pool.scheme.quantized()
    }

    /// Makes `layers[layer]` cover position `pos` with an exclusively
    /// owned tail block: allocates on first touch and copy-on-writes a
    /// shared tail (cloning the `rows_filled` rows written so far), then
    /// returns the block index. Shared paging/CoW body of [`rows_mut`]
    /// and [`append_rows_quant`].
    ///
    /// [`rows_mut`]: PagedKv::rows_mut
    /// [`append_rows_quant`]: PagedKv::append_rows_quant
    fn provision(&mut self, layer: usize, pos: usize, rows_filled: usize) -> usize {
        let bs = self.pool.block_size();
        let bi = pos / bs;
        let table = &mut self.layers[layer];
        debug_assert!(bi <= table.len(), "append must be contiguous");
        if bi == table.len() {
            debug_assert_eq!(rows_filled, 0, "a fresh block starts at its first row");
            // tidy: allow(alloc) -- block provisioning, amortized over block_size appends
            table.push(self.pool.alloc());
        } else if Arc::get_mut(&mut table[bi]).is_none() {
            // Copy-on-write: the tail block is mapped by someone else (a
            // prefix-sharing peer or the prefix cache). Clone the rows
            // filled so far into a fresh block and divert this sequence's
            // table to it; the shared original stays untouched.
            let w = self.pool.width();
            let (cw, qpr, nout) = match self.pool.scheme {
                KvScheme::Exact => (0, 0, 0),
                _ => {
                    let (bits, _, nout) = self.pool.quant_params();
                    (code_slots(bits, w), self.pool.qblocks_per_row(), nout)
                }
            };
            // tidy: allow(alloc) -- copy-on-write provisioning, amortized
            let mut fresh = self.pool.alloc();
            {
                // tidy: allow(panic) -- alloc() returns a fresh Arc with refcount 1
                let fb = Arc::get_mut(&mut fresh).expect("freshly allocated block is unshared");
                fb.k.copy_rows_from(&table[bi].k, rows_filled, w, cw, qpr, nout);
                fb.v.copy_rows_from(&table[bi].v, rows_filled, w, cw, qpr, nout);
            }
            table[bi] = fresh;
        }
        bi
    }

    /// Writable K/V row spans for positions `pos..pos + n` of `layer` in
    /// an exact pool, allocating the block on first touch and
    /// copy-on-writing it when it is shared. The span must not cross a
    /// block boundary (callers split chunks into per-block segments).
    pub(crate) fn rows_mut(
        &mut self,
        layer: usize,
        pos: usize,
        n: usize,
    ) -> (&mut [f32], &mut [f32]) {
        let bs = self.pool.block_size();
        let w = self.pool.width();
        let r = pos % bs;
        debug_assert!(n > 0 && r + n <= bs, "row span must stay inside one block");
        let bi = self.provision(layer, pos, r);
        // tidy: allow(panic) -- provision() just made the tail block exclusive
        let block = Arc::get_mut(&mut self.layers[layer][bi]).expect("tail block made exclusive");
        (&mut block.k.exact_mut()[r * w..(r + n) * w], &mut block.v.exact_mut()[r * w..(r + n) * w])
    }

    /// Encodes rows `pos..pos + n` of `layer` from the `f32` sources
    /// `k_src`/`v_src` (each `n × width`) into the quantized tail page,
    /// with the same first-touch allocation and copy-on-write rules as
    /// [`PagedKv::rows_mut`]. The span must not cross a block boundary.
    pub(crate) fn append_rows_quant(
        &mut self,
        layer: usize,
        pos: usize,
        n: usize,
        k_src: &[f32],
        v_src: &[f32],
        enc: &mut EncodeScratch,
    ) {
        let bs = self.pool.block_size();
        let w = self.pool.width();
        let r = pos % bs;
        debug_assert!(n > 0 && r + n <= bs, "row span must stay inside one block");
        debug_assert!(k_src.len() == n * w && v_src.len() == n * w, "source row shape mismatch");
        let (bits, _, nout) = self.pool.quant_params();
        let qpr = self.pool.qblocks_per_row();
        let cw = code_slots(bits, w);
        let packed = bits <= 4;
        let codec = self.pool.codec;
        let bi = self.provision(layer, pos, r);
        if packed && self.stage.len() < w {
            // tidy: allow(alloc) -- one-time staging-row growth per sequence
            self.stage.resize(w, 0);
        }
        let PagedKv { layers, stage, .. } = self;
        // tidy: allow(panic) -- provision() just made the tail block exclusive
        let block = Arc::get_mut(&mut layers[layer][bi]).expect("tail block made exclusive");
        for (page, src) in [(&mut block.k, k_src), (&mut block.v, v_src)] {
            let page = page.quant_mut();
            for i in 0..n {
                let (e0, e1) = ((r + i) * cw, (r + i + 1) * cw);
                let (q0, q1) = ((r + i) * qpr, (r + i + 1) * qpr);
                let (s0, s1) = (q0 * nout, q1 * nout);
                // Nibble-packed pages stage one code per slot, then pack
                // two-per-byte below.
                let codes: &mut [i8] =
                    if packed { &mut stage[..w] } else { &mut page.codes[e0..e1] };
                match codec {
                    Some(Codec::Opal(q)) => q.encode_row_scratch(
                        &src[i * w..(i + 1) * w],
                        codes,
                        &mut page.scales[q0..q1],
                        &mut page.out_idx[s0..s1],
                        &mut page.out_val[s0..s1],
                        &mut page.out_len[q0..q1],
                        enc,
                    ),
                    Some(Codec::Int(q)) => {
                        q.encode_row(&src[i * w..(i + 1) * w], codes, &mut page.scales[q0..q1])
                    }
                    None => unreachable!("append_rows_quant on an exact pool"),
                }
                if packed {
                    for (slot, pair) in page.codes[e0..e1].iter_mut().zip(stage[..w].chunks(2)) {
                        let lo = pair[0] as u8 & 0x0F;
                        let hi = (pair.get(1).copied().unwrap_or(0) as u8) << 4;
                        *slot = (lo | hi) as i8;
                    }
                }
            }
        }
    }

    /// The first `len` cached K rows of `layer`, in position order
    /// (exact pools).
    pub(crate) fn k_rows(&self, layer: usize, len: usize) -> impl Iterator<Item = &[f32]> + '_ {
        let w = self.pool.width();
        self.layers[layer].iter().flat_map(move |b| b.k.exact().chunks_exact(w)).take(len)
    }

    /// The first `len` cached V rows of `layer`, in position order
    /// (exact pools).
    pub(crate) fn v_rows(&self, layer: usize, len: usize) -> impl Iterator<Item = &[f32]> + '_ {
        let w = self.pool.width();
        self.layers[layer].iter().flat_map(move |b| b.v.exact().chunks_exact(w)).take(len)
    }

    /// The first `len` cached quantized K rows of `layer`, in position
    /// order (quantized pools).
    pub(crate) fn k_qrows(
        &self,
        layer: usize,
        len: usize,
    ) -> impl Iterator<Item = QuantRow<'_>> + '_ {
        let w = self.pool.width();
        let (bits, qblock, nout) = self.pool.quant_params();
        let qpr = self.pool.qblocks_per_row();
        self.layers[layer]
            .iter()
            .flat_map(move |b| b.k.quant().rows(w, qpr, nout, bits, qblock))
            .take(len)
    }

    /// The first `len` cached quantized V rows of `layer`, in position
    /// order (quantized pools).
    pub(crate) fn v_qrows(
        &self,
        layer: usize,
        len: usize,
    ) -> impl Iterator<Item = QuantRow<'_>> + '_ {
        let w = self.pool.width();
        let (bits, qblock, nout) = self.pool.quant_params();
        let qpr = self.pool.qblocks_per_row();
        self.layers[layer]
            .iter()
            .flat_map(move |b| b.v.quant().rows(w, qpr, nout, bits, qblock))
            .take(len)
    }

    /// Whether any layer's tail block is mapped by someone else (an append
    /// at a non-boundary position would copy-on-write).
    pub(crate) fn tail_shared(&self) -> bool {
        self.layers.iter().any(|t| t.last().is_some_and(|b| Arc::strong_count(b) > 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_quant::Quantizer;

    fn pool(bs: usize, max: usize) -> Arc<BlockPool> {
        Arc::new(BlockPool::new(bs, 4, max))
    }

    #[test]
    fn alloc_free_accounting() {
        let p = pool(2, 8);
        assert_eq!((p.in_use(), p.peak(), p.free_blocks()), (0, 0, 8));
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!((p.in_use(), p.peak(), p.free_blocks()), (2, 2, 6));
        drop(a);
        assert_eq!((p.in_use(), p.peak()), (1, 2));
        drop(b);
        assert_eq!((p.in_use(), p.peak()), (0, 2));
        // Recycled storage: a fresh alloc reuses a freed page.
        let _c = p.alloc();
        assert_eq!((p.in_use(), p.peak()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let p = pool(2, 1);
        let _a = p.alloc();
        let _b = p.alloc();
    }

    #[test]
    fn rows_mut_allocates_and_cows() {
        let p = pool(2, usize::MAX);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        // Fill positions 0 and 1 (one block).
        kv.rows_mut(0, 0, 1).0.copy_from_slice(&[1.0; 4]);
        kv.rows_mut(0, 1, 1).0.copy_from_slice(&[2.0; 4]);
        assert_eq!(p.in_use(), 1);
        // Share the block, then append position 2 (new block — no CoW).
        let shared = kv.layers[0][0].clone();
        kv.rows_mut(0, 2, 1).0.copy_from_slice(&[3.0; 4]);
        assert_eq!(p.in_use(), 2);
        assert!(Arc::ptr_eq(&shared, &kv.layers[0][0]), "full shared block must stay mapped");

        // Share the partial tail; the next append must copy-on-write it.
        let tail = kv.layers[0][1].clone();
        assert!(kv.tail_shared());
        kv.rows_mut(0, 3, 1).0.copy_from_slice(&[4.0; 4]);
        assert_eq!(p.in_use(), 3, "CoW allocates a fresh block");
        assert!(!Arc::ptr_eq(&tail, &kv.layers[0][1]), "table must divert to the copy");
        assert_eq!(&tail.k.exact()[..4], &[3.0; 4], "donor block must be untouched");
        assert_eq!(&kv.layers[0][1].k.exact()[..4], &[3.0; 4], "filled rows must be copied");
        assert_eq!(&kv.layers[0][1].k.exact()[4..], &[4.0; 4]);
        assert!(!kv.tail_shared());
    }

    /// Deterministic pseudo-random row (no external RNG in tests).
    fn test_row(w: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..w)
            .map(|_| {
                s = s.wrapping_mul(1103515245).wrapping_add(12345);
                ((s >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 4.0
            })
            .collect()
    }

    fn quant_pool(scheme: KvScheme, bs: usize, w: usize) -> Arc<BlockPool> {
        Arc::new(BlockPool::with_scheme(bs, w, usize::MAX, scheme))
    }

    #[test]
    fn quant_walk_matches_reference_decode() {
        let w = 20;
        for scheme in [
            KvScheme::MxOpal { bits: 4, qblock: 8, outliers: 2 },
            KvScheme::MxOpal { bits: 8, qblock: 8, outliers: 2 },
            KvScheme::MxInt { bits: 8, qblock: 8 },
            KvScheme::MxInt { bits: 4, qblock: 8 },
        ] {
            let p = quant_pool(scheme, 3, w);
            let mut kv = PagedKv::new(Arc::clone(&p), 1);
            let mut enc = EncodeScratch::new();
            let rows: Vec<Vec<f32>> = (0..5).map(|i| test_row(w, i)).collect();
            for (i, row) in rows.iter().enumerate() {
                kv.append_rows_quant(0, i, 1, row, row, &mut enc);
            }
            // Reference: the fused quantize-dequantize of each row.
            for (row, qrow) in rows.iter().zip(kv.k_qrows(0, 5)) {
                let mut reference = vec![0.0f32; w];
                match scheme {
                    KvScheme::MxOpal { bits, qblock, outliers } => {
                        let q = MxOpalQuantizer::new(bits, qblock, outliers).unwrap();
                        q.quantize_dequantize_scratch(row, &mut reference, &mut enc);
                    }
                    KvScheme::MxInt { bits, qblock } => {
                        let q = MxIntQuantizer::new(bits, qblock).unwrap();
                        q.quantize_dequantize_into(row, &mut reference);
                    }
                    KvScheme::Exact => unreachable!(),
                }
                // dot_range against a one-hot query reads back one element.
                for (j, &want) in reference.iter().enumerate() {
                    let mut onehot = vec![0.0f32; w];
                    onehot[j] = 1.0;
                    let got = qrow.dot_range(&onehot, 0);
                    assert_eq!(got.to_bits(), want.to_bits(), "{} col {j}", scheme.name());
                }
                // axpy_range with weight 1 into a zero context dequantizes
                // the whole row.
                let mut ctx = vec![0.0f32; w];
                qrow.axpy_range(1.0, 0, &mut ctx);
                for (j, (&got, &want)) in ctx.iter().zip(&reference).enumerate() {
                    assert!((got - want).abs() < 1e-6, "{} col {j}", scheme.name());
                }
            }
        }
    }

    #[test]
    fn quant_dot_range_respects_column_offsets() {
        let w = 16;
        let scheme = KvScheme::MxOpal { bits: 4, qblock: 8, outliers: 2 };
        let p = quant_pool(scheme, 2, w);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        let mut enc = EncodeScratch::new();
        let row = test_row(w, 7);
        kv.append_rows_quant(0, 0, 1, &row, &row, &mut enc);
        let q = MxOpalQuantizer::new(4, 8, 2).unwrap();
        let mut reference = vec![0.0f32; w];
        q.quantize_dequantize_scratch(&row, &mut reference, &mut enc);
        let qrow = kv.k_qrows(0, 1).next().unwrap();
        // A head slice straddling the quant-block boundary at column 8.
        let query = test_row(8, 9);
        let got = qrow.dot_range(&query, 4);
        let want: f64 =
            query.iter().zip(&reference[4..12]).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        assert!((f64::from(got) - want).abs() < 1e-4);
    }

    #[test]
    fn quant_cow_leaves_donor_unchanged() {
        let scheme = KvScheme::MxOpal { bits: 4, qblock: 8, outliers: 2 };
        let w = 8;
        let p = quant_pool(scheme, 2, w);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        let mut enc = EncodeScratch::new();
        let r0 = test_row(w, 1);
        kv.append_rows_quant(0, 0, 1, &r0, &r0, &mut enc);
        // Share the partial block, then append: must copy-on-write.
        let donor = kv.layers[0][0].clone();
        let donor_codes = donor.k.quant().codes.clone();
        let r1 = test_row(w, 2);
        kv.append_rows_quant(0, 1, 1, &r1, &r1, &mut enc);
        assert!(!Arc::ptr_eq(&donor, &kv.layers[0][0]), "table must divert to the copy");
        assert_eq!(donor.k.quant().codes, donor_codes, "donor codes must be untouched");
        // Row 0 of the copy matches the donor's row 0 (4-bit pages pack
        // two codes per byte, so the row stride is w / 2).
        let cw = code_slots(4, w);
        assert_eq!(&kv.layers[0][0].k.quant().codes[..cw], &donor_codes[..cw]);
        assert_eq!(p.in_use(), 2);
    }

    #[test]
    fn packed_pages_halve_code_storage() {
        let w = 128;
        let four = KvScheme::mxopal4();
        let eight = KvScheme::mxopal();
        assert!(four.page_bytes(16, w) < eight.page_bytes(16, w));
        // 64 code bytes + 4 qblocks × (3 metadata + 2 outliers × 4) bytes.
        assert_eq!(four.page_bytes(1, w), 64 + 4 * 3 + 4 * 2 * 4);
        assert_eq!(four.name(), "mxopal4");
        assert_eq!(KvScheme::MxInt { bits: 4, qblock: 8 }.name(), "mxint4");
        // The preset validates: a pool constructs without panicking.
        let _ = quant_pool(four, 2, w);
        assert!(four.bits_per_element(w) < 7.0, "{}", four.bits_per_element(w));
    }

    #[test]
    fn truncate_returns_tail_blocks_and_keeps_prefix_readable() {
        let p = pool(2, usize::MAX);
        let mut kv = PagedKv::new(Arc::clone(&p), 2);
        for layer in 0..2 {
            for i in 0..5u32 {
                kv.rows_mut(layer, i as usize, 1).0.copy_from_slice(&[i as f32; 4]);
            }
        }
        assert_eq!(p.in_use(), 6, "3 blocks per layer for 5 rows of block size 2");
        kv.truncate(3);
        assert_eq!(p.in_use(), 4, "2 blocks per layer survive a truncate to 3 rows");
        let rows: Vec<Vec<f32>> = kv.k_rows(0, 3).map(<[f32]>::to_vec).collect();
        assert_eq!(rows, vec![vec![0.0; 4], vec![1.0; 4], vec![2.0; 4]]);
        // The cache accepts appends again at the truncated position.
        kv.rows_mut(0, 3, 1).0.copy_from_slice(&[9.0; 4]);
        assert_eq!(kv.k_rows(0, 4).last().unwrap(), &[9.0; 4]);
        // Truncating to a block boundary keeps exactly the full blocks.
        kv.truncate(2);
        assert_eq!(kv.layers[0].len(), 1);
        // Truncating to zero rows empties every table.
        kv.truncate(0);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn truncate_releases_only_this_tables_reference() {
        let p = pool(2, usize::MAX);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        for i in 0..4 {
            kv.rows_mut(0, i, 1).0.copy_from_slice(&[i as f32; 4]);
        }
        let shared_tail = kv.layers[0][1].clone();
        kv.truncate(2);
        assert_eq!(p.in_use(), 2, "the shared tail block stays allocated for its other holder");
        assert_eq!(&shared_tail.k.exact()[..4], &[2.0; 4], "donor storage is untouched");
        drop(shared_tail);
        assert_eq!(p.in_use(), 1);
    }

    #[test]
    fn packed_append_spanning_blocks_roundtrips() {
        // Multi-row appends + packed storage + odd width (straggler nibble).
        let w = 9;
        let scheme = KvScheme::MxInt { bits: 4, qblock: 4 };
        let p = quant_pool(scheme, 4, w);
        let mut kv = PagedKv::new(Arc::clone(&p), 1);
        let mut enc = EncodeScratch::new();
        let rows: Vec<Vec<f32>> = (0..6).map(|i| test_row(w, 100 + i)).collect();
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        kv.append_rows_quant(0, 0, 4, &flat[..4 * w], &flat[..4 * w], &mut enc);
        kv.append_rows_quant(0, 4, 2, &flat[4 * w..], &flat[4 * w..], &mut enc);
        let q = MxIntQuantizer::new(4, 4).unwrap();
        for (row, qrow) in rows.iter().zip(kv.k_qrows(0, 6)) {
            let mut reference = vec![0.0f32; w];
            q.quantize_dequantize_into(row, &mut reference);
            let mut ctx = vec![0.0f32; w];
            qrow.axpy_range(1.0, 0, &mut ctx);
            for (j, (&got, &want)) in ctx.iter().zip(&reference).enumerate() {
                assert!((got - want).abs() < 1e-6, "col {j}: {got} vs {want}");
            }
        }
    }
}
