//! Accuracy evaluation harness: the perplexity and task proxies behind
//! Table 1 and Table 2.
//!
//! We have no WikiText-2/C4 text nor real checkpoints, so perplexity is
//! measured *teacher-student style* (DESIGN.md §2): the full-precision model
//! generates an evaluation token stream, and every quantized variant is
//! scored by its cross-entropy on that same stream. The BF16 row plays the
//! paper's baseline role; quantization noise raises cross-entropy exactly as
//! it raises WikiText-2 perplexity in the paper.

use opal_tensor::ops;
use opal_tensor::rng::TensorRng;

use crate::infer::Model;

/// A deterministic evaluation token stream sampled from `teacher`.
///
/// Sampling uses temperature `1.0` over the teacher's softmax, seeded, so
/// the stream has the teacher's own entropy profile (like natural text has
/// for a trained LLM).
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn sample_stream(teacher: &Model, len: usize, seed: u64) -> Vec<u32> {
    assert!(len > 0, "stream length must be positive");
    let vocab = teacher.config().vocab;
    let mut rng = TensorRng::seed(seed);
    let mut tokens = Vec::with_capacity(len);
    let mut state = teacher.begin_decode();
    let mut t = rng.index(vocab) as u32;
    tokens.push(t);
    for _ in 1..len {
        let logits = teacher.decode_step(&mut state, t);
        let probs = {
            let mut p = vec![0.0f32; logits.len()];
            ops::softmax_into(&logits, &mut p);
            p
        };
        t = rng.weighted_index(&probs) as u32;
        tokens.push(t);
    }
    tokens
}

/// Perplexity of `model` on a token stream: `exp(mean CE)` over next-token
/// predictions.
///
/// # Panics
///
/// Panics if the stream has fewer than 2 tokens.
pub fn perplexity(model: &Model, tokens: &[u32]) -> f64 {
    assert!(tokens.len() >= 2, "need at least two tokens");
    let logits = model.forward(tokens);
    let mut ce_sum = 0.0f64;
    for i in 0..tokens.len() - 1 {
        ce_sum += f64::from(ops::cross_entropy(logits.row(i), tokens[i + 1] as usize));
    }
    (ce_sum / (tokens.len() - 1) as f64).exp()
}

/// Result of the multiple-choice task proxy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McResult {
    /// Fraction of questions answered like the teacher (in `[0, 1]`).
    pub accuracy: f64,
    /// Number of questions evaluated.
    pub questions: usize,
}

/// Zero-shot multiple-choice accuracy proxy (the ARC/PIQA substitute).
///
/// Each "question" is a random prompt plus two candidate continuations: the
/// teacher's greedy continuation (the "correct" answer) and a *near-miss*
/// decoy built from the teacher's second-choice tokens. The student picks
/// the continuation with the higher average log-likelihood — the standard
/// zero-shot MC scoring — and accuracy is agreement with the correct
/// choice. Because the two candidates are close in teacher likelihood
/// (like plausible-but-wrong ARC/PIQA answer options), quantization noise
/// flips a fraction of the decisions, mirroring the Table 2 degradations.
///
/// # Panics
///
/// Panics if `questions == 0`.
pub fn multiple_choice(teacher: &Model, student: &Model, questions: usize, seed: u64) -> McResult {
    assert!(questions > 0, "need at least one question");
    let vocab = teacher.config().vocab;
    let prompt_len = 12;
    // Only prompts where the teacher's top-2 log-likelihood gap is below
    // this threshold count as questions — mirroring benchmark answer
    // options that are all plausible. Wide-margin prompts are trivially
    // robust to quantization noise and carry no signal.
    let max_margin_nats = 1.0f32;
    let mut rng = TensorRng::seed(seed ^ 0xA5A5_5A5A);
    let mut correct = 0usize;
    let mut asked = 0usize;
    let mut attempts = 0usize;

    while asked < questions && attempts < questions * 50 {
        attempts += 1;
        let prompt: Vec<u32> = (0..prompt_len).map(|_| rng.index(vocab) as u32).collect();

        // Teacher's verdict on the next token.
        let mut state = teacher.begin_decode();
        let mut logits = Vec::new();
        for &t in &prompt {
            logits = teacher.decode_step(&mut state, t);
        }
        let good = ops::argmax(&logits).unwrap_or(0);
        let bad = logits
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != good)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if logits[good] - logits[bad] > max_margin_nats {
            continue; // too easy — not a real "question"
        }
        asked += 1;

        // Student's verdict: which option does it assign more likelihood?
        let mut s_state = student.begin_decode();
        let mut s_logits = Vec::new();
        for &t in &prompt {
            s_logits = student.decode_step(&mut s_state, t);
        }
        if s_logits[good] >= s_logits[bad] {
            correct += 1;
        }
    }

    assert!(asked > 0, "no close-margin questions found — vocabulary too peaked");
    McResult { accuracy: correct as f64 / asked as f64, questions: asked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::scheme::QuantScheme;

    fn teacher() -> Model {
        Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 7).unwrap()
    }

    #[test]
    fn stream_is_deterministic_and_in_vocab() {
        let t = teacher();
        let a = sample_stream(&t, 20, 3);
        let b = sample_stream(&t, 20, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (x as usize) < t.config().vocab));
        let c = sample_stream(&t, 20, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn baseline_perplexity_is_sane() {
        let t = teacher();
        let stream = sample_stream(&t, 60, 11);
        let ppl = perplexity(&t, &stream);
        // Must be between 1 (deterministic) and vocab (uniform).
        assert!(ppl > 1.0 && ppl < t.config().vocab as f64, "ppl {ppl}");
    }

    #[test]
    fn heavy_quantization_raises_perplexity() {
        let t = teacher();
        let stream = sample_stream(&t, 60, 13);
        let base = perplexity(&t, &stream);
        let crushed = Model::new(ModelConfig::tiny(), QuantScheme::minmax_w3a35(), 7).unwrap();
        let ppl = perplexity(&crushed, &stream);
        assert!(ppl > base, "3-bit MinMax ({ppl}) must exceed baseline ({base})");
    }

    #[test]
    fn teacher_answers_its_own_questions() {
        let t = teacher();
        let r = multiple_choice(&t, &t, 10, 5);
        assert!(r.accuracy >= 0.9, "teacher self-accuracy {}", r.accuracy);
        assert_eq!(r.questions, 10);
    }
}
