//! Model architecture configurations.

/// Architecture family: decides the norm, FFN style and attention details.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Llama-style: RMSNorm, gated SiLU FFN, rotary position embedding.
    Llama,
    /// OPT-style: LayerNorm with bias-free affine gain, ReLU FFN, RoPE in
    /// place of learned positions (positional mechanism does not affect the
    /// quantization study).
    Opt,
}

/// A decoder-only transformer configuration.
///
/// The real-model constructors ([`ModelConfig::llama2_7b`] etc.) carry the
/// published dimensions and are used by the hardware workload model
/// (`opal-hw`); they are far too large to execute here. For accuracy proxies
/// use [`ModelConfig::proxy`], which shrinks the width/depth while keeping
/// the architecture, head size ratios, and outlier structure.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name ("Llama2-7B", …).
    pub name: String,
    /// Number of decoder blocks.
    pub n_layers: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Attention head count (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// FFN inner width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Architecture family.
    pub arch: Arch,
    /// Fraction of hidden channels that carry persistent activation
    /// outliers (LLM.int8() reports ~0.1–1 %; we default to ~1 %).
    pub outlier_channel_fraction: f32,
    /// Magnitude multiplier of outlier channels relative to baseline
    /// activations (tens of × in real LLMs).
    pub outlier_gain: f32,
}

impl ModelConfig {
    fn new(
        name: &str,
        n_layers: usize,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        vocab: usize,
        arch: Arch,
    ) -> Self {
        ModelConfig {
            name: name.to_owned(),
            n_layers,
            d_model,
            n_heads,
            d_ff,
            vocab,
            arch,
            outlier_channel_fraction: 0.01,
            outlier_gain: 40.0,
        }
    }

    /// Llama2-7B published dimensions.
    pub fn llama2_7b() -> Self {
        Self::new("Llama2-7B", 32, 4096, 32, 11008, 32000, Arch::Llama)
    }

    /// Llama2-13B published dimensions.
    pub fn llama2_13b() -> Self {
        Self::new("Llama2-13B", 40, 5120, 40, 13824, 32000, Arch::Llama)
    }

    /// Llama2-70B published dimensions (MHA approximation of its GQA: the
    /// arithmetic workload of Q/K/V projections is modelled separately in
    /// `opal-hw`, which accounts for the 8 KV heads).
    pub fn llama2_70b() -> Self {
        Self::new("Llama2-70B", 80, 8192, 64, 28672, 32000, Arch::Llama)
    }

    /// OPT-6.7B published dimensions.
    pub fn opt_6_7b() -> Self {
        Self::new("OPT-6.7B", 32, 4096, 32, 16384, 50272, Arch::Opt)
    }

    /// OPT-13B published dimensions.
    pub fn opt_13b() -> Self {
        Self::new("OPT-13B", 40, 5120, 40, 20480, 50272, Arch::Opt)
    }

    /// A tiny configuration for unit tests (fast to run everywhere).
    pub fn tiny() -> Self {
        let mut c = Self::new("Tiny", 2, 32, 2, 64, 64, Arch::Llama);
        c.outlier_channel_fraction = 0.06; // 2 channels of 32
        c
    }

    /// A runnable *proxy* of this configuration: same architecture family
    /// and outlier statistics, scaled to `d_model = width` with
    /// proportionally scaled FFN, `layers` decoder blocks and a reduced
    /// vocabulary. The proxy keeps `d_ff / d_model` and the per-head width
    /// ratio of the parent so the quantizers see the same tensor shapes
    /// relative to the block size.
    pub fn proxy(&self, width: usize, layers: usize, vocab: usize) -> Self {
        let ratio = self.d_ff as f64 / self.d_model as f64;
        let head_dim = (self.d_model / self.n_heads).min(width);
        let n_heads = (width / head_dim).max(1);
        ModelConfig {
            name: format!("{}-proxy{}", self.name, width),
            n_layers: layers,
            d_model: width,
            n_heads,
            d_ff: ((width as f64 * ratio) as usize).max(4),
            vocab,
            arch: self.arch,
            outlier_channel_fraction: self.outlier_channel_fraction,
            outlier_gain: self.outlier_gain,
        }
    }

    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model {} not divisible by n_heads {}",
            self.d_model,
            self.n_heads
        );
        self.d_model / self.n_heads
    }

    /// Number of persistent outlier channels.
    pub fn outlier_channel_count(&self) -> usize {
        ((self.d_model as f64 * f64::from(self.outlier_channel_fraction)).round() as usize)
            .clamp(1, self.d_model / 2)
    }

    /// Approximate parameter count of the decoder stack (weights only,
    /// excluding embeddings), used by the hardware buffer model.
    pub fn decoder_params(&self) -> u64 {
        let d = self.d_model as u64;
        let ff = self.d_ff as u64;
        let attn = 4 * d * d;
        let ffn = match self.arch {
            Arch::Llama => 3 * d * ff, // gate + up + down
            Arch::Opt => 2 * d * ff,
        };
        self.n_layers as u64 * (attn + ffn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_dims() {
        let c = ModelConfig::llama2_7b();
        assert_eq!(c.d_model, 4096);
        assert_eq!(c.head_dim(), 128);
        // ~6.5B decoder params (embeddings excluded).
        let p = c.decoder_params();
        assert!((6.0e9..7.0e9).contains(&(p as f64)), "params {p}");
    }

    #[test]
    fn llama70b_param_count_order() {
        // MHA approximation inflates params vs the real GQA 70B model; the
        // order of magnitude must still be right.
        let p = ModelConfig::llama2_70b().decoder_params() as f64;
        assert!((6.0e10..9.0e10).contains(&p), "params {p}");
    }

    #[test]
    fn proxy_preserves_ratios() {
        let base = ModelConfig::llama2_7b();
        let p = base.proxy(128, 4, 256);
        assert_eq!(p.arch, Arch::Llama);
        assert_eq!(p.n_layers, 4);
        let r_base = base.d_ff as f64 / base.d_model as f64;
        let r_proxy = p.d_ff as f64 / p.d_model as f64;
        assert!((r_base - r_proxy).abs() < 0.05);
        assert_eq!(p.d_model % p.n_heads, 0);
    }

    #[test]
    fn outlier_channel_count_bounds() {
        let c = ModelConfig::tiny();
        let n = c.outlier_channel_count();
        assert!(n >= 1 && n <= c.d_model / 2);
    }
}
