//! Token sampling strategies for the generation loop.
//!
//! The paper targets single-batch *generation*; these are the decoding
//! policies a deployment would run on top of the quantized model: greedy,
//! temperature, top-k and nucleus (top-p) sampling, all deterministic under
//! a seeded RNG.

use opal_tensor::ops;
use opal_tensor::rng::TensorRng;

use crate::infer::{DecodeState, Model};

/// A decoding policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sampler {
    /// Always pick the most likely token.
    Greedy,
    /// Soften/sharpen the distribution by `temperature` then sample.
    Temperature(f32),
    /// Keep only the `k` most likely tokens, renormalize, sample.
    TopK(usize),
    /// Keep the smallest set of tokens with cumulative probability ≥ `p`.
    TopP(f32),
}

impl Sampler {
    /// Checks the sampler's parameters, returning a description of the
    /// first problem found.
    ///
    /// [`Sampler::pick`] `panic!`s on invalid parameters — acceptable in a
    /// single-sequence loop, fatal inside a batch engine where the panic
    /// would surface on a worker thread mid-step and poison every other
    /// sequence in flight. Schedulers call `validate` at admission time and
    /// reject the request instead; the conditions here are exactly the ones
    /// `pick` asserts (plus finiteness of `temperature`, which `pick` only
    /// rejects for NaN).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            Sampler::Greedy => Ok(()),
            Sampler::Temperature(t) => {
                if t > 0.0 && t.is_finite() {
                    Ok(())
                } else {
                    Err("temperature must be positive and finite")
                }
            }
            Sampler::TopK(k) => {
                if k > 0 {
                    Ok(())
                } else {
                    Err("top-k requires k >= 1")
                }
            }
            Sampler::TopP(p) => {
                if p > 0.0 && p <= 1.0 {
                    Ok(())
                } else {
                    Err("top-p requires p in (0, 1]")
                }
            }
        }
    }

    /// Chooses a token from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty, or on invalid parameters
    /// (`temperature <= 0`, `k == 0`, `p` outside `(0, 1]`).
    pub fn pick(&self, logits: &[f32], rng: &mut TensorRng) -> u32 {
        assert!(!logits.is_empty(), "empty logits");
        match *self {
            // tidy: allow(panic) -- unreachable: the assert above rejects empty logits
            Sampler::Greedy => ops::argmax(logits).expect("non-empty") as u32,
            Sampler::Temperature(t) => {
                assert!(t > 0.0, "temperature must be positive");
                let scaled: Vec<f32> = logits.iter().map(|&l| l / t).collect();
                let mut p = vec![0.0f32; scaled.len()];
                ops::softmax_into(&scaled, &mut p);
                rng.weighted_index(&p) as u32
            }
            Sampler::TopK(k) => {
                assert!(k > 0, "k must be positive");
                let mut idx: Vec<usize> = (0..logits.len()).collect();
                idx.sort_by(|&a, &b| logits[b].total_cmp(&logits[a]));
                let kept = &idx[..k.min(idx.len())];
                let sub: Vec<f32> = kept.iter().map(|&i| logits[i]).collect();
                let mut p = vec![0.0f32; sub.len()];
                ops::softmax_into(&sub, &mut p);
                kept[rng.weighted_index(&p)] as u32
            }
            Sampler::TopP(p_keep) => {
                assert!((0.0..=1.0).contains(&p_keep) && p_keep > 0.0, "p must be in (0, 1]");
                let mut probs = vec![0.0f32; logits.len()];
                ops::softmax_into(logits, &mut probs);
                let mut idx: Vec<usize> = (0..probs.len()).collect();
                idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
                let mut cum = 0.0f32;
                let mut cutoff = idx.len();
                for (rank, &i) in idx.iter().enumerate() {
                    cum += probs[i];
                    if cum >= p_keep {
                        cutoff = rank + 1;
                        break;
                    }
                }
                let kept = &idx[..cutoff];
                let sub: Vec<f32> = kept.iter().map(|&i| probs[i]).collect();
                kept[rng.weighted_index(&sub)] as u32
            }
        }
    }
}

/// Generates `n` tokens from `model` after consuming `prompt`, using the
/// given sampler and seed.
///
/// # Panics
///
/// Panics if the prompt is empty or contains out-of-range tokens.
pub fn generate(model: &Model, prompt: &[u32], n: usize, sampler: Sampler, seed: u64) -> Vec<u32> {
    assert!(!prompt.is_empty(), "empty prompt");
    let mut rng = TensorRng::seed(seed);
    let mut state: DecodeState = model.begin_decode();
    let mut logits = vec![0.0f32; model.config().vocab];
    model.prefill_into(&mut state, prompt, &mut logits);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t = sampler.pick(&logits, &mut rng);
        out.push(t);
        model.decode_step_into(&mut state, t, &mut logits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::scheme::QuantScheme;

    fn model() -> Model {
        Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 3).expect("valid")
    }

    #[test]
    fn greedy_matches_argmax() {
        let logits = [0.1f32, 2.0, -1.0];
        let mut rng = TensorRng::seed(1);
        assert_eq!(Sampler::Greedy.pick(&logits, &mut rng), 1);
    }

    #[test]
    fn top_k_only_emits_top_tokens() {
        let logits = [5.0f32, 4.0, -100.0, -100.0];
        let mut rng = TensorRng::seed(2);
        for _ in 0..50 {
            let t = Sampler::TopK(2).pick(&logits, &mut rng);
            assert!(t == 0 || t == 1);
        }
    }

    #[test]
    fn top_p_collapses_to_greedy_when_peaked() {
        // One token holds ~all mass: nucleus of 0.9 keeps just it.
        let logits = [20.0f32, 0.0, 0.0, 0.0];
        let mut rng = TensorRng::seed(3);
        for _ in 0..20 {
            assert_eq!(Sampler::TopP(0.9).pick(&logits, &mut rng), 0);
        }
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let logits = [1.0f32, 1.4, 0.8];
        let mut rng = TensorRng::seed(4);
        for _ in 0..30 {
            assert_eq!(Sampler::Temperature(0.01).pick(&logits, &mut rng), 1);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let m = model();
        let a = generate(&m, &[1, 2], 10, Sampler::Temperature(1.0), 7);
        let b = generate(&m, &[1, 2], 10, Sampler::Temperature(1.0), 7);
        let c = generate(&m, &[1, 2], 10, Sampler::Temperature(1.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&t| (t as usize) < m.config().vocab));
    }

    #[test]
    fn samplers_diversify_relative_to_greedy() {
        let m = model();
        let greedy = generate(&m, &[5], 12, Sampler::Greedy, 1);
        let hot = generate(&m, &[5], 12, Sampler::Temperature(2.0), 1);
        assert_ne!(greedy, hot, "hot sampling must diverge from greedy");
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_zero_temperature() {
        let mut rng = TensorRng::seed(0);
        Sampler::Temperature(0.0).pick(&[1.0, 2.0], &mut rng);
    }

    #[test]
    fn validate_matches_pick_plus_temperature_finiteness() {
        for ok in [
            Sampler::Greedy,
            Sampler::Temperature(0.01),
            Sampler::Temperature(5.0),
            Sampler::TopK(1),
            Sampler::TopK(1000),
            Sampler::TopP(f32::MIN_POSITIVE),
            Sampler::TopP(1.0),
        ] {
            assert_eq!(ok.validate(), Ok(()), "{ok:?}");
        }
        for bad in [
            Sampler::Temperature(0.0),
            Sampler::Temperature(-1.0),
            Sampler::Temperature(f32::NAN),
            Sampler::Temperature(f32::INFINITY),
            Sampler::TopK(0),
            Sampler::TopP(0.0),
            Sampler::TopP(-0.5),
            Sampler::TopP(1.5),
            Sampler::TopP(f32::NAN),
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
