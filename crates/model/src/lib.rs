//! Decoder-only transformer simulator for the OPAL reproduction.
//!
//! This crate supplies the "LLM" of the evaluation: a from-scratch
//! decoder-only transformer (Llama-style RMSNorm/gated-SiLU or OPT-style
//! LayerNorm/ReLU) with deterministic synthetic weights engineered to show
//! the channel-persistent activation outliers that motivate the paper, plus:
//!
//! * quantization hook points at every MxV input of Fig. 5 — activations are
//!   quantized low-bit after LayerNorm and high-bit elsewhere,
//! * OWQ weight calibration/quantization at model build,
//! * exchangeable exact / log2-based softmax,
//! * a KV-cache generation loop (the paper targets single-batch generation),
//! * the perplexity and multiple-choice evaluation proxies used to
//!   regenerate Table 1 and Table 2 (see `DESIGN.md` for the substitution
//!   argument).
//!
//! # Example
//!
//! ```
//! use opal_model::{eval, Model, ModelConfig, QuantScheme};
//!
//! let teacher = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 1)?;
//! let stream = eval::sample_stream(&teacher, 24, 9);
//! let ppl = eval::perplexity(&teacher, &stream);
//! assert!(ppl > 1.0);
//! # Ok::<(), opal_quant::QuantError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod eval;
mod infer;
pub mod kv;
pub mod reference;
pub mod sampling;
mod scheme;
pub mod weights;

pub use config::{Arch, ModelConfig};
pub use infer::{ActivationCapture, DecodeState, Model, Recorder, SecondMomentRecorder, Site};
pub use kv::{AdoptError, BlockPool, KvBlock, KvScheme};
pub use reference::ReferenceDecodeState;
pub use scheme::{ActFormat, ActScheme, QuantScheme, SoftmaxKind, WeightScheme};
