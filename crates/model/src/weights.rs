//! Synthetic model weights with channel-persistent activation outliers.
//!
//! We have no access to Llama2/OPT checkpoints (see DESIGN.md §2); instead
//! the generator below produces a deterministic random transformer whose
//! activations reproduce the statistical property every LLM quantization
//! paper is built around: a small, fixed set of hidden channels carries
//! activation magnitudes tens of times larger than the rest, consistently
//! across tokens and layers (LLM.int8(), OWQ, and §1 of the OPAL paper).
//!
//! The mechanism: the per-channel norm gains of the *same* channel subset
//! are amplified in every decoder block, so every post-LayerNorm activation
//! (the tensors OPAL quantizes to 3/4 bits) exhibits those outliers.

use opal_tensor::rng::TensorRng;
use opal_tensor::Matrix;

use crate::config::{Arch, ModelConfig};

/// Weights of one decoder block.
#[derive(Clone, Debug)]
pub struct LayerWeights {
    /// Query projection, `d_model × d_model`.
    pub wq: Matrix,
    /// Key projection, `d_model × d_model`.
    pub wk: Matrix,
    /// Value projection, `d_model × d_model`.
    pub wv: Matrix,
    /// Attention output projection, `d_model × d_model`.
    pub wo: Matrix,
    /// Gate projection (Llama gated FFN), `d_model × d_ff`.
    pub w_gate: Option<Matrix>,
    /// Up projection, `d_model × d_ff`.
    pub w_up: Matrix,
    /// Down projection, `d_ff × d_model`.
    pub w_down: Matrix,
    /// Pre-attention norm gain.
    pub attn_norm_gain: Vec<f32>,
    /// Pre-attention norm bias (zero for RMSNorm).
    pub attn_norm_bias: Vec<f32>,
    /// Pre-FFN norm gain.
    pub ffn_norm_gain: Vec<f32>,
    /// Pre-FFN norm bias (zero for RMSNorm).
    pub ffn_norm_bias: Vec<f32>,
}

/// All weights of a model.
#[derive(Clone, Debug)]
pub struct ModelWeights {
    /// Token embedding, `vocab × d_model`.
    pub embedding: Matrix,
    /// Output head (unembedding), `vocab × d_model`.
    ///
    /// Deliberately *untied* from the input embedding: with tied random
    /// embeddings an untrained model degenerates to "predict the current
    /// token" with probability ≈1 (the self dot-product is `d_model`, far
    /// above every cross term), which would hide all quantization effects.
    pub unembedding: Matrix,
    /// Final norm gain.
    pub final_norm_gain: Vec<f32>,
    /// Final norm bias.
    pub final_norm_bias: Vec<f32>,
    /// Decoder blocks.
    pub layers: Vec<LayerWeights>,
    /// The persistent outlier channel indices.
    pub outlier_channels: Vec<usize>,
}

/// Generates deterministic synthetic weights for `config` from `seed`.
///
/// Initialization follows standard transformer practice: projections are
/// `N(0, 1/d_in)` so activation scale is preserved, and the residual-writing
/// matrices (`wo`, `w_down`) are further scaled by `1/√(2·n_layers)` to keep
/// the residual stream bounded with depth.
pub fn generate_weights(config: &ModelConfig, seed: u64) -> ModelWeights {
    let mut rng = TensorRng::seed(seed);
    let d = config.d_model;
    let ff = config.d_ff;
    let n_out = config.outlier_channel_count();
    let outlier_channels = rng.distinct_indices(d, n_out);

    let residual_scale = 1.0 / ((2 * config.n_layers) as f32).sqrt();
    let proj_std = 1.0 / (d as f32).sqrt();
    let ff_std = 1.0 / (ff as f32).sqrt();

    let mut layers = Vec::with_capacity(config.n_layers);
    for l in 0..config.n_layers {
        let mut lr = rng.child(1000 + l as u64);
        let gains = |rng: &mut TensorRng, cfg: &ModelConfig| -> Vec<f32> {
            (0..d)
                .map(|i| {
                    let base = 1.0 + rng.normal(0.0, 0.05);
                    if outlier_channels.binary_search(&i).is_ok() {
                        base * cfg.outlier_gain * (1.0 + rng.uniform(-0.2, 0.2))
                    } else {
                        base
                    }
                })
                .collect()
        };
        let attn_norm_gain = gains(&mut lr, config);
        let ffn_norm_gain = gains(&mut lr, config);
        // Attention inputs carry outliers with gain g; keep q/k/v outputs at
        // unit scale by dividing the projection variance by the input RMS.
        let in_rms = rms_of_gains(&attn_norm_gain);
        let qkv_std = proj_std / in_rms;
        let ffn_in_rms = rms_of_gains(&ffn_norm_gain);
        let layer = LayerWeights {
            wq: lr.normal_matrix(d, d, 0.0, qkv_std),
            wk: lr.normal_matrix(d, d, 0.0, qkv_std),
            wv: lr.normal_matrix(d, d, 0.0, qkv_std),
            wo: lr.normal_matrix(d, d, 0.0, proj_std * residual_scale),
            w_gate: match config.arch {
                Arch::Llama => Some(lr.normal_matrix(d, ff, 0.0, proj_std / ffn_in_rms)),
                Arch::Opt => None,
            },
            w_up: lr.normal_matrix(d, ff, 0.0, proj_std / ffn_in_rms),
            w_down: lr.normal_matrix(ff, d, 0.0, ff_std * residual_scale),
            attn_norm_gain,
            attn_norm_bias: vec![0.0; d],
            ffn_norm_gain,
            ffn_norm_bias: vec![0.0; d],
        };
        layers.push(layer);
    }

    let mut er = rng.child(7);
    let mut ur = rng.child(8);
    ModelWeights {
        embedding: er.normal_matrix(config.vocab, d, 0.0, 1.0),
        unembedding: ur.normal_matrix(config.vocab, d, 0.0, 1.0),
        final_norm_gain: vec![1.0; d],
        final_norm_bias: vec![0.0; d],
        layers,
        outlier_channels,
    }
}

fn rms_of_gains(g: &[f32]) -> f32 {
    (g.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>() / g.len() as f64).sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn deterministic() {
        let c = ModelConfig::tiny();
        let a = generate_weights(&c, 5);
        let b = generate_weights(&c, 5);
        assert_eq!(a.layers[0].wq.as_slice(), b.layers[0].wq.as_slice());
        assert_eq!(a.outlier_channels, b.outlier_channels);
        let c2 = generate_weights(&c, 6);
        assert_ne!(a.layers[0].wq.as_slice(), c2.layers[0].wq.as_slice());
    }

    #[test]
    fn outlier_channels_have_amplified_gains() {
        let c = ModelConfig::tiny();
        let w = generate_weights(&c, 1);
        let l = &w.layers[0];
        for &ch in &w.outlier_channels {
            assert!(
                l.attn_norm_gain[ch].abs() > 10.0,
                "channel {ch} gain {}",
                l.attn_norm_gain[ch]
            );
        }
        let regular_max = l
            .attn_norm_gain
            .iter()
            .enumerate()
            .filter(|(i, _)| !w.outlier_channels.contains(i))
            .map(|(_, &g)| g.abs())
            .fold(0.0f32, f32::max);
        assert!(regular_max < 2.0);
    }

    #[test]
    fn shapes_match_config() {
        let c = ModelConfig::tiny();
        let w = generate_weights(&c, 2);
        assert_eq!(w.layers.len(), c.n_layers);
        assert_eq!(w.embedding.rows(), c.vocab);
        let l = &w.layers[0];
        assert_eq!(l.wq.rows(), c.d_model);
        assert_eq!(l.w_up.cols(), c.d_ff);
        assert_eq!(l.w_down.rows(), c.d_ff);
        assert!(l.w_gate.is_some());
    }

    #[test]
    fn opt_arch_has_no_gate() {
        let mut c = ModelConfig::opt_6_7b().proxy(64, 2, 64);
        c.arch = crate::config::Arch::Opt;
        let w = generate_weights(&c, 3);
        assert!(w.layers[0].w_gate.is_none());
    }
}
