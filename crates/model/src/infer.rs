//! The quantized decoder-only transformer and its generation loop.

use std::collections::HashMap;
use std::sync::Arc;

use opal_quant::{EncodeScratch, QuantError, Quantizer};
use opal_softmax::Log2Softmax;
use opal_tensor::ops;
use opal_tensor::Matrix;

use crate::config::{Arch, ModelConfig};
use crate::kv::{AdoptError, BlockPool, KvBlock, PagedKv};
use crate::scheme::{QuantScheme, SoftmaxKind};
use crate::weights::{generate_weights, ModelWeights};

/// The observation points inside a decoder block (Fig. 5): the inputs of
/// every MxV the paper quantizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Post-LayerNorm input shared by the Q/K/V projections (low-bit).
    QkvInput,
    /// Query vectors after RoPE (input of `Q·Kᵀ`, high-bit).
    Query,
    /// Key vectors after RoPE (input of `Q·Kᵀ`, high-bit).
    Key,
    /// Value vectors (input of `Attn·V`, high-bit).
    Value,
    /// Attention output entering the projection layer (high-bit).
    ProjInput,
    /// Post-LayerNorm input of FC1 (low-bit).
    Fc1Input,
    /// FFN hidden activation entering FC2 (high-bit).
    Fc2Input,
}

impl Site {
    /// The six sites reported in Fig. 4, in the paper's column order.
    pub fn fig4_sites() -> [(Site, &'static str); 6] {
        [
            (Site::Query, "query"),
            (Site::Key, "key"),
            (Site::Value, "value"),
            (Site::ProjInput, "proj"),
            (Site::Fc1Input, "fc1"),
            (Site::Fc2Input, "fc2"),
        ]
    }
}

/// Observer of intermediate activations during decoding.
pub trait Recorder {
    /// Called once per site per decoded token with the (unquantized)
    /// activation vector.
    fn record(&mut self, layer: usize, site: Site, x: &[f32]);
}

/// Collects per-channel second moments `E[x_i²]` — the OWQ sensitivity
/// statistic — at the four weight-input sites.
#[derive(Debug, Default)]
pub struct SecondMomentRecorder {
    sums: HashMap<(usize, Site), (Vec<f64>, u64)>,
}

impl SecondMomentRecorder {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mean second moment per channel at `(layer, site)`, or `None` if
    /// never recorded.
    pub fn second_moment(&self, layer: usize, site: Site) -> Option<Vec<f32>> {
        self.sums
            .get(&(layer, site))
            .map(|(s, n)| s.iter().map(|&v| (v / *n as f64) as f32).collect())
    }
}

impl Recorder for SecondMomentRecorder {
    fn record(&mut self, layer: usize, site: Site, x: &[f32]) {
        let entry = self.sums.entry((layer, site)).or_insert_with(|| (vec![0.0; x.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(x) {
            *s += f64::from(v) * f64::from(v);
        }
        entry.1 += 1;
    }
}

/// Captures raw activation rows at every site of one target layer (used to
/// build the Fig. 3 / Fig. 4 tensors).
#[derive(Debug)]
pub struct ActivationCapture {
    target_layer: usize,
    rows: HashMap<Site, Vec<Vec<f32>>>,
    max_rows: usize,
}

impl ActivationCapture {
    /// Captures up to `max_rows` activation vectors per site at
    /// `target_layer`.
    pub fn new(target_layer: usize, max_rows: usize) -> Self {
        ActivationCapture { target_layer, rows: HashMap::new(), max_rows }
    }

    /// The captured activations at `site` as a matrix (one row per token),
    /// or `None` if nothing was captured.
    pub fn activations(&self, site: Site) -> Option<Matrix> {
        let rows = self.rows.get(&site)?;
        let first = rows.first()?;
        let mut m = Matrix::zeros(rows.len(), first.len());
        for (r, row) in rows.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        Some(m)
    }
}

impl Recorder for ActivationCapture {
    fn record(&mut self, layer: usize, site: Site, x: &[f32]) {
        if layer != self.target_layer {
            return;
        }
        let rows = self.rows.entry(site).or_default();
        if rows.len() < self.max_rows {
            rows.push(x.to_vec());
        }
    }
}

#[derive(Clone)]
pub(crate) struct ReadyLayer {
    // All stored transposed (d_out × d_in) so a token step is a matvec.
    pub(crate) wq_t: Matrix,
    pub(crate) wk_t: Matrix,
    pub(crate) wv_t: Matrix,
    pub(crate) wo_t: Matrix,
    pub(crate) w_gate_t: Option<Matrix>,
    pub(crate) w_up_t: Matrix,
    pub(crate) w_down_t: Matrix,
    pub(crate) attn_gain: Vec<f32>,
    pub(crate) attn_bias: Vec<f32>,
    pub(crate) ffn_gain: Vec<f32>,
    pub(crate) ffn_bias: Vec<f32>,
}

/// Which logits a fused multi-row pass materializes: none (mid-prompt
/// prefill), the final row's (a prompt's last chunk), or every row's into
/// a caller matrix (the speculative verify pass).
enum LogitsOut<'a> {
    None,
    /// `keep_scratch` distinguishes a prompt's final chunk (drop the
    /// chunk-sized buffers, the prompt is consumed) from a speculative
    /// draft's per-step catch-up chunk (keep them — it runs every step).
    Last {
        keep_scratch: bool,
    },
    All(&'a mut Matrix),
}

/// Reshapes a scratch matrix to `rows × cols` in place, reusing the backing
/// buffer (zero-filled; allocation-free once grown to the largest shape
/// seen). Same-width reshapes — the common case, chunk length changing
/// between prefill calls — go through [`Matrix::resize_rows`]; a width
/// change (sequence length growing for the score buffers) rebuilds the
/// layout around the same `Vec`.
fn ensure_shape(m: &mut Matrix, rows: usize, cols: usize) {
    if m.cols() == cols && !m.is_empty() {
        m.resize_rows(rows);
        return;
    }
    let mut data = std::mem::replace(m, Matrix::zeros(0, 0)).into_vec();
    data.clear();
    data.resize(rows * cols, 0.0);
    *m = Matrix::from_vec(rows, cols, data);
}

/// Reusable multi-row buffers of the fused prefill path: one row per prompt
/// position of the chunk in flight.
///
/// [`Model::prefill_chunk`] pushes a whole block of prompt positions
/// through each layer in one pass — norm rows, one GEMM per projection,
/// multi-row causal attention against the paged KV cache — and every
/// intermediate lands here. Buffers are reshaped (never reallocated, once
/// grown) to the live chunk length at the start of each pass, so steady
/// chunked prefill allocates nothing, mirroring the single-token
/// [`ScratchSpace`] discipline — and the whole workspace is dropped again
/// by the chunk that computes the prompt logits, so a decoding sequence
/// carries no prefill buffers for the rest of its life.
#[derive(Debug, Default)]
struct PrefillScratch {
    /// Residual streams, `chunk × d_model`.
    hs: Matrix,
    /// Norm outputs feeding QKV or FC1, `chunk × d_model`.
    xs: Matrix,
    /// Quantized norm outputs, `chunk × d_model`.
    xqs: Matrix,
    /// Query projections (pre-quantization), `chunk × d_model`.
    qs: Matrix,
    /// Key projections (pre-quantization), `chunk × d_model`.
    ks: Matrix,
    /// Value projections (pre-quantization), `chunk × d_model`.
    vs: Matrix,
    /// Quantized queries, `chunk × d_model`.
    qqs: Matrix,
    /// Attention contexts, `chunk × d_model`.
    ctxs: Matrix,
    /// Quantized contexts, `chunk × d_model`.
    ctxqs: Matrix,
    /// Output of the attention and FFN down projections (used one after
    /// the other), `chunk × d_model`.
    proj: Matrix,
    /// FFN gate/activation buffer, `chunk × d_ff`.
    gates: Matrix,
    /// FFN up-projections, `chunk × d_ff`.
    ups: Matrix,
    /// Quantized FFN activations, `chunk × d_ff`.
    act_qs: Matrix,
    /// Attention scores for one head, `chunk × seq` (row `r` uses its
    /// causal prefix `lens[r]`).
    scores: Matrix,
    /// Attention weights for one head, `chunk × seq` (causal prefixes).
    weights: Matrix,
    /// Causal row lengths: `lens[r] = pos0 + r + 1`.
    lens: Vec<usize>,
}

/// Reusable per-sequence buffers for the token decode hot path.
///
/// Every intermediate of a decode step — q/k/v projections, attention
/// scores and weights, context, FFN activations, norm outputs and the
/// vocab-sized logits — writes into these buffers, so a steady-state decode
/// step performs no heap allocation (the paged KV cache allocates one
/// recycled block per [`BlockPool::block_size`] positions, and
/// `scores`/`weights` stop growing once they reach the sequence length).
#[derive(Debug)]
struct ScratchSpace {
    /// Residual stream, `d_model`.
    h: Vec<f32>,
    /// Norm output feeding QKV or FC1, `d_model`.
    x: Vec<f32>,
    /// Quantized norm output, `d_model`.
    xq: Vec<f32>,
    /// Query projection (pre-quantization), `d_model`.
    q: Vec<f32>,
    /// Key projection (pre-quantization), `d_model`.
    k: Vec<f32>,
    /// Value projection (pre-quantization), `d_model`.
    v: Vec<f32>,
    /// Quantized query, `d_model`.
    qq: Vec<f32>,
    /// Attention context, `d_model`.
    ctx: Vec<f32>,
    /// Quantized context, `d_model`.
    ctxq: Vec<f32>,
    /// Attention output projection, `d_model`.
    attn_out: Vec<f32>,
    /// Attention scores for one head, grows to the sequence length.
    scores: Vec<f32>,
    /// Attention weights for one head, grows to the sequence length.
    weights: Vec<f32>,
    /// FFN gate/activation buffer, `d_ff`.
    gate: Vec<f32>,
    /// FFN up-projection, `d_ff`.
    up: Vec<f32>,
    /// Quantized FFN activation, `d_ff`.
    act_q: Vec<f32>,
    /// FFN down-projection, `d_model`.
    down: Vec<f32>,
    /// Final-norm output, `d_model`.
    hn: Vec<f32>,
    /// Next-token logits, `vocab`.
    logits: Vec<f32>,
    /// Quantizer encode workspace (block plans, sort buffers) for the
    /// tensor-global formats; block-local formats ignore it. Owned per
    /// sequence like every other scratch buffer — and shared across the
    /// rows of a prefill chunk — so quantized decode *and* chunked prefill
    /// stay allocation-free and thread-isolated.
    quant: EncodeScratch,
    /// Multi-row buffers of the fused prefill path (empty until the first
    /// [`Model::prefill_chunk`], unused by single-token decoding).
    prefill: PrefillScratch,
}

impl ScratchSpace {
    fn new(config: &ModelConfig) -> Self {
        let d = config.d_model;
        let ff = config.d_ff;
        ScratchSpace {
            h: vec![0.0; d],
            x: vec![0.0; d],
            xq: vec![0.0; d],
            q: vec![0.0; d],
            k: vec![0.0; d],
            v: vec![0.0; d],
            qq: vec![0.0; d],
            ctx: vec![0.0; d],
            ctxq: vec![0.0; d],
            attn_out: vec![0.0; d],
            scores: Vec::new(),
            weights: Vec::new(),
            gate: vec![0.0; ff],
            up: vec![0.0; ff],
            act_q: vec![0.0; ff],
            down: vec![0.0; d],
            hn: vec![0.0; d],
            logits: vec![0.0; config.vocab],
            quant: EncodeScratch::new(),
            prefill: PrefillScratch::default(),
        }
    }
}

/// Decoding state: the position counter, paged KV block tables and the
/// reusable scratch buffers of one sequence.
///
/// Each sequence owns its `DecodeState`; the [`Model`] stays immutable
/// during decoding, which is what lets a batch scheduler step many states
/// against one model from parallel threads. The KV cache is paged (see
/// [`crate::kv`]): per-layer tables of refcounted fixed-size blocks drawn
/// from a [`BlockPool`] — private and unbounded under
/// [`Model::begin_decode`], engine-shared and bounded under
/// [`Model::begin_decode_paged`], where tables of different sequences may
/// map common prefix blocks read-only.
pub struct DecodeState {
    pos: usize,
    kv: PagedKv,
    scratch: ScratchSpace,
}

impl DecodeState {
    /// Number of tokens decoded so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// KV blocks per layer currently mapped by this sequence.
    pub fn blocks_per_layer(&self) -> usize {
        self.kv.layers.first().map_or(0, Vec::len)
    }

    /// The block at `index` of `layer`'s table (a refcount bump — this is
    /// how the serve engine publishes prompt blocks into its prefix cache).
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `index` is out of range.
    pub fn block(&self, layer: usize, index: usize) -> Arc<KvBlock> {
        Arc::clone(&self.kv.layers[layer][index])
    }

    /// Whether an append at the current position would copy-on-write a
    /// shared tail block (schedulers use this to reserve the extra block).
    pub fn tail_block_shared(&self) -> bool {
        self.kv.tail_shared()
    }

    /// Rolls the sequence back to `len` positions, dropping the cached
    /// rows past it: block-table entries past `ceil(len / block_size)`
    /// return to the pool (or merely release this sequence's reference
    /// when a prefix-cache entry or sharing peer still maps them), and
    /// decoding resumes at position `len`. This is the rejected-tail
    /// cleanup of speculative decoding: the verify pass appends K+1 rows
    /// via [`Model::verify_chunk_into`], and the unaccepted suffix is
    /// discarded here in O(dropped blocks). Rows at positions `>= len`
    /// inside a kept tail block need no clearing — reads are bounded by
    /// the sequence length, so they are recycled-page garbage like any
    /// freshly allocated block's rows.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current position.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.pos, "cannot truncate {} forward to {len}", self.pos);
        self.kv.truncate(len);
        self.pos = len;
    }

    /// Visits every `(layer, block)` entry of this sequence's block tables
    /// by reference, in layer-then-table order.
    ///
    /// Unlike [`DecodeState::block`] this never clones an `Arc`, so
    /// auditors can read true `Arc::strong_count` values — cross-checking
    /// pool accounting against table and prefix-cache references — without
    /// the audit itself perturbing the refcounts it is checking.
    pub fn with_blocks(&self, mut f: impl FnMut(usize, &Arc<KvBlock>)) {
        for (layer, table) in self.kv.layers.iter().enumerate() {
            for block in table {
                f(layer, block);
            }
        }
    }

    /// Maps an already-computed token prefix into this fresh state: the
    /// first `len` positions of every layer are backed by `prefix[layer]`
    /// read-only (refcount bumps, no copies, no prefill), and decoding
    /// resumes at position `len`. The first divergent write into a shared
    /// partial tail block copies it on write.
    ///
    /// The blocks must hold exactly the K/V rows the model would produce
    /// for the shared tokens — callers (the serve engine's prefix trie) key
    /// them by token ids, which determines those rows bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if the state already holds positions, `len` is zero, the
    /// per-layer block counts don't cover exactly `len` positions, or the
    /// donor blocks are incompatible (see
    /// [`DecodeState::try_adopt_shared_prefix`] for the fallible form).
    pub fn adopt_shared_prefix(&mut self, prefix: Vec<Vec<Arc<KvBlock>>>, len: usize) {
        // tidy: allow(panic) -- infallible wrapper; engines sharing one pool can't mismatch
        self.try_adopt_shared_prefix(prefix, len).expect("incompatible shared prefix");
    }

    /// As [`DecodeState::adopt_shared_prefix`], but returns a typed error
    /// when the donor blocks are incompatible with this sequence's pool:
    /// [`AdoptError::SchemeMismatch`] when their page format differs (an
    /// exact walk cannot read packed codes and vice versa — checked first,
    /// so mixed-scheme sharing is rejected even across pools), and
    /// [`AdoptError::ForeignPool`] when they belong to a different
    /// [`BlockPool`] instance.
    ///
    /// # Errors
    ///
    /// Returns an [`AdoptError`] as described above; `self` is unchanged
    /// on error.
    ///
    /// # Panics
    ///
    /// Panics if the state already holds positions, `len` is zero, or the
    /// per-layer block counts don't cover exactly `len` positions — those
    /// are caller bugs, not runtime conditions.
    pub fn try_adopt_shared_prefix(
        &mut self,
        prefix: Vec<Vec<Arc<KvBlock>>>,
        len: usize,
    ) -> Result<(), AdoptError> {
        assert_eq!(self.pos, 0, "shared prefix must be adopted before any token");
        assert!(len > 0, "empty shared prefix");
        assert_eq!(prefix.len(), self.kv.layers.len(), "layer count mismatch");
        let blocks = len.div_ceil(self.kv.pool.block_size());
        let ours = self.kv.pool.scheme();
        for table in &prefix {
            assert_eq!(table.len(), blocks, "prefix blocks must cover exactly len positions");
            for b in table {
                if b.scheme() != ours {
                    return Err(AdoptError::SchemeMismatch { ours, theirs: b.scheme() });
                }
                if !b.from_pool(&self.kv.pool) {
                    return Err(AdoptError::ForeignPool);
                }
            }
        }
        self.kv.layers = prefix;
        self.pos = len;
        Ok(())
    }
}

impl std::fmt::Debug for DecodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DecodeState(pos={}, layers={}, blocks/layer={})",
            self.pos,
            self.kv.layers.len(),
            self.blocks_per_layer()
        )
    }
}

/// A decoder-only transformer executing under a [`QuantScheme`].
///
/// The model is built from deterministic synthetic weights (see
/// [`crate::weights`]); with [`crate::WeightScheme::Owq`] the weights are
/// calibrated and quantized at construction. All activation quantization
/// happens token-by-token at the Fig. 5 hook points during decoding.
///
/// # Example
///
/// ```
/// use opal_model::{Model, ModelConfig, QuantScheme};
///
/// let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42)?;
/// let logits = model.forward(&[1, 2, 3]);
/// assert_eq!(logits.rows(), 3);
/// assert_eq!(logits.cols(), model.config().vocab);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
pub struct Model {
    pub(crate) config: ModelConfig,
    pub(crate) scheme: QuantScheme,
    pub(crate) embedding: Matrix,
    pub(crate) unembedding: Matrix,
    pub(crate) final_norm_gain: Vec<f32>,
    pub(crate) final_norm_bias: Vec<f32>,
    pub(crate) layers: Vec<ReadyLayer>,
    pub(crate) outlier_channels: Vec<usize>,
    pub(crate) low_q: Option<Box<dyn Quantizer + Send + Sync>>,
    pub(crate) high_q: Option<Box<dyn Quantizer + Send + Sync>>,
    pub(crate) log2_softmax: Option<Log2Softmax>,
    pub(crate) rope_theta: f32,
    /// Final logit scale. A random (untrained) unembedding produces logits
    /// with standard deviation ≈ √d_model, which would make the model
    /// near-deterministic (PPL → 1) and hide quantization effects entirely;
    /// scaling to ≈2.5 standard deviations gives the teacher an entropy
    /// profile comparable to a trained LLM on natural text (PPL in the
    /// single digits against a few-hundred-token vocabulary).
    pub(crate) logit_scale: f32,
}

impl Model {
    /// Prompt positions [`Model::prefill_into`] fuses per layer pass.
    ///
    /// Large enough that each transposed weight matrix streamed through a
    /// pass is amortized over many positions (the locality win of the fused
    /// GEMM), small enough that the `chunk × d_ff` scratch rows stay
    /// cache-resident for realistic configurations.
    pub const DEFAULT_PREFILL_CHUNK: usize = 32;

    /// Builds a model with synthetic weights from `seed`, quantized
    /// according to `scheme`.
    ///
    /// With OWQ weights this runs a short calibration pass (48 tokens of a
    /// deterministic stream) on the unquantized model to collect the OWQ
    /// channel sensitivities, exactly mirroring the paper's use of a
    /// calibration set.
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the scheme's quantizer parameters are
    /// invalid.
    pub fn new(config: ModelConfig, scheme: QuantScheme, seed: u64) -> Result<Self, QuantError> {
        let raw = generate_weights(&config, seed);
        Self::from_weights(config, scheme, raw, seed)
    }

    /// Builds a model from explicit raw weights (mainly for tests).
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the scheme's quantizer parameters are
    /// invalid.
    pub fn from_weights(
        config: ModelConfig,
        scheme: QuantScheme,
        raw: ModelWeights,
        seed: u64,
    ) -> Result<Self, QuantError> {
        let (low_q, high_q) = match &scheme.acts {
            Some(a) => (Some(a.low_quantizer()?), Some(a.high_quantizer()?)),
            None => (None, None),
        };
        let log2_softmax = match scheme.softmax {
            SoftmaxKind::Exact => None,
            SoftmaxKind::Log2 { bits } => Some(Log2Softmax::new(bits)),
        };

        let processed = match scheme.weights.quantizer()? {
            None => process_bf16(&raw),
            Some(owq) => {
                // Calibration pass on the unquantized model.
                let fp = Model {
                    config: config.clone(),
                    scheme: QuantScheme::bf16(),
                    embedding: raw.embedding.clone(),
                    unembedding: raw.unembedding.clone(),
                    final_norm_gain: raw.final_norm_gain.clone(),
                    final_norm_bias: raw.final_norm_bias.clone(),
                    layers: process_identity(&raw),
                    outlier_channels: raw.outlier_channels.clone(),
                    low_q: None,
                    high_q: None,
                    log2_softmax: None,
                    rope_theta: 10_000.0,
                    logit_scale: 2.5 / (config.d_model as f32).sqrt(),
                };
                let mut rec = SecondMomentRecorder::new();
                let mut state = fp.begin_decode();
                let mut token = (seed % config.vocab as u64) as u32;
                for _ in 0..48.min(4 * config.vocab) {
                    let logits = fp.decode_step_recorded(&mut state, token, Some(&mut rec));
                    token = ops::argmax(&logits).unwrap_or(0) as u32;
                    // Perturb deterministically to avoid degenerate loops.
                    token = (token.wrapping_mul(31).wrapping_add(state.pos() as u32))
                        % config.vocab as u32;
                }
                process_owq(&raw, &owq, &rec)
            }
        };

        let logit_scale = 2.5 / (config.d_model as f32).sqrt();
        Ok(Model {
            config,
            scheme,
            embedding: raw.embedding,
            unembedding: raw.unembedding,
            final_norm_gain: raw.final_norm_gain,
            final_norm_bias: raw.final_norm_bias,
            layers: processed,
            outlier_channels: raw.outlier_channels,
            low_q,
            high_q,
            log2_softmax,
            rope_theta: 10_000.0,
            logit_scale,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Builds the low-cost *draft sibling* for speculative decoding: a
    /// model sharing this model's configuration, embedding, unembedding,
    /// final norm and the processed weights of its first `n_layers`
    /// decoder blocks, under the same activation/softmax scheme. Running
    /// a fraction of the depth makes its forward pass proportionally
    /// cheaper while staying correlated with the full model's greedy
    /// choices — and the sibling is never trusted: a serving engine
    /// verifies every proposal against the full model, so the draft
    /// affects speed, not output.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers` is zero or exceeds this model's layer count.
    pub fn draft_truncated(&self, n_layers: usize) -> Model {
        assert!(
            n_layers >= 1 && n_layers <= self.layers.len(),
            "draft depth {n_layers} outside 1..={}",
            self.layers.len()
        );
        let mut config = self.config.clone();
        config.n_layers = n_layers;
        // The boxed activation quantizers are not cloneable; rebuild them
        // from the scheme, whose parameters were validated when `self`
        // was constructed.
        let (low_q, high_q) = match &self.scheme.acts {
            Some(a) => (
                // tidy: allow(panic) -- the same parameters built self's quantizers
                Some(a.low_quantizer().expect("scheme validated at construction")),
                // tidy: allow(panic) -- the same parameters built self's quantizers
                Some(a.high_quantizer().expect("scheme validated at construction")),
            ),
            None => (None, None),
        };
        let log2_softmax = match self.scheme.softmax {
            SoftmaxKind::Exact => None,
            SoftmaxKind::Log2 { bits } => Some(Log2Softmax::new(bits)),
        };
        Model {
            config,
            scheme: self.scheme.clone(),
            embedding: self.embedding.clone(),
            unembedding: self.unembedding.clone(),
            final_norm_gain: self.final_norm_gain.clone(),
            final_norm_bias: self.final_norm_bias.clone(),
            layers: self.layers[..n_layers].to_vec(),
            outlier_channels: self.outlier_channels.clone(),
            low_q,
            high_q,
            log2_softmax,
            rope_theta: self.rope_theta,
            logit_scale: self.logit_scale,
        }
    }

    /// The active quantization scheme.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The persistent activation-outlier channel indices.
    pub fn outlier_channels(&self) -> &[usize] {
        &self.outlier_channels
    }

    /// Starts a fresh decoding session over a private, unbounded
    /// [`BlockPool`] (block size [`BlockPool::DEFAULT_BLOCK_SIZE`]).
    pub fn begin_decode(&self) -> DecodeState {
        let pool = Arc::new(BlockPool::new(
            BlockPool::DEFAULT_BLOCK_SIZE,
            self.config.d_model,
            usize::MAX,
        ));
        self.begin_decode_paged(&pool)
    }

    /// Starts a fresh decoding session whose KV blocks come from `pool` —
    /// the entry point for engines that bound KV memory across a batch and
    /// share prompt-prefix blocks between sequences.
    ///
    /// # Panics
    ///
    /// Panics if the pool's row width differs from the model's `d_model`.
    pub fn begin_decode_paged(&self, pool: &Arc<BlockPool>) -> DecodeState {
        assert_eq!(pool.width(), self.config.d_model, "pool row width must equal d_model");
        DecodeState {
            pos: 0,
            kv: PagedKv::new(Arc::clone(pool), self.config.n_layers),
            scratch: ScratchSpace::new(&self.config),
        }
    }

    /// Decodes one token, returning the next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn decode_step(&self, state: &mut DecodeState, token: u32) -> Vec<f32> {
        self.decode_step_recorded(state, token, None)
    }

    /// As [`Model::decode_step`], writing the logits into a caller-provided
    /// slice instead of allocating — the zero-allocation entry point used by
    /// the serving engine's steady-state decode loop.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of range or `out.len()` differs from the
    /// vocabulary size.
    pub fn decode_step_into(&self, state: &mut DecodeState, token: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.config.vocab, "logits length mismatch");
        self.decode_core(state, token, None, true);
        out.copy_from_slice(&state.scratch.logits);
    }

    /// Feeds a whole prompt through the decoder, returning the logits after
    /// its last token.
    ///
    /// Allocating convenience wrapper over [`Model::prefill_into`]; see
    /// there for the fused-chunk execution model.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or contains out-of-range tokens.
    pub fn prefill(&self, state: &mut DecodeState, prompt: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0; self.config.vocab];
        self.prefill_into(state, prompt, &mut out);
        out
    }

    /// Feeds a whole prompt through the decoder, writing the logits after
    /// its last token into `out` — the allocation-free entry point behind
    /// [`Model::prefill`].
    ///
    /// This is the shared prompt-consumption path of every generation loop:
    /// the single-sequence samplers ([`crate::sampling::generate`], the
    /// pipeline's greedy loop) and the batched `opal-serve` scheduler all
    /// prefill through here, so they are guaranteed to agree token-for-token
    /// with a raw [`Model::decode_step`] loop.
    ///
    /// The prompt is consumed in fused multi-token chunks of
    /// [`Model::DEFAULT_PREFILL_CHUNK`] positions via
    /// [`Model::prefill_chunk`] — one layer pass per chunk instead of one
    /// per token — and only the final prompt token materializes vocab-sized
    /// logits: the unembedding matvec — by far the widest in the model — is
    /// skipped for every earlier position, whose logits nobody reads.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty, contains out-of-range tokens, or
    /// `out.len()` differs from the vocabulary size.
    pub fn prefill_into(&self, state: &mut DecodeState, prompt: &[u32], out: &mut [f32]) {
        assert!(!prompt.is_empty(), "empty prompt");
        let chunk = Self::DEFAULT_PREFILL_CHUNK;
        let mut i = 0;
        while prompt.len() - i > chunk {
            self.prefill_chunk(state, &prompt[i..i + chunk]);
            i += chunk;
        }
        self.prefill_chunk_into(state, &prompt[i..], out);
    }

    /// Consumes one chunk of prompt positions in a single fused pass per
    /// layer, without materializing logits (the mid-prompt form of
    /// [`Model::prefill_chunk_into`]).
    ///
    /// Each layer normalizes, quantizes and projects *all* chunk rows at
    /// once — one [`Matrix::matmul_t_into`] GEMM per projection instead of
    /// one matvec per token — then runs multi-row causal attention against
    /// the paged KV cache (row `r` attends to cached positions
    /// `0..=pos0+r`, including the chunk rows appended just before). Every
    /// per-position operation is the exact kernel of the single-token
    /// [`Model::decode_step`] loop, so the KV caches and any later logits
    /// are bit-identical to stepping the same tokens one at a time
    /// (`tests/decode_golden.rs` pins this for chunk sizes 1/3/8/whole
    /// prompt across scheme families).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn prefill_chunk(&self, state: &mut DecodeState, tokens: &[u32]) {
        self.prefill_core(state, tokens, LogitsOut::None);
    }

    /// As [`Model::prefill_chunk`], additionally writing the next-token
    /// logits of the chunk's final position into `out` — the form used for
    /// a prompt's last chunk.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, contains out-of-range ids, or
    /// `out.len()` differs from the vocabulary size.
    pub fn prefill_chunk_into(&self, state: &mut DecodeState, tokens: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), self.config.vocab, "logits length mismatch");
        self.prefill_core(state, tokens, LogitsOut::Last { keep_scratch: false });
        out.copy_from_slice(&state.scratch.logits);
    }

    /// As [`Model::prefill_chunk_into`], but keeps the chunk scratch
    /// alive. This is the steady-state form of a speculative draft's
    /// per-step catch-up chunk: it runs on every decode step, so dropping
    /// and re-growing the chunk-sized scratch matrices each time — the
    /// right trade for a prompt's final chunk — would put an allocation
    /// storm on the hot path (the alloc-probe speculative test pins this
    /// to zero).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, contains out-of-range ids, or
    /// `out.len()` differs from the vocabulary size.
    pub fn catchup_chunk_into(&self, state: &mut DecodeState, tokens: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), self.config.vocab, "logits length mismatch");
        self.prefill_core(state, tokens, LogitsOut::Last { keep_scratch: true });
        out.copy_from_slice(&state.scratch.logits);
    }

    /// The fused multi-row *verify* pass of speculative decoding: advances
    /// `state` by `tokens.len()` positions exactly like
    /// [`Model::prefill_chunk`], but materializes the next-token logits of
    /// **every** position into `out` (reshaped to `tokens.len() × vocab`
    /// in place; allocation-free once grown). Row `r` holds the logits
    /// after `tokens[..=r]`, bit-identical to what
    /// [`Model::decode_step_into`] would return having consumed those same
    /// tokens one at a time — so a serving engine can accept the longest
    /// drafted prefix whose picks match and roll the rejected tail back
    /// with [`DecodeState::truncate`], with output pinned to the
    /// non-speculative stream.
    ///
    /// Unlike the prompt path, the final chunk scratch is kept alive: a
    /// speculating sequence verifies every step, so dropping the buffers
    /// would recreate them each time.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn verify_chunk_into(&self, state: &mut DecodeState, tokens: &[u32], out: &mut Matrix) {
        self.prefill_core(state, tokens, LogitsOut::All(out));
    }

    /// As [`Model::decode_step`], optionally reporting activations to a
    /// [`Recorder`].
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn decode_step_recorded(
        &self,
        state: &mut DecodeState,
        token: u32,
        recorder: Option<&mut dyn Recorder>,
    ) -> Vec<f32> {
        self.decode_core(state, token, recorder, true);
        state.scratch.logits.clone()
    }

    /// The allocation-free decode step: advances `state` by one token,
    /// leaving the next-token logits in `state.scratch.logits` when
    /// `compute_logits` is set.
    ///
    /// Ordering of every loop and reduction matches the seed implementation
    /// (kept in [`crate::reference`]) except inside [`opal_tensor::ops::dot`],
    /// whose 4-accumulator reduction reassociates `f64` partial sums ~29
    /// bits below `f32` resolution; `tests/decode_golden.rs` pins the
    /// output bit-for-bit against logit patterns captured from the seed
    /// build and against the reference path over long decodes.
    fn decode_core(
        &self,
        state: &mut DecodeState,
        token: u32,
        mut recorder: Option<&mut dyn Recorder>,
        compute_logits: bool,
    ) {
        assert!((token as usize) < self.config.vocab, "token {token} out of range");
        let dh = self.config.head_dim();
        let inv_sqrt_dh = 1.0 / (dh as f32).sqrt();
        let DecodeState { pos, kv, scratch: st } = state;
        let pos = *pos;
        let seq = pos + 1;

        st.h.copy_from_slice(self.embedding.row(token as usize));
        st.scores.resize(seq, 0.0);
        st.weights.resize(seq, 0.0);

        for (l, lw) in self.layers.iter().enumerate() {
            // ---- attention ----
            self.norm_into(&st.h, &lw.attn_gain, &lw.attn_bias, &mut st.x);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::QkvInput, &st.x);
            }
            self.quant_low_into(&st.x, &mut st.xq, &mut st.quant);
            lw.wq_t.matvec_into(&st.xq, &mut st.q);
            lw.wk_t.matvec_into(&st.xq, &mut st.k);
            lw.wv_t.matvec_into(&st.xq, &mut st.v);
            for head in 0..self.config.n_heads {
                let s = head * dh;
                ops::rope_row(&mut st.q[s..s + dh], pos, self.rope_theta);
                ops::rope_row(&mut st.k[s..s + dh], pos, self.rope_theta);
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Query, &st.q);
                rec.record(l, Site::Key, &st.k);
                rec.record(l, Site::Value, &st.v);
            }
            self.quant_high_into(&st.q, &mut st.qq, &mut st.quant);
            if kv.quantized() {
                // Quantized KV: the page encoder *is* the cache-side
                // quantizer, so the post-RoPE rows go in raw and the
                // scheme's codes come back out on the walk.
                kv.append_rows_quant(l, pos, 1, &st.k, &st.v, &mut st.quant);
            } else {
                let (k_row, v_row) = kv.rows_mut(l, pos, 1);
                self.quant_high_into(&st.k, k_row, &mut st.quant);
                self.quant_high_into(&st.v, v_row, &mut st.quant);
            }

            st.ctx.fill(0.0);
            for head in 0..self.config.n_heads {
                let s = head * dh;
                let q_h = &st.qq[s..s + dh];
                if kv.quantized() {
                    for (score, k_row) in st.scores.iter_mut().zip(kv.k_qrows(l, seq)) {
                        *score = k_row.dot_range(q_h, s) * inv_sqrt_dh;
                    }
                } else {
                    for (score, k_row) in st.scores.iter_mut().zip(kv.k_rows(l, seq)) {
                        *score = ops::dot(q_h, &k_row[s..s + dh]) * inv_sqrt_dh;
                    }
                }
                match &self.log2_softmax {
                    None => ops::softmax_into(&st.scores, &mut st.weights),
                    Some(sm) => sm.probs_into(&st.scores, &mut st.weights),
                }
                if kv.quantized() {
                    for (&w, v_row) in st.weights.iter().zip(kv.v_qrows(l, seq)) {
                        if w == 0.0 {
                            continue;
                        }
                        v_row.axpy_range(w, s, &mut st.ctx[s..s + dh]);
                    }
                } else {
                    for (&w, v_row) in st.weights.iter().zip(kv.v_rows(l, seq)) {
                        if w == 0.0 {
                            continue;
                        }
                        for (c, &vv) in st.ctx[s..s + dh].iter_mut().zip(&v_row[s..s + dh]) {
                            *c += w * vv;
                        }
                    }
                }
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::ProjInput, &st.ctx);
            }
            self.quant_high_into(&st.ctx, &mut st.ctxq, &mut st.quant);
            lw.wo_t.matvec_into(&st.ctxq, &mut st.attn_out);
            for (hh, oo) in st.h.iter_mut().zip(&st.attn_out) {
                *hh += oo;
            }

            // ---- FFN ----
            self.norm_into(&st.h, &lw.ffn_gain, &lw.ffn_bias, &mut st.x);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc1Input, &st.x);
            }
            self.quant_low_into(&st.x, &mut st.xq, &mut st.quant);
            // The activation always lands in `st.gate`.
            match &lw.w_gate_t {
                Some(gate) => {
                    gate.matvec_into(&st.xq, &mut st.gate);
                    lw.w_up_t.matvec_into(&st.xq, &mut st.up);
                    for (g, &u) in st.gate.iter_mut().zip(&st.up) {
                        *g = ops::silu(*g) * u;
                    }
                }
                None => {
                    lw.w_up_t.matvec_into(&st.xq, &mut st.gate);
                    for g in st.gate.iter_mut() {
                        *g = ops::relu(*g);
                    }
                }
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc2Input, &st.gate);
            }
            self.quant_high_into(&st.gate, &mut st.act_q, &mut st.quant);
            lw.w_down_t.matvec_into(&st.act_q, &mut st.down);
            for (hh, dd) in st.h.iter_mut().zip(&st.down) {
                *hh += dd;
            }
        }

        state.pos += 1;
        if compute_logits {
            let st = &mut state.scratch;
            self.norm_into(&st.h, &self.final_norm_gain, &self.final_norm_bias, &mut st.hn);
            self.unembedding.matvec_into(&st.hn, &mut st.logits);
            for v in &mut st.logits {
                *v *= self.logit_scale;
            }
        }
    }

    /// The fused multi-token prefill pass: advances `state` by
    /// `tokens.len()` prompt positions in one layer sweep, materializing
    /// logits per the [`LogitsOut`] mode (the final position's into
    /// `state.scratch.logits`, or every position's into a caller matrix
    /// for the speculative verify pass).
    ///
    /// Bit-identity with the token-by-token loop holds operation by
    /// operation: norms and quantizers run per row with the same kernels
    /// (the [`EncodeScratch`] carries capacity, never state, across rows),
    /// projections go through [`Matrix::matmul_t_into`] whose rows equal
    /// the per-token matvecs exactly, and attention for row `r` scans the
    /// same cache rows in the same order the sequential path would at
    /// position `pos0 + r` — K/V rows never depend on attention, so
    /// appending the whole chunk before attending changes nothing.
    fn prefill_core(&self, state: &mut DecodeState, tokens: &[u32], logits_out: LogitsOut<'_>) {
        let n = tokens.len();
        assert!(n > 0, "empty prefill chunk");
        for &t in tokens {
            assert!((t as usize) < self.config.vocab, "token {t} out of range");
        }
        let d = self.config.d_model;
        let ff = self.config.d_ff;
        let dh = self.config.head_dim();
        let inv_sqrt_dh = 1.0 / (dh as f32).sqrt();
        let DecodeState { pos, kv, scratch: st } = state;
        let pos0 = *pos;
        let seq = pos0 + n;
        let bs = kv.pool.block_size();
        let ScratchSpace { prefill: pf, quant, hn, logits, .. } = st;

        for m in [&mut pf.hs, &mut pf.xs, &mut pf.xqs, &mut pf.qs, &mut pf.ks, &mut pf.vs] {
            ensure_shape(m, n, d);
        }
        for m in [&mut pf.qqs, &mut pf.ctxs, &mut pf.ctxqs, &mut pf.proj] {
            ensure_shape(m, n, d);
        }
        for m in [&mut pf.gates, &mut pf.ups, &mut pf.act_qs] {
            ensure_shape(m, n, ff);
        }
        for m in [&mut pf.scores, &mut pf.weights] {
            ensure_shape(m, n, seq);
        }
        pf.lens.clear();
        pf.lens.extend((0..n).map(|r| pos0 + r + 1));

        for (r, &t) in tokens.iter().enumerate() {
            pf.hs.row_mut(r).copy_from_slice(self.embedding.row(t as usize));
        }

        for (l, lw) in self.layers.iter().enumerate() {
            // ---- attention ----
            for r in 0..n {
                self.norm_into(pf.hs.row(r), &lw.attn_gain, &lw.attn_bias, pf.xs.row_mut(r));
            }
            self.quant_low_block(&pf.xs, &mut pf.xqs, quant);
            pf.xqs.matmul_t_into(&lw.wq_t, &mut pf.qs);
            pf.xqs.matmul_t_into(&lw.wk_t, &mut pf.ks);
            pf.xqs.matmul_t_into(&lw.wv_t, &mut pf.vs);
            for r in 0..n {
                let p = pos0 + r;
                for head in 0..self.config.n_heads {
                    let s = head * dh;
                    ops::rope_row(&mut pf.qs.row_mut(r)[s..s + dh], p, self.rope_theta);
                    ops::rope_row(&mut pf.ks.row_mut(r)[s..s + dh], p, self.rope_theta);
                }
            }
            self.quant_high_block(&pf.qs, &mut pf.qqs, quant);
            // Quantize the chunk's K/V rows straight into the paged cache,
            // one contiguous segment per block the chunk spans (the block
            // quantizer is row-wise, so the split is bit-invisible).
            let mut off = 0;
            while off < n {
                let p = pos0 + off;
                let rows = (bs - p % bs).min(n - off);
                let (ks, vs) = (
                    &pf.ks.as_slice()[off * d..(off + rows) * d],
                    &pf.vs.as_slice()[off * d..(off + rows) * d],
                );
                if kv.quantized() {
                    kv.append_rows_quant(l, p, rows, ks, vs, quant);
                } else {
                    let (k_dst, v_dst) = kv.rows_mut(l, p, rows);
                    self.quant_high_flat(ks, d, k_dst, quant);
                    self.quant_high_flat(vs, d, v_dst, quant);
                }
                off += rows;
            }

            pf.ctxs.as_mut_slice().fill(0.0);
            for head in 0..self.config.n_heads {
                let s = head * dh;
                for (r, &len) in pf.lens.iter().enumerate() {
                    let q_h = &pf.qqs.row(r)[s..s + dh];
                    let srow = &mut pf.scores.row_mut(r)[..len];
                    if kv.quantized() {
                        for (score, k_row) in srow.iter_mut().zip(kv.k_qrows(l, len)) {
                            *score = k_row.dot_range(q_h, s) * inv_sqrt_dh;
                        }
                    } else {
                        for (score, k_row) in srow.iter_mut().zip(kv.k_rows(l, len)) {
                            *score = ops::dot(q_h, &k_row[s..s + dh]) * inv_sqrt_dh;
                        }
                    }
                }
                match &self.log2_softmax {
                    None => {
                        for (r, &len) in pf.lens.iter().enumerate() {
                            ops::softmax_into(
                                &pf.scores.row(r)[..len],
                                &mut pf.weights.row_mut(r)[..len],
                            );
                        }
                    }
                    Some(sm) => sm.probs_rows_into(&pf.scores, &pf.lens, &mut pf.weights),
                }
                for (r, &len) in pf.lens.iter().enumerate() {
                    let ctx = &mut pf.ctxs.row_mut(r)[s..s + dh];
                    let weights = &pf.weights.row(r)[..len];
                    if kv.quantized() {
                        for (&w, v_row) in weights.iter().zip(kv.v_qrows(l, len)) {
                            if w == 0.0 {
                                continue;
                            }
                            v_row.axpy_range(w, s, ctx);
                        }
                    } else {
                        for (&w, v_row) in weights.iter().zip(kv.v_rows(l, len)) {
                            if w == 0.0 {
                                continue;
                            }
                            for (c, &vv) in ctx.iter_mut().zip(&v_row[s..s + dh]) {
                                *c += w * vv;
                            }
                        }
                    }
                }
            }
            self.quant_high_block(&pf.ctxs, &mut pf.ctxqs, quant);
            pf.ctxqs.matmul_t_into(&lw.wo_t, &mut pf.proj);
            for (hh, oo) in pf.hs.as_mut_slice().iter_mut().zip(pf.proj.as_slice()) {
                *hh += oo;
            }

            // ---- FFN ----
            for r in 0..n {
                self.norm_into(pf.hs.row(r), &lw.ffn_gain, &lw.ffn_bias, pf.xs.row_mut(r));
            }
            self.quant_low_block(&pf.xs, &mut pf.xqs, quant);
            // The activation always lands in `pf.gates`.
            match &lw.w_gate_t {
                Some(gate) => {
                    pf.xqs.matmul_t_into(gate, &mut pf.gates);
                    pf.xqs.matmul_t_into(&lw.w_up_t, &mut pf.ups);
                    for (g, &u) in pf.gates.as_mut_slice().iter_mut().zip(pf.ups.as_slice()) {
                        *g = ops::silu(*g) * u;
                    }
                }
                None => {
                    pf.xqs.matmul_t_into(&lw.w_up_t, &mut pf.gates);
                    for g in pf.gates.as_mut_slice() {
                        *g = ops::relu(*g);
                    }
                }
            }
            self.quant_high_block(&pf.gates, &mut pf.act_qs, quant);
            pf.act_qs.matmul_t_into(&lw.w_down_t, &mut pf.proj);
            for (hh, dd) in pf.hs.as_mut_slice().iter_mut().zip(pf.proj.as_slice()) {
                *hh += dd;
            }
        }

        *pos += n;
        match logits_out {
            LogitsOut::None => {}
            LogitsOut::Last { keep_scratch } => {
                self.norm_into(pf.hs.row(n - 1), &self.final_norm_gain, &self.final_norm_bias, hn);
                self.unembedding.matvec_into(hn, logits);
                for v in logits.iter_mut() {
                    *v *= self.logit_scale;
                }
                if !keep_scratch {
                    // A prompt's final chunk: the prompt is consumed, so
                    // drop the chunk-sized buffers instead of carrying ~13
                    // `chunk × d_ff`/`chunk × seq` matrices through the
                    // sequence's whole decode lifetime (they regrow lazily
                    // if another prompt chunk ever arrives). Draft
                    // catch-up chunks set `keep_scratch` — they recur
                    // every step.
                    *pf = PrefillScratch::default();
                }
            }
            LogitsOut::All(out) => {
                // Per-row final norm + unembedding with the single-token
                // kernels, so row `r` is bit-identical to the logits a
                // `decode_step` at position `pos0 + r` would produce. The
                // chunk scratch stays alive — see `verify_chunk_into`.
                ensure_shape(out, n, self.config.vocab);
                for r in 0..n {
                    self.norm_into(pf.hs.row(r), &self.final_norm_gain, &self.final_norm_bias, hn);
                    let row = out.row_mut(r);
                    self.unembedding.matvec_into(hn, row);
                    for v in row.iter_mut() {
                        *v *= self.logit_scale;
                    }
                }
            }
        }
    }

    /// Full-sequence forward pass: runs the incremental decoder over
    /// `tokens` and stacks the per-position next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn forward(&self, tokens: &[u32]) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut state = self.begin_decode();
        let mut out = Matrix::zeros(tokens.len(), self.config.vocab);
        for (i, &t) in tokens.iter().enumerate() {
            self.decode_step_into(&mut state, t, out.row_mut(i));
        }
        out
    }

    /// As [`Model::forward`] with a recorder attached.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn forward_recorded(&self, tokens: &[u32], recorder: &mut dyn Recorder) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut state = self.begin_decode();
        let mut out = Matrix::zeros(tokens.len(), self.config.vocab);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = self.decode_step_recorded(&mut state, t, Some(recorder));
            out.row_mut(i).copy_from_slice(&logits);
        }
        out
    }

    fn norm_into(&self, x: &[f32], gain: &[f32], bias: &[f32], out: &mut [f32]) {
        match self.config.arch {
            Arch::Llama => ops::rms_norm_into(x, gain, 1e-5, out),
            Arch::Opt => ops::layer_norm_into(x, gain, bias, 1e-5, out),
        }
    }

    pub(crate) fn norm(&self, x: &[f32], gain: &[f32], bias: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; x.len()];
        self.norm_into(x, gain, bias, &mut out);
        out
    }

    fn quant_low_into(&self, x: &[f32], out: &mut [f32], scratch: &mut EncodeScratch) {
        match &self.low_q {
            Some(q) => q.quantize_dequantize_scratch(x, out, scratch),
            None => bf16_roundtrip_into(x, out),
        }
    }

    fn quant_high_into(&self, x: &[f32], out: &mut [f32], scratch: &mut EncodeScratch) {
        match &self.high_q {
            Some(q) => q.quantize_dequantize_scratch(x, out, scratch),
            None => bf16_roundtrip_into(x, out),
        }
    }

    /// Low-bit quantization of every row of a chunk matrix through the
    /// shared [`EncodeScratch`] — bit-identical to [`Model::quant_low_into`]
    /// per row.
    fn quant_low_block(&self, x: &Matrix, out: &mut Matrix, scratch: &mut EncodeScratch) {
        match &self.low_q {
            Some(q) => q.quantize_dequantize_block_scratch(
                x.as_slice(),
                x.cols(),
                out.as_mut_slice(),
                scratch,
            ),
            None => bf16_roundtrip_into(x.as_slice(), out.as_mut_slice()),
        }
    }

    /// High-bit quantization of every row of a chunk matrix (see
    /// [`Model::quant_low_block`]).
    fn quant_high_block(&self, x: &Matrix, out: &mut Matrix, scratch: &mut EncodeScratch) {
        self.quant_high_flat(x.as_slice(), x.cols(), out.as_mut_slice(), scratch);
    }

    /// High-bit quantization of `width`-wide rows of a flat row-major
    /// block, writing straight into a flat destination — used to quantize a
    /// chunk's K/V rows directly into the contiguous cache.
    fn quant_high_flat(
        &self,
        x: &[f32],
        width: usize,
        out: &mut [f32],
        scratch: &mut EncodeScratch,
    ) {
        match &self.high_q {
            Some(q) => q.quantize_dequantize_block_scratch(x, width, out, scratch),
            None => bf16_roundtrip_into(x, out),
        }
    }

    pub(crate) fn quant_low(&self, x: &[f32]) -> Vec<f32> {
        match &self.low_q {
            Some(q) => q.quantize_dequantize(x),
            None => bf16_roundtrip(x),
        }
    }

    pub(crate) fn quant_high(&self, x: &[f32]) -> Vec<f32> {
        match &self.high_q {
            Some(q) => q.quantize_dequantize(x),
            None => bf16_roundtrip(x),
        }
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Model({} under {}, {} layers, d={})",
            self.config.name, self.scheme.name, self.config.n_layers, self.config.d_model
        )
    }
}

fn bf16_roundtrip(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| opal_numerics::Bf16::from_f32(v).to_f32()).collect()
}

fn bf16_roundtrip_into(x: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o = opal_numerics::Bf16::from_f32(v).to_f32();
    }
}

fn bf16_matrix(m: &Matrix) -> Matrix {
    m.map(|v| opal_numerics::Bf16::from_f32(v).to_f32())
}

fn process_identity(raw: &ModelWeights) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .map(|l| ReadyLayer {
            wq_t: l.wq.transpose(),
            wk_t: l.wk.transpose(),
            wv_t: l.wv.transpose(),
            wo_t: l.wo.transpose(),
            w_gate_t: l.w_gate.as_ref().map(Matrix::transpose),
            w_up_t: l.w_up.transpose(),
            w_down_t: l.w_down.transpose(),
            attn_gain: l.attn_norm_gain.clone(),
            attn_bias: l.attn_norm_bias.clone(),
            ffn_gain: l.ffn_norm_gain.clone(),
            ffn_bias: l.ffn_norm_bias.clone(),
        })
        .collect()
}

fn process_bf16(raw: &ModelWeights) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .map(|l| ReadyLayer {
            wq_t: bf16_matrix(&l.wq).transpose(),
            wk_t: bf16_matrix(&l.wk).transpose(),
            wv_t: bf16_matrix(&l.wv).transpose(),
            wo_t: bf16_matrix(&l.wo).transpose(),
            w_gate_t: l.w_gate.as_ref().map(|m| bf16_matrix(m).transpose()),
            w_up_t: bf16_matrix(&l.w_up).transpose(),
            w_down_t: bf16_matrix(&l.w_down).transpose(),
            attn_gain: l.attn_norm_gain.clone(),
            attn_bias: l.attn_norm_bias.clone(),
            ffn_gain: l.ffn_norm_gain.clone(),
            ffn_bias: l.ffn_norm_bias.clone(),
        })
        .collect()
}

fn process_owq(
    raw: &ModelWeights,
    owq: &opal_quant::OwqQuantizer,
    rec: &SecondMomentRecorder,
) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .enumerate()
        .map(|(l, lw)| {
            let d = lw.wq.rows();
            let ff = lw.w_up.cols();
            let qkv_stats = rec.second_moment(l, Site::QkvInput).unwrap_or_else(|| vec![1.0; d]);
            let proj_stats = rec.second_moment(l, Site::ProjInput).unwrap_or_else(|| vec![1.0; d]);
            let fc1_stats = rec.second_moment(l, Site::Fc1Input).unwrap_or_else(|| vec![1.0; d]);
            let fc2_stats = rec.second_moment(l, Site::Fc2Input).unwrap_or_else(|| vec![1.0; ff]);
            ReadyLayer {
                wq_t: owq.quantize(&lw.wq, &qkv_stats).dequantized().transpose(),
                wk_t: owq.quantize(&lw.wk, &qkv_stats).dequantized().transpose(),
                wv_t: owq.quantize(&lw.wv, &qkv_stats).dequantized().transpose(),
                wo_t: owq.quantize(&lw.wo, &proj_stats).dequantized().transpose(),
                w_gate_t: lw
                    .w_gate
                    .as_ref()
                    .map(|g| owq.quantize(g, &fc1_stats).dequantized().transpose()),
                w_up_t: owq.quantize(&lw.w_up, &fc1_stats).dequantized().transpose(),
                w_down_t: owq.quantize(&lw.w_down, &fc2_stats).dequantized().transpose(),
                attn_gain: lw.attn_norm_gain.clone(),
                attn_bias: lw.attn_norm_bias.clone(),
                ffn_gain: lw.ffn_norm_gain.clone(),
                ffn_bias: lw.ffn_norm_bias.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::QuantScheme;

    fn tiny_model(scheme: QuantScheme) -> Model {
        Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme")
    }

    #[test]
    fn forward_shapes() {
        let m = tiny_model(QuantScheme::bf16());
        let logits = m.forward(&[1, 2, 3, 4]);
        assert_eq!(logits.rows(), 4);
        assert_eq!(logits.cols(), 64);
        for r in 0..4 {
            assert!(logits.row(r).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn decode_matches_forward() {
        let m = tiny_model(QuantScheme::bf16());
        let tokens = [5u32, 9, 1, 33, 7];
        let full = m.forward(&tokens);
        let mut state = m.begin_decode();
        for (i, &t) in tokens.iter().enumerate() {
            let step = m.decode_step(&mut state, t);
            for (a, b) in full.row(i).iter().zip(&step) {
                assert_eq!(a, b, "position {i}");
            }
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = tiny_model(QuantScheme::mxopal_w4a47());
        let b = tiny_model(QuantScheme::mxopal_w4a47());
        let la = a.forward(&[3, 1, 4]);
        let lb = b.forward(&[3, 1, 4]);
        assert_eq!(la.as_slice(), lb.as_slice());
    }

    #[test]
    fn quantization_changes_logits_but_stays_close() {
        let base = tiny_model(QuantScheme::bf16());
        let quant = tiny_model(QuantScheme::mxopal_w4a47());
        let tokens = [2u32, 8, 20, 11];
        let lb = base.forward(&tokens);
        let lq = quant.forward(&tokens);
        assert_ne!(lb.as_slice(), lq.as_slice());
        // Logit perturbation should be bounded (not exploding).
        let mse = opal_tensor::stats::mse(lb.as_slice(), lq.as_slice());
        let var = opal_tensor::stats::variance(lb.as_slice());
        assert!(mse < var, "quantization noise ({mse}) must not swamp signal ({var})");
    }

    #[test]
    fn post_norm_activations_have_outliers() {
        // The core premise: the tensors quantized to low bits exhibit
        // channel outliers.
        let m = tiny_model(QuantScheme::bf16());
        let mut cap = ActivationCapture::new(0, 8);
        m.forward_recorded(&[1, 2, 3, 4, 5, 6, 7, 8], &mut cap);
        let x = cap.activations(Site::QkvInput).expect("captured");
        let kurt = opal_tensor::stats::excess_kurtosis(x.as_slice());
        assert!(kurt > 5.0, "post-norm activations must be heavy-tailed, kurtosis {kurt}");
    }

    #[test]
    fn recorder_sites_all_fire() {
        let m = tiny_model(QuantScheme::bf16());
        let mut cap = ActivationCapture::new(1, 4);
        m.forward_recorded(&[1, 2, 3], &mut cap);
        for (site, _) in Site::fig4_sites() {
            assert!(cap.activations(site).is_some(), "site {site:?} not recorded");
        }
        assert!(cap.activations(Site::QkvInput).is_some());
    }

    #[test]
    fn owq_calibration_runs() {
        let m = tiny_model(QuantScheme::owq_w4a16());
        let logits = m.forward(&[1, 2, 3]);
        assert!(logits.row(2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log2_softmax_scheme_runs() {
        let m = tiny_model(QuantScheme::mxopal_w4a47().with_log2_softmax(5));
        let logits = m.forward(&[4, 4, 4, 4]);
        assert!(logits.row(3).iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_vocab_token() {
        let m = tiny_model(QuantScheme::bf16());
        let mut s = m.begin_decode();
        m.decode_step(&mut s, 64);
    }

    #[test]
    fn verify_chunk_matches_sequential_decode_bitwise() {
        for scheme in [QuantScheme::bf16(), QuantScheme::mxopal_w4a47()] {
            let m = tiny_model(scheme);
            let prompt = [3u32, 14, 15, 9, 2];
            let tail = [6u32, 5, 35, 8];
            // Sequential: prefill then decode the tail token by token.
            let mut seq_state = m.begin_decode();
            let mut last = vec![0.0; m.config().vocab];
            m.prefill_into(&mut seq_state, &prompt, &mut last);
            let mut seq_logits = Vec::new();
            for &t in &tail {
                m.decode_step_into(&mut seq_state, t, &mut last);
                seq_logits.push(last.clone());
            }
            // Fused: one verify pass over the same tail.
            let mut ver_state = m.begin_decode();
            m.prefill_into(&mut ver_state, &prompt, &mut last);
            let mut rows = Matrix::zeros(0, 0);
            m.verify_chunk_into(&mut ver_state, &tail, &mut rows);
            assert_eq!(rows.rows(), tail.len());
            for (r, want) in seq_logits.iter().enumerate() {
                for (c, (a, b)) in rows.row(r).iter().zip(want).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r} col {c}");
                }
            }
            assert_eq!(ver_state.pos(), seq_state.pos());
        }
    }

    #[test]
    fn truncate_then_redecode_is_bit_identical() {
        let m = tiny_model(QuantScheme::mxopal_w4a47());
        let tokens = [1u32, 2, 3, 4, 5, 6];
        // Baseline: decode straight through.
        let mut base = m.begin_decode();
        let mut want = vec![0.0; m.config().vocab];
        for &t in &tokens {
            m.decode_step_into(&mut base, t, &mut want);
        }
        // Speculative shape: decode 4, verify 5 bogus rows, roll back,
        // then decode the real remainder.
        let mut spec = m.begin_decode();
        let mut got = vec![0.0; m.config().vocab];
        for &t in &tokens[..4] {
            m.decode_step_into(&mut spec, t, &mut got);
        }
        let mut rows = Matrix::zeros(0, 0);
        m.verify_chunk_into(&mut spec, &[60, 61, 62, 63, 59], &mut rows);
        spec.truncate(4);
        assert_eq!(spec.pos(), 4);
        for &t in &tokens[4..] {
            m.decode_step_into(&mut spec, t, &mut got);
        }
        for (c, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "col {c}");
        }
    }

    #[test]
    fn draft_truncated_shares_shallow_stack() {
        let m = tiny_model(QuantScheme::mxopal_w4a47());
        let draft = m.draft_truncated(1);
        assert_eq!(draft.config().n_layers, 1);
        let logits = draft.forward(&[1, 2, 3]);
        assert!(logits.row(2).iter().all(|v| v.is_finite()));
        // A full-depth sibling reproduces the parent's logits exactly.
        let mirror = m.draft_truncated(m.config().n_layers);
        let a = m.forward(&[7, 8, 9]);
        let b = mirror.forward(&[7, 8, 9]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn draft_truncated_rejects_zero_depth() {
        tiny_model(QuantScheme::bf16()).draft_truncated(0);
    }

    #[test]
    fn second_moment_recorder_math() {
        let mut rec = SecondMomentRecorder::new();
        rec.record(0, Site::QkvInput, &[1.0, 2.0]);
        rec.record(0, Site::QkvInput, &[3.0, 0.0]);
        let sm = rec.second_moment(0, Site::QkvInput).unwrap();
        assert_eq!(sm, vec![5.0, 2.0]); // (1+9)/2, (4+0)/2
        assert!(rec.second_moment(1, Site::QkvInput).is_none());
    }
}
