//! The quantized decoder-only transformer and its generation loop.

use std::collections::HashMap;

use opal_quant::{QuantError, Quantizer};
use opal_softmax::Log2Softmax;
use opal_tensor::ops;
use opal_tensor::Matrix;

use crate::config::{Arch, ModelConfig};
use crate::scheme::{QuantScheme, SoftmaxKind};
use crate::weights::{generate_weights, ModelWeights};

/// The observation points inside a decoder block (Fig. 5): the inputs of
/// every MxV the paper quantizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Post-LayerNorm input shared by the Q/K/V projections (low-bit).
    QkvInput,
    /// Query vectors after RoPE (input of `Q·Kᵀ`, high-bit).
    Query,
    /// Key vectors after RoPE (input of `Q·Kᵀ`, high-bit).
    Key,
    /// Value vectors (input of `Attn·V`, high-bit).
    Value,
    /// Attention output entering the projection layer (high-bit).
    ProjInput,
    /// Post-LayerNorm input of FC1 (low-bit).
    Fc1Input,
    /// FFN hidden activation entering FC2 (high-bit).
    Fc2Input,
}

impl Site {
    /// The six sites reported in Fig. 4, in the paper's column order.
    pub fn fig4_sites() -> [(Site, &'static str); 6] {
        [
            (Site::Query, "query"),
            (Site::Key, "key"),
            (Site::Value, "value"),
            (Site::ProjInput, "proj"),
            (Site::Fc1Input, "fc1"),
            (Site::Fc2Input, "fc2"),
        ]
    }
}

/// Observer of intermediate activations during decoding.
pub trait Recorder {
    /// Called once per site per decoded token with the (unquantized)
    /// activation vector.
    fn record(&mut self, layer: usize, site: Site, x: &[f32]);
}

/// Collects per-channel second moments `E[x_i²]` — the OWQ sensitivity
/// statistic — at the four weight-input sites.
#[derive(Debug, Default)]
pub struct SecondMomentRecorder {
    sums: HashMap<(usize, Site), (Vec<f64>, u64)>,
}

impl SecondMomentRecorder {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mean second moment per channel at `(layer, site)`, or `None` if
    /// never recorded.
    pub fn second_moment(&self, layer: usize, site: Site) -> Option<Vec<f32>> {
        self.sums
            .get(&(layer, site))
            .map(|(s, n)| s.iter().map(|&v| (v / *n as f64) as f32).collect())
    }
}

impl Recorder for SecondMomentRecorder {
    fn record(&mut self, layer: usize, site: Site, x: &[f32]) {
        let entry = self.sums.entry((layer, site)).or_insert_with(|| (vec![0.0; x.len()], 0));
        for (s, &v) in entry.0.iter_mut().zip(x) {
            *s += f64::from(v) * f64::from(v);
        }
        entry.1 += 1;
    }
}

/// Captures raw activation rows at every site of one target layer (used to
/// build the Fig. 3 / Fig. 4 tensors).
#[derive(Debug)]
pub struct ActivationCapture {
    target_layer: usize,
    rows: HashMap<Site, Vec<Vec<f32>>>,
    max_rows: usize,
}

impl ActivationCapture {
    /// Captures up to `max_rows` activation vectors per site at
    /// `target_layer`.
    pub fn new(target_layer: usize, max_rows: usize) -> Self {
        ActivationCapture { target_layer, rows: HashMap::new(), max_rows }
    }

    /// The captured activations at `site` as a matrix (one row per token),
    /// or `None` if nothing was captured.
    pub fn activations(&self, site: Site) -> Option<Matrix> {
        let rows = self.rows.get(&site)?;
        let first = rows.first()?;
        let mut m = Matrix::zeros(rows.len(), first.len());
        for (r, row) in rows.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        Some(m)
    }
}

impl Recorder for ActivationCapture {
    fn record(&mut self, layer: usize, site: Site, x: &[f32]) {
        if layer != self.target_layer {
            return;
        }
        let rows = self.rows.entry(site).or_default();
        if rows.len() < self.max_rows {
            rows.push(x.to_vec());
        }
    }
}

struct ReadyLayer {
    // All stored transposed (d_out × d_in) so a token step is a matvec.
    wq_t: Matrix,
    wk_t: Matrix,
    wv_t: Matrix,
    wo_t: Matrix,
    w_gate_t: Option<Matrix>,
    w_up_t: Matrix,
    w_down_t: Matrix,
    attn_gain: Vec<f32>,
    attn_bias: Vec<f32>,
    ffn_gain: Vec<f32>,
    ffn_bias: Vec<f32>,
}

/// Per-layer key/value cache for incremental decoding.
#[derive(Debug, Default)]
struct LayerCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

/// Decoding state: the position counter and KV caches.
pub struct DecodeState {
    pos: usize,
    layers: Vec<LayerCache>,
}

impl DecodeState {
    /// Number of tokens decoded so far.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl std::fmt::Debug for DecodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DecodeState(pos={}, layers={})", self.pos, self.layers.len())
    }
}

/// A decoder-only transformer executing under a [`QuantScheme`].
///
/// The model is built from deterministic synthetic weights (see
/// [`crate::weights`]); with [`crate::WeightScheme::Owq`] the weights are
/// calibrated and quantized at construction. All activation quantization
/// happens token-by-token at the Fig. 5 hook points during decoding.
///
/// # Example
///
/// ```
/// use opal_model::{Model, ModelConfig, QuantScheme};
///
/// let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42)?;
/// let logits = model.forward(&[1, 2, 3]);
/// assert_eq!(logits.rows(), 3);
/// assert_eq!(logits.cols(), model.config().vocab);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
pub struct Model {
    config: ModelConfig,
    scheme: QuantScheme,
    embedding: Matrix,
    unembedding: Matrix,
    final_norm_gain: Vec<f32>,
    final_norm_bias: Vec<f32>,
    layers: Vec<ReadyLayer>,
    outlier_channels: Vec<usize>,
    low_q: Option<Box<dyn Quantizer>>,
    high_q: Option<Box<dyn Quantizer>>,
    log2_softmax: Option<Log2Softmax>,
    rope_theta: f32,
    /// Final logit scale. A random (untrained) unembedding produces logits
    /// with standard deviation ≈ √d_model, which would make the model
    /// near-deterministic (PPL → 1) and hide quantization effects entirely;
    /// scaling to ≈2.5 standard deviations gives the teacher an entropy
    /// profile comparable to a trained LLM on natural text (PPL in the
    /// single digits against a few-hundred-token vocabulary).
    logit_scale: f32,
}

impl Model {
    /// Builds a model with synthetic weights from `seed`, quantized
    /// according to `scheme`.
    ///
    /// With OWQ weights this runs a short calibration pass (48 tokens of a
    /// deterministic stream) on the unquantized model to collect the OWQ
    /// channel sensitivities, exactly mirroring the paper's use of a
    /// calibration set.
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the scheme's quantizer parameters are
    /// invalid.
    pub fn new(config: ModelConfig, scheme: QuantScheme, seed: u64) -> Result<Self, QuantError> {
        let raw = generate_weights(&config, seed);
        Self::from_weights(config, scheme, raw, seed)
    }

    /// Builds a model from explicit raw weights (mainly for tests).
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the scheme's quantizer parameters are
    /// invalid.
    pub fn from_weights(
        config: ModelConfig,
        scheme: QuantScheme,
        raw: ModelWeights,
        seed: u64,
    ) -> Result<Self, QuantError> {
        let (low_q, high_q) = match &scheme.acts {
            Some(a) => (Some(a.low_quantizer()?), Some(a.high_quantizer()?)),
            None => (None, None),
        };
        let log2_softmax = match scheme.softmax {
            SoftmaxKind::Exact => None,
            SoftmaxKind::Log2 { bits } => Some(Log2Softmax::new(bits)),
        };

        let processed = match scheme.weights.quantizer()? {
            None => process_bf16(&raw),
            Some(owq) => {
                // Calibration pass on the unquantized model.
                let fp = Model {
                    config: config.clone(),
                    scheme: QuantScheme::bf16(),
                    embedding: raw.embedding.clone(),
                    unembedding: raw.unembedding.clone(),
                    final_norm_gain: raw.final_norm_gain.clone(),
                    final_norm_bias: raw.final_norm_bias.clone(),
                    layers: process_identity(&raw),
                    outlier_channels: raw.outlier_channels.clone(),
                    low_q: None,
                    high_q: None,
                    log2_softmax: None,
                    rope_theta: 10_000.0,
                    logit_scale: 2.5 / (config.d_model as f32).sqrt(),
                };
                let mut rec = SecondMomentRecorder::new();
                let mut state = fp.begin_decode();
                let mut token = (seed % config.vocab as u64) as u32;
                for _ in 0..48.min(4 * config.vocab) {
                    let logits = fp.decode_step_recorded(&mut state, token, Some(&mut rec));
                    token = ops::argmax(&logits).unwrap_or(0) as u32;
                    // Perturb deterministically to avoid degenerate loops.
                    token = (token.wrapping_mul(31).wrapping_add(state.pos() as u32))
                        % config.vocab as u32;
                }
                process_owq(&raw, &owq, &rec)
            }
        };

        let logit_scale = 2.5 / (config.d_model as f32).sqrt();
        Ok(Model {
            config,
            scheme,
            embedding: raw.embedding,
            unembedding: raw.unembedding,
            final_norm_gain: raw.final_norm_gain,
            final_norm_bias: raw.final_norm_bias,
            layers: processed,
            outlier_channels: raw.outlier_channels,
            low_q,
            high_q,
            log2_softmax,
            rope_theta: 10_000.0,
            logit_scale,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The active quantization scheme.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The persistent activation-outlier channel indices.
    pub fn outlier_channels(&self) -> &[usize] {
        &self.outlier_channels
    }

    /// Starts a fresh decoding session.
    pub fn begin_decode(&self) -> DecodeState {
        DecodeState {
            pos: 0,
            layers: (0..self.config.n_layers).map(|_| LayerCache::default()).collect(),
        }
    }

    /// Decodes one token, returning the next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn decode_step(&self, state: &mut DecodeState, token: u32) -> Vec<f32> {
        self.decode_step_recorded(state, token, None)
    }

    /// Feeds a whole prompt through the decoder, returning the logits after
    /// its last token.
    ///
    /// This is the shared prompt-consumption path of every generation loop:
    /// the single-sequence samplers ([`crate::sampling::generate`], the
    /// pipeline's greedy loop) and the batched `opal-serve` scheduler all
    /// prefill through here, so they are guaranteed to agree token-for-token
    /// with a raw [`Model::decode_step`] loop.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or contains out-of-range tokens.
    pub fn prefill(&self, state: &mut DecodeState, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.decode_step(state, t);
        }
        logits
    }

    /// As [`Model::decode_step`], optionally reporting activations to a
    /// [`Recorder`].
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn decode_step_recorded(
        &self,
        state: &mut DecodeState,
        token: u32,
        mut recorder: Option<&mut dyn Recorder>,
    ) -> Vec<f32> {
        assert!((token as usize) < self.config.vocab, "token {token} out of range");
        let d = self.config.d_model;
        let dh = self.config.head_dim();
        let pos = state.pos;
        let inv_sqrt_dh = 1.0 / (dh as f32).sqrt();

        let mut h: Vec<f32> = self.embedding.row(token as usize).to_vec();

        for (l, lw) in self.layers.iter().enumerate() {
            // ---- attention ----
            let x = self.norm(&h, &lw.attn_gain, &lw.attn_bias);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::QkvInput, &x);
            }
            let xq = self.quant_low(&x);
            let mut q = lw.wq_t.matvec(&xq);
            let mut k = lw.wk_t.matvec(&xq);
            let v = lw.wv_t.matvec(&xq);
            for head in 0..self.config.n_heads {
                let s = head * dh;
                ops::rope_row(&mut q[s..s + dh], pos, self.rope_theta);
                ops::rope_row(&mut k[s..s + dh], pos, self.rope_theta);
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Query, &q);
                rec.record(l, Site::Key, &k);
                rec.record(l, Site::Value, &v);
            }
            let qq = self.quant_high(&q);
            let kq = self.quant_high(&k);
            let vq = self.quant_high(&v);
            let cache = &mut state.layers[l];
            cache.k.push(kq);
            cache.v.push(vq);

            let mut ctx = vec![0.0f32; d];
            let seq = cache.k.len();
            let mut scores = vec![0.0f32; seq];
            for head in 0..self.config.n_heads {
                let s = head * dh;
                let q_h = &qq[s..s + dh];
                for (j, k_row) in cache.k.iter().enumerate() {
                    let dot: f64 = q_h
                        .iter()
                        .zip(&k_row[s..s + dh])
                        .map(|(&a, &b)| f64::from(a) * f64::from(b))
                        .sum();
                    scores[j] = dot as f32 * inv_sqrt_dh;
                }
                let weights = match &self.log2_softmax {
                    None => {
                        let mut w = vec![0.0f32; seq];
                        ops::softmax_into(&scores, &mut w);
                        w
                    }
                    Some(sm) => sm.probs(&scores),
                };
                for (j, &w) in weights.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let v_row = &cache.v[j][s..s + dh];
                    for (c, &vv) in ctx[s..s + dh].iter_mut().zip(v_row) {
                        *c += w * vv;
                    }
                }
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::ProjInput, &ctx);
            }
            let ctxq = self.quant_high(&ctx);
            let o = lw.wo_t.matvec(&ctxq);
            for (hh, oo) in h.iter_mut().zip(&o) {
                *hh += oo;
            }

            // ---- FFN ----
            let x2 = self.norm(&h, &lw.ffn_gain, &lw.ffn_bias);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc1Input, &x2);
            }
            let x2q = self.quant_low(&x2);
            let a: Vec<f32> = match (&lw.w_gate_t, self.config.arch) {
                (Some(gate), _) => {
                    let g = gate.matvec(&x2q);
                    let u = lw.w_up_t.matvec(&x2q);
                    g.iter().zip(&u).map(|(&gv, &uv)| ops::silu(gv) * uv).collect()
                }
                (None, _) => lw.w_up_t.matvec(&x2q).iter().map(|&v| ops::relu(v)).collect(),
            };
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc2Input, &a);
            }
            let aq = self.quant_high(&a);
            let down = lw.w_down_t.matvec(&aq);
            for (hh, dd) in h.iter_mut().zip(&down) {
                *hh += dd;
            }
        }

        state.pos += 1;
        let hn = self.norm(&h, &self.final_norm_gain, &self.final_norm_bias);
        let mut logits = self.unembedding.matvec(&hn);
        for v in &mut logits {
            *v *= self.logit_scale;
        }
        logits
    }

    /// Full-sequence forward pass: runs the incremental decoder over
    /// `tokens` and stacks the per-position next-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn forward(&self, tokens: &[u32]) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut state = self.begin_decode();
        let mut out = Matrix::zeros(tokens.len(), self.config.vocab);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = self.decode_step(&mut state, t);
            out.row_mut(i).copy_from_slice(&logits);
        }
        out
    }

    /// As [`Model::forward`] with a recorder attached.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-range ids.
    pub fn forward_recorded(&self, tokens: &[u32], recorder: &mut dyn Recorder) -> Matrix {
        assert!(!tokens.is_empty(), "empty token sequence");
        let mut state = self.begin_decode();
        let mut out = Matrix::zeros(tokens.len(), self.config.vocab);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = self.decode_step_recorded(&mut state, t, Some(recorder));
            out.row_mut(i).copy_from_slice(&logits);
        }
        out
    }

    fn norm(&self, x: &[f32], gain: &[f32], bias: &[f32]) -> Vec<f32> {
        let m = Matrix::from_row_slice(x);
        let normed = match self.config.arch {
            Arch::Llama => ops::rms_norm(&m, gain, 1e-5),
            Arch::Opt => ops::layer_norm(&m, gain, bias, 1e-5),
        };
        normed.into_vec()
    }

    fn quant_low(&self, x: &[f32]) -> Vec<f32> {
        match &self.low_q {
            Some(q) => q.quantize_dequantize(x),
            None => bf16_roundtrip(x),
        }
    }

    fn quant_high(&self, x: &[f32]) -> Vec<f32> {
        match &self.high_q {
            Some(q) => q.quantize_dequantize(x),
            None => bf16_roundtrip(x),
        }
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Model({} under {}, {} layers, d={})",
            self.config.name, self.scheme.name, self.config.n_layers, self.config.d_model
        )
    }
}

fn bf16_roundtrip(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| opal_numerics::Bf16::from_f32(v).to_f32()).collect()
}

fn bf16_matrix(m: &Matrix) -> Matrix {
    m.map(|v| opal_numerics::Bf16::from_f32(v).to_f32())
}

fn process_identity(raw: &ModelWeights) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .map(|l| ReadyLayer {
            wq_t: l.wq.transpose(),
            wk_t: l.wk.transpose(),
            wv_t: l.wv.transpose(),
            wo_t: l.wo.transpose(),
            w_gate_t: l.w_gate.as_ref().map(Matrix::transpose),
            w_up_t: l.w_up.transpose(),
            w_down_t: l.w_down.transpose(),
            attn_gain: l.attn_norm_gain.clone(),
            attn_bias: l.attn_norm_bias.clone(),
            ffn_gain: l.ffn_norm_gain.clone(),
            ffn_bias: l.ffn_norm_bias.clone(),
        })
        .collect()
}

fn process_bf16(raw: &ModelWeights) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .map(|l| ReadyLayer {
            wq_t: bf16_matrix(&l.wq).transpose(),
            wk_t: bf16_matrix(&l.wk).transpose(),
            wv_t: bf16_matrix(&l.wv).transpose(),
            wo_t: bf16_matrix(&l.wo).transpose(),
            w_gate_t: l.w_gate.as_ref().map(|m| bf16_matrix(m).transpose()),
            w_up_t: bf16_matrix(&l.w_up).transpose(),
            w_down_t: bf16_matrix(&l.w_down).transpose(),
            attn_gain: l.attn_norm_gain.clone(),
            attn_bias: l.attn_norm_bias.clone(),
            ffn_gain: l.ffn_norm_gain.clone(),
            ffn_bias: l.ffn_norm_bias.clone(),
        })
        .collect()
}

fn process_owq(
    raw: &ModelWeights,
    owq: &opal_quant::OwqQuantizer,
    rec: &SecondMomentRecorder,
) -> Vec<ReadyLayer> {
    raw.layers
        .iter()
        .enumerate()
        .map(|(l, lw)| {
            let d = lw.wq.rows();
            let ff = lw.w_up.cols();
            let qkv_stats = rec.second_moment(l, Site::QkvInput).unwrap_or_else(|| vec![1.0; d]);
            let proj_stats = rec.second_moment(l, Site::ProjInput).unwrap_or_else(|| vec![1.0; d]);
            let fc1_stats = rec.second_moment(l, Site::Fc1Input).unwrap_or_else(|| vec![1.0; d]);
            let fc2_stats = rec.second_moment(l, Site::Fc2Input).unwrap_or_else(|| vec![1.0; ff]);
            ReadyLayer {
                wq_t: owq.quantize(&lw.wq, &qkv_stats).dequantized().transpose(),
                wk_t: owq.quantize(&lw.wk, &qkv_stats).dequantized().transpose(),
                wv_t: owq.quantize(&lw.wv, &qkv_stats).dequantized().transpose(),
                wo_t: owq.quantize(&lw.wo, &proj_stats).dequantized().transpose(),
                w_gate_t: lw
                    .w_gate
                    .as_ref()
                    .map(|g| owq.quantize(g, &fc1_stats).dequantized().transpose()),
                w_up_t: owq.quantize(&lw.w_up, &fc1_stats).dequantized().transpose(),
                w_down_t: owq.quantize(&lw.w_down, &fc2_stats).dequantized().transpose(),
                attn_gain: lw.attn_norm_gain.clone(),
                attn_bias: lw.attn_norm_bias.clone(),
                ffn_gain: lw.ffn_norm_gain.clone(),
                ffn_bias: lw.ffn_norm_bias.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::QuantScheme;

    fn tiny_model(scheme: QuantScheme) -> Model {
        Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme")
    }

    #[test]
    fn forward_shapes() {
        let m = tiny_model(QuantScheme::bf16());
        let logits = m.forward(&[1, 2, 3, 4]);
        assert_eq!(logits.rows(), 4);
        assert_eq!(logits.cols(), 64);
        for r in 0..4 {
            assert!(logits.row(r).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn decode_matches_forward() {
        let m = tiny_model(QuantScheme::bf16());
        let tokens = [5u32, 9, 1, 33, 7];
        let full = m.forward(&tokens);
        let mut state = m.begin_decode();
        for (i, &t) in tokens.iter().enumerate() {
            let step = m.decode_step(&mut state, t);
            for (a, b) in full.row(i).iter().zip(&step) {
                assert_eq!(a, b, "position {i}");
            }
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = tiny_model(QuantScheme::mxopal_w4a47());
        let b = tiny_model(QuantScheme::mxopal_w4a47());
        let la = a.forward(&[3, 1, 4]);
        let lb = b.forward(&[3, 1, 4]);
        assert_eq!(la.as_slice(), lb.as_slice());
    }

    #[test]
    fn quantization_changes_logits_but_stays_close() {
        let base = tiny_model(QuantScheme::bf16());
        let quant = tiny_model(QuantScheme::mxopal_w4a47());
        let tokens = [2u32, 8, 20, 11];
        let lb = base.forward(&tokens);
        let lq = quant.forward(&tokens);
        assert_ne!(lb.as_slice(), lq.as_slice());
        // Logit perturbation should be bounded (not exploding).
        let mse = opal_tensor::stats::mse(lb.as_slice(), lq.as_slice());
        let var = opal_tensor::stats::variance(lb.as_slice());
        assert!(mse < var, "quantization noise ({mse}) must not swamp signal ({var})");
    }

    #[test]
    fn post_norm_activations_have_outliers() {
        // The core premise: the tensors quantized to low bits exhibit
        // channel outliers.
        let m = tiny_model(QuantScheme::bf16());
        let mut cap = ActivationCapture::new(0, 8);
        m.forward_recorded(&[1, 2, 3, 4, 5, 6, 7, 8], &mut cap);
        let x = cap.activations(Site::QkvInput).expect("captured");
        let kurt = opal_tensor::stats::excess_kurtosis(x.as_slice());
        assert!(kurt > 5.0, "post-norm activations must be heavy-tailed, kurtosis {kurt}");
    }

    #[test]
    fn recorder_sites_all_fire() {
        let m = tiny_model(QuantScheme::bf16());
        let mut cap = ActivationCapture::new(1, 4);
        m.forward_recorded(&[1, 2, 3], &mut cap);
        for (site, _) in Site::fig4_sites() {
            assert!(cap.activations(site).is_some(), "site {site:?} not recorded");
        }
        assert!(cap.activations(Site::QkvInput).is_some());
    }

    #[test]
    fn owq_calibration_runs() {
        let m = tiny_model(QuantScheme::owq_w4a16());
        let logits = m.forward(&[1, 2, 3]);
        assert!(logits.row(2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log2_softmax_scheme_runs() {
        let m = tiny_model(QuantScheme::mxopal_w4a47().with_log2_softmax(5));
        let logits = m.forward(&[4, 4, 4, 4]);
        assert!(logits.row(3).iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_vocab_token() {
        let m = tiny_model(QuantScheme::bf16());
        let mut s = m.begin_decode();
        m.decode_step(&mut s, 64);
    }

    #[test]
    fn second_moment_recorder_math() {
        let mut rec = SecondMomentRecorder::new();
        rec.record(0, Site::QkvInput, &[1.0, 2.0]);
        rec.record(0, Site::QkvInput, &[3.0, 0.0]);
        let sm = rec.second_moment(0, Site::QkvInput).unwrap();
        assert_eq!(sm, vec![5.0, 2.0]); // (1+9)/2, (4+0)/2
        assert!(rec.second_moment(1, Site::QkvInput).is_none());
    }
}
