//! The seed decode implementation, kept verbatim as a correctness oracle.
//!
//! [`Model::decode_step`](crate::Model::decode_step) was rewritten to run
//! allocation-free over contiguous KV caches; this module preserves the
//! original (seed) algorithm — per-token `Vec` allocations for every
//! intermediate and `Vec<Vec<f32>>` KV caches — so that
//!
//! 1. equivalence tests can assert the optimized path is **bit-identical**
//!    to the seed over long decodes, and
//! 2. benchmarks can measure the optimized engine against the exact
//!    baseline it replaced.
//!
//! The arithmetic here must never be "improved": it is the specification.

use opal_tensor::ops;
use opal_tensor::Matrix;

use crate::infer::{Model, Recorder, Site};

/// The seed's matrix–vector product, verbatim: one sequential
/// latency-chained `f64` sum per output element (`Iterator::sum`), a fresh
/// `Vec` per call. [`Matrix::matvec`] has since moved to a pipelined
/// 4-accumulator reduction; the baseline must keep the original kernel.
fn seed_matvec(m: &Matrix, v: &[f32]) -> Vec<f32> {
    assert_eq!(v.len(), m.cols(), "vector length mismatch");
    m.iter_rows()
        .map(|row| {
            row.iter().zip(v).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum::<f64>() as f32
        })
        .collect()
}

/// Per-layer key/value cache of the seed implementation: one heap-allocated
/// row per cached position.
#[derive(Debug, Default)]
struct RefLayerCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

/// Decoding state of the seed implementation: position counter plus
/// row-per-position KV caches, no scratch reuse.
pub struct ReferenceDecodeState {
    pos: usize,
    layers: Vec<RefLayerCache>,
}

impl ReferenceDecodeState {
    /// Number of tokens decoded so far.
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl std::fmt::Debug for ReferenceDecodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReferenceDecodeState(pos={}, layers={})", self.pos, self.layers.len())
    }
}

impl Model {
    /// Starts a decoding session against the seed reference path.
    pub fn begin_reference_decode(&self) -> ReferenceDecodeState {
        ReferenceDecodeState {
            pos: 0,
            layers: (0..self.config.n_layers).map(|_| RefLayerCache::default()).collect(),
        }
    }

    /// Decodes one token through the seed implementation, returning the
    /// next-token logits. Agreement with
    /// [`Model::decode_step`](crate::Model::decode_step) is asserted
    /// bit-for-bit over long decodes in `tests/decode_golden.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn reference_decode_step(&self, state: &mut ReferenceDecodeState, token: u32) -> Vec<f32> {
        self.reference_decode_step_recorded(state, token, None)
    }

    /// As [`Model::reference_decode_step`], optionally reporting
    /// activations to a [`Recorder`].
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary range.
    pub fn reference_decode_step_recorded(
        &self,
        state: &mut ReferenceDecodeState,
        token: u32,
        mut recorder: Option<&mut dyn Recorder>,
    ) -> Vec<f32> {
        assert!((token as usize) < self.config.vocab, "token {token} out of range");
        let d = self.config.d_model;
        let dh = self.config.head_dim();
        let pos = state.pos;
        let inv_sqrt_dh = 1.0 / (dh as f32).sqrt();

        let mut h: Vec<f32> = self.embedding.row(token as usize).to_vec();

        for (l, lw) in self.layers.iter().enumerate() {
            // ---- attention ----
            let x = self.norm(&h, &lw.attn_gain, &lw.attn_bias);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::QkvInput, &x);
            }
            let xq = self.quant_low(&x);
            let mut q = seed_matvec(&lw.wq_t, &xq);
            let mut k = seed_matvec(&lw.wk_t, &xq);
            let v = seed_matvec(&lw.wv_t, &xq);
            for head in 0..self.config.n_heads {
                let s = head * dh;
                ops::rope_row(&mut q[s..s + dh], pos, self.rope_theta);
                ops::rope_row(&mut k[s..s + dh], pos, self.rope_theta);
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Query, &q);
                rec.record(l, Site::Key, &k);
                rec.record(l, Site::Value, &v);
            }
            let qq = self.quant_high(&q);
            let kq = self.quant_high(&k);
            let vq = self.quant_high(&v);
            let cache = &mut state.layers[l];
            cache.k.push(kq);
            cache.v.push(vq);

            let mut ctx = vec![0.0f32; d];
            let seq = cache.k.len();
            let mut scores = vec![0.0f32; seq];
            for head in 0..self.config.n_heads {
                let s = head * dh;
                let q_h = &qq[s..s + dh];
                for (j, k_row) in cache.k.iter().enumerate() {
                    let dot: f64 = q_h
                        .iter()
                        .zip(&k_row[s..s + dh])
                        .map(|(&a, &b)| f64::from(a) * f64::from(b))
                        .sum();
                    scores[j] = dot as f32 * inv_sqrt_dh;
                }
                let weights = match &self.log2_softmax {
                    None => {
                        let mut w = vec![0.0f32; seq];
                        ops::softmax_into(&scores, &mut w);
                        w
                    }
                    Some(sm) => sm.probs(&scores),
                };
                for (j, &w) in weights.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let v_row = &cache.v[j][s..s + dh];
                    for (c, &vv) in ctx[s..s + dh].iter_mut().zip(v_row) {
                        *c += w * vv;
                    }
                }
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::ProjInput, &ctx);
            }
            let ctxq = self.quant_high(&ctx);
            let o = seed_matvec(&lw.wo_t, &ctxq);
            for (hh, oo) in h.iter_mut().zip(&o) {
                *hh += oo;
            }

            // ---- FFN ----
            let x2 = self.norm(&h, &lw.ffn_gain, &lw.ffn_bias);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc1Input, &x2);
            }
            let x2q = self.quant_low(&x2);
            let a: Vec<f32> = match &lw.w_gate_t {
                Some(gate) => {
                    let g = seed_matvec(gate, &x2q);
                    let u = seed_matvec(&lw.w_up_t, &x2q);
                    g.iter().zip(&u).map(|(&gv, &uv)| ops::silu(gv) * uv).collect()
                }
                None => seed_matvec(&lw.w_up_t, &x2q).iter().map(|&v| ops::relu(v)).collect(),
            };
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(l, Site::Fc2Input, &a);
            }
            let aq = self.quant_high(&a);
            let down = seed_matvec(&lw.w_down_t, &aq);
            for (hh, dd) in h.iter_mut().zip(&down) {
                *hh += dd;
            }
        }

        state.pos += 1;
        let hn = self.norm(&h, &self.final_norm_gain, &self.final_norm_bias);
        let mut logits = seed_matvec(&self.unembedding, &hn);
        for v in &mut logits {
            *v *= self.logit_scale;
        }
        logits
    }
}
