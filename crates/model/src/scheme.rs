//! Quantization schemes: which format runs where (Fig. 5 / Table 1 rows).

use opal_quant::{
    MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, OwqQuantizer, QuantError, Quantizer,
};

/// The activation-quantizer family being compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActFormat {
    /// Conventional dynamic min/max (ZeroQuant-style), the paper's baseline.
    MinMax,
    /// Plain MXINT microscaling.
    MxInt,
    /// The paper's outlier-preserved MX-OPAL.
    MxOpal,
}

/// Activation quantization configuration.
///
/// Activations right after LayerNorm (inputs to QKV and FC1) are quantized
/// to `low_bits`; every other MxV input (Q, K, V, the attention output into
/// the projection, and the FFN hidden into FC2) uses `high_bits` (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActScheme {
    /// Quantizer family.
    pub format: ActFormat,
    /// Bit-width after LayerNorm.
    pub low_bits: u32,
    /// Bit-width everywhere else.
    pub high_bits: u32,
    /// Microscaling block size `k` (128 in the paper).
    pub block_size: usize,
    /// Preserved outliers per block `n` for MX-OPAL (4 in the paper).
    pub outliers: usize,
}

impl ActScheme {
    /// Builds the quantizer for the low-bit (post-LayerNorm) positions.
    ///
    /// The box is `Send + Sync` so a model holding it can be shared across
    /// the serving engine's scoped decode threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the quantizer constructors.
    pub fn low_quantizer(&self) -> Result<Box<dyn Quantizer + Send + Sync>, QuantError> {
        self.quantizer(self.low_bits)
    }

    /// Builds the quantizer for the high-bit positions (`Send + Sync`, as
    /// [`ActScheme::low_quantizer`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the quantizer constructors.
    pub fn high_quantizer(&self) -> Result<Box<dyn Quantizer + Send + Sync>, QuantError> {
        self.quantizer(self.high_bits)
    }

    fn quantizer(&self, bits: u32) -> Result<Box<dyn Quantizer + Send + Sync>, QuantError> {
        Ok(match self.format {
            ActFormat::MinMax => Box::new(MinMaxQuantizer::new(bits, self.block_size)?),
            ActFormat::MxInt => Box::new(MxIntQuantizer::new(bits, self.block_size)?),
            ActFormat::MxOpal => {
                Box::new(MxOpalQuantizer::new(bits, self.block_size, self.outliers)?)
            }
        })
    }
}

/// Weight quantization configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightScheme {
    /// Keep weights in bfloat16 (the BF16 baseline).
    Bf16,
    /// OWQ: INT`bits` with `outlier_fraction` BF16 input channels.
    Owq {
        /// Integer bit-width of non-outlier weights.
        bits: u32,
        /// Fraction of input channels kept in bfloat16.
        outlier_fraction: f32,
    },
}

impl WeightScheme {
    /// The OWQ quantizer for this scheme, or `None` for BF16 weights.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn quantizer(&self) -> Result<Option<OwqQuantizer>, QuantError> {
        match *self {
            WeightScheme::Bf16 => Ok(None),
            WeightScheme::Owq { bits, outlier_fraction } => {
                Ok(Some(OwqQuantizer::new(bits, outlier_fraction)?))
            }
        }
    }
}

/// Softmax implementation choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SoftmaxKind {
    /// Exact floating-point softmax.
    Exact,
    /// The log2-based unit with the given shift-code width.
    Log2 {
        /// Shift-code bit-width.
        bits: u32,
    },
}

/// A complete quantization scheme: one row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantScheme {
    /// Display name, matching the paper's row labels.
    pub name: String,
    /// Weight handling.
    pub weights: WeightScheme,
    /// Activation handling (`None` = keep activations in bf16/f32).
    pub acts: Option<ActScheme>,
    /// Softmax implementation.
    pub softmax: SoftmaxKind,
}

impl QuantScheme {
    /// The bfloat16 baseline: no quantization beyond bf16 storage.
    pub fn bf16() -> Self {
        QuantScheme {
            name: "BF16".to_owned(),
            weights: WeightScheme::Bf16,
            acts: None,
            softmax: SoftmaxKind::Exact,
        }
    }

    /// OWQ weight-only quantization, `W4A16` row of Table 1.
    pub fn owq_w4a16() -> Self {
        QuantScheme {
            name: "W4A16 (OWQ)".to_owned(),
            weights: WeightScheme::Owq { bits: 4, outlier_fraction: 0.0025 },
            acts: None,
            softmax: SoftmaxKind::Exact,
        }
    }

    /// OWQ weight-only quantization, `W3A16` row of Table 1.
    pub fn owq_w3a16() -> Self {
        QuantScheme {
            name: "W3A16 (OWQ)".to_owned(),
            weights: WeightScheme::Owq { bits: 3, outlier_fraction: 0.0033 },
            acts: None,
            softmax: SoftmaxKind::Exact,
        }
    }

    fn with_acts(name: &str, w_bits: u32, format: ActFormat, low: u32, high: u32) -> Self {
        let w_frac = if w_bits == 3 { 0.0033 } else { 0.0025 };
        QuantScheme {
            name: name.to_owned(),
            weights: WeightScheme::Owq { bits: w_bits, outlier_fraction: w_frac },
            acts: Some(ActScheme {
                format,
                low_bits: low,
                high_bits: high,
                block_size: 128,
                outliers: if format == ActFormat::MxOpal { 4 } else { 0 },
            }),
            softmax: SoftmaxKind::Exact,
        }
    }

    /// `W4A7 (MinMax)`: uniform 7-bit activations, conventional quantizer.
    pub fn minmax_w4a7() -> Self {
        Self::with_acts("W4A7 (MinMax)", 4, ActFormat::MinMax, 7, 7)
    }

    /// `W4A7 (MX-OPAL)`: uniform 7-bit activations.
    pub fn mxopal_w4a7() -> Self {
        Self::with_acts("W4A7 (MX-OPAL)", 4, ActFormat::MxOpal, 7, 7)
    }

    /// `W4A4/7 (MinMax)`: 4-bit after LN, 7-bit elsewhere.
    pub fn minmax_w4a47() -> Self {
        Self::with_acts("W4A4/7 (MinMax)", 4, ActFormat::MinMax, 4, 7)
    }

    /// `W4A4/7 (MX-OPAL)`: the paper's OPAL-4/7 operating point.
    pub fn mxopal_w4a47() -> Self {
        Self::with_acts("W4A4/7 (MX-OPAL)", 4, ActFormat::MxOpal, 4, 7)
    }

    /// `W3A3/5 (MinMax)`: the row that collapses in Table 1.
    pub fn minmax_w3a35() -> Self {
        Self::with_acts("W3A3/5 (MinMax)", 3, ActFormat::MinMax, 3, 5)
    }

    /// `W3A3/5 (MX-OPAL)`: the paper's OPAL-3/5 operating point.
    pub fn mxopal_w3a35() -> Self {
        Self::with_acts("W3A3/5 (MX-OPAL)", 3, ActFormat::MxOpal, 3, 5)
    }

    /// `W4A4/7 (MXINT)`: plain microscaling ablation (not a Table 1 row,
    /// used by the ablation benches).
    pub fn mxint_w4a47() -> Self {
        Self::with_acts("W4A4/7 (MXINT)", 4, ActFormat::MxInt, 4, 7)
    }

    /// Returns a copy of the scheme running the log2-based softmax.
    pub fn with_log2_softmax(mut self, bits: u32) -> Self {
        self.softmax = SoftmaxKind::Log2 { bits };
        self.name = format!("{} +log2sm", self.name);
        self
    }

    /// All Table 1 rows in presentation order.
    pub fn table1_rows() -> Vec<QuantScheme> {
        vec![
            Self::bf16(),
            Self::owq_w4a16(),
            Self::minmax_w4a7(),
            Self::mxopal_w4a7(),
            Self::minmax_w4a47(),
            Self::mxopal_w4a47(),
            Self::owq_w3a16(),
            Self::minmax_w3a35(),
            Self::mxopal_w3a35(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_bits() {
        let s = QuantScheme::mxopal_w3a35();
        match s.weights {
            WeightScheme::Owq { bits, outlier_fraction } => {
                assert_eq!(bits, 3);
                assert!((outlier_fraction - 0.0033).abs() < 1e-6);
            }
            _ => panic!("expected OWQ weights"),
        }
        let a = s.acts.unwrap();
        assert_eq!((a.low_bits, a.high_bits), (3, 5));
        assert_eq!(a.outliers, 4);
        assert_eq!(a.block_size, 128);
    }

    #[test]
    fn quantizers_construct() {
        for s in QuantScheme::table1_rows() {
            if let Some(a) = s.acts {
                a.low_quantizer().unwrap();
                a.high_quantizer().unwrap();
            }
            s.weights.quantizer().unwrap();
        }
    }

    #[test]
    fn log2_softmax_modifier() {
        let s = QuantScheme::mxopal_w4a47().with_log2_softmax(5);
        assert_eq!(s.softmax, SoftmaxKind::Log2 { bits: 5 });
        assert!(s.name.contains("log2sm"));
    }

    #[test]
    fn minmax_scheme_has_no_preserved_outliers() {
        let a = QuantScheme::minmax_w4a47().acts.unwrap();
        assert_eq!(a.outliers, 0);
    }
}
