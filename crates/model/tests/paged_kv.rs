//! Bit-identity and accounting of the paged KV cache.
//!
//! The paged rewrite (block tables over a shared `BlockPool` instead of
//! per-sequence contiguous buffers) must be invisible to the numerics:
//! every block size walks the same rows in the same order, so decode and
//! chunked prefill stay bit-identical to the preserved seed algorithm.
//! Prefix sharing must be equally invisible: a state that adopts another
//! sequence's blocks read-only produces the same bits it would have
//! computed itself, and its first divergent write copies — never corrupts
//! the donor.

use std::sync::Arc;

use opal_model::kv::BlockPool;
use opal_model::{AdoptError, KvScheme, Model, ModelConfig, QuantScheme};
use opal_tensor::ops;

fn schemes() -> [(&'static str, QuantScheme); 4] {
    [
        ("bf16", QuantScheme::bf16()),
        ("mxopal_w4a47", QuantScheme::mxopal_w4a47()),
        ("w4a47+log2", QuantScheme::mxopal_w4a47().with_log2_softmax(5)),
        ("owq_w4a16", QuantScheme::owq_w4a16()),
    ]
}

/// Decode over tiny pool pages (block size 1, 3, 5) must be bit-identical
/// to the default paging and to the preserved seed algorithm, including
/// across chunked prefill boundaries that straddle blocks.
#[test]
fn paged_decode_is_bit_identical_for_every_block_size() {
    let prompt: Vec<u32> = (0..11u32).map(|i| (i * 19 + 2) % 64).collect();
    for (name, scheme) in schemes() {
        let model = Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme");
        let d = model.config().d_model;

        // Oracle: the seed algorithm (flat Vec<Vec<f32>> caches).
        let mut ref_state = model.begin_reference_decode();
        let mut ref_logits = Vec::new();
        for &t in &prompt {
            ref_logits = model.reference_decode_step(&mut ref_state, t);
        }

        for block_size in [1usize, 3, 5] {
            let pool = Arc::new(BlockPool::new(block_size, d, usize::MAX));
            let mut state = model.begin_decode_paged(&pool);
            let mut logits = vec![0.0f32; model.config().vocab];
            model.prefill_into(&mut state, &prompt, &mut logits);
            for (i, (a, b)) in logits.iter().zip(&ref_logits).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} bs={block_size}: prompt logit {i} diverged"
                );
            }
            assert_eq!(state.blocks_per_layer(), prompt.len().div_ceil(block_size));

            // Keep decoding greedily; every position must stay bit-equal.
            let mut token = ops::argmax(&logits).unwrap_or(0) as u32;
            let mut ref_token = ops::argmax(&ref_logits).unwrap_or(0) as u32;
            assert_eq!(token, ref_token);
            for step in 0..16 {
                model.decode_step_into(&mut state, token, &mut logits);
                let r = model.reference_decode_step(&mut ref_state, ref_token);
                assert!(
                    logits.iter().zip(&r).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{name} bs={block_size}: decode diverged at step {step}"
                );
                token = ops::argmax(&logits).unwrap_or(0) as u32;
                ref_token = ops::argmax(&r).unwrap_or(0) as u32;
            }
            // Rewind the reference for the next block size.
            ref_state = model.begin_reference_decode();
            for &t in &prompt {
                ref_logits = model.reference_decode_step(&mut ref_state, t);
            }
        }
    }
}

/// A sequence that adopts another's prefix blocks read-only must produce
/// the same bits as one that prefilled everything itself; its divergent
/// writes must copy-on-write, leaving the donor's cache untouched; and the
/// pool must count each shared block once.
#[test]
fn shared_prefix_is_bit_identical_and_copy_on_write() {
    let block_size = 4;
    let prefix: Vec<u32> = (0..10u32).map(|i| (i * 7 + 3) % 64).collect(); // 2.5 blocks
    let tail_a: Vec<u32> = vec![5, 9];
    let tail_b: Vec<u32> = vec![44, 1, 17];
    for (name, scheme) in schemes() {
        let model = Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme");
        let nl = model.config().n_layers;
        let pool = Arc::new(BlockPool::new(block_size, model.config().d_model, usize::MAX));

        // Donor A prefills prefix + tail_a and keeps decoding.
        let prompt_a: Vec<u32> = prefix.iter().chain(&tail_a).copied().collect();
        let mut a = model.begin_decode_paged(&pool);
        let mut logits_a = vec![0.0f32; model.config().vocab];
        model.prefill_into(&mut a, &prompt_a, &mut logits_a);
        let blocks_a = a.blocks_per_layer();
        assert_eq!(pool.in_use(), nl * blocks_a);

        // B adopts the prefix span (partial last block included) and
        // prefills only its own tail.
        let shared_len = prefix.len();
        let shared_blocks = shared_len.div_ceil(block_size);
        let adopted: Vec<_> =
            (0..nl).map(|l| (0..shared_blocks).map(|i| a.block(l, i)).collect()).collect();
        let mut b = model.begin_decode_paged(&pool);
        b.adopt_shared_prefix(adopted, shared_len);
        assert_eq!(b.pos(), shared_len);
        assert!(b.tail_block_shared(), "adopted partial tail must read as shared");
        let in_use_before = pool.in_use();
        assert_eq!(in_use_before, nl * blocks_a, "adoption must not allocate");

        let prompt_b: Vec<u32> = prefix.iter().chain(&tail_b).copied().collect();
        let mut logits_b = vec![0.0f32; model.config().vocab];
        // B's first write lands in the shared partial block -> CoW.
        model.prefill_chunk_into(&mut b, &prompt_b[shared_len..], &mut logits_b);
        assert!(pool.in_use() > in_use_before, "divergent write must allocate a copy");

        // Oracle: B computed from scratch, no sharing.
        let mut solo = model.begin_decode_paged(&pool);
        let mut solo_logits = vec![0.0f32; model.config().vocab];
        model.prefill_into(&mut solo, &prompt_b, &mut solo_logits);
        assert!(
            logits_b.iter().zip(&solo_logits).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{name}: shared-prefix logits diverged from unshared prefill"
        );

        // Both B and solo keep decoding in lockstep, and donor A must be
        // unperturbed: its own decode still matches a from-scratch replay.
        let mut tok_b = ops::argmax(&logits_b).unwrap_or(0) as u32;
        for step in 0..12 {
            model.decode_step_into(&mut b, tok_b, &mut logits_b);
            model.decode_step_into(&mut solo, tok_b, &mut solo_logits);
            assert!(
                logits_b.iter().zip(&solo_logits).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: shared-prefix decode diverged at step {step}"
            );
            tok_b = ops::argmax(&logits_b).unwrap_or(0) as u32;
        }

        let mut replay = model.begin_decode_paged(&pool);
        let mut replay_logits = vec![0.0f32; model.config().vocab];
        model.prefill_into(&mut replay, &prompt_a, &mut replay_logits);
        let mut tok_a = ops::argmax(&logits_a).unwrap_or(0) as u32;
        assert_eq!(tok_a, ops::argmax(&replay_logits).unwrap_or(0) as u32);
        for step in 0..8 {
            model.decode_step_into(&mut a, tok_a, &mut logits_a);
            model.decode_step_into(&mut replay, tok_a, &mut replay_logits);
            assert!(
                logits_a.iter().zip(&replay_logits).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{name}: donor sequence was perturbed by the sharer at step {step}"
            );
            tok_a = ops::argmax(&logits_a).unwrap_or(0) as u32;
        }
    }
}

/// Quantized KV pages trade bits for capacity, so their logits are *not*
/// compared against the exact cache — the contract is determinism with
/// themselves: every prefill chunking and block size must walk the same
/// packed codes in the same order and produce identical bits.
#[test]
fn quantized_kv_decode_is_bit_deterministic_across_chunkings() {
    let prompt: Vec<u32> = (0..11u32).map(|i| (i * 19 + 2) % 64).collect();
    for kv in [KvScheme::mxopal(), KvScheme::mxint()] {
        let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42).expect("valid scheme");
        let d = model.config().d_model;
        let vocab = model.config().vocab;

        // Reference run: default block size, whole-prompt prefill.
        let pool = Arc::new(BlockPool::with_scheme(16, d, usize::MAX, kv));
        let mut ref_state = model.begin_decode_paged(&pool);
        let mut ref_logits = vec![0.0f32; vocab];
        model.prefill_into(&mut ref_state, &prompt, &mut ref_logits);
        let mut ref_stream = vec![ref_logits.clone()];
        let mut ref_token = ops::argmax(&ref_logits).unwrap_or(0) as u32;
        for _ in 0..16 {
            model.decode_step_into(&mut ref_state, ref_token, &mut ref_logits);
            ref_stream.push(ref_logits.clone());
            ref_token = ops::argmax(&ref_logits).unwrap_or(0) as u32;
        }

        for (block_size, chunk) in [(16usize, 1usize), (16, 3), (3, 1), (3, 16), (5, 4)] {
            let pool = Arc::new(BlockPool::with_scheme(block_size, d, usize::MAX, kv));
            let mut state = model.begin_decode_paged(&pool);
            let mut logits = vec![0.0f32; vocab];
            for piece in prompt.chunks(chunk) {
                model.prefill_chunk_into(&mut state, piece, &mut logits);
            }
            assert!(
                logits.iter().zip(&ref_stream[0]).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{} bs={block_size} chunk={chunk}: prompt logits diverged",
                kv.name()
            );
            let mut token = ops::argmax(&logits).unwrap_or(0) as u32;
            for (step, reference) in ref_stream[1..].iter().enumerate() {
                model.decode_step_into(&mut state, token, &mut logits);
                assert!(
                    logits.iter().zip(reference).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{} bs={block_size} chunk={chunk}: decode diverged at step {step}",
                    kv.name()
                );
                token = ops::argmax(&logits).unwrap_or(0) as u32;
            }
        }
    }
}

/// Copy-on-write must hold on quantized pages too: a sharer's divergent
/// write into an adopted partial block copies the packed codes, and the
/// donor's continued decode stays bit-equal to a from-scratch replay.
#[test]
fn quantized_shared_prefix_cow_leaves_donor_unaffected() {
    let block_size = 4;
    let prefix: Vec<u32> = (0..10u32).map(|i| (i * 7 + 3) % 64).collect(); // 2.5 blocks
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42).expect("valid scheme");
    let nl = model.config().n_layers;
    let vocab = model.config().vocab;
    let pool = Arc::new(BlockPool::with_scheme(
        block_size,
        model.config().d_model,
        usize::MAX,
        KvScheme::mxopal(),
    ));

    let prompt_a: Vec<u32> = prefix.iter().chain(&[5, 9]).copied().collect();
    let mut a = model.begin_decode_paged(&pool);
    let mut logits_a = vec![0.0f32; vocab];
    model.prefill_into(&mut a, &prompt_a, &mut logits_a);

    let shared_len = prefix.len();
    let shared_blocks = shared_len.div_ceil(block_size);
    let adopted: Vec<_> =
        (0..nl).map(|l| (0..shared_blocks).map(|i| a.block(l, i)).collect()).collect();
    let mut b = model.begin_decode_paged(&pool);
    b.adopt_shared_prefix(adopted, shared_len);
    let in_use_before = pool.in_use();

    // B's first write lands in the shared partial block -> CoW on a
    // quantized page.
    let prompt_b: Vec<u32> = prefix.iter().chain(&[44, 1, 17]).copied().collect();
    let mut logits_b = vec![0.0f32; vocab];
    model.prefill_chunk_into(&mut b, &prompt_b[shared_len..], &mut logits_b);
    assert!(pool.in_use() > in_use_before, "divergent write must copy the quantized page");

    // Oracle for B: unshared prefill of the same prompt.
    let mut solo = model.begin_decode_paged(&pool);
    let mut solo_logits = vec![0.0f32; vocab];
    model.prefill_into(&mut solo, &prompt_b, &mut solo_logits);
    assert!(
        logits_b.iter().zip(&solo_logits).all(|(x, y)| x.to_bits() == y.to_bits()),
        "quantized shared-prefix logits diverged from unshared prefill"
    );

    // Donor A must be unperturbed: its decode matches a fresh replay.
    let mut replay = model.begin_decode_paged(&pool);
    let mut replay_logits = vec![0.0f32; vocab];
    model.prefill_into(&mut replay, &prompt_a, &mut replay_logits);
    let mut tok_a = ops::argmax(&logits_a).unwrap_or(0) as u32;
    assert_eq!(tok_a, ops::argmax(&replay_logits).unwrap_or(0) as u32);
    for step in 0..10 {
        model.decode_step_into(&mut a, tok_a, &mut logits_a);
        model.decode_step_into(&mut replay, tok_a, &mut replay_logits);
        assert!(
            logits_a.iter().zip(&replay_logits).all(|(x, y)| x.to_bits() == y.to_bits()),
            "donor was perturbed by the quantized sharer at step {step}"
        );
        tok_a = ops::argmax(&logits_a).unwrap_or(0) as u32;
    }
}

/// A quantized cache must refuse to adopt exact pages and vice versa —
/// typed error, state unchanged — and same-scheme blocks from a foreign
/// pool are rejected too.
#[test]
fn mixed_scheme_adoption_is_rejected_both_ways() {
    let block_size = 4;
    let prompt: Vec<u32> = (0..8u32).collect(); // exactly 2 blocks
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42).expect("valid scheme");
    let d = model.config().d_model;
    let nl = model.config().n_layers;
    let quant = KvScheme::mxopal();

    let pool_exact = Arc::new(BlockPool::new(block_size, d, usize::MAX));
    let pool_quant = Arc::new(BlockPool::with_scheme(block_size, d, usize::MAX, quant));

    let mut exact_donor = model.begin_decode_paged(&pool_exact);
    model.prefill(&mut exact_donor, &prompt);
    let mut quant_donor = model.begin_decode_paged(&pool_quant);
    model.prefill(&mut quant_donor, &prompt);
    let table = |s: &opal_model::DecodeState| -> Vec<Vec<_>> {
        (0..nl).map(|l| (0..2).map(|i| s.block(l, i)).collect()).collect()
    };

    // Quantized cache refuses exact pages.
    let mut adopter = model.begin_decode_paged(&pool_quant);
    assert_eq!(
        adopter.try_adopt_shared_prefix(table(&exact_donor), prompt.len()),
        Err(AdoptError::SchemeMismatch { ours: quant, theirs: KvScheme::Exact })
    );
    assert_eq!(adopter.pos(), 0, "failed adoption must leave the state untouched");

    // Exact cache refuses quantized pages.
    let mut adopter = model.begin_decode_paged(&pool_exact);
    assert_eq!(
        adopter.try_adopt_shared_prefix(table(&quant_donor), prompt.len()),
        Err(AdoptError::SchemeMismatch { ours: KvScheme::Exact, theirs: quant })
    );
    assert_eq!(adopter.pos(), 0);

    // Same scheme, different pool instance: foreign accounting, rejected.
    let other_quant = Arc::new(BlockPool::with_scheme(block_size, d, usize::MAX, quant));
    let mut adopter = model.begin_decode_paged(&other_quant);
    assert_eq!(
        adopter.try_adopt_shared_prefix(table(&quant_donor), prompt.len()),
        Err(AdoptError::ForeignPool)
    );
    assert_eq!(adopter.pos(), 0);

    // Sanity: a same-pool adoption still succeeds after the refusals.
    let mut adopter = model.begin_decode_paged(&pool_quant);
    assert_eq!(adopter.try_adopt_shared_prefix(table(&quant_donor), prompt.len()), Ok(()));
    assert_eq!(adopter.pos(), prompt.len());
}

/// Dropping states releases exactly the blocks nobody else maps.
#[test]
fn dropping_states_releases_blocks() {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42).expect("valid scheme");
    let nl = model.config().n_layers;
    let pool = Arc::new(BlockPool::new(4, model.config().d_model, usize::MAX));
    let prompt: Vec<u32> = (0..9u32).collect();

    let mut a = model.begin_decode_paged(&pool);
    model.prefill(&mut a, &prompt);
    let blocks_a = nl * a.blocks_per_layer();
    assert_eq!(pool.in_use(), blocks_a);

    // B shares A's first (full) block.
    let adopted: Vec<_> = (0..nl).map(|l| vec![a.block(l, 0)]).collect();
    let mut b = model.begin_decode_paged(&pool);
    b.adopt_shared_prefix(adopted, 4);
    model.prefill_chunk(&mut b, &prompt[4..]);
    let total = pool.in_use();
    assert!(total > blocks_a && total < 2 * blocks_a, "prefix block must be stored once");

    drop(b);
    assert_eq!(pool.in_use(), blocks_a, "dropping the sharer frees only its private blocks");
    drop(a);
    assert_eq!(pool.in_use(), 0);
    assert_eq!(pool.peak(), total);
}
