//! Integration test: the Table 1 accuracy ordering must reproduce on the
//! synthetic model family (this is the paper's headline accuracy claim).

use opal_model::{eval, Model, ModelConfig, QuantScheme};

fn proxy() -> ModelConfig {
    ModelConfig::llama2_7b().proxy(96, 3, 128)
}

#[test]
fn table1_ordering_reproduces() {
    let cfg = proxy();
    let teacher = Model::new(cfg.clone(), QuantScheme::bf16(), 11).unwrap();
    let stream = eval::sample_stream(&teacher, 96, 77);

    let ppl = |scheme: QuantScheme| -> f64 {
        let m = Model::new(cfg.clone(), scheme, 11).unwrap();
        eval::perplexity(&m, &stream)
    };

    let base = ppl(QuantScheme::bf16());
    let w4a16 = ppl(QuantScheme::owq_w4a16());
    let mm47 = ppl(QuantScheme::minmax_w4a47());
    let op47 = ppl(QuantScheme::mxopal_w4a47());
    let mm35 = ppl(QuantScheme::minmax_w3a35());
    let op35 = ppl(QuantScheme::mxopal_w3a35());

    println!("base={base:.3} w4a16={w4a16:.3} mm47={mm47:.3} op47={op47:.3} mm35={mm35:.3} op35={op35:.3}");

    // Weight-only quantization barely hurts.
    assert!(w4a16 < base * 1.5, "OWQ W4A16 ({w4a16}) vs base ({base})");
    // MX-OPAL beats MinMax at both operating points.
    assert!(op47 <= mm47 * 1.02, "W4A4/7: MX-OPAL {op47} vs MinMax {mm47}");
    assert!(op35 < mm35, "W3A3/5: MX-OPAL {op35} vs MinMax {mm35}");
    // The W3A3/5 MinMax collapse: by far the worst row.
    assert!(mm35 > op35 * 1.2, "MinMax W3A3/5 must collapse: {mm35} vs {op35}");
    // MX-OPAL W4A4/7 stays close to the weight-only model.
    assert!(op47 < w4a16 * 1.6, "OPAL-4/7 {op47} near W4A16 {w4a16}");
}
