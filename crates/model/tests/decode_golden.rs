//! Bit-identity of the optimized decode path.
//!
//! Two layers of defense against numeric drift:
//!
//! 1. **Golden vectors**: greedy token streams and raw logit bit patterns
//!    captured from the seed implementation (commit `787488c`, before the
//!    contiguous-KV / scratch-space rewrite) are replayed against today's
//!    decoder. Any reassociation, reordering or storage change that
//!    perturbs even one ULP fails here.
//! 2. **Reference cross-check**: the seed algorithm is preserved verbatim
//!    in `opal_model::reference`; long decodes must agree bit-for-bit with
//!    it at every position, for every quantization scheme family.

use opal_model::{Model, ModelConfig, QuantScheme};
use opal_tensor::ops;

/// Decodes `steps` greedy tokens through the optimized path, returning the
/// token stream and the bit patterns of logits 0/17/63 every 8th step.
fn run_optimized(model: &Model, steps: usize) -> (Vec<u32>, Vec<u32>) {
    let mut state = model.begin_decode();
    let mut token = 1u32;
    let mut tokens = Vec::new();
    let mut bits = Vec::new();
    for step in 0..steps {
        let logits = model.decode_step(&mut state, token);
        token = ops::argmax(&logits).unwrap_or(0) as u32;
        tokens.push(token);
        if step % 8 == 0 {
            bits.push(logits[0].to_bits());
            bits.push(logits[17].to_bits());
            bits.push(logits[63].to_bits());
        }
    }
    (tokens, bits)
}

fn assert_matches_golden(scheme: QuantScheme, seed: u64, tokens: &[u32], bits: &[u32]) {
    let model = Model::new(ModelConfig::tiny(), scheme, seed).expect("valid scheme");
    let (got_tokens, got_bits) = run_optimized(&model, tokens.len());
    assert_eq!(got_tokens, tokens, "greedy token stream diverged from seed");
    assert_eq!(got_bits, bits, "logit bit patterns diverged from seed");
}

#[test]
fn bf16_matches_seed_golden() {
    assert_matches_golden(
        QuantScheme::bf16(),
        42,
        &[
            44, 15, 18, 26, 28, 7, 29, 27, 56, 13, 18, 1, 44, 31, 61, 38, 1, 44, 15, 18, 1, 44, 15,
            18, 1, 20, 28, 22, 20, 28, 56, 35, 17, 48, 46, 52, 49, 20, 18, 1, 20, 28, 22, 20, 28,
            22, 20, 44, 15, 1, 20, 28, 22, 20, 44, 15, 18, 1, 20, 44, 15, 1, 20, 44, 15, 18, 1, 20,
            44, 15, 1, 20,
        ],
        &[
            3215966972, 1078538337, 3232622560, 3225967291, 1059521533, 1060760031, 3229950482,
            1082757602, 3228452923, 1082796645, 1072638119, 1066628800, 1079261528, 1084837415,
            3226335744, 3228043116, 1075098540, 3232913660, 3226890284, 1068735071, 3219373106,
            3214375053, 1070729608, 3182542022, 3224813558, 1070170343, 3220991788,
        ],
    );
}

#[test]
fn mxopal_w4a47_matches_seed_golden() {
    assert_matches_golden(
        QuantScheme::mxopal_w4a47(),
        42,
        &[
            44, 15, 18, 53, 60, 35, 17, 48, 46, 52, 49, 20, 18, 1, 18, 53, 60, 35, 17, 29, 27, 43,
            52, 49, 20, 28, 22, 28, 22, 28, 22, 20, 18, 1, 20, 18, 1, 20, 18, 1, 20, 28, 22, 20,
            28, 22, 20, 28, 22, 20, 28, 56, 35, 17, 48, 46, 52, 49, 20, 28, 22, 20, 28, 56, 8, 17,
            45, 18, 1, 20, 28, 22,
        ],
        &[
            3215800983, 1079103987, 3232558797, 1062356286, 1074097603, 3205231917, 1081799012,
            1074507383, 3205567768, 1060532850, 3186053827, 3215176349, 3224905111, 1050587054,
            1065178073, 3225476093, 1075302851, 3232376633, 3222779295, 1061186069, 3213554450,
            3212967648, 1066834747, 1051897137, 1063001267, 3211156077, 1067074791,
        ],
    );
}

#[test]
fn log2_softmax_owq_matches_seed_golden() {
    assert_matches_golden(
        QuantScheme::mxopal_w4a47().with_log2_softmax(5),
        7,
        &[
            27, 38, 49, 42, 11, 6, 39, 30, 35, 18, 8, 61, 0, 35, 3, 42, 11, 6, 39, 30, 35, 3, 42,
            11, 6, 39, 30, 35, 3, 42, 11, 6, 39, 30, 35, 3, 42, 11, 6, 39, 30, 35, 44, 18, 8, 61,
            0, 0, 35, 44, 18, 8, 61, 0, 35, 44, 18, 8, 61, 0, 35, 3, 18, 8, 61, 0, 35, 3, 18, 8,
            61, 0,
        ],
        &[
            1072829756, 1075388764, 3231674783, 3214729771, 1065161089, 3219455263, 1070731270,
            1058901957, 1046477205, 3214514869, 3223613051, 3207271782, 1074013236, 3229662268,
            1063696038, 1064216889, 3218629572, 1078713079, 1085163798, 3180231602, 1069447336,
            1066286924, 3235084596, 1080526057, 1077247246, 3211512586, 3222651313,
        ],
    );
}

#[test]
fn owq_w4a16_matches_seed_golden() {
    assert_matches_golden(
        QuantScheme::owq_w4a16(),
        11,
        &[
            55, 6, 21, 60, 8, 12, 61, 34, 33, 10, 61, 34, 33, 30, 3, 31, 6, 34, 33, 10, 61, 34, 33,
            30, 3, 31, 6, 56, 23, 17, 15, 52, 16, 40, 32, 6, 56, 23, 17, 15, 52, 16, 40, 32, 6, 56,
            23, 17, 15, 59, 45, 16, 40, 32, 6, 56, 50, 18, 61, 26, 34, 33, 30, 3, 31, 6, 56, 50,
            18, 61, 26, 34,
        ],
        &[
            3217584439, 3221817244, 3205774187, 3238850272, 3213815680, 3212448244, 1063838589,
            1075971494, 1074964385, 1051513396, 1068116123, 3199638813, 3211102731, 1067545190,
            3210456453, 1065635397, 1066955289, 1059780498, 3225404044, 1073996211, 1032631175,
            1040376406, 3224247246, 3223742594, 3227272519, 1055170659, 1074771034,
        ],
    );
}

/// The contiguous-KV scratch decoder must agree with the preserved seed
/// algorithm (`Vec<Vec<f32>>` caches, per-token allocations) bit-for-bit at
/// every position of a long decode, across scheme families.
#[test]
fn optimized_matches_reference_bit_for_bit_over_64_steps() {
    let schemes = [
        ("bf16", QuantScheme::bf16()),
        ("mxopal_w4a47", QuantScheme::mxopal_w4a47()),
        ("mxopal_w3a35", QuantScheme::mxopal_w3a35()),
        ("w4a47+log2", QuantScheme::mxopal_w4a47().with_log2_softmax(5)),
        ("owq_w4a16", QuantScheme::owq_w4a16()),
    ];
    for (name, scheme) in schemes {
        let model = Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme");
        let mut fast = model.begin_decode();
        let mut slow = model.begin_reference_decode();
        let mut token = 1u32;
        for step in 0..64 {
            let a = model.decode_step(&mut fast, token);
            let b = model.reference_decode_step(&mut slow, token);
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{name}: logit {i} diverged at step {step}: {x} vs {y}"
                );
            }
            token = ops::argmax(&a).unwrap_or(0) as u32;
        }
    }
}

/// OPT architecture (LayerNorm + ReLU FFN, no gate) through both paths.
#[test]
fn opt_arch_optimized_matches_reference() {
    let config = ModelConfig::opt_6_7b().proxy(32, 2, 64);
    let model = Model::new(config, QuantScheme::mxopal_w4a47(), 3).expect("valid scheme");
    let mut fast = model.begin_decode();
    let mut slow = model.begin_reference_decode();
    let mut token = 2u32;
    for _ in 0..48 {
        let a = model.decode_step(&mut fast, token);
        let b = model.reference_decode_step(&mut slow, token);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        token = ops::argmax(&a).unwrap_or(0) as u32;
    }
}

/// The fused multi-token prefill must be bit-identical to the token-by-token
/// loop *and* to the preserved seed algorithm, for every chunk size, across
/// scheme families: logits after the prompt, the KV caches (checked through
/// subsequent decode steps), and the position counter.
#[test]
fn prefill_chunk_is_bit_identical_for_all_chunk_sizes() {
    let schemes = [
        ("bf16", QuantScheme::bf16()),
        ("mxopal_w4a47", QuantScheme::mxopal_w4a47()),
        ("mxopal_w3a35", QuantScheme::mxopal_w3a35()),
        ("w4a47+log2", QuantScheme::mxopal_w4a47().with_log2_softmax(5)),
    ];
    let prompt: Vec<u32> = (0..13u32).map(|i| (i * 17 + 3) % 64).collect();
    for (name, scheme) in schemes {
        let model = Model::new(ModelConfig::tiny(), scheme, 42).expect("valid scheme");

        // Token-by-token oracle through the optimized single-step path...
        let mut step_state = model.begin_decode();
        let mut step_logits = Vec::new();
        for &t in &prompt {
            step_logits = model.decode_step(&mut step_state, t);
        }
        // ...cross-checked against the preserved seed algorithm.
        let mut ref_state = model.begin_reference_decode();
        let mut ref_logits = Vec::new();
        for &t in &prompt {
            ref_logits = model.reference_decode_step(&mut ref_state, t);
        }
        assert!(step_logits.iter().zip(&ref_logits).all(|(a, b)| a.to_bits() == b.to_bits()));

        for chunk in [1usize, 3, 8, prompt.len()] {
            let mut state = model.begin_decode();
            let mut logits = vec![0.0f32; model.config().vocab];
            let mut i = 0;
            while prompt.len() - i > chunk {
                model.prefill_chunk(&mut state, &prompt[i..i + chunk]);
                i += chunk;
            }
            model.prefill_chunk_into(&mut state, &prompt[i..], &mut logits);
            assert_eq!(state.pos(), prompt.len(), "{name} chunk {chunk}: position drifted");
            for (i, (a, b)) in logits.iter().zip(&step_logits).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} chunk {chunk}: prompt logit {i} diverged: {a} vs {b}"
                );
            }
            // The KV caches must match too: decode a few more greedy tokens
            // from both states and compare every logit bit.
            let mut fused_next = state;
            let mut step_next = model.begin_decode();
            for &t in &prompt {
                model.decode_step(&mut step_next, t);
            }
            let mut token = ops::argmax(&logits).unwrap_or(0) as u32;
            for extra in 0..4 {
                let a = model.decode_step(&mut fused_next, token);
                let b = model.decode_step(&mut step_next, token);
                assert!(
                    a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{name} chunk {chunk}: decode diverged {extra} steps after prefill"
                );
                token = ops::argmax(&a).unwrap_or(0) as u32;
            }
        }
    }
}

/// `prefill_into` (the chunked driver) must agree with `prefill` and leave
/// the state ready to decode, and `prefill_chunk` must also compose with a
/// *resumed* prompt (prefill after some tokens were already decoded — the
/// serving engine's incremental-admission pattern never does this today,
/// but chunk boundaries mid-conversation must not be special).
#[test]
fn prefill_into_matches_prefill_and_resumes() {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::mxopal_w4a47(), 42).expect("valid");
    let prompt: Vec<u32> = (0..37u32).map(|i| (i * 7 + 1) % 64).collect();

    let mut a = model.begin_decode();
    let mut into_logits = vec![0.0f32; model.config().vocab];
    model.prefill_into(&mut a, &prompt, &mut into_logits);
    let mut b = model.begin_decode();
    let alloc_logits = model.prefill(&mut b, &prompt);
    assert!(into_logits.iter().zip(&alloc_logits).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert_eq!(a.pos(), b.pos());

    // Resume: decode two tokens, then prefill a second chunk of "prompt"
    // positions; must equal stepping those tokens one by one.
    let extra: Vec<u32> = vec![5, 9, 2, 44, 17];
    let mut stepped = model.begin_decode();
    model.prefill_into(&mut stepped, &prompt, &mut into_logits);
    for &t in &extra {
        model.decode_step(&mut stepped, t);
    }
    model.prefill_chunk_into(&mut a, &extra, &mut into_logits);
    let probe = 3u32;
    let x = model.decode_step(&mut a, probe);
    let y = model.decode_step(&mut stepped, probe);
    assert!(x.iter().zip(&y).all(|(p, q)| p.to_bits() == q.to_bits()));
}

/// The prefill fast path (logits skipped for all but the last prompt token)
/// must not change the returned logits or the downstream decode.
#[test]
fn prefill_fast_path_is_bit_identical_to_stepping() {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::mxopal_w4a47(), 42).expect("valid");
    for prompt in [&[5u32][..], &[1, 2, 3][..], &[9, 8, 7, 6, 5, 4, 3, 2][..]] {
        let mut fast = model.begin_decode();
        let fast_logits = model.prefill(&mut fast, prompt);

        let mut slow = model.begin_decode();
        let mut slow_logits = Vec::new();
        for &t in prompt {
            slow_logits = model.decode_step(&mut slow, t);
        }
        assert_eq!(fast.pos(), slow.pos());
        assert!(fast_logits.iter().zip(&slow_logits).all(|(x, y)| x.to_bits() == y.to_bits()));

        // And the next decoded token agrees too (the KV caches match).
        let next = ops::argmax(&fast_logits).unwrap_or(0) as u32;
        let a = model.decode_step(&mut fast, next);
        let b = model.decode_step(&mut slow, next);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
