//! Ablation: mixed-precision placement (§4.1) — what happens if the low/high
//! bit assignment of Fig. 5 is changed, and what each format contributes.
//!
//! The paper sets low bits for post-LayerNorm activations (distribution
//! "limited to a specific range") and high bits elsewhere. This bench
//! measures PPL with the assignment as designed, inverted, and uniform.
//!
//! ```sh
//! cargo run -p opal-bench --bin ablation_mixed_precision --release
//! ```

use opal_bench::header;
use opal_model::{
    eval, ActFormat, ActScheme, Model, ModelConfig, QuantScheme, SoftmaxKind, WeightScheme,
};

fn scheme(name: &str, low: u32, high: u32) -> QuantScheme {
    QuantScheme {
        name: name.to_owned(),
        weights: WeightScheme::Owq { bits: 4, outlier_fraction: 0.0025 },
        acts: Some(ActScheme {
            format: ActFormat::MxOpal,
            low_bits: low,
            high_bits: high,
            block_size: 128,
            outliers: 4,
        }),
        softmax: SoftmaxKind::Exact,
    }
}

fn main() {
    header("Mixed-precision placement ablation (W4, MX-OPAL activations)");
    let config = ModelConfig::llama2_7b().proxy(128, 4, 192);
    let teacher = Model::new(config.clone(), QuantScheme::bf16(), 42).expect("valid");
    let stream = eval::sample_stream(&teacher, 112, 51);
    let base = eval::perplexity(&teacher, &stream);
    println!("BF16 baseline PPL: {base:.3}\n");

    println!("{:<26} {:>10} {:>8}", "assignment", "PPL", "ΔPPL");
    for (name, low, high) in [
        ("A4/7 (paper: low post-LN)", 4u32, 7u32),
        ("A7/4 (inverted)", 7, 4),
        ("A4/4 (uniform low)", 4, 4),
        ("A7/7 (uniform high)", 7, 7),
        ("A3/5 (paper aggressive)", 3, 5),
        ("A5/3 (inverted)", 5, 3),
    ] {
        let m = Model::new(config.clone(), scheme(name, low, high), 42).expect("valid");
        let ppl = eval::perplexity(&m, &stream);
        println!("{:<26} {:>10.3} {:>+8.3}", name, ppl, ppl - base);
    }

    println!("\nExpected shape (§4.1): the paper's placement (low bits after");
    println!("LayerNorm, high bits on attention/FFN intermediates) beats the");
    println!("inverted placement at equal average width, because the");
    println!("normalized tensors tolerate coarser steps.");
}
