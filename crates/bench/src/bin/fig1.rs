//! Fig. 1 — single-batch latency of the Llama2 `mlp.0` GEMM at various
//! bit-widths on a GPU roofline model.
//!
//! Paper reference points: W4A16 (hGEMM) speeds up Llama2-13B/70B by
//! 1.5×/2.0×; W4A8 (iGEMM) reaches 2.0–4.0× across model sizes.
//!
//! ```sh
//! cargo run -p opal-bench --bin fig1
//! ```

use opal_bench::header;
use opal_hw::roofline::GpuModel;
use opal_model::ModelConfig;

fn main() {
    header("Fig. 1: mlp.0 GEMM latency, W/A bit-width sweep (GPU roofline)");
    let gpu = GpuModel::a100();
    // Single-batch generation: M = 1 (one token's activation row).
    let m = 1;

    // Paper speedups (baseline / variant) per model: (W4A16, W4A8).
    let paper = [("Llama2-7B", (1.0, 2.1)), ("Llama2-13B", (1.5, 2.0)), ("Llama2-70B", (2.0, 4.0))];

    for (cfg, (name, (p_w4, p_w4a8))) in
        [ModelConfig::llama2_7b(), ModelConfig::llama2_13b(), ModelConfig::llama2_70b()]
            .iter()
            .zip(paper)
    {
        println!("\n{name}  (mlp.0: {} x {})", cfg.d_model, cfg.d_ff);
        let lat = gpu.fig1_latencies(cfg, m);
        let base = lat[0].1;
        for (label, t) in &lat {
            println!("  {label:<28} {:>9.1} µs   speedup {:>5.2}x", t * 1e6, base / t);
        }
        println!(
            "  paper: W4A16 {:.1}x (got {:.2}x), W4A8 {:.1}x (got {:.2}x)",
            p_w4,
            base / lat[1].1,
            p_w4a8,
            base / lat[2].1
        );
    }

    println!("\nShape check: quantization speedups grow with model size; INT8");
    println!("compute (iGEMM) adds on top of the W4 memory saving.");
}
