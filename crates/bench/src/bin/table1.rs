//! Table 1 — perplexity of Llama2 and OPT model families under every
//! quantization scheme (teacher-student PPL proxy; see DESIGN.md §2).
//!
//! Shape to reproduce (paper, WikiText-2):
//! * weight-only OWQ barely hurts (< +0.6 PPL at W4);
//! * MX-OPAL ≤ MinMax at every activation width;
//! * W3A3/5 MinMax collapses (32.7 vs 7.4 on Llama2-7B);
//! * W4A4/7 MX-OPAL stays within ~0.5 PPL of W4A16.
//!
//! ```sh
//! cargo run -p opal-bench --bin table1 --release
//! ```

use opal_bench::{accuracy_proxies, header};
use opal_model::{eval, Model, QuantScheme};

fn main() {
    header("Table 1: perplexity under quantization schemes (PPL proxy)");
    println!("(teacher-student proxy on synthetic outlier-calibrated models;");
    println!(" compare *orderings and gaps*, not absolute values — DESIGN.md §2)\n");

    let schemes = QuantScheme::table1_rows();
    let proxies = accuracy_proxies();

    print!("{:<20}", "scheme \\ model");
    for (name, _) in &proxies {
        print!(" {name:>12}");
    }
    println!();

    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    for scheme in &schemes {
        let mut row = Vec::new();
        for (_, config) in &proxies {
            let seed = 42;
            let teacher = Model::new(config.clone(), QuantScheme::bf16(), seed)
                .expect("bf16 scheme is valid");
            let stream = eval::sample_stream(&teacher, 112, 1000 + config.d_model as u64);
            let m = Model::new(config.clone(), scheme.clone(), seed).expect("valid scheme");
            row.push(eval::perplexity(&m, &stream));
        }
        results.push((scheme.name.clone(), row));
    }

    for (name, row) in &results {
        print!("{name:<20}");
        for v in row {
            print!(" {v:>12.3}");
        }
        println!();
    }

    // Shape checks against the paper's qualitative structure.
    let find = |n: &str| &results.iter().find(|(name, _)| name == n).expect("scheme present").1;
    let base = find("BF16");
    let mm35 = find("W3A3/5 (MinMax)");
    let op35 = find("W3A3/5 (MX-OPAL)");
    let mm47 = find("W4A4/7 (MinMax)");
    let op47 = find("W4A4/7 (MX-OPAL)");

    println!("\nShape checks (paper Table 1):");
    let all = |pred: &dyn Fn(usize) -> bool| (0..base.len()).all(pred);
    println!(
        "  MX-OPAL <= MinMax at W4A4/7 on every model: {}",
        all(&|i| op47[i] <= mm47[i] * 1.02)
    );
    println!("  MX-OPAL < MinMax at W3A3/5 on every model:  {}", all(&|i| op35[i] < mm35[i]));
    println!(
        "  W3A3/5 MinMax is the worst row everywhere:  {}",
        all(&|i| mm35[i] >= op35[i] && mm35[i] >= mm47[i])
    );
    let avg_inc_47: f64 =
        (0..base.len()).map(|i| op47[i] - base[i]).sum::<f64>() / base.len() as f64;
    let avg_inc_mm47: f64 =
        (0..base.len()).map(|i| mm47[i] - base[i]).sum::<f64>() / base.len() as f64;
    println!(
        "  avg PPL increase at W4A4/7: MX-OPAL {avg_inc_47:+.3} vs MinMax {avg_inc_mm47:+.3} \
         (paper: +0.435 vs +1.083)"
    );
}
