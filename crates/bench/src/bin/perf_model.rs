//! Performance model cross-check: derive token latency from the workload +
//! core throughput + DRAM bandwidth and compare with the paper's quoted
//! 1.98 s/token (Llama2-70B on OPAL), then sweep the design space.
//!
//! ```sh
//! cargo run -p opal-bench --bin perf_model
//! ```

use opal_bench::{header, vs_paper};
use opal_hw::performance::{token_latency, tokens_per_second, Platform};
use opal_hw::workload::DataFormat;
use opal_model::ModelConfig;

fn main() {
    header("Derived token latency (memory vs compute)");
    let p = Platform::reference();
    println!(
        "platform: {} cores @ {:.1} GHz, {:.0} GB/s DRAM\n",
        p.cores,
        p.clock_hz / 1e9,
        p.dram_bw / 1e9
    );

    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>10} {:>8}",
        "model", "format", "mem (s)", "compute (s)", "total (s)", "tok/s"
    );
    for model in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b(), ModelConfig::llama2_70b()] {
        for (name, fmt) in [
            ("BF16", DataFormat::bf16()),
            ("OPAL-4/7", DataFormat::opal_w4a47()),
            ("OPAL-3/5", DataFormat::opal_w3a35()),
        ] {
            let lat = token_latency(&model, &fmt, &p, 1024);
            println!(
                "{:<12} {:<10} {:>12.4} {:>12.4} {:>10.3} {:>8.2}",
                model.name,
                name,
                lat.memory_s,
                lat.compute_s,
                lat.total_s(),
                1.0 / lat.total_s()
            );
        }
    }

    let anchor =
        token_latency(&ModelConfig::llama2_70b(), &DataFormat::opal_w4a47(), &p, 1024).total_s();
    println!("\nLlama2-70B OPAL-4/7 latency: {}", vs_paper(anchor, 1.98));

    header("Bandwidth sweep: when does generation stop being memory-bound?");
    let model = ModelConfig::llama2_7b();
    for bw_gb in [10.0f64, 20.0, 50.0, 100.0, 400.0, 1000.0] {
        let plat = Platform { dram_bw: bw_gb * 1e9, ..Platform::reference() };
        let lat = token_latency(&model, &DataFormat::opal_w4a47(), &plat, 1024);
        println!(
            "  {:>6.0} GB/s: {:>8.2} tok/s  ({})",
            bw_gb,
            1.0 / lat.total_s(),
            if lat.is_memory_bound() { "memory-bound" } else { "compute-bound" }
        );
    }

    header("Context-length sweep (Llama2-70B, OPAL-4/7)");
    for seq in [128usize, 1024, 4096, 16384] {
        let t = tokens_per_second(&ModelConfig::llama2_70b(), &DataFormat::opal_w4a47(), &p, seq);
        println!("  context {seq:>6}: {t:.3} tok/s");
    }
}
