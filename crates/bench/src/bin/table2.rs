//! Table 2 — Llama2 family on two language-modeling streams ("Wiki", "C4")
//! and two zero-shot multiple-choice tasks ("ARC", "PIQA"), comparing OWQ
//! weight-only baselines against MX-OPAL activation quantization.
//!
//! Shape to reproduce: at W4A4/7 MX-OPAL costs ≈ +0.24 PPL and ≈ −0.4 %
//! accuracy versus OWQ W4A16; at W3A3/5 ≈ +0.6 PPL and ≈ −1.7 % accuracy.
//!
//! ```sh
//! cargo run -p opal-bench --bin table2 --release
//! ```

use opal_bench::header;
use opal_model::{eval, Model, ModelConfig, QuantScheme};

struct Row {
    model: String,
    scheme: String,
    wiki: f64,
    c4: f64,
    arc: f64,
    piqa: f64,
}

fn main() {
    header("Table 2: language modeling + zero-shot QA (proxy tasks)");
    println!("('Wiki'/'C4' = two disjoint teacher streams; 'ARC'/'PIQA' = two");
    println!(" multiple-choice batteries with different seeds — DESIGN.md §2)\n");

    let models = vec![
        ("Llama2-7B".to_owned(), ModelConfig::llama2_7b().proxy(128, 4, 192)),
        ("Llama2-13B".to_owned(), ModelConfig::llama2_13b().proxy(160, 5, 192)),
        ("Llama2-70B".to_owned(), ModelConfig::llama2_70b().proxy(192, 6, 192)),
    ];
    let schemes = vec![
        QuantScheme::owq_w4a16(),
        QuantScheme::mxopal_w4a47(),
        QuantScheme::owq_w3a16(),
        QuantScheme::mxopal_w3a35(),
    ];

    let mut rows = Vec::new();
    for (name, config) in &models {
        let teacher = Model::new(config.clone(), QuantScheme::bf16(), 42).expect("bf16 valid");
        let wiki_stream = eval::sample_stream(&teacher, 104, 11);
        let c4_stream = eval::sample_stream(&teacher, 104, 22);
        for scheme in &schemes {
            let m = Model::new(config.clone(), scheme.clone(), 42).expect("valid scheme");
            let wiki = eval::perplexity(&m, &wiki_stream);
            let c4 = eval::perplexity(&m, &c4_stream);
            let arc = eval::multiple_choice(&teacher, &m, 64, 333).accuracy * 100.0;
            let piqa = eval::multiple_choice(&teacher, &m, 64, 777).accuracy * 100.0;
            rows.push(Row {
                model: name.clone(),
                scheme: scheme.name.clone(),
                wiki,
                c4,
                arc,
                piqa,
            });
        }
    }

    println!(
        "{:<12} {:<18} {:>8} {:>8} {:>7} {:>7}",
        "model", "scheme", "Wiki↓", "C4↓", "ARC↑", "PIQA↑"
    );
    for r in &rows {
        println!(
            "{:<12} {:<18} {:>8.3} {:>8.3} {:>7.1} {:>7.1}",
            r.model, r.scheme, r.wiki, r.c4, r.arc, r.piqa
        );
    }

    // Shape summary: cost of activation quantization vs weight-only, per
    // weight width.
    let avg = |f: &dyn Fn(&Row) -> f64, scheme: &str| -> f64 {
        let sel: Vec<f64> = rows.iter().filter(|r| r.scheme == scheme).map(f).collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let d_ppl_4 = (avg(&|r| r.wiki, "W4A4/7 (MX-OPAL)") + avg(&|r| r.c4, "W4A4/7 (MX-OPAL)")
        - avg(&|r| r.wiki, "W4A16 (OWQ)")
        - avg(&|r| r.c4, "W4A16 (OWQ)"))
        / 2.0;
    let d_acc_4 = (avg(&|r| r.arc, "W4A4/7 (MX-OPAL)") + avg(&|r| r.piqa, "W4A4/7 (MX-OPAL)")
        - avg(&|r| r.arc, "W4A16 (OWQ)")
        - avg(&|r| r.piqa, "W4A16 (OWQ)"))
        / 2.0;
    let d_ppl_3 = (avg(&|r| r.wiki, "W3A3/5 (MX-OPAL)") + avg(&|r| r.c4, "W3A3/5 (MX-OPAL)")
        - avg(&|r| r.wiki, "W3A16 (OWQ)")
        - avg(&|r| r.c4, "W3A16 (OWQ)"))
        / 2.0;
    let d_acc_3 = (avg(&|r| r.arc, "W3A3/5 (MX-OPAL)") + avg(&|r| r.piqa, "W3A3/5 (MX-OPAL)")
        - avg(&|r| r.arc, "W3A16 (OWQ)")
        - avg(&|r| r.piqa, "W3A16 (OWQ)"))
        / 2.0;

    println!("\nCost of MX-OPAL activation quantization vs weight-only OWQ:");
    println!("  W4A4/7: ΔPPL {d_ppl_4:+.3} (paper +0.241), Δacc {d_acc_4:+.2}% (paper −0.36%)");
    println!("  W3A3/5: ΔPPL {d_ppl_3:+.3} (paper +0.601), Δacc {d_acc_3:+.2}% (paper −1.65%)");
}
