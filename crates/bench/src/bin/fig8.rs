//! Fig. 8 — per-token energy (Llama2-70B) and chip area of OPAL-3/5 and
//! OPAL-4/7 versus the OWQ and BF16 baseline accelerators.
//!
//! Paper reference points: OWQ saves 32.5 % vs BF16; OPAL saves
//! 38.6 %/58.6 % (4/7) and 53.5 %/68.6 % (3/5) vs OWQ/BF16; the area drops
//! 2.4–3.1× vs BF16; 96.9 % of operations run on INT hardware.
//!
//! ```sh
//! cargo run -p opal-bench --bin fig8
//! ```

use opal_bench::header;
use opal_hw::accelerator::{energy_saving, Accelerator, AcceleratorKind};
use opal_model::ModelConfig;

fn main() {
    header("Fig. 8(a): energy per generated token, Llama2-70B @ context 1024");
    let model = ModelConfig::llama2_70b();
    let seq = 1024;

    let kinds = [
        AcceleratorKind::Bf16,
        AcceleratorKind::Owq,
        AcceleratorKind::OpalW4A47,
        AcceleratorKind::OpalW3A35,
    ];
    let energies: Vec<_> =
        kinds.iter().map(|&k| (k, Accelerator::new(k).energy_per_token(&model, seq))).collect();

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "design", "core (J)", "access (J)", "W-leak (J)", "A-leak (J)", "total (J)"
    );
    for (k, e) in &energies {
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>12.3} {:>12.3} {:>10.3}",
            k.name(),
            e.core_j,
            e.mem_access_j,
            e.weight_leak_j,
            e.act_leak_j,
            e.total_j()
        );
    }

    let get = |k: AcceleratorKind| &energies.iter().find(|(kk, _)| *kk == k).unwrap().1;
    let bf16 = get(AcceleratorKind::Bf16);
    let owq = get(AcceleratorKind::Owq);
    let o47 = get(AcceleratorKind::OpalW4A47);
    let o35 = get(AcceleratorKind::OpalW3A35);

    println!("\nSavings (measured vs paper):");
    println!("  OWQ      vs BF16: {:>5.1}%  (paper 32.5%)", 100.0 * energy_saving(owq, bf16));
    println!(
        "  OPAL-4/7 vs OWQ : {:>5.1}%  (paper 38.6%)   vs BF16: {:>5.1}% (paper 58.6%)",
        100.0 * energy_saving(o47, owq),
        100.0 * energy_saving(o47, bf16)
    );
    println!(
        "  OPAL-3/5 vs OWQ : {:>5.1}%  (paper 53.5%)   vs BF16: {:>5.1}% (paper 68.6%)",
        100.0 * energy_saving(o35, owq),
        100.0 * energy_saving(o35, bf16)
    );

    header("Fig. 8(b): chip area");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "design", "core mm²", "W-buf mm²", "A-buf mm²", "total mm²"
    );
    let bf16_area = Accelerator::new(AcceleratorKind::Bf16).area().total_mm2();
    for &k in &kinds {
        let a = Accelerator::new(k).area();
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>12.2} {:>10.2}   ({:.2}x smaller than BF16)",
            k.name(),
            a.core_mm2,
            a.weight_buf_mm2,
            a.act_buf_mm2,
            a.total_mm2(),
            bf16_area / a.total_mm2()
        );
    }
    println!("paper: OPAL reduces area by 2.4x (4/7) to 3.1x (3/5) vs BF16");

    header("§6: operation mix under OPAL W4A4/7");
    let f = Accelerator::new(AcceleratorKind::OpalW4A47).int_mac_fraction(&model, seq);
    println!("INT-hardware share of operations: {:.1}% (paper 96.9%)", 100.0 * f);

    header("Context-length sensitivity (OPAL-4/7, J/token)");
    for s in [128usize, 512, 1024, 2048, 4096] {
        let e = Accelerator::new(AcceleratorKind::OpalW4A47).energy_per_token(&model, s);
        println!("  context {s:>5}: {:.3} J", e.total_j());
    }
}
