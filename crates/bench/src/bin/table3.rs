//! Table 3 — area and power breakdown of one OPAL core (W4A4/7, 65 nm).
//!
//! ```sh
//! cargo run -p opal-bench --bin table3
//! ```

use opal_bench::{header, vs_paper};
use opal_hw::core::OpalCore;
use opal_hw::units::{ConventionalSoftmaxUnit, Log2SoftmaxUnit, MuConfig};

fn main() {
    header("Table 3: area & power breakdown of one OPAL core (W4A4/7)");
    let core = OpalCore::new(MuConfig::w4a47());
    let rows = core.breakdown();
    let total_area = core.area_um2();
    let total_power = core.power_mw();

    let paper = [
        ("Compute Lanes", 670_126.34, 229.65),
        ("Data distributors", 139_713.48, 63.20),
        ("Log2-based Softmax Unit", 76_330.92, 27.62),
        ("MX-OPAL Quantizer", 34_670.88, 14.11),
        ("FP Adder Tree", 8_470.80, 1.28),
    ];

    println!(
        "{:<26} {:>14} {:>8} {:>12} {:>8}",
        "component", "area (µm²)", "share", "power (mW)", "share"
    );
    for (row, (pname, parea, ppow)) in rows.iter().zip(paper) {
        assert_eq!(row.component, pname);
        println!(
            "{:<26} {:>14.2} {:>7.2}% {:>12.2} {:>7.2}%",
            row.component,
            row.area_um2,
            100.0 * row.area_um2 / total_area,
            row.power_mw,
            100.0 * row.power_mw / total_power,
        );
        println!("{:<26} {:>14.2} {:>8} {:>12.2}   <- paper", "", parea, "", ppow);
    }
    println!("\nTotal area : {}", vs_paper(total_area, 929_312.41));
    println!("Total power: {}", vs_paper(total_power, 335.85));

    header("§4.3.3: log2 softmax unit vs conventional softmax unit");
    let l = Log2SoftmaxUnit;
    let c = ConventionalSoftmaxUnit;
    println!(
        "area : {:>10.0} vs {:>10.0} µm²  -> saving {:.1}% (paper 32.3%)",
        l.area_um2(),
        c.area_um2(),
        100.0 * (1.0 - l.area_um2() / c.area_um2())
    );
    println!(
        "power: {:>10.2} vs {:>10.2} mW   -> saving {:.1}% (paper 35.7%)",
        l.power_mw(),
        c.power_mw(),
        100.0 * (1.0 - l.power_mw() / c.power_mw())
    );

    header("§5.2: core throughput by INT-MU mode");
    for (mode, macs) in [
        (opal_hw::units::MuMode::HighHigh, 256),
        (opal_hw::units::MuMode::LowHigh, 512),
        (opal_hw::units::MuMode::LowLow, 1024),
    ] {
        let got = core.macs_per_cycle(mode);
        println!("{mode:?}: {got} MACs/cycle (paper {macs})");
        assert_eq!(got, macs);
    }

    header("W3A3/5 core variant");
    let small = OpalCore::new(MuConfig::w3a35());
    println!(
        "area {:.0} µm² ({:.1}% of the 4/7 core), power {:.1} mW ({:.1}%)",
        small.area_um2(),
        100.0 * small.area_um2() / total_area,
        small.power_mw(),
        100.0 * small.power_mw() / total_power
    );
}
