//! Decode-throughput benchmark: the optimized serving engine (paged KV
//! cache, zero-allocation scratch decode, parallel batch stepping)
//! against the preserved seed implementation, at batch 1 / 4 / 16.
//!
//! Emits `BENCH_decode.json` in the working directory so successive PRs
//! have a perf trajectory. Run with `--smoke` for a CI-sized run.
//!
//! Prefill and decode are timed separately: prefill throughput additionally
//! reflects the fast path that skips vocab-sized logits for all but the
//! final prompt token, decode throughput is the steady-state serving rate.
//! The headline figure compares decode tokens/sec of the optimized engine
//! at batch 16 against the sequential seed engine on the same model/scheme.
//!
//! Beyond the `optimized-{1,4}t` rows (the default `StepMode::Auto`
//! dispatch), each case also measures `pool-4t` vs `scoped-4t` — forced
//! fan-out through the persistent worker pool vs the old per-step
//! `std::thread::scope` spawns — so the JSON prices the dispatch overhead
//! the pool removes even on hosts where `Auto` correctly stays serial. A
//! separate `mxopal_encode` section times the MX-OPAL row round trip,
//! allocating API vs the reusable-scratch path the decode loop uses.
//!
//! The `prefill_admission` section measures the fused multi-token prefill
//! on a long prompt (fused vs token-at-a-time vs seed reference tokens/sec)
//! and the admission behaviour of the chunked scheduler: p50/p99 latency of
//! admitting long prompts into a busy batch plus the max per-step wall time
//! (the decode stall neighbours feel), chunked `prefill_chunk = 8` vs
//! blocking admission.
//!
//! The `kv_paging` section prices the paged cache: batch-16 decode with
//! 16-token blocks vs a flat-equivalent single page (the table-walk
//! overhead), the shared-prefix admission speedup (followers adopting a
//! warm prefix from the trie vs re-prefilling it) with the full-batch
//! block residency proving the prefix is stored once, and a preemption
//! shakedown under a deliberately tiny `max_blocks` pool that *asserts*
//! preempted requests complete with output identical to the uncontended
//! run.
//!
//! The `kv_quant` section compares MX-OPAL KV pages against the exact
//! bf16-precision cache: pool bytes per resident token, peak resident
//! sequences under one shared byte budget, batch-16 decode rate with the
//! quantized-domain attention walk, and the accuracy contract (max logit
//! error plus greedy agreement under teacher forcing). The section
//! *asserts* the acceptance floors: >= 3x bytes/token reduction, >= 2x
//! resident sequences, >= 0.8x decode rate, 100% greedy agreement. The
//! 4-bit preset (`mxopal4`) is measured alongside under the same byte
//! budget with its own floors (deeper bytes/token reduction, >= 4x
//! resident sequences).
//!
//! The `spec_decode` section measures draft-and-verify speculative
//! decoding against the plain engine on the same prompts at batch
//! 1 / 4 / 16, with output bit-identity and the rollback leak check
//! asserted outright. Each row carries two views of the same realized
//! schedules: host wall-clock (this scalar simulator is compute-bound, so
//! the ratio prices speculation's arithmetic overhead) and the OPAL
//! reference platform roofline (`opal_hw`), where low-batch generation is
//! memory-bound on the weight stream and the fused verify pass rides it
//! for free — there the n-gram draft must clear a >= 1.5x tok/s floor at
//! batch <= 4.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use std::sync::Arc;

use opal_model::{BlockPool, KvScheme, Model, ModelConfig, QuantScheme};
use opal_quant::{EncodeScratch, MxOpalQuantizer, Quantizer};
use opal_scenario::{
    replay_with, CancelStorm, ChurnPhase, DegradedConfig, FinishReason, ReplayOptions, RetryPolicy,
    ScenarioReport, TraceConfig,
};
use opal_serve::{ServeConfig, ServeEngine, SpecConfig, StepMode};
use opal_tensor::ops;

/// One measured engine configuration.
struct Row {
    model: String,
    scheme: &'static str,
    engine: String,
    batch: usize,
    threads: usize,
    prefill_tok_s: f64,
    decode_tok_s: f64,
}

fn prompts(batch: usize, vocab: usize, seed: u64) -> Vec<Vec<u32>> {
    let s = (seed % vocab as u64) as u32;
    (0..batch as u32)
        .map(|i| (0..(i % 5 + 2)).map(|j| (i * 13 + j * 5 + s) % vocab as u32).collect())
        .collect()
}

/// The seed engine: sequential stepping through the preserved reference
/// decode path (`Vec<Vec<f32>>` KV caches, latency-chained sums, fresh
/// allocations per token).
fn run_seed_engine(model: &Model, batch: usize, new_tokens: usize, seed: u64) -> (f64, f64) {
    let prompts = prompts(batch, model.config().vocab, seed);
    let t0 = Instant::now();
    let mut seqs: Vec<_> = prompts
        .iter()
        .map(|p| {
            let mut state = model.begin_reference_decode();
            let mut logits = Vec::new();
            for &t in p {
                logits = model.reference_decode_step(&mut state, t);
            }
            (state, logits)
        })
        .collect();
    let prefill_s = t0.elapsed().as_secs_f64();
    let prefill_tokens: usize = prompts.iter().map(Vec::len).sum();

    let t1 = Instant::now();
    for _ in 0..new_tokens {
        for (state, logits) in &mut seqs {
            let token = ops::argmax(logits).unwrap_or(0) as u32;
            *logits = model.reference_decode_step(state, token);
        }
    }
    let decode_s = t1.elapsed().as_secs_f64();
    (prefill_tokens as f64 / prefill_s, (batch * new_tokens) as f64 / decode_s)
}

/// Best-of-N repeat count for a measured row: more runs for small batches,
/// whose individual executions are only milliseconds, damping scheduler
/// noise on rows whose code paths are identical by design (e.g.
/// `optimized-4t` vs `optimized-1t` on a single-core host, where `Auto`
/// serializes both).
fn measure_runs(batch: usize) -> usize {
    (32 / batch.max(1)).clamp(3, 24)
}

/// The optimized engine: `ServeEngine` with the given thread count and
/// dispatch mode, run with blocking-equivalent admission
/// (`prefill_chunk = usize::MAX`): the first step consumes every prompt
/// (through the fused multi-token path) *plus one decode round*, the
/// remaining steps are pure decode. Attribution therefore shifted in this
/// PR — admission is no longer a separately timeable phase, so the
/// `prefill_tok_s` column includes one batch of decode work (deflating it
/// slightly) and `decode_tok_s` excludes that first round; compare these
/// columns with pre-chunked-scheduler JSONs accordingly. Reported figures
/// are the best of `runs` executions.
#[allow(clippy::too_many_arguments)]
fn run_opt_engine(
    model: &Model,
    batch: usize,
    threads: usize,
    step_mode: StepMode,
    new_tokens: usize,
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    run_opt_engine_paged(model, batch, threads, step_mode, new_tokens, runs, 16, seed)
}

/// [`run_opt_engine`] with an explicit KV block size, for the `kv_paging`
/// section's paged-vs-flat comparison (a block far larger than any
/// sequence reproduces the old contiguous-buffer layout: one page per
/// sequence per layer, no table walking).
#[allow(clippy::too_many_arguments)]
fn run_opt_engine_paged(
    model: &Model,
    batch: usize,
    threads: usize,
    step_mode: StepMode,
    new_tokens: usize,
    runs: usize,
    block_size: usize,
    seed: u64,
) -> (f64, f64) {
    let mut best = (0.0f64, 0.0f64);
    for _ in 0..runs {
        let config = ServeConfig {
            max_batch: batch,
            max_tokens: new_tokens,
            num_threads: threads,
            step_mode,
            prefill_chunk: usize::MAX,
            block_size,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(model, config);
        for p in prompts(batch, model.config().vocab, seed) {
            engine.submit(&p).expect("valid prompt");
        }
        let prefill_tokens: usize =
            prompts(batch, model.config().vocab, seed).iter().map(Vec::len).sum();
        let t0 = Instant::now();
        let first = engine.step();
        let prefill_s = t0.elapsed().as_secs_f64();
        debug_assert_eq!(first.prefilled, prefill_tokens);

        let t1 = Instant::now();
        let mut generated = 0usize;
        while !engine.is_idle() {
            generated += engine.step().generated;
        }
        let decode_s = t1.elapsed().as_secs_f64();
        best.0 = best.0.max(prefill_tokens as f64 / prefill_s);
        best.1 = best.1.max(generated as f64 / decode_s);
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn bench_case(
    model_name: &str,
    config: &ModelConfig,
    scheme_name: &'static str,
    scheme: QuantScheme,
    new_tokens: usize,
    seed: u64,
    rows: &mut Vec<Row>,
) {
    let model = Model::new(config.clone(), scheme, seed).expect("valid scheme");
    for batch in [1usize, 4, 16] {
        // Warm one pass so first-touch effects hit nobody in particular.
        run_opt_engine(&model, batch, 1, StepMode::Auto, 4.min(new_tokens), 1, seed);

        let (pf, dec) = run_seed_engine(&model, batch, new_tokens, seed);
        rows.push(Row {
            model: model_name.into(),
            scheme: scheme_name,
            engine: "seed-sequential".into(),
            batch,
            threads: 1,
            prefill_tok_s: pf,
            decode_tok_s: dec,
        });
        // `optimized-{1,4}t` is the deployment configuration (Auto decides
        // whether fanning out can pay); `pool-4t`/`scoped-4t` force the two
        // dispatchers so their fixed overhead is visible no matter the
        // host's core count.
        let engines: [(&str, usize, StepMode); 4] = [
            ("optimized-1t", 1, StepMode::Auto),
            ("optimized-4t", 4, StepMode::Auto),
            ("pool-4t", 4, StepMode::ForcePool),
            ("scoped-4t", 4, StepMode::ForceScoped),
        ];
        // On a single-core host every Auto configuration is the same
        // execution by construction — the cores gate serializes decode and
        // prefill steps alike — so measure once and reuse instead of
        // re-sampling one distribution and reporting scheduler noise as a
        // thread-count effect. On multi-core hosts the plans can differ
        // between the (work-weighted) prefill step and the steady decode
        // steps, so `planned_threads(batch)` alone cannot prove two
        // configurations equivalent: measure each.
        let planned = |threads: usize, step_mode: StepMode| {
            let cfg = ServeConfig {
                max_batch: batch,
                max_tokens: new_tokens,
                num_threads: threads,
                step_mode,
                ..ServeConfig::default()
            };
            ServeEngine::new(&model, cfg).planned_threads(batch)
        };
        let mut measured: Vec<(usize, (f64, f64))> = Vec::new();
        for (name, threads, step_mode) in engines {
            let plan = planned(threads, step_mode);
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let serial_reuse = if step_mode == StepMode::Auto && cores == 1 {
                measured.iter().find(|(p, _)| *p == plan).map(|&(_, m)| m)
            } else {
                None
            };
            let (pf, dec) = match serial_reuse {
                Some(m) => m,
                None => {
                    let m = run_opt_engine(
                        &model,
                        batch,
                        threads,
                        step_mode,
                        new_tokens,
                        measure_runs(batch),
                        seed,
                    );
                    if step_mode == StepMode::Auto {
                        measured.push((plan, m));
                    }
                    m
                }
            };
            rows.push(Row {
                model: model_name.into(),
                scheme: scheme_name,
                engine: name.into(),
                batch,
                threads,
                prefill_tok_s: pf,
                decode_tok_s: dec,
            });
        }
    }
}

/// One measurement of the MX-OPAL row round trip (`quantize_dequantize`
/// allocating API vs the reusable-scratch fused path).
struct EncodeRow {
    d: usize,
    alloc_rows_per_s: f64,
    scratch_rows_per_s: f64,
    speedup: f64,
}

/// Times the W4 MX-OPAL encoder over activation-like rows of width `d`
/// (block 128, 4 outliers — the paper's configuration), with a sprinkling
/// of outlier channels so the top-magnitude selection does real work.
fn bench_mxopal_encode(smoke: bool) -> Vec<EncodeRow> {
    let q = MxOpalQuantizer::new(4, 128, 4).expect("valid config");
    let budget_s = if smoke { 0.02 } else { 0.2 };
    let mut out_rows = Vec::new();
    for d in [128usize, 4096] {
        let x: Vec<f32> = (0..d)
            .map(|i| {
                let base = (((i * 37 + 11) % 41) as f32 / 41.0 - 0.5) * 0.8;
                if i % 97 == 0 {
                    base * 40.0
                } else {
                    base
                }
            })
            .collect();
        let mut out = vec![0.0f32; d];
        let mut scratch = EncodeScratch::new();

        fn time(budget_s: f64, mut row: impl FnMut()) -> f64 {
            for _ in 0..3 {
                row();
            }
            let t0 = Instant::now();
            let mut iters = 0u64;
            while t0.elapsed().as_secs_f64() < budget_s {
                row();
                iters += 1;
            }
            iters as f64 / t0.elapsed().as_secs_f64()
        }

        let alloc_rows_per_s = time(budget_s, || {
            black_box(q.quantize_dequantize(black_box(&x)));
        });
        let scratch_rows_per_s = time(budget_s, || {
            q.quantize_dequantize_scratch(black_box(&x), &mut out, &mut scratch);
            black_box(out[0]);
        });
        out_rows.push(EncodeRow {
            d,
            alloc_rows_per_s,
            scratch_rows_per_s,
            speedup: scratch_rows_per_s / alloc_rows_per_s,
        });
    }
    out_rows
}

/// Long-prompt prefill throughput: the fused multi-token path against the
/// token-at-a-time loop it replaced (chunk size 1 through the same code,
/// preserving the skip-logits-until-last behaviour) and the seed reference.
struct PrefillThroughput {
    fused_tok_s: f64,
    tokenwise_tok_s: f64,
    reference_tok_s: f64,
}

fn bench_prefill_throughput(model: &Model, prompt_len: usize, runs: usize) -> PrefillThroughput {
    let vocab = model.config().vocab as u32;
    let prompt: Vec<u32> = (0..prompt_len as u32).map(|i| (i * 31 + 7) % vocab).collect();
    let mut logits = vec![0.0f32; model.config().vocab];
    let time_best = |run: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        prompt.len() as f64 / best
    };

    let fused_tok_s = time_best(&mut || {
        let mut state = model.begin_decode();
        model.prefill_into(&mut state, black_box(&prompt), &mut logits);
        black_box(logits[0]);
    });
    let tokenwise_tok_s = time_best(&mut || {
        let mut state = model.begin_decode();
        let (last, head) = prompt.split_last().expect("non-empty");
        for &t in head {
            model.prefill_chunk(&mut state, &[t]);
        }
        model.prefill_chunk_into(&mut state, &[*last], &mut logits);
        black_box(logits[0]);
    });
    let reference_tok_s = time_best(&mut || {
        let mut state = model.begin_reference_decode();
        let mut out = Vec::new();
        for &t in &prompt {
            out = model.reference_decode_step(&mut state, t);
        }
        black_box(out[0]);
    });
    PrefillThroughput { fused_tok_s, tokenwise_tok_s, reference_tok_s }
}

/// Admission behaviour while long prompts join a busy batch: per-admission
/// latency (submit → prompt fully prefilled) and the decode stall it
/// inflicts (max per-step wall time while the prompt is being admitted).
struct AdmissionStats {
    p50_ms: f64,
    p99_ms: f64,
    max_step_ms: f64,
    mean_step_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs `n_long` long-prompt admissions, one at a time, against a batch of
/// short requests decoding steadily, and measures every scheduler step
/// taken while a long prompt is in its `Prefilling` phase.
fn bench_admission(
    model: &Model,
    prompt_len: usize,
    n_long: usize,
    prefill_chunk: usize,
) -> AdmissionStats {
    let vocab = model.config().vocab as u32;
    let config = ServeConfig {
        max_batch: 4,
        max_tokens: usize::MAX,
        num_threads: 1,
        prefill_chunk,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(model, config);
    // Three background residents with effectively unbounded limits keep
    // decode traffic flowing for the whole measurement.
    for i in 0..3u32 {
        engine.submit_with_limit(&[i + 1, i + 2, i + 3], usize::MAX).expect("valid prompt");
    }
    for _ in 0..4 {
        engine.step();
    }

    let mut admissions_ms = Vec::with_capacity(n_long);
    let mut step_ms = Vec::new();
    for a in 0..n_long as u32 {
        let prompt: Vec<u32> = (0..prompt_len as u32).map(|i| (i * 29 + a) % vocab).collect();
        let t0 = Instant::now();
        // Limit 1: the long request retires in the step that completes its
        // prefill, freeing its batch slot for the next admission.
        engine.submit_with_limit(&prompt, 1).expect("valid prompt");
        loop {
            let t_step = Instant::now();
            engine.step();
            step_ms.push(t_step.elapsed().as_secs_f64() * 1e3);
            if engine.prefilling_len() == 0 && engine.pending_len() == 0 {
                break;
            }
        }
        admissions_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    admissions_ms.sort_by(f64::total_cmp);
    let mean_step_ms = step_ms.iter().sum::<f64>() / step_ms.len().max(1) as f64;
    AdmissionStats {
        p50_ms: percentile(&admissions_ms, 0.50),
        p99_ms: percentile(&admissions_ms, 0.99),
        max_step_ms: step_ms.iter().copied().fold(0.0, f64::max),
        mean_step_ms,
    }
}

/// Shared-prefix admission: one request warms the prefix cache, then the
/// remaining `n - 1` join concurrently, with and without sharing.
struct SharedPrefixStats {
    first_admit_ms: f64,
    shared_followers_ms: f64,
    unshared_followers_ms: f64,
    admission_speedup: f64,
    shared_blocks: usize,
    unshared_blocks: usize,
}

/// Requests share a `prefix_len`-token prefix with distinct 4-token tails.
/// With sharing enabled the first request publishes the prefix blocks and
/// every follower adopts them read-only, prefilling only its tail —
/// `followers_ms` measures submit-to-all-prefilled for the `n - 1`
/// followers, and the block counts are the pool residency with the whole
/// batch resident (the "prefix stored once" figure).
fn bench_shared_prefix(model: &Model, n: usize, prefix_len: usize) -> SharedPrefixStats {
    let vocab = model.config().vocab as u32;
    let prefix: Vec<u32> = (0..prefix_len as u32).map(|i| (i * 31 + 7) % vocab).collect();
    let run = |sharing: bool| -> (f64, f64, usize) {
        let config = ServeConfig {
            max_batch: n,
            max_tokens: 64, // residents outlive the measurement window
            prefill_chunk: usize::MAX,
            block_size: 16,
            prefix_sharing: sharing,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(model, config);
        let prompt = |a: u32| -> Vec<u32> {
            let mut p = prefix.clone();
            p.extend((0..4u32).map(|j| (a * 7 + j + 1) % vocab));
            p
        };
        let t0 = Instant::now();
        engine.submit(&prompt(0)).expect("valid prompt");
        while engine.prefilling_len() > 0 || engine.pending_len() > 0 {
            engine.step();
        }
        let first_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for a in 1..n as u32 {
            engine.submit(&prompt(a)).expect("valid prompt");
        }
        while engine.prefilling_len() > 0 || engine.pending_len() > 0 {
            engine.step();
        }
        let followers_ms = t1.elapsed().as_secs_f64() * 1e3;
        (first_ms, followers_ms, engine.kv_blocks_in_use())
    };
    let (first_admit_ms, shared_followers_ms, shared_blocks) = run(true);
    let (_, unshared_followers_ms, unshared_blocks) = run(false);
    SharedPrefixStats {
        first_admit_ms,
        shared_followers_ms,
        unshared_followers_ms,
        admission_speedup: unshared_followers_ms / shared_followers_ms,
        shared_blocks,
        unshared_blocks,
    }
}

/// Pool exhaustion: a block budget far below the offered load must preempt
/// and still complete every request with output identical to the
/// uncontended run.
struct PreemptionStats {
    max_blocks: usize,
    preemptions: u64,
    completed: usize,
    matches_uncontended: bool,
}

fn bench_preemption(model: &Model) -> PreemptionStats {
    let vocab = model.config().vocab as u32;
    let prompts: Vec<Vec<u32>> =
        (0..4u32).map(|i| (0..8).map(|j| (i * 17 + j * 3 + 1) % vocab).collect()).collect();
    let max_blocks = model.config().n_layers * 6; // ~1.2x one sequence's worst case
    let run = |cap: usize| -> (Vec<Vec<u32>>, u64, usize) {
        let config = ServeConfig {
            max_batch: 4,
            max_tokens: 6,
            block_size: 4,
            max_blocks: cap,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(model, config);
        let ids: Vec<_> = prompts.iter().map(|p| engine.submit(p).expect("valid prompt")).collect();
        let report = engine.run();
        let tokens: Vec<Vec<u32>> =
            ids.iter().filter_map(|id| report.request(*id).map(|r| r.tokens.clone())).collect();
        (tokens, report.preemptions, report.requests.len())
    };
    let (reference, _, _) = run(usize::MAX);
    let (pressured, preemptions, completed) = run(max_blocks);
    PreemptionStats {
        max_blocks,
        preemptions,
        completed,
        matches_uncontended: pressured == reference,
    }
}

struct KvQuantStats {
    /// KV pool bytes per resident token, exact pages.
    bytes_per_token_exact: f64,
    /// KV pool bytes per resident token, quantized pages.
    bytes_per_token_quant: f64,
    bytes_reduction: f64,
    /// Block bounds the shared byte budget buys each scheme.
    budget_blocks_exact: usize,
    budget_blocks_quant: usize,
    /// Peak resident sequences each scheme reached under that budget.
    resident_exact: usize,
    resident_quant: usize,
    residency_gain: f64,
    exact_tok_s: f64,
    quant_tok_s: f64,
    tok_s_ratio: f64,
    max_logit_err: f32,
    greedy_agreement: f64,
    /// 4-bit preset (`mxopal4`) rows under the same byte budget.
    bytes_per_token_quant4: f64,
    bytes_reduction4: f64,
    budget_blocks_quant4: usize,
    resident_quant4: usize,
    residency_gain4: f64,
    quant4_tok_s: f64,
    tok_s_ratio4: f64,
    max_logit_err4: f32,
    greedy_agreement4: f64,
}

/// Batch decode throughput with the given KV page scheme (unbounded pool).
fn kv_decode_tok_s(
    model: &Model,
    scheme: KvScheme,
    batch: usize,
    new_tokens: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..runs {
        let config = ServeConfig {
            max_batch: batch,
            max_tokens: new_tokens,
            prefill_chunk: usize::MAX,
            kv_scheme: scheme,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(model, config);
        for p in prompts(batch, model.config().vocab, seed) {
            engine.submit(&p).expect("valid prompt");
        }
        engine.step(); // prefill
        let t = Instant::now();
        let mut generated = 0usize;
        while !engine.is_idle() {
            generated += engine.step().generated;
        }
        best = best.max(generated as f64 / t.elapsed().as_secs_f64());
    }
    best
}

/// Peak resident sequences a `max_blocks`-bounded pool sustains while
/// draining `n_requests` cache-cold requests. Submissions interleave with
/// engine steps so each admission decision sees the blocks earlier prefills
/// really allocated — the admission gate, not the queue, is what binds.
fn kv_resident_capacity(
    model: &Model,
    scheme: KvScheme,
    max_blocks: usize,
    n_requests: usize,
    prompt_len: u32,
    new_tokens: usize,
    seed: u64,
) -> usize {
    let config = ServeConfig {
        max_batch: n_requests,
        max_tokens: new_tokens,
        prefill_chunk: usize::MAX,
        max_blocks,
        kv_scheme: scheme,
        prefix_sharing: false,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(model, config);
    let vocab = model.config().vocab as u32;
    for i in 0..n_requests as u32 {
        let p: Vec<u32> = (0..prompt_len).map(|j| (i * 31 + j * 7 + seed as u32) % vocab).collect();
        engine.submit(&p).expect("valid prompt");
        engine.step();
    }
    engine.run().peak_batch
}

/// Accuracy of the quantized cache against the exact cache: teacher-forced
/// greedy decode on both (identical token history, chosen by the exact
/// stream), comparing full logit vectors each step.
fn kv_accuracy(model: &Model, scheme: KvScheme, steps: usize, seed: u64) -> (f32, f64) {
    let d = model.config().d_model;
    let exact_pool = Arc::new(BlockPool::with_scheme(16, d, usize::MAX, KvScheme::Exact));
    let quant_pool = Arc::new(BlockPool::with_scheme(16, d, usize::MAX, scheme));
    let mut max_err = 0.0f32;
    let (mut agree, mut total) = (0usize, 0usize);
    for prompt in prompts(4, model.config().vocab, seed) {
        let mut se = model.begin_decode_paged(&exact_pool);
        let mut sq = model.begin_decode_paged(&quant_pool);
        for &t in &prompt[..prompt.len() - 1] {
            model.decode_step(&mut se, t);
            model.decode_step(&mut sq, t);
        }
        let mut next = *prompt.last().expect("non-empty prompt");
        for _ in 0..steps {
            let le = model.decode_step(&mut se, next);
            let lq = model.decode_step(&mut sq, next);
            for (a, b) in le.iter().zip(&lq) {
                max_err = max_err.max((a - b).abs());
            }
            let pick_e = ops::argmax(&le).expect("non-empty logits");
            let pick_q = ops::argmax(&lq).expect("non-empty logits");
            total += 1;
            agree += usize::from(pick_e == pick_q);
            next = pick_e as u32;
        }
    }
    (max_err, agree as f64 / total as f64)
}

/// The `kv_quant` section: quantized KV pages (MX-OPAL preset) against the
/// exact cache — storage, capacity under one byte budget, decode overhead,
/// and the accuracy contract.
fn bench_kv_quant(model: &Model, new_tokens: usize, smoke: bool, seed: u64) -> KvQuantStats {
    let bs = 16usize;
    let nl = model.config().n_layers;
    let d = model.config().d_model;
    let exact = KvScheme::Exact;
    let quant = KvScheme::mxopal();
    let quant4 = KvScheme::mxopal4();
    let bytes_per_token = |s: &KvScheme| (nl * 2) as f64 * s.page_bytes(bs, d) as f64 / bs as f64;
    let bytes_per_token_exact = bytes_per_token(&exact);
    let bytes_per_token_quant = bytes_per_token(&quant);
    let bytes_per_token_quant4 = bytes_per_token(&quant4);

    // One KV byte budget, translated into each scheme's block bound: the
    // "same memory" comparison a deployment actually faces. Each request
    // needs 4 blocks per layer (40-token prompt + 24 generated = 64
    // positions), so the exact cache parks ~3 sequences while the same
    // bytes hold 3.5x the quantized blocks (~7x at 4 bits). Lifetimes are
    // long enough (24 generated tokens against one admission per step)
    // that the byte budget, not the submission cadence, is what binds.
    let budget_blocks_exact = nl * 12;
    let budget_bytes = budget_blocks_exact * 2 * exact.page_bytes(bs, d);
    let budget_blocks_quant = budget_bytes / (2 * quant.page_bytes(bs, d));
    let budget_blocks_quant4 = budget_bytes / (2 * quant4.page_bytes(bs, d));
    let n_requests = if smoke { 24 } else { 32 };
    let resident_exact =
        kv_resident_capacity(model, exact, budget_blocks_exact, n_requests, 40, 24, seed);
    let resident_quant =
        kv_resident_capacity(model, quant, budget_blocks_quant, n_requests, 40, 24, seed);
    let resident_quant4 =
        kv_resident_capacity(model, quant4, budget_blocks_quant4, n_requests, 40, 24, seed);

    let runs = measure_runs(16).min(if smoke { 3 } else { 8 });
    let exact_tok_s = kv_decode_tok_s(model, exact, 16, new_tokens, runs, seed);
    let quant_tok_s = kv_decode_tok_s(model, quant, 16, new_tokens, runs, seed);
    let quant4_tok_s = kv_decode_tok_s(model, quant4, 16, new_tokens, runs, seed);

    let (max_logit_err, greedy_agreement) =
        kv_accuracy(model, quant, if smoke { 12 } else { 24 }, seed);
    let (max_logit_err4, greedy_agreement4) =
        kv_accuracy(model, quant4, if smoke { 12 } else { 24 }, seed);

    KvQuantStats {
        bytes_per_token_exact,
        bytes_per_token_quant,
        bytes_reduction: bytes_per_token_exact / bytes_per_token_quant,
        budget_blocks_exact,
        budget_blocks_quant,
        resident_exact,
        resident_quant,
        residency_gain: resident_quant as f64 / resident_exact as f64,
        exact_tok_s,
        quant_tok_s,
        tok_s_ratio: quant_tok_s / exact_tok_s,
        max_logit_err,
        greedy_agreement,
        bytes_per_token_quant4,
        bytes_reduction4: bytes_per_token_exact / bytes_per_token_quant4,
        budget_blocks_quant4,
        resident_quant4,
        residency_gain4: resident_quant4 as f64 / resident_exact as f64,
        quant4_tok_s,
        tok_s_ratio4: quant4_tok_s / exact_tok_s,
        max_logit_err4,
        greedy_agreement4,
    }
}

/// One measured speculative-decoding configuration at one batch size.
struct SpecRow {
    draft: &'static str,
    batch: usize,
    host_plain_tok_s: f64,
    host_spec_tok_s: f64,
    /// Host wall ratio. The host simulator's `f64`-accumulating scalar
    /// kernel is compute-bound, so every verify row costs one full GEMV
    /// and speculation cannot win wall-clock here — this ratio prices the
    /// *overhead* of drafting + fused verification on the host.
    host_ratio: f64,
    steps_plain: u64,
    steps_spec: u64,
    acceptance: f64,
    drafted: u64,
    accepted: u64,
    /// Decode tok/s with each run's realized schedule priced on the OPAL
    /// reference platform roofline, where generation is memory-bound and
    /// the fused verify rides the same weight stream as the token it
    /// replaces — the regime the paper's deployment actually serves in.
    modeled_plain_tok_s: f64,
    modeled_spec_tok_s: f64,
    modeled_speedup: f64,
    /// Fraction of the modeled speculative decode time spent in the draft
    /// model (0 for the n-gram draft, which proposes from the sequence's
    /// own history without a forward pass).
    draft_share_modeled: f64,
}

struct SpecDecodeStats {
    k: usize,
    new_tokens: usize,
    rows: Vec<SpecRow>,
}

/// One drained engine run for the `spec_decode` section: host decode
/// throughput plus the same schedule priced on the OPAL roofline.
struct SpecEngineRun {
    host_tok_s: f64,
    steps: u64,
    drafted: u64,
    accepted: u64,
    generated: usize,
    modeled_decode_s: f64,
    modeled_draft_s: f64,
    tokens: Vec<Vec<u32>>,
}

/// Prompts for the speculative section: 24-token periodic motifs (period
/// 3 + i mod 3). Speculation's serving win concentrates on repetitive
/// streams — agent loops, retrieval templates, code — and the proxy
/// model's greedy continuations of these prompts first wander, then
/// settle into cycles, so the n-gram draft sees a realistic mixed regime
/// (cold misses early, long accepted runs late) rather than a hand-picked
/// best case.
fn spec_prompts(batch: usize, vocab: usize, seed: u64) -> Vec<Vec<u32>> {
    let s = (seed % vocab as u64) as u32;
    (0..batch as u32)
        .map(|i| {
            let period = 3 + i % 3;
            (0..24u32).map(|j| (i * 29 + (j % period) * 11 + s) % vocab as u32).collect()
        })
        .collect()
}

/// Drains one engine over the speculative prompt set and prices every
/// realized step on the OPAL reference platform. Host throughput is the
/// best of `runs`; the modeled times come from the last run (the schedule
/// is deterministic, so every run prices identically). Asserts the
/// rollback contract: a clean audit and zero resident KV blocks after the
/// drain.
fn run_spec_engine(
    model: &Model,
    batch: usize,
    spec: Option<SpecConfig>,
    new_tokens: usize,
    runs: usize,
    seed: u64,
) -> SpecEngineRun {
    use opal_hw::performance::{workload_latency, Platform};
    use opal_hw::workload::{DataFormat, TokenWorkload};

    let fmt = DataFormat::bf16();
    let platform = Platform::reference();
    let draft_cfg = match spec {
        Some(SpecConfig { draft: opal_serve::DraftSource::Truncated { layers }, .. }) => {
            let mut c = model.config().clone();
            c.n_layers = layers;
            Some(c)
        }
        _ => None,
    };
    let mut best: Option<SpecEngineRun> = None;
    for _ in 0..runs {
        let config = ServeConfig {
            max_batch: batch,
            max_tokens: new_tokens,
            prefill_chunk: usize::MAX,
            // No prefix cache: with sharing on, the trie deliberately
            // retains full prompt blocks after retirement, which would
            // mask the zero-blocks-after-rollback check below.
            prefix_sharing: false,
            spec,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(model, config);
        let ids: Vec<_> = spec_prompts(batch, model.config().vocab, seed)
            .iter()
            .map(|p| engine.submit(p).expect("valid prompt"))
            .collect();
        // First step consumes every prompt plus one (non-speculative)
        // decode round; excluded from decode timing as in
        // `run_opt_engine_paged`.
        engine.step();
        let t = Instant::now();
        let (mut generated, mut steps) = (0usize, 0u64);
        let (mut drafted, mut accepted) = (0u64, 0u64);
        let (mut modeled_decode_s, mut modeled_draft_s) = (0.0f64, 0.0f64);
        while !engine.is_idle() {
            let s = engine.step();
            generated += s.generated;
            drafted += s.drafted as u64;
            accepted += s.accepted as u64;
            steps += 1;
            // Price the realized schedule: verify rows later rolled back
            // still ran, so they are billed; the whole step shares one
            // weight stream (`from_schedule` counts weight bytes once).
            let mut contexts = Vec::new();
            let mut dctx = Vec::new();
            let mut wl = TokenWorkload::zero();
            for w in engine.last_step_work() {
                for i in 0..w.prefilled {
                    contexts.push(w.prefill_start + i + 1);
                }
                if w.verify_rows > 0 {
                    // Fused verify: `from_verify` streams the sequence's
                    // shared paged KV once for all rows, where per-row
                    // scheduling would re-read it each time. Weights are
                    // zeroed here and charged once for the whole step.
                    let mut v = TokenWorkload::from_verify(
                        model.config(),
                        &fmt,
                        w.verify_start,
                        w.verify_rows,
                    );
                    v.weight_bytes = 0.0;
                    wl.accumulate(&v);
                }
                if let Some(c) = w.decode_context {
                    contexts.push(c);
                }
                for i in 0..w.draft_rows {
                    dctx.push(w.draft_start + i + 1);
                }
            }
            let ran_verify = wl.kv_bytes > 0.0;
            wl.accumulate(&TokenWorkload::from_schedule(model.config(), &fmt, &contexts));
            if ran_verify && wl.weight_bytes == 0.0 {
                wl.weight_bytes = model.config().decoder_params() as f64 * fmt.weight_bits / 8.0;
            }
            if !contexts.is_empty() || ran_verify {
                modeled_decode_s += workload_latency(&wl, &fmt, &platform).total_s();
            }
            if let Some(dc) = &draft_cfg {
                if !dctx.is_empty() {
                    let wl = TokenWorkload::from_schedule(dc, &fmt, &dctx);
                    modeled_draft_s += workload_latency(&wl, &fmt, &platform).total_s();
                }
            }
        }
        let host_tok_s = generated as f64 / t.elapsed().as_secs_f64();
        let audit = engine.audit();
        assert!(
            audit.violations.is_empty(),
            "spec decode audit violations: {:?}",
            audit.violations
        );
        assert_eq!(engine.kv_blocks_in_use(), 0, "speculative rollback leaked KV blocks");
        let report = engine.report(t.elapsed());
        let tokens = ids
            .iter()
            .map(|id| report.request(*id).expect("request completed").tokens.clone())
            .collect();
        if best.as_ref().is_none_or(|b| host_tok_s > b.host_tok_s) {
            best = Some(SpecEngineRun {
                host_tok_s,
                steps,
                drafted,
                accepted,
                generated,
                modeled_decode_s,
                modeled_draft_s,
                tokens,
            });
        } else if let Some(b) = &mut best {
            b.host_tok_s = b.host_tok_s.max(host_tok_s);
        }
    }
    best.expect("at least one run")
}

/// The `spec_decode` section: draft-and-verify speculative decoding
/// against the plain engine on the same prompts, at batch 1 / 4 / 16.
///
/// Two views per row, both from the same runs:
///
/// - **host**: wall-clock decode tok/s of this scalar simulator. Its
///   kernel is compute-bound (a fused k+1-row verify pass costs k+1
///   GEMVs), so the host ratio prices speculation's arithmetic overhead —
///   it cannot show a speedup by construction.
/// - **modeled**: the identical realized schedules priced on the OPAL
///   reference platform (`opal_hw`), where batch-1..4 generation is
///   memory-bound on the weight stream and a fused verify pass costs one
///   stream no matter how many rows ride it. This is the serving regime
///   the tentpole targets, and where the ≥1.5x floor at batch ≤ 4 is
///   asserted for the free n-gram draft.
///
/// Output identity is asserted outright: every speculative token stream
/// must be bit-identical to the plain engine's on the same request.
fn bench_spec_decode(model: &Model, smoke: bool, seed: u64) -> SpecDecodeStats {
    use opal_serve::DraftSource;
    let k = 4usize;
    // Long enough that the streams reach their cyclic regime; the smoke
    // run keeps the horizon (the floor is asserted there too) and trims
    // batches and repeats instead.
    let new_tokens = 256usize;
    let batches: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let mut rows = Vec::new();
    for &batch in batches {
        let runs = if smoke || batch > 4 { 1 } else { 2 };
        let plain = run_spec_engine(model, batch, None, new_tokens, runs, seed);
        let modeled_plain_tok_s = plain.generated as f64 / plain.modeled_decode_s;
        let mut drafts = vec![("ngram", DraftSource::NGram)];
        if !smoke && batch <= 4 {
            drafts.push(("truncated-1", DraftSource::Truncated { layers: 1 }));
        }
        for (name, draft) in drafts {
            let spec = run_spec_engine(
                model,
                batch,
                Some(SpecConfig { draft, k }),
                new_tokens,
                runs,
                seed,
            );
            assert_eq!(
                spec.tokens, plain.tokens,
                "speculative decode diverged from greedy (draft {name}, batch {batch})"
            );
            let modeled_s = spec.modeled_decode_s + spec.modeled_draft_s;
            rows.push(SpecRow {
                draft: name,
                batch,
                host_plain_tok_s: plain.host_tok_s,
                host_spec_tok_s: spec.host_tok_s,
                host_ratio: spec.host_tok_s / plain.host_tok_s,
                steps_plain: plain.steps,
                steps_spec: spec.steps,
                acceptance: if spec.drafted == 0 {
                    0.0
                } else {
                    spec.accepted as f64 / spec.drafted as f64
                },
                drafted: spec.drafted,
                accepted: spec.accepted,
                modeled_plain_tok_s,
                modeled_spec_tok_s: spec.generated as f64 / modeled_s,
                modeled_speedup: (spec.generated as f64 / modeled_s) / modeled_plain_tok_s,
                draft_share_modeled: spec.modeled_draft_s / modeled_s,
            });
        }
    }
    SpecDecodeStats { k, new_tokens, rows }
}

/// Trace-driven scenario suite: three traffic shapes (steady Poisson,
/// bursty overload against a bounded queue, cancel storms + preemption
/// churn under a tight pool) replayed through the virtual-clock harness,
/// each derived from the run's single seed. Every trace is regenerated and
/// replayed twice and both must be bit-identical — the SLO numbers in the
/// JSON are reproducible facts, not samples.
fn bench_scenarios(model: &Model, smoke: bool, seed: u64) -> Vec<ScenarioReport> {
    use opal_scenario::replay;
    let vocab = model.config().vocab;
    let n_layers = model.config().n_layers;
    let horizon: u64 = if smoke { 32 } else { 96 };
    let base = ServeConfig { max_batch: 8, max_tokens: 48, ..ServeConfig::default() };

    let poisson_cfg = TraceConfig::poisson("poisson-steady", seed, 1.2, horizon, vocab);
    let poisson_trace = poisson_cfg.generate();
    assert_eq!(
        poisson_trace.fingerprint(),
        poisson_cfg.generate().fingerprint(),
        "trace generation must be bit-deterministic"
    );
    let poisson = replay(model, base, &poisson_trace);
    assert_eq!(
        poisson.deterministic_digest(),
        replay(model, base, &poisson_trace).deterministic_digest(),
        "replay must be step-deterministic"
    );

    let bursty_trace =
        TraceConfig::bursty("bursty-overload", seed + 1, 4.0, horizon, vocab).generate();
    let bursty = replay(model, ServeConfig { max_queue: 24, ..base }, &bursty_trace);

    let churn_config = ServeConfig { max_blocks: n_layers * 24, ..base };
    let mut storm_cfg = TraceConfig::poisson("cancel-churn", seed + 2, 1.5, horizon, vocab);
    storm_cfg.cancel_storms = vec![
        CancelStorm { at_step: horizon / 3, percent: 50 },
        CancelStorm { at_step: 2 * horizon / 3, percent: 50 },
    ];
    storm_cfg.churn = Some(ChurnPhase::sized_for(
        horizon / 4,
        horizon / 2,
        1.0,
        churn_config.max_blocks,
        churn_config.block_size,
        n_layers,
    ));
    let storm = replay(model, churn_config, &storm_cfg.generate());
    assert!(storm.cancelled > 0, "cancel storms must cancel in-flight requests");

    vec![poisson, bursty, storm]
}

/// Robustness numbers from a chaos-soak replay against its fault-free
/// nominal twin.
struct RobustnessStats {
    faults: usize,
    failed: usize,
    deadline_exceeded: usize,
    shed: usize,
    retried: usize,
    leaked_blocks: usize,
    survivors: usize,
    chaos_goodput: f64,
    nominal_goodput: f64,
    /// Virtual steps after the fault burst ended until rolling goodput
    /// first reached 90% of the nominal run's; `None` if it never did.
    recovery_steps_to_90pct: Option<u64>,
}

/// Chaos-soak robustness bench: a seeded fault burst (worker panics,
/// simulated allocation shortfalls, latency spikes) over deadline-tagged
/// traffic, replayed with client retries and degraded-mode scheduling
/// enabled. Asserts survivors are bit-identical to the fault-free twin and
/// measures how fast goodput climbs back after the burst.
fn bench_robustness(model: &Model, smoke: bool, seed: u64) -> RobustnessStats {
    let vocab = model.config().vocab;
    let n_layers = model.config().n_layers;
    let horizon: u64 = if smoke { 48 } else { 96 };
    let config = ServeConfig {
        max_batch: 8,
        max_tokens: 48,
        max_blocks: n_layers * 48,
        degraded: Some(DegradedConfig::default()),
        ..ServeConfig::default()
    };
    let trace =
        TraceConfig::chaos("chaos-soak", seed + 4, 1.2, horizon, vocab, n_layers * 16).generate();
    let opts = ReplayOptions { retry: Some(RetryPolicy::default()), audit_every: 8 };
    let chaos = replay_with(model, config, &trace, opts);
    let nominal = replay_with(model, config, &trace.fault_free(), opts);
    assert_eq!(chaos.leaked_blocks, 0, "chaos soak leaked KV blocks");
    assert_eq!(chaos.rejected_other, 0, "chaos soak saw an untyped rejection");

    let nominal_fp: std::collections::HashMap<usize, u64> =
        nominal.outcomes.iter().map(|o| (o.event, o.tokens_fp)).collect();
    let mut survivors = 0usize;
    for o in chaos.outcomes.iter().filter(|o| o.finish == FinishReason::Limit) {
        assert_eq!(
            Some(&o.tokens_fp),
            nominal_fp.get(&o.event),
            "survivor {} diverged from its nominal token stream",
            o.event
        );
        survivors += 1;
    }

    // Rolling goodput after the burst window (the back half of
    // `FaultConfig::burst` ends at horizon * 3/4): first virtual step at
    // which a trailing window of completions reaches 90% of the nominal
    // run's overall goodput.
    let burst_end = horizon * 3 / 4;
    let window: u64 = 8;
    let target = 0.9 * nominal.goodput_tokens_per_step;
    let recovery = (burst_end..chaos.virtual_steps).find(|&start| {
        let toks: u64 = chaos
            .outcomes
            .iter()
            .filter(|o| o.finish == FinishReason::Limit)
            .filter(|o| (start..start + window).contains(&o.finished_vstep))
            .map(|o| o.tokens as u64)
            .sum();
        toks as f64 / window as f64 >= target
    });

    RobustnessStats {
        faults: trace.faults(),
        failed: chaos.failed,
        deadline_exceeded: chaos.deadline_exceeded,
        shed: chaos.shed,
        retried: chaos.retried,
        leaked_blocks: chaos.leaked_blocks,
        survivors,
        chaos_goodput: chaos.goodput_tokens_per_step,
        nominal_goodput: nominal.goodput_tokens_per_step,
        recovery_steps_to_90pct: recovery.map(|s| s - burst_end),
    }
}

fn main() {
    // `--seed N` is the single RNG seed for the whole run: model weights,
    // benchmark prompts and the scenario-suite traces all derive from it,
    // so two invocations with the same seed measure bit-identical work.
    let mut smoke = false;
    let mut seed: u64 = 21;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_decode: --seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("bench_decode: unknown argument {other} (usage: [--smoke] [--seed N])");
                std::process::exit(2);
            }
        }
    }
    let new_tokens = if smoke { 6 } else { 32 };

    // The tiny unit-test config plus a mid-size Llama proxy (the accuracy
    // benches' stand-in for Llama2-7B) where per-token compute dominates
    // scheduler overhead.
    let tiny = ModelConfig::tiny();
    let proxy = ModelConfig::llama2_7b().proxy(128, 4, 192);
    let mut rows = Vec::new();
    bench_case("tiny", &tiny, "bf16", QuantScheme::bf16(), new_tokens, seed, &mut rows);
    bench_case(
        "tiny",
        &tiny,
        "mxopal_w4a47",
        QuantScheme::mxopal_w4a47(),
        new_tokens,
        seed,
        &mut rows,
    );
    bench_case(
        "llama7b-proxy128",
        &proxy,
        "bf16",
        QuantScheme::bf16(),
        new_tokens,
        seed,
        &mut rows,
    );
    if !smoke {
        bench_case(
            "llama7b-proxy128",
            &proxy,
            "mxopal_w4a47",
            QuantScheme::mxopal_w4a47(),
            new_tokens,
            seed,
            &mut rows,
        );
    }

    opal_bench::header("Decode throughput (tokens/sec)");
    println!(
        "{:<18} {:<14} {:<16} {:>5} {:>8} {:>14} {:>14}",
        "model", "scheme", "engine", "batch", "threads", "prefill tok/s", "decode tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<14} {:<16} {:>5} {:>8} {:>14.0} {:>14.0}",
            r.model, r.scheme, r.engine, r.batch, r.threads, r.prefill_tok_s, r.decode_tok_s
        );
    }

    let speedup = |model: &str, scheme: &str, batch: usize, engine: &str| -> f64 {
        let find = |eng: &str| {
            rows.iter()
                .find(|r| {
                    r.model == model && r.scheme == scheme && r.batch == batch && r.engine == eng
                })
                .map(|r| r.decode_tok_s)
                .unwrap_or(f64::NAN)
        };
        find(engine) / find("seed-sequential")
    };

    println!();
    let mut headline = f64::NAN;
    let mut speedup_lines = Vec::new();
    let mut pool_lines = Vec::new();
    for (model, scheme) in [
        ("tiny", "bf16"),
        ("tiny", "mxopal_w4a47"),
        ("llama7b-proxy128", "bf16"),
        ("llama7b-proxy128", "mxopal_w4a47"),
    ] {
        let s4 = speedup(model, scheme, 16, "optimized-4t");
        let s1 = speedup(model, scheme, 16, "optimized-1t");
        if s4.is_nan() {
            continue;
        }
        if model == "llama7b-proxy128" && scheme == "bf16" {
            headline = s4;
        }
        println!(
            "batch-16 decode speedup vs seed engine [{model}/{scheme}]: {s4:.2}x (4 threads), \
             {s1:.2}x (1 thread)"
        );
        speedup_lines.push(format!(
            "    {{ \"model\": \"{model}\", \"scheme\": \"{scheme}\", \
             \"optimized_4t\": {s4:.3}, \"optimized_1t\": {s1:.3} }}"
        ));
        let pool = speedup(model, scheme, 16, "pool-4t");
        let scoped = speedup(model, scheme, 16, "scoped-4t");
        println!(
            "batch-16 forced 4-thread dispatch [{model}/{scheme}]: pool {pool:.2}x, \
             scoped {scoped:.2}x vs seed ({:.2}x pool over scoped)",
            pool / scoped
        );
        pool_lines.push(format!(
            "    {{ \"model\": \"{model}\", \"scheme\": \"{scheme}\", \
             \"pool_4t\": {pool:.3}, \"scoped_4t\": {scoped:.3}, \
             \"pool_over_scoped\": {:.3} }}",
            pool / scoped
        ));
    }

    let encode_rows = bench_mxopal_encode(smoke);
    println!();
    for r in &encode_rows {
        println!(
            "mxopal-4 encode d={}: {:.0} rows/s allocating, {:.0} rows/s scratch ({:.2}x)",
            r.d, r.alloc_rows_per_s, r.scratch_rows_per_s, r.speedup
        );
    }

    // Fused prefill throughput and chunked-vs-blocking admission on a long
    // prompt (the workload the chunked scheduler exists for). Smoke mode
    // keeps the CI run short but still exercises a real chunked-prefill
    // admission.
    let long_prompt = if smoke { 48 } else { 192 };
    let n_long = if smoke { 4 } else { 12 };
    let pf_runs = if smoke { 3 } else { 8 };
    let proxy_model = Model::new(proxy.clone(), QuantScheme::bf16(), seed).expect("valid scheme");
    let pt = bench_prefill_throughput(&proxy_model, long_prompt, pf_runs);
    let chunked = bench_admission(&proxy_model, long_prompt, n_long, 8);
    let blocking = bench_admission(&proxy_model, long_prompt, n_long, usize::MAX);
    println!();
    println!(
        "prefill {long_prompt}-token prompt [llama7b-proxy128/bf16]: fused {:.0} tok/s, \
         tokenwise {:.0} tok/s ({:.2}x), seed reference {:.0} tok/s ({:.2}x)",
        pt.fused_tok_s,
        pt.tokenwise_tok_s,
        pt.fused_tok_s / pt.tokenwise_tok_s,
        pt.reference_tok_s,
        pt.fused_tok_s / pt.reference_tok_s
    );
    println!(
        "admission of {n_long} long prompts into a busy batch: chunked(8) p50/p99 \
         {:.2}/{:.2} ms, max step {:.2} ms | blocking p50/p99 {:.2}/{:.2} ms, max step {:.2} ms \
         ({:.2}x stall reduction)",
        chunked.p50_ms,
        chunked.p99_ms,
        chunked.max_step_ms,
        blocking.p50_ms,
        blocking.p99_ms,
        blocking.max_step_ms,
        blocking.max_step_ms / chunked.max_step_ms
    );

    // Paged KV cache: per-step decode overhead of walking block tables
    // (block 16 vs a flat-equivalent single page), the shared-prefix
    // admission speedup, and a preemption shakedown under a tiny pool.
    let kv_runs = measure_runs(16).min(if smoke { 3 } else { 8 });
    let (_, paged_dec) =
        run_opt_engine_paged(&proxy_model, 16, 1, StepMode::Auto, new_tokens, kv_runs, 16, seed);
    let (_, flat_dec) =
        run_opt_engine_paged(&proxy_model, 16, 1, StepMode::Auto, new_tokens, kv_runs, 4096, seed);
    let shared_prefix_len = if smoke { 48 } else { 128 };
    let shared_n = if smoke { 4 } else { 8 };
    let sp = bench_shared_prefix(&proxy_model, shared_n, shared_prefix_len);
    let tiny_model = Model::new(tiny.clone(), QuantScheme::bf16(), seed).expect("valid scheme");
    let pre = bench_preemption(&tiny_model);
    println!();
    println!(
        "kv paging batch-16 decode [llama7b-proxy128/bf16]: paged(16) {paged_dec:.0} tok/s vs \
         flat-equivalent {flat_dec:.0} tok/s ({:.3}x)",
        paged_dec / flat_dec
    );
    println!(
        "shared-prefix admission ({shared_n} x {shared_prefix_len}-token prefix + 4-token tail): \
         first {:.2} ms, {} cached followers {:.2} ms vs unshared {:.2} ms ({:.1}x); \
         full-batch residency {} blocks shared vs {} unshared",
        sp.first_admit_ms,
        shared_n - 1,
        sp.shared_followers_ms,
        sp.unshared_followers_ms,
        sp.admission_speedup,
        sp.shared_blocks,
        sp.unshared_blocks
    );
    println!(
        "preemption under a {}-block pool: {} preemptions, {}/4 requests completed, \
         outputs match uncontended run: {}",
        pre.max_blocks, pre.preemptions, pre.completed, pre.matches_uncontended
    );
    assert!(pre.matches_uncontended, "preemption must not change output");
    assert_eq!(pre.completed, 4, "preempted requests must complete");

    // Quantized KV pages: storage and residency wins at one byte budget,
    // decode-rate overhead of the quantized-domain attention walk, and the
    // greedy-agreement accuracy contract vs the exact cache.
    let kq = bench_kv_quant(&proxy_model, new_tokens, smoke, seed);
    println!();
    println!(
        "kv quant [llama7b-proxy128/mxopal vs exact]: {:.0} vs {:.0} pool bytes/token \
         ({:.2}x smaller); byte budget {} exact-blocks -> {} quant-blocks, peak resident \
         {} vs {} sequences ({:.2}x)",
        kq.bytes_per_token_quant,
        kq.bytes_per_token_exact,
        kq.bytes_reduction,
        kq.budget_blocks_exact,
        kq.budget_blocks_quant,
        kq.resident_quant,
        kq.resident_exact,
        kq.residency_gain
    );
    println!(
        "kv quant batch-16 decode: {:.0} tok/s quantized vs {:.0} tok/s exact ({:.3}x); \
         max |logit err| {:.2e}, greedy agreement {:.1}%",
        kq.quant_tok_s,
        kq.exact_tok_s,
        kq.tok_s_ratio,
        kq.max_logit_err,
        kq.greedy_agreement * 100.0
    );
    assert!(
        kq.bytes_reduction >= 3.0,
        "quantized KV pages must shrink pool bytes/token at least 3x (got {:.2}x)",
        kq.bytes_reduction
    );
    assert!(
        kq.residency_gain >= 2.0,
        "quantized KV must fit at least 2x more resident sequences (got {:.2}x)",
        kq.residency_gain
    );
    assert!(
        kq.tok_s_ratio >= 0.8,
        "quantized decode must stay within 20% of exact tok/s (got {:.3}x)",
        kq.tok_s_ratio
    );
    assert!(
        (kq.greedy_agreement - 1.0).abs() < f64::EPSILON,
        "quantized greedy decode must agree with exact (got {:.4})",
        kq.greedy_agreement
    );
    println!(
        "kv quant 4-bit [llama7b-proxy128/mxopal4 vs exact]: {:.0} vs {:.0} pool bytes/token \
         ({:.2}x smaller); same byte budget -> {} quant4-blocks, peak resident {} vs {} \
         sequences ({:.2}x); {:.0} tok/s ({:.3}x), max |logit err| {:.2e}, greedy agreement \
         {:.1}%",
        kq.bytes_per_token_quant4,
        kq.bytes_per_token_exact,
        kq.bytes_reduction4,
        kq.budget_blocks_quant4,
        kq.resident_quant4,
        kq.resident_exact,
        kq.residency_gain4,
        kq.quant4_tok_s,
        kq.tok_s_ratio4,
        kq.max_logit_err4,
        kq.greedy_agreement4 * 100.0
    );
    assert!(
        kq.bytes_reduction4 > kq.bytes_reduction,
        "4-bit KV pages must shrink pool bytes/token beyond the 8-bit preset \
         ({:.2}x vs {:.2}x)",
        kq.bytes_reduction4,
        kq.bytes_reduction
    );
    assert!(
        kq.residency_gain4 >= 4.0,
        "4-bit KV must fit at least 4x more resident sequences (got {:.2}x)",
        kq.residency_gain4
    );
    assert!(
        kq.tok_s_ratio4 >= 0.8,
        "4-bit quantized decode must stay within 20% of exact tok/s (got {:.3}x)",
        kq.tok_s_ratio4
    );
    // 4 bits trades accuracy for capacity: greedy agreement degrades from
    // the 8-bit preset's 100%, but must stay in the usable band.
    assert!(
        kq.greedy_agreement4 >= 0.85,
        "4-bit greedy agreement out of bounds (got {:.4})",
        kq.greedy_agreement4
    );

    // Speculative decoding: draft/verify against the plain engine on the
    // same prompts, host wall-clock plus the OPAL-platform roofline view.
    // Output identity and the rollback leak check are asserted inside.
    let sd = bench_spec_decode(&proxy_model, smoke, seed);
    println!();
    for r in &sd.rows {
        println!(
            "spec decode [{}/k={}] batch {:>2}: host {:.0} -> {:.0} tok/s ({:.2}x), steps \
             {} -> {}, acceptance {:.1}% ({}/{}), OPAL-modeled {:.1} -> {:.1} tok/s \
             ({:.2}x), draft share {:.1}%",
            r.draft,
            sd.k,
            r.batch,
            r.host_plain_tok_s,
            r.host_spec_tok_s,
            r.host_ratio,
            r.steps_plain,
            r.steps_spec,
            r.acceptance * 100.0,
            r.accepted,
            r.drafted,
            r.modeled_plain_tok_s,
            r.modeled_spec_tok_s,
            r.modeled_speedup,
            r.draft_share_modeled * 100.0
        );
    }
    for r in sd.rows.iter().filter(|r| r.draft == "ngram" && r.batch <= 4) {
        assert!(
            r.modeled_speedup >= 1.5,
            "speculative decode must reach 1.5x modeled tok/s at batch {} (got {:.2}x)",
            r.batch,
            r.modeled_speedup
        );
        assert!(
            r.host_ratio >= 0.6,
            "n-gram speculation host overhead out of bounds at batch {} ({:.2}x)",
            r.batch,
            r.host_ratio
        );
    }

    // SLO-grade scenario suite on the tiny model: per-shape TTFT /
    // inter-token percentiles, goodput under and after overload, Jain
    // fairness across tenants — the serving-quality view the throughput
    // rows above can't show.
    let scenarios = bench_scenarios(&tiny_model, smoke, seed);
    println!();
    for s in &scenarios {
        println!(
            "scenario '{}': ttft p50/p99 {:.1}/{:.1} steps, itl p50/p99 {:.2}/{:.2} steps, \
             goodput {:.2} tok/step (overload {:.2}, drain {:.2}), fairness {:.3}, \
             {} completed / {} cancelled / {} rejected of {}",
            s.trace,
            s.ttft_steps.p50,
            s.ttft_steps.p99,
            s.inter_token_steps.p50,
            s.inter_token_steps.p99,
            s.goodput_tokens_per_step,
            s.overload_goodput,
            s.drain_goodput,
            s.fairness_jain,
            s.completed,
            s.cancelled,
            s.rejected_queue_full + s.rejected_insufficient_blocks,
            s.submitted
        );
    }

    // Chaos-soak robustness: survivors bit-identical under a fault burst,
    // plus the recovery time the throughput rows can't show.
    let rb = bench_robustness(&tiny_model, smoke, seed);
    println!(
        "\nrobustness 'chaos-soak': {} faults -> {} failed / {} expired / {} shed, {} retried; \
         {} survivors bit-identical; goodput {:.2} vs {:.2} nominal; recovery to 90% in {} steps",
        rb.faults,
        rb.failed,
        rb.deadline_exceeded,
        rb.shed,
        rb.retried,
        rb.survivors,
        rb.chaos_goodput,
        rb.nominal_goodput,
        rb.recovery_steps_to_90pct.map_or("n/a".into(), |s| s.to_string())
    );

    let mut json = String::from("{\n  \"benchmark\": \"decode_throughput\",\n");
    let _ = writeln!(json, "  \"new_tokens_per_request\": {new_tokens},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(
        json,
        "  \"headline_batch16_4t_vs_seed\": {{ \"model\": \"llama7b-proxy128\", \
         \"scheme\": \"bf16\", \"speedup\": {headline:.3} }},"
    );
    let _ = writeln!(json, "  \"batch16_speedups\": [\n{}\n  ],", speedup_lines.join(",\n"));
    let _ = writeln!(json, "  \"batch16_pool_vs_scoped\": [\n{}\n  ],", pool_lines.join(",\n"));
    let encode_json: Vec<String> = encode_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"d\": {}, \"alloc_rows_per_s\": {:.0}, \"scratch_rows_per_s\": {:.0}, \
                 \"speedup\": {:.3} }}",
                r.d, r.alloc_rows_per_s, r.scratch_rows_per_s, r.speedup
            )
        })
        .collect();
    let _ = writeln!(json, "  \"mxopal_encode\": [\n{}\n  ],", encode_json.join(",\n"));
    let admission_json = |s: &AdmissionStats| {
        format!(
            "{{ \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_step_ms\": {:.3}, \
             \"mean_step_ms\": {:.3} }}",
            s.p50_ms, s.p99_ms, s.max_step_ms, s.mean_step_ms
        )
    };
    let _ = writeln!(
        json,
        "  \"prefill_admission\": {{\n    \"model\": \"llama7b-proxy128\", \"scheme\": \"bf16\", \
         \"long_prompt\": {long_prompt}, \"admissions\": {n_long},\n    \
         \"fused_prefill_tok_s\": {:.1}, \"tokenwise_prefill_tok_s\": {:.1}, \
         \"reference_prefill_tok_s\": {:.1},\n    \
         \"fused_over_tokenwise\": {:.3}, \"fused_over_reference\": {:.3},\n    \
         \"chunked8\": {},\n    \"blocking\": {},\n    \"decode_stall_reduction\": {:.3}\n  }},",
        pt.fused_tok_s,
        pt.tokenwise_tok_s,
        pt.reference_tok_s,
        pt.fused_tok_s / pt.tokenwise_tok_s,
        pt.fused_tok_s / pt.reference_tok_s,
        admission_json(&chunked),
        admission_json(&blocking),
        blocking.max_step_ms / chunked.max_step_ms
    );
    let _ = writeln!(
        json,
        "  \"kv_paging\": {{\n    \"model\": \"llama7b-proxy128\", \"scheme\": \"bf16\", \
         \"block_size\": 16,\n    \
         \"paged_decode_tok_s\": {paged_dec:.1}, \"flat_equiv_decode_tok_s\": {flat_dec:.1}, \
         \"paged_over_flat\": {:.4},\n    \
         \"shared_prefix\": {{ \"requests\": {shared_n}, \"prefix_len\": {shared_prefix_len}, \
         \"first_admit_ms\": {:.3}, \"shared_followers_ms\": {:.3}, \
         \"unshared_followers_ms\": {:.3}, \"admission_speedup\": {:.3}, \
         \"resident_blocks_shared\": {}, \"resident_blocks_unshared\": {} }},\n    \
         \"preemption\": {{ \"model\": \"tiny\", \"max_blocks\": {}, \"preemptions\": {}, \
         \"completed\": {}, \"matches_uncontended\": {} }}\n  }},",
        paged_dec / flat_dec,
        sp.first_admit_ms,
        sp.shared_followers_ms,
        sp.unshared_followers_ms,
        sp.admission_speedup,
        sp.shared_blocks,
        sp.unshared_blocks,
        pre.max_blocks,
        pre.preemptions,
        pre.completed,
        pre.matches_uncontended
    );
    let _ = writeln!(
        json,
        "  \"kv_quant\": {{\n    \"model\": \"llama7b-proxy128\", \"scheme\": \"mxopal\", \
         \"block_size\": 16,\n    \
         \"pool_bytes_per_token_exact\": {:.1}, \"pool_bytes_per_token_quant\": {:.1}, \
         \"bytes_reduction\": {:.3},\n    \
         \"budget_blocks_exact\": {}, \"budget_blocks_quant\": {}, \
         \"peak_resident_exact\": {}, \"peak_resident_quant\": {}, \
         \"residency_gain\": {:.3},\n    \
         \"decode_tok_s_exact\": {:.1}, \"decode_tok_s_quant\": {:.1}, \
         \"tok_s_ratio\": {:.3},\n    \
         \"max_logit_err\": {:.3e}, \"greedy_agreement\": {:.4},\n    \
         \"mxopal4\": {{ \"pool_bytes_per_token\": {:.1}, \"bytes_reduction\": {:.3}, \
         \"budget_blocks\": {}, \"peak_resident\": {}, \"residency_gain\": {:.3}, \
         \"decode_tok_s\": {:.1}, \"tok_s_ratio\": {:.3}, \"max_logit_err\": {:.3e}, \
         \"greedy_agreement\": {:.4} }}\n  }},",
        kq.bytes_per_token_exact,
        kq.bytes_per_token_quant,
        kq.bytes_reduction,
        kq.budget_blocks_exact,
        kq.budget_blocks_quant,
        kq.resident_exact,
        kq.resident_quant,
        kq.residency_gain,
        kq.exact_tok_s,
        kq.quant_tok_s,
        kq.tok_s_ratio,
        kq.max_logit_err,
        kq.greedy_agreement,
        kq.bytes_per_token_quant4,
        kq.bytes_reduction4,
        kq.budget_blocks_quant4,
        kq.resident_quant4,
        kq.residency_gain4,
        kq.quant4_tok_s,
        kq.tok_s_ratio4,
        kq.max_logit_err4,
        kq.greedy_agreement4
    );
    let spec_rows_json: Vec<String> = sd
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"draft\": \"{}\", \"batch\": {}, \
                 \"host_plain_tok_s\": {:.1}, \"host_spec_tok_s\": {:.1}, \
                 \"host_ratio\": {:.3}, \"steps_plain\": {}, \"steps_spec\": {}, \
                 \"acceptance_rate\": {:.4}, \"drafted\": {}, \"accepted\": {}, \
                 \"modeled_plain_tok_s\": {:.2}, \"modeled_spec_tok_s\": {:.2}, \
                 \"modeled_speedup\": {:.3}, \"draft_share_modeled\": {:.4} }}",
                r.draft,
                r.batch,
                r.host_plain_tok_s,
                r.host_spec_tok_s,
                r.host_ratio,
                r.steps_plain,
                r.steps_spec,
                r.acceptance,
                r.drafted,
                r.accepted,
                r.modeled_plain_tok_s,
                r.modeled_spec_tok_s,
                r.modeled_speedup,
                r.draft_share_modeled
            )
        })
        .collect();
    let _ = writeln!(
        json,
        "  \"spec_decode\": {{\n    \"model\": \"llama7b-proxy128\", \"scheme\": \"bf16\", \
         \"k\": {}, \"new_tokens\": {}, \"platform\": \"opal-reference\",\n    \
         \"rows\": [\n{}\n    ]\n  }},",
        sd.k,
        sd.new_tokens,
        spec_rows_json.join(",\n")
    );
    let scenario_json: Vec<String> = scenarios.iter().map(ScenarioReport::to_json).collect();
    let _ = writeln!(
        json,
        "  \"scenario\": {{ \"model\": \"tiny\", \"scheme\": \"bf16\", \"seed\": {seed}, \
         \"traces\": [{}] }},",
        scenario_json.join(", ")
    );
    let _ = writeln!(
        json,
        "  \"robustness\": {{ \"model\": \"tiny\", \"scheme\": \"bf16\", \"trace\": \"chaos-soak\",\n    \
         \"faults\": {}, \"failed\": {}, \"deadline_exceeded\": {}, \"shed\": {}, \"retried\": {},\n    \
         \"leaked_blocks\": {}, \"survivors_bit_identical\": {},\n    \
         \"chaos_goodput_tok_step\": {:.4}, \"nominal_goodput_tok_step\": {:.4}, \
         \"recovery_steps_to_90pct_goodput\": {} }},",
        rb.faults,
        rb.failed,
        rb.deadline_exceeded,
        rb.shed,
        rb.retried,
        rb.leaked_blocks,
        rb.survivors,
        rb.chaos_goodput,
        rb.nominal_goodput,
        rb.recovery_steps_to_90pct.map_or("null".into(), |s| s.to_string())
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"model\": \"{}\", \"scheme\": \"{}\", \"engine\": \"{}\", \"batch\": {}, \
             \"threads\": {}, \"prefill_tok_s\": {:.1}, \"decode_tok_s\": {:.1} }}{}",
            r.model,
            r.scheme,
            r.engine,
            r.batch,
            r.threads,
            r.prefill_tok_s,
            r.decode_tok_s,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("\nwrote BENCH_decode.json");
}
