//! Decode-throughput benchmark: the optimized serving engine (contiguous
//! KV caches, zero-allocation scratch decode, parallel batch stepping)
//! against the preserved seed implementation, at batch 1 / 4 / 16.
//!
//! Emits `BENCH_decode.json` in the working directory so successive PRs
//! have a perf trajectory. Run with `--smoke` for a CI-sized run.
//!
//! Prefill and decode are timed separately: prefill throughput additionally
//! reflects the fast path that skips vocab-sized logits for all but the
//! final prompt token, decode throughput is the steady-state serving rate.
//! The headline figure compares decode tokens/sec of the optimized engine
//! at batch 16 against the sequential seed engine on the same model/scheme.

use std::fmt::Write as _;
use std::time::Instant;

use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{ServeConfig, ServeEngine};
use opal_tensor::ops;

/// One measured engine configuration.
struct Row {
    model: String,
    scheme: &'static str,
    engine: String,
    batch: usize,
    threads: usize,
    prefill_tok_s: f64,
    decode_tok_s: f64,
}

fn prompts(batch: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..batch as u32)
        .map(|i| (0..(i % 5 + 2)).map(|j| (i * 13 + j * 5) % vocab as u32).collect())
        .collect()
}

/// The seed engine: sequential stepping through the preserved reference
/// decode path (`Vec<Vec<f32>>` KV caches, latency-chained sums, fresh
/// allocations per token).
fn run_seed_engine(model: &Model, batch: usize, new_tokens: usize) -> (f64, f64) {
    let prompts = prompts(batch, model.config().vocab);
    let t0 = Instant::now();
    let mut seqs: Vec<_> = prompts
        .iter()
        .map(|p| {
            let mut state = model.begin_reference_decode();
            let mut logits = Vec::new();
            for &t in p {
                logits = model.reference_decode_step(&mut state, t);
            }
            (state, logits)
        })
        .collect();
    let prefill_s = t0.elapsed().as_secs_f64();
    let prefill_tokens: usize = prompts.iter().map(Vec::len).sum();

    let t1 = Instant::now();
    for _ in 0..new_tokens {
        for (state, logits) in &mut seqs {
            let token = ops::argmax(logits).unwrap_or(0) as u32;
            *logits = model.reference_decode_step(state, token);
        }
    }
    let decode_s = t1.elapsed().as_secs_f64();
    (prefill_tokens as f64 / prefill_s, (batch * new_tokens) as f64 / decode_s)
}

/// The optimized engine: `ServeEngine` with the given thread count.
/// Admission (prefill) is timed apart from the steady-state decode loop.
fn run_opt_engine(model: &Model, batch: usize, threads: usize, new_tokens: usize) -> (f64, f64) {
    let config = ServeConfig { max_batch: batch, max_tokens: new_tokens, num_threads: threads };
    let mut engine = ServeEngine::new(model, config);
    for p in prompts(batch, model.config().vocab) {
        engine.submit(&p).expect("valid prompt");
    }
    let prefill_tokens: usize = prompts(batch, model.config().vocab).iter().map(Vec::len).sum();
    let t0 = Instant::now();
    engine.admit();
    let prefill_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut generated = 0usize;
    while !engine.is_idle() {
        generated += engine.step().generated;
    }
    let decode_s = t1.elapsed().as_secs_f64();
    (prefill_tokens as f64 / prefill_s, generated as f64 / decode_s)
}

fn bench_case(
    model_name: &str,
    config: &ModelConfig,
    scheme_name: &'static str,
    scheme: QuantScheme,
    new_tokens: usize,
    rows: &mut Vec<Row>,
) {
    let model = Model::new(config.clone(), scheme, 21).expect("valid scheme");
    for batch in [1usize, 4, 16] {
        // Warm one pass so first-touch effects hit nobody in particular.
        run_opt_engine(&model, batch, 1, 4.min(new_tokens));

        let (pf, dec) = run_seed_engine(&model, batch, new_tokens);
        rows.push(Row {
            model: model_name.into(),
            scheme: scheme_name,
            engine: "seed-sequential".into(),
            batch,
            threads: 1,
            prefill_tok_s: pf,
            decode_tok_s: dec,
        });
        for threads in [1usize, 4] {
            let (pf, dec) = run_opt_engine(&model, batch, threads, new_tokens);
            rows.push(Row {
                model: model_name.into(),
                scheme: scheme_name,
                engine: format!("optimized-{threads}t"),
                batch,
                threads,
                prefill_tok_s: pf,
                decode_tok_s: dec,
            });
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let new_tokens = if smoke { 6 } else { 32 };

    // The tiny unit-test config plus a mid-size Llama proxy (the accuracy
    // benches' stand-in for Llama2-7B) where per-token compute dominates
    // scheduler overhead.
    let tiny = ModelConfig::tiny();
    let proxy = ModelConfig::llama2_7b().proxy(128, 4, 192);
    let mut rows = Vec::new();
    bench_case("tiny", &tiny, "bf16", QuantScheme::bf16(), new_tokens, &mut rows);
    bench_case("tiny", &tiny, "mxopal_w4a47", QuantScheme::mxopal_w4a47(), new_tokens, &mut rows);
    bench_case("llama7b-proxy128", &proxy, "bf16", QuantScheme::bf16(), new_tokens, &mut rows);
    if !smoke {
        bench_case(
            "llama7b-proxy128",
            &proxy,
            "mxopal_w4a47",
            QuantScheme::mxopal_w4a47(),
            new_tokens,
            &mut rows,
        );
    }

    opal_bench::header("Decode throughput (tokens/sec)");
    println!(
        "{:<18} {:<14} {:<16} {:>5} {:>8} {:>14} {:>14}",
        "model", "scheme", "engine", "batch", "threads", "prefill tok/s", "decode tok/s"
    );
    for r in &rows {
        println!(
            "{:<18} {:<14} {:<16} {:>5} {:>8} {:>14.0} {:>14.0}",
            r.model, r.scheme, r.engine, r.batch, r.threads, r.prefill_tok_s, r.decode_tok_s
        );
    }

    let speedup = |model: &str, scheme: &str, batch: usize, engine: &str| -> f64 {
        let find = |eng: &str| {
            rows.iter()
                .find(|r| {
                    r.model == model && r.scheme == scheme && r.batch == batch && r.engine == eng
                })
                .map(|r| r.decode_tok_s)
                .unwrap_or(f64::NAN)
        };
        find(engine) / find("seed-sequential")
    };

    println!();
    let mut headline = f64::NAN;
    let mut speedup_lines = Vec::new();
    for (model, scheme) in [
        ("tiny", "bf16"),
        ("tiny", "mxopal_w4a47"),
        ("llama7b-proxy128", "bf16"),
        ("llama7b-proxy128", "mxopal_w4a47"),
    ] {
        let s4 = speedup(model, scheme, 16, "optimized-4t");
        let s1 = speedup(model, scheme, 16, "optimized-1t");
        if s4.is_nan() {
            continue;
        }
        if model == "llama7b-proxy128" && scheme == "bf16" {
            headline = s4;
        }
        println!(
            "batch-16 decode speedup vs seed engine [{model}/{scheme}]: {s4:.2}x (4 threads), \
             {s1:.2}x (1 thread)"
        );
        speedup_lines.push(format!(
            "    {{ \"model\": \"{model}\", \"scheme\": \"{scheme}\", \
             \"optimized_4t\": {s4:.3}, \"optimized_1t\": {s1:.3} }}"
        ));
    }

    let mut json = String::from("{\n  \"benchmark\": \"decode_throughput\",\n");
    let _ = writeln!(json, "  \"new_tokens_per_request\": {new_tokens},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"headline_batch16_4t_vs_seed\": {{ \"model\": \"llama7b-proxy128\", \
         \"scheme\": \"bf16\", \"speedup\": {headline:.3} }},"
    );
    let _ = writeln!(json, "  \"batch16_speedups\": [\n{}\n  ],", speedup_lines.join(",\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"model\": \"{}\", \"scheme\": \"{}\", \"engine\": \"{}\", \"batch\": {}, \
             \"threads\": {}, \"prefill_tok_s\": {:.1}, \"decode_tok_s\": {:.1} }}{}",
            r.model,
            r.scheme,
            r.engine,
            r.batch,
            r.threads,
            r.prefill_tok_s,
            r.decode_tok_s,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_decode.json", &json).expect("write BENCH_decode.json");
    println!("\nwrote BENCH_decode.json");
}
