//! Ablation: sweep the preserved-outlier count `n` and block size `k` —
//! the design-space study behind the paper's choice of (k=128, n=4), and
//! the shift-rounding study (bare truncating shifter vs round-to-nearest).
//!
//! ```sh
//! cargo run -p opal-bench --bin ablation_outliers --release
//! ```

use opal_bench::header;
use opal_numerics::Rounding;
use opal_quant::analysis::{quantization_mse, relative_mse_row_with_rounding};
use opal_quant::overhead::omem;
use opal_quant::MxOpalQuantizer;
use opal_tensor::rng::TensorRng;

fn activation(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = TensorRng::seed(seed);
    let channels = rng.distinct_indices(len, (len / 100).max(1));
    rng.outlier_vector(len, 1.0, &channels, 50.0)
}

fn main() {
    let x = activation(4096, 7);

    header("Outlier-count sweep (k = 128, b = 4): accuracy vs memory");
    println!("{:<4} {:>14} {:>10}", "n", "MSE", "OMEM");
    for n in [0usize, 1, 2, 4, 8, 16, 32] {
        let q = MxOpalQuantizer::new(4, 128, n).expect("valid");
        println!("{:<4} {:>14.6} {:>10.3}", n, quantization_mse(&q, &x), omem(128, n, 4));
    }
    println!("-> n = 4 is the knee: more outliers keep paying memory for");
    println!("   little extra accuracy (the paper's §3.2 conclusion).");

    header("Block-size sweep (n = 4, b = 4)");
    println!("{:<6} {:>14} {:>10}", "k", "MSE", "OMEM");
    for k in [32usize, 64, 128, 256, 512] {
        let q = MxOpalQuantizer::new(4, k, 4).expect("valid");
        println!("{:<6} {:>14.6} {:>10.3}", k, quantization_mse(&q, &x), omem(k, 4, 4));
    }
    println!("-> small blocks quantize better (more scales) but pay overhead;");
    println!("   k = 128 balances the two and matches the lane width.");

    header("Shift rounding: truncating shifter vs round-to-nearest (b = 4)");
    println!("{:<12} {:>10} {:>10} {:>10}", "rounding", "MXINT", "n=4", "n=8");
    for (name, r) in [("truncate", Rounding::Truncate), ("nearest", Rounding::NearestEven)] {
        let row =
            relative_mse_row_with_rounding("x", &x, 4, 128, &[4, 8], r).expect("valid config");
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}   (MSE relative to MinMax)",
            name, row.mxint_rel, row.mxopal_rel[0], row.mxopal_rel[1]
        );
    }
    println!("-> the rounding adder buys a large accuracy margin over the");
    println!("   bare Fig. 2(b) shifter for every microscaling format.");
}
