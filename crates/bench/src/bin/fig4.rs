//! Fig. 4 — relative MSE (normalized to MinMax) of MXINT and MX-OPAL at
//! n = 1, 2, 4, 8 preserved outliers, measured on the six MxV input tensors
//! of a decoder block, plus the Eq. (1) memory-overhead table.
//!
//! Paper reference points: MXINT averages 3.79× (b=8) and 8.21× (b=4) the
//! MinMax error; preserving n = 4 outliers reaches MinMax parity; OMEM at
//! (k=128, n=4) is 1.027 (b=8) / ~1.09 (b=4).
//!
//! ```sh
//! cargo run -p opal-bench --bin fig4
//! ```

use opal_bench::{header, vs_paper};
use opal_model::{ActivationCapture, Model, ModelConfig, QuantScheme, Site};
use opal_quant::analysis::{average_rows, relative_mse_row, RelativeMseRow};
use opal_quant::overhead::omem;

fn capture_tensors() -> Vec<(String, Vec<f32>)> {
    // The paper probes the 20th decoder block of Llama2-7B; our proxy has
    // 5 layers, so we probe a late one (index 3).
    let mut config = ModelConfig::llama2_7b().proxy(160, 5, 192);
    // Late decoder blocks of Llama2-7B carry the strongest channel
    // outliers (the paper probes block 20 of 32); crank the synthetic
    // outlier gain accordingly.
    config.outlier_gain = 80.0;
    let model = Model::new(config, QuantScheme::bf16(), 20).expect("valid scheme");
    let mut cap = ActivationCapture::new(3, 24);
    let tokens: Vec<u32> = (0..24u32).map(|i| (i * 61 + 5) % 192).collect();
    model.forward_recorded(&tokens, &mut cap);
    Site::fig4_sites()
        .into_iter()
        .map(|(site, label)| {
            let m = cap.activations(site).expect("captured");
            (label.to_owned(), m.as_slice().to_vec())
        })
        .collect()
}

fn run_bits(bits: u32, tensors: &[(String, Vec<f32>)]) -> Vec<RelativeMseRow> {
    let ns = [1usize, 2, 4, 8];
    println!("\n--- b = {bits} (sign+mantissa bits) ---");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "tensor", "MXINT", "n=1", "n=2", "n=4", "n=8"
    );
    let mut rows = Vec::new();
    for (label, x) in tensors {
        let row = relative_mse_row(label, x, bits, 128, &ns).expect("valid config");
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            row.label,
            row.mxint_rel,
            row.mxopal_rel[0],
            row.mxopal_rel[1],
            row.mxopal_rel[2],
            row.mxopal_rel[3]
        );
        rows.push(row);
    }
    let (mxint_avg, opal_avg) = average_rows(&rows);
    println!(
        "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   <- Avg. (rel. to MinMax = 1.0)",
        "Avg.", mxint_avg, opal_avg[0], opal_avg[1], opal_avg[2], opal_avg[3]
    );
    // The paper's headline: MX-OPAL (n=4) has 3.79x / 8.21x lower error
    // than MXINT at b=8 / b=4.
    let ratio = mxint_avg / opal_avg[2];
    let paper_ratio = if bits == 8 { 3.79 } else { 8.21 };
    println!("MXINT error / MX-OPAL(n=4) error: {}", vs_paper(ratio, paper_ratio));
    rows
}

fn main() {
    header("Fig. 4: relative quantization MSE on decoder-block MxV inputs");
    let tensors = capture_tensors();
    run_bits(8, &tensors);
    run_bits(4, &tensors);

    header("Eq. (1): MX-OPAL memory overhead (k = 128)");
    println!("{:<6} {:>12} {:>12}", "n", "OMEM b=8", "OMEM b=4");
    for n in [1usize, 2, 4, 8] {
        println!("{:<6} {:>12.3} {:>12.3}", n, omem(128, n, 8), omem(128, n, 4));
    }
    println!("paper b=8 row (n=1,2,4,8): 1.004 1.012 1.027 1.058  (Eq. (1) exact)");
    println!("paper b=4 row:             1.024 1.046 1.092 1.185  (paper table sits");
    println!("  ~0.8% above its own Eq. (1); we print the formula values)");
    println!("\n§3.2 check: k=128, n=4, b=8 -> {}", vs_paper(omem(128, 4, 8), 1.027));
}
