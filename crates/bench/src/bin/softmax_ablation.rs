//! §4.2 / §4.3.3 — the log2-based softmax ablation: approximation quality,
//! end-to-end perplexity impact (paper: <0.4 PPL), and the hardware unit
//! savings (32.3 % area / 35.7 % power / 1.56× power efficiency).
//!
//! ```sh
//! cargo run -p opal-bench --bin softmax_ablation --release
//! ```

use opal_bench::header;
use opal_hw::units::{ConventionalSoftmaxUnit, Log2SoftmaxUnit};
use opal_model::{eval, Model, ModelConfig, QuantScheme};
use opal_softmax::metrics::{kl_divergence, total_variation};
use opal_softmax::{exact_softmax, Log2Softmax};
use opal_tensor::rng::TensorRng;

fn main() {
    header("Log2 softmax: distribution-level approximation quality");
    let mut rng = TensorRng::seed(5);
    let sm = Log2Softmax::new(5);
    let mut kl_sum = 0.0;
    let mut tv_sum = 0.0;
    let trials = 200;
    for _ in 0..trials {
        let scores: Vec<f32> = (0..32).map(|_| rng.normal(0.0, 1.5)).collect();
        let p = exact_softmax(&scores);
        let q = sm.probs(&scores);
        kl_sum += kl_divergence(&p, &q);
        tv_sum += total_variation(&p, &q);
    }
    println!(
        "mean KL(exact ‖ log2) over {trials} random score rows: {:.4} nats",
        kl_sum / trials as f64
    );
    println!("mean total-variation distance: {:.4}", tv_sum / trials as f64);

    header("End-to-end PPL impact of the log2 softmax (paper: <0.4 PPL)");
    let config = ModelConfig::llama2_7b().proxy(128, 4, 192);
    let teacher = Model::new(config.clone(), QuantScheme::bf16(), 42).expect("valid");
    let stream = eval::sample_stream(&teacher, 112, 31);

    for base in [QuantScheme::bf16(), QuantScheme::mxopal_w4a47(), QuantScheme::mxopal_w3a35()] {
        let name = base.name.clone();
        let exact = Model::new(config.clone(), base.clone(), 42).expect("valid");
        let log2 = Model::new(config.clone(), base.with_log2_softmax(5), 42).expect("valid");
        let p_exact = eval::perplexity(&exact, &stream);
        let p_log2 = eval::perplexity(&log2, &stream);
        println!(
            "{name:<18} exact softmax PPL {p_exact:>8.3} | log2 softmax PPL {p_log2:>8.3} | Δ {:+.3}",
            p_log2 - p_exact
        );
    }

    header("Softmax unit hardware (from the synthesized-unit model)");
    let l = Log2SoftmaxUnit;
    let c = ConventionalSoftmaxUnit;
    println!(
        "area  : log2 {:.0} µm² vs conventional {:.0} µm² (saving {:.1}%, paper 32.3%)",
        l.area_um2(),
        c.area_um2(),
        100.0 * (1.0 - l.area_um2() / c.area_um2())
    );
    println!(
        "power : log2 {:.2} mW vs conventional {:.2} mW (saving {:.1}%, paper 35.7%)",
        l.power_mw(),
        c.power_mw(),
        100.0 * (1.0 - l.power_mw() / c.power_mw())
    );
    let t = opal_hw::tech::Tech::cmos65();
    println!(
        "energy: {:.2} pJ vs {:.2} pJ per score -> {:.2}x power efficiency (paper 1.56x)",
        l.elem_energy_pj(&t),
        c.elem_energy_pj(&t),
        c.elem_energy_pj(&t) / l.elem_energy_pj(&t)
    );
}
