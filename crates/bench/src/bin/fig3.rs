//! Fig. 2 / Fig. 3 — what each 2-bit quantizer does to one 128-element
//! activation block with an outlier (extracted from the model's o_proj
//! input, as in the paper's Llama2-7B decoder block 2).
//!
//! ```sh
//! cargo run -p opal-bench --bin fig3
//! ```

use opal_bench::header;
use opal_model::{ActivationCapture, Model, ModelConfig, QuantScheme, Site};
use opal_quant::{MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, Quantizer};
use opal_tensor::stats::{min_max, mse};

fn main() {
    header("Fig. 3: MinMax2 vs MXINT2 vs MX-OPAL2 on a real o_proj input block");

    // Extract the input to the projection layer of decoder block 1 (the
    // paper uses block 2 of 32; our proxy has 4 blocks) from the BF16 model.
    let config = ModelConfig::llama2_7b().proxy(128, 4, 192);
    let model = Model::new(config, QuantScheme::bf16(), 7).expect("valid scheme");
    let mut cap = ActivationCapture::new(1, 4);
    let tokens: Vec<u32> = (0..16u32).map(|i| (i * 37) % 192).collect();
    model.forward_recorded(&tokens, &mut cap);
    // The paper extracts the o_proj *input channel* data from Llama2-7B; in
    // real checkpoints that tensor inherits the residual stream's channel
    // outliers. Our synthetic model concentrates its outliers in the
    // post-LayerNorm tensors (see opal-model::weights), so we probe the
    // attention input — the same "one strong outlier per 128-block" regime
    // as the paper's figure.
    let acts = cap.activations(Site::QkvInput).expect("captured attention input");
    let x: Vec<f32> = acts.row(3)[..128.min(acts.cols())].to_vec();

    let (lo, hi) = min_max(&x).expect("non-empty");
    let max_abs_idx = x
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!("block: 128 elems in [{lo:+.3}, {hi:+.3}], outlier |x|max at {max_abs_idx}");

    let quantizers: Vec<Box<dyn Quantizer>> = vec![
        Box::new(MinMaxQuantizer::new(2, 128).expect("valid")),
        Box::new(MxIntQuantizer::new(2, 128).expect("valid")),
        Box::new(MxOpalQuantizer::new(2, 128, 1).expect("valid")),
    ];

    println!("\n{:<10} {:>12} {:>8} {:>22}", "format", "MSE", "levels", "small-value survival");
    for q in &quantizers {
        let y = q.quantize_dequantize(&x);
        // Distinct reconstruction levels used (Fig. 3's visual).
        let mut levels: Vec<i64> = y.iter().map(|&v| (v * 1e4) as i64).collect();
        levels.sort_unstable();
        levels.dedup();
        // How many small values survive (non-zero reconstruction)?
        let survivors = x
            .iter()
            .zip(&y)
            .filter(|(&xv, &yv)| xv.abs() < hi.abs().max(lo.abs()) * 0.1 && yv != 0.0)
            .count();
        println!(
            "{:<10} {:>12.6} {:>8} {:>18}/128",
            q.name(),
            mse(&x, &y),
            levels.len(),
            survivors
        );
    }

    println!("\nExpected shape (paper Fig. 3): MXINT2 collapses nearly all");
    println!("non-outliers into one bin around zero; MX-OPAL2 moves the shared");
    println!("scale to the 2nd-largest exponent and recovers the distribution;");
    println!("MinMax2 sits in between (outlier widens its range).");
}
