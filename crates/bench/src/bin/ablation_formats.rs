//! Ablation beyond the paper: the full microscaling format matrix — MXINT,
//! the OCP MXFP mini-float variants, and MX-OPAL — on the same
//! outlier-bearing activation tensors, at matched storage budgets.
//!
//! ```sh
//! cargo run -p opal-bench --release --bin ablation_formats
//! ```

use opal_bench::header;
use opal_quant::mxfp::{FpElement, MxFpQuantizer};
use opal_quant::{MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, Quantizer};
use opal_tensor::rng::TensorRng;
use opal_tensor::stats::{mse, sqnr_db};

fn main() {
    header("Format matrix: MSE / SQNR / storage on outlier activations");
    let mut rng = TensorRng::seed(2024);
    let len = 4096;
    let channels = rng.distinct_indices(len, 40);
    let x = rng.outlier_vector(len, 1.0, &channels, 60.0);

    let quantizers: Vec<Box<dyn Quantizer>> = vec![
        Box::new(MinMaxQuantizer::new(8, 128).expect("valid")),
        Box::new(MxIntQuantizer::new(8, 128).expect("valid")),
        Box::new(MxFpQuantizer::new(FpElement::E4M3, 128).expect("valid")),
        Box::new(MxFpQuantizer::new(FpElement::E5M2, 128).expect("valid")),
        Box::new(MxOpalQuantizer::new(7, 128, 4).expect("valid")),
        Box::new(MinMaxQuantizer::new(4, 128).expect("valid")),
        Box::new(MxIntQuantizer::new(4, 128).expect("valid")),
        Box::new(MxFpQuantizer::new(FpElement::E2M1, 128).expect("valid")),
        Box::new(MxFpQuantizer::new(FpElement::E2M3, 128).expect("valid")),
        Box::new(MxFpQuantizer::new(FpElement::E3M2, 128).expect("valid")),
        Box::new(MxOpalQuantizer::new(4, 128, 4).expect("valid")),
        Box::new(MxOpalQuantizer::new(3, 128, 4).expect("valid")),
    ];

    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>10}",
        "format", "MSE", "SQNR dB", "bits total", "bits/elem"
    );
    for q in &quantizers {
        let y = q.quantize_dequantize(&x);
        let bits = q.storage_bits(len);
        println!(
            "{:<14} {:>12.6} {:>10.2} {:>12} {:>10.2}",
            q.name(),
            mse(&x, &y),
            sqnr_db(&x, &y),
            bits,
            bits as f64 / len as f64
        );
    }

    println!("\nReading: at ~4.6 bits/element MX-OPAL4 beats every 4/6-bit MX");
    println!("variant on outlier data; the mini-float formats trade mantissa");
    println!("for exponent range and sit between MXINT and MX-OPAL. This is");
    println!("the design space the paper's outlier-preservation occupies.");
}
