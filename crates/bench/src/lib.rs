//! Shared helpers for the OPAL experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index) and prints a paper-vs-measured
//! comparison. Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Formats a measured-vs-paper pair with the relative deviation.
pub fn vs_paper(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.3} (paper: n/a)");
    }
    let dev = 100.0 * (measured - paper) / paper;
    format!("{measured:.3} (paper {paper:.3}, {dev:+.1}%)")
}

/// The proxy model family used by the accuracy benches: runnable stand-ins
/// for the paper's checkpoints (see DESIGN.md §2 for the substitution
/// argument). Returns `(display name, config)`.
pub fn accuracy_proxies() -> Vec<(String, opal_model::ModelConfig)> {
    use opal_model::ModelConfig;
    vec![
        ("Llama2-7B".into(), ModelConfig::llama2_7b().proxy(128, 4, 192)),
        ("Llama2-13B".into(), ModelConfig::llama2_13b().proxy(160, 5, 192)),
        ("OPT-6.7B".into(), ModelConfig::opt_6_7b().proxy(128, 4, 192)),
        ("OPT-13B".into(), ModelConfig::opt_13b().proxy(160, 5, 192)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_paper_formats() {
        let s = vs_paper(1.1, 1.0);
        assert!(s.contains("+10.0%"));
        assert!(vs_paper(1.0, 0.0).contains("n/a"));
    }

    #[test]
    fn proxies_are_runnable_sizes() {
        for (_, c) in accuracy_proxies() {
            assert!(c.d_model <= 256);
            assert!(c.n_layers <= 6);
            assert_eq!(c.d_model % c.n_heads, 0);
        }
    }
}
