//! Criterion bench: single-token decode latency of the optimized
//! (contiguous-KV, scratch-space) path versus the preserved seed reference,
//! plus the batched engine step at several thread counts.
//!
//! CI runs this as a smoke test: it compiles the full decode stack and
//! exercises both paths end to end in a few hundred milliseconds each.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{ServeConfig, ServeEngine, StepMode};
use opal_tensor::ops;

fn bench_decode_paths(c: &mut Criterion) {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 21).expect("valid scheme");
    let mut group = c.benchmark_group("decode_16tok");

    group.bench_function("optimized", |b| {
        b.iter(|| {
            let mut state = model.begin_decode();
            let mut logits = model.prefill(&mut state, black_box(&[1, 2, 3]));
            for _ in 0..16 {
                let t = ops::argmax(&logits).unwrap_or(0) as u32;
                model.decode_step_into(&mut state, t, &mut logits);
            }
            black_box(logits[0])
        });
    });

    group.bench_function("seed-reference", |b| {
        b.iter(|| {
            let mut state = model.begin_reference_decode();
            let mut logits = Vec::new();
            for &t in black_box(&[1u32, 2, 3]) {
                logits = model.reference_decode_step(&mut state, t);
            }
            for _ in 0..16 {
                let t = ops::argmax(&logits).unwrap_or(0) as u32;
                logits = model.reference_decode_step(&mut state, t);
            }
            black_box(logits[0])
        });
    });
    group.finish();
}

fn bench_prefill_paths(c: &mut Criterion) {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 21).expect("valid scheme");
    let prompt: Vec<u32> = (0..48u32).map(|i| (i * 11 + 3) % 64).collect();
    let mut group = c.benchmark_group("prefill_48tok");

    // The fused multi-token path: whole chunks of positions per layer pass.
    group.bench_function("fused", |b| {
        let mut logits = vec![0.0f32; model.config().vocab];
        b.iter(|| {
            let mut state = model.begin_decode();
            model.prefill_into(&mut state, black_box(&prompt), &mut logits);
            black_box(logits[0])
        });
    });

    // The pre-fusion baseline: one layer pass per token (chunk size 1),
    // with the same skip-logits-until-last behaviour.
    group.bench_function("tokenwise", |b| {
        let mut logits = vec![0.0f32; model.config().vocab];
        b.iter(|| {
            let mut state = model.begin_decode();
            let (last, head) = prompt.split_last().expect("non-empty");
            for &t in black_box(head) {
                model.prefill_chunk(&mut state, &[t]);
            }
            model.prefill_chunk_into(&mut state, &[*last], &mut logits);
            black_box(logits[0])
        });
    });
    group.finish();
}

fn bench_parallel_step(c: &mut Criterion) {
    let model = Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 22).expect("valid scheme");
    let mut group = c.benchmark_group("serve_step_batch16_8tok");
    // Auto at each thread count (what deployments run), then the forced
    // dispatchers at 4 threads: pool-vs-scoped prices the per-step spawn
    // overhead the persistent pool removes, cores notwithstanding.
    let cases: [(&str, usize, StepMode); 5] = [
        ("auto-1t", 1, StepMode::Auto),
        ("auto-2t", 2, StepMode::Auto),
        ("auto-4t", 4, StepMode::Auto),
        ("pool-4t", 4, StepMode::ForcePool),
        ("scoped-4t", 4, StepMode::ForceScoped),
    ];
    for (name, threads, step_mode) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &threads, |b, &threads| {
            b.iter(|| {
                let config = ServeConfig {
                    max_batch: 16,
                    max_tokens: 8,
                    num_threads: threads,
                    step_mode,
                    ..ServeConfig::default()
                };
                let mut engine = ServeEngine::new(&model, config);
                for i in 0..16u32 {
                    engine.submit(black_box(&[1 + i, 2, 3])).unwrap();
                }
                black_box(engine.run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode_paths, bench_prefill_paths, bench_parallel_step);
criterion_main!(benches);
