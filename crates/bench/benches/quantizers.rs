//! Criterion bench: software throughput of the three activation quantizers
//! and the OWQ weight quantizer.
//!
//! This measures the *simulator's* cost (relevant when reproducing the
//! accuracy tables), not hardware latency — the hardware cost model lives
//! in `opal-hw`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_quant::{MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, OwqQuantizer, Quantizer};
use opal_tensor::rng::TensorRng;
use opal_tensor::Matrix;

fn activation(len: usize) -> Vec<f32> {
    let mut rng = TensorRng::seed(99);
    let channels = rng.distinct_indices(len, (len / 100).max(1));
    rng.outlier_vector(len, 1.0, &channels, 40.0)
}

fn bench_activation_quantizers(c: &mut Criterion) {
    let x = activation(4096);
    let mut group = c.benchmark_group("activation_qdq_4096");
    let quantizers: Vec<(&str, Box<dyn Quantizer>)> = vec![
        ("minmax8", Box::new(MinMaxQuantizer::new(8, 128).expect("valid"))),
        ("mxint8", Box::new(MxIntQuantizer::new(8, 128).expect("valid"))),
        ("mxopal8_n4", Box::new(MxOpalQuantizer::new(8, 128, 4).expect("valid"))),
        ("mxopal4_n4", Box::new(MxOpalQuantizer::new(4, 128, 4).expect("valid"))),
        ("mxopal3_n4", Box::new(MxOpalQuantizer::new(3, 128, 4).expect("valid"))),
    ];
    for (name, q) in &quantizers {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            b.iter(|| q.quantize_dequantize(black_box(&x)));
        });
    }
    group.finish();
}

fn bench_block_size_sweep(c: &mut Criterion) {
    let x = activation(4096);
    let mut group = c.benchmark_group("mxopal_block_size");
    for k in [32usize, 64, 128, 256] {
        let q = MxOpalQuantizer::new(4, k, 4.min(k - 1)).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(k), &q, |b, q| {
            b.iter(|| q.quantize_dequantize(black_box(&x)));
        });
    }
    group.finish();
}

fn bench_owq(c: &mut Criterion) {
    let mut rng = TensorRng::seed(3);
    let w = rng.normal_matrix(512, 512, 0.0, 0.02);
    let calib = vec![1.0f32; 512];
    c.bench_function("owq_w4_512x512", |b| {
        let q = OwqQuantizer::w4();
        b.iter(|| q.quantize(black_box(&w), black_box(&calib)));
    });
}

fn bench_matrix_rows(c: &mut Criterion) {
    let mut rng = TensorRng::seed(5);
    let m = rng.normal_matrix(64, 512, 0.0, 1.0);
    let q = MxOpalQuantizer::new(7, 128, 4).expect("valid");
    c.bench_function("quantize_matrix_rows_64x512", |b| {
        b.iter(|| opal_quant::quantize_matrix_rows(black_box(&q), black_box(&m)));
    });
    // Keep Matrix in scope for type inference clarity.
    let _: &Matrix = &m;
}

criterion_group!(
    benches,
    bench_activation_quantizers,
    bench_block_size_sweep,
    bench_owq,
    bench_matrix_rows
);
criterion_main!(benches);
