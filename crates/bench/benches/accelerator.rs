//! Criterion bench: cost of the hardware models themselves and of quantized
//! token decoding in the simulator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_hw::accelerator::{Accelerator, AcceleratorKind};
use opal_model::{Model, ModelConfig, QuantScheme};

fn bench_energy_model(c: &mut Criterion) {
    let model = ModelConfig::llama2_70b();
    let mut group = c.benchmark_group("energy_per_token_model");
    for kind in [
        AcceleratorKind::Bf16,
        AcceleratorKind::Owq,
        AcceleratorKind::OpalW4A47,
        AcceleratorKind::OpalW3A35,
    ] {
        let acc = Accelerator::new(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &acc, |b, acc| {
            b.iter(|| acc.energy_per_token(black_box(&model), black_box(1024)));
        });
    }
    group.finish();
}

fn bench_decode_step(c: &mut Criterion) {
    let config = ModelConfig::tiny();
    let mut group = c.benchmark_group("decode_step_tiny");
    for (name, scheme) in [
        ("bf16", QuantScheme::bf16()),
        ("mxopal_w4a47", QuantScheme::mxopal_w4a47()),
        ("mxopal_w3a35_log2", QuantScheme::mxopal_w3a35().with_log2_softmax(5)),
    ] {
        let model = Model::new(config.clone(), scheme, 1).expect("valid scheme");
        group.bench_function(name, |b| {
            b.iter_batched(
                || model.begin_decode(),
                |mut state| {
                    for t in [1u32, 5, 9, 13] {
                        black_box(model.decode_step(&mut state, t));
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy_model, bench_decode_step);
criterion_main!(benches);
