//! Criterion bench: batched serving throughput of `opal-serve` versus
//! repeated single-sequence generation, across batch sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{ServeConfig, ServeEngine};

fn bench_batched_throughput(c: &mut Criterion) {
    let model =
        Model::new(ModelConfig::tiny(), QuantScheme::mxopal_w4a47(), 21).expect("valid scheme");
    let mut group = c.benchmark_group("serve_batch_decode_8tok");
    for batch in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut engine = ServeEngine::new(
                    &model,
                    ServeConfig { max_batch: batch, max_tokens: 8, ..ServeConfig::default() },
                );
                for i in 0..batch {
                    engine.submit(black_box(&[1 + i as u32, 2, 3])).unwrap();
                }
                black_box(engine.run())
            });
        });
    }
    group.finish();
}

fn bench_continuous_admission(c: &mut Criterion) {
    let model =
        Model::new(ModelConfig::tiny(), QuantScheme::mxopal_w4a47(), 22).expect("valid scheme");
    c.bench_function("serve_rolling_admission_12req", |b| {
        b.iter(|| {
            let mut engine = ServeEngine::new(
                &model,
                ServeConfig { max_batch: 4, max_tokens: 6, ..ServeConfig::default() },
            );
            let mut submitted = 0u32;
            // Keep the queue topped up while stepping, so admission always
            // happens mid-stream.
            while submitted < 12 || !engine.is_idle() {
                if submitted < 12 {
                    engine.submit(black_box(&[submitted % 32, 5])).unwrap();
                    submitted += 1;
                }
                engine.step();
            }
            black_box(engine.report(std::time::Duration::from_secs(1)))
        });
    });
}

criterion_group!(benches, bench_batched_throughput, bench_continuous_admission);
criterion_main!(benches);
