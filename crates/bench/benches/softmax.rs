//! Criterion bench: exact softmax vs the log2-based unit, including the
//! shift-and-accumulate `Attn·V` path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_softmax::{attn_v_exact, exact_softmax, Log2Softmax};
use opal_tensor::rng::TensorRng;

fn bench_softmax_row(c: &mut Criterion) {
    let mut rng = TensorRng::seed(17);
    let mut group = c.benchmark_group("softmax_row");
    for len in [128usize, 1024, 4096] {
        let scores: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.5)).collect();
        group.bench_with_input(BenchmarkId::new("exact", len), &scores, |b, s| {
            b.iter(|| exact_softmax(black_box(s)));
        });
        let sm = Log2Softmax::new(5);
        group.bench_with_input(BenchmarkId::new("log2", len), &scores, |b, s| {
            b.iter(|| sm.probs(black_box(s)));
        });
    }
    group.finish();
}

fn bench_attn_v(c: &mut Criterion) {
    let mut rng = TensorRng::seed(19);
    let seq = 512;
    let d = 128;
    let scores: Vec<f32> = (0..seq).map(|_| rng.normal(0.0, 1.0)).collect();
    let v = rng.normal_matrix(seq, d, 0.0, 1.0);
    let sm = Log2Softmax::new(5);

    let mut group = c.benchmark_group("attn_v_512x128");
    group.bench_function("exact", |b| {
        b.iter(|| attn_v_exact(black_box(&scores), black_box(&v)));
    });
    group.bench_function("log2_shift_acc", |b| {
        b.iter(|| sm.attn_v(black_box(&scores), black_box(&v)));
    });
    group.finish();
}

criterion_group!(benches, bench_softmax_row, bench_attn_v);
criterion_main!(benches);
