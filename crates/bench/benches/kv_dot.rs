//! Criterion bench: the quantized-domain KV dot against dequantize-then-dot.
//!
//! The paged attention walk scores a query against MX-OPAL-encoded key rows
//! without materializing f32: one `ops::dot_codes` integer-code dot per
//! shared-exponent block, one `step_size` multiply per block, and the few
//! preserved bfloat16 outliers added back exactly. The baseline is what a
//! naive quantized cache would do — `MxOpalQuantizer::decode_row` into an
//! f32 scratch row, then `ops::dot`. Both paths produce the same score (the
//! setup asserts it); the bench prices the decode traffic the quantized
//! walk never pays, at the head width (d=128) and a deliberately wide row
//! (d=4096) where the memory ratio dominates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use opal_numerics::shift::step_size;
use opal_numerics::Bf16;
use opal_quant::{EncodeScratch, MxOpalQuantizer};
use opal_tensor::ops;
use opal_tensor::rng::TensorRng;

const BITS: u32 = 8;
const QBLOCK: usize = 128;
const NOUT: usize = 4;

/// One encoded key row in the paged-KV layout: packed codes, per-block
/// effective scales, and fixed outlier slots with live counts.
struct EncodedRow {
    codes: Vec<i8>,
    scales: Vec<i16>,
    out_idx: Vec<u16>,
    out_val: Vec<Bf16>,
    out_len: Vec<u8>,
}

fn encoded_row(quantizer: &MxOpalQuantizer, d: usize, seed: u64) -> EncodedRow {
    let mut rng = TensorRng::seed(seed);
    let channels = rng.distinct_indices(d, (d / 100).max(1));
    let x = rng.outlier_vector(d, 1.0, &channels, 40.0);
    let qpr = d.div_ceil(QBLOCK);
    let mut row = EncodedRow {
        codes: vec![0i8; d],
        scales: vec![0i16; qpr],
        out_idx: vec![0u16; qpr * NOUT],
        out_val: vec![Bf16::from_f32(0.0); qpr * NOUT],
        out_len: vec![0u8; qpr],
    };
    let mut scratch = EncodeScratch::new();
    quantizer.encode_row_scratch(
        &x,
        &mut row.codes,
        &mut row.scales,
        &mut row.out_idx,
        &mut row.out_val,
        &mut row.out_len,
        &mut scratch,
    );
    row
}

/// The attention walk's scoring path: integer-code dot per shared-exponent
/// block, one scale multiply per block, outliers added back exactly.
fn quant_domain_dot(row: &EncodedRow, q: &[f32]) -> f32 {
    let mut acc = 0.0f64;
    for (b, chunk) in row.codes.chunks(QBLOCK).enumerate() {
        let start = b * QBLOCK;
        let step = step_size(i32::from(row.scales[b]), BITS);
        acc += f64::from(step) * f64::from(ops::dot_codes(&q[start..start + chunk.len()], chunk));
        let slot0 = b * NOUT;
        for slot in slot0..slot0 + usize::from(row.out_len[b]) {
            let idx = start + usize::from(row.out_idx[slot]);
            acc += f64::from(q[idx]) * f64::from(row.out_val[slot].to_f32());
        }
    }
    acc as f32
}

/// The naive baseline: reconstruct the f32 row, then a plain `ops::dot`.
fn dequant_then_dot(
    quantizer: &MxOpalQuantizer,
    row: &EncodedRow,
    q: &[f32],
    scratch: &mut [f32],
) -> f32 {
    quantizer.decode_row(
        &row.codes,
        &row.scales,
        &row.out_idx,
        &row.out_val,
        &row.out_len,
        scratch,
    );
    ops::dot(q, scratch)
}

fn bench_kv_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_quant_dot");
    for d in [128usize, 4096] {
        let quantizer = MxOpalQuantizer::new(BITS, QBLOCK, NOUT).expect("valid geometry");
        let row = encoded_row(&quantizer, d, 17);
        let q: Vec<f32> = TensorRng::seed(23).outlier_vector(d, 1.0, &[], 0.0);
        let mut scratch = vec![0.0f32; d];
        // Both paths must agree before their costs are worth comparing.
        let reference = dequant_then_dot(&quantizer, &row, &q, &mut scratch);
        let fast = quant_domain_dot(&row, &q);
        assert!(
            (reference - fast).abs() <= 1e-3 * reference.abs().max(1.0),
            "quantized-domain dot diverged at d={d}: {fast} vs {reference}"
        );
        group.bench_with_input(BenchmarkId::new("quant_domain", d), &d, |b, _| {
            b.iter(|| quant_domain_dot(black_box(&row), black_box(&q)));
        });
        group.bench_with_input(BenchmarkId::new("dequant_then_dot", d), &d, |b, _| {
            b.iter(|| dequant_then_dot(&quantizer, black_box(&row), black_box(&q), &mut scratch));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kv_dot);
criterion_main!(benches);
