//! Property-based tests of the bit-exact numeric substrate.

use opal_numerics::convert::{acc_to_f32, product_scale_exp};
use opal_numerics::shift::{exp2i, step_size};
use opal_numerics::{shift_dequantize, shift_quantize, Bf16, Rounding};
use proptest::prelude::*;

/// Finite, reasonably-scaled f32s (the range activations live in).
fn act_value() -> impl Strategy<Value = f32> {
    prop_oneof![(-1e4f32..1e4f32), (-1.0f32..1.0f32), (-1e-4f32..1e-4f32),]
}

proptest! {
    #[test]
    fn bf16_roundtrip_is_identity_on_bf16_values(bits in 0u16..0x7F80) {
        // Every finite bf16 value converts to f32 and back unchanged.
        let x = Bf16::from_bits(bits);
        prop_assert_eq!(Bf16::from_f32(x.to_f32()), x);
        let neg = Bf16::from_bits(bits | 0x8000);
        prop_assert_eq!(Bf16::from_f32(neg.to_f32()), neg);
    }

    #[test]
    fn bf16_conversion_error_within_half_ulp(v in act_value()) {
        let x = Bf16::from_f32(v);
        prop_assume!(!x.is_infinite());
        let back = x.to_f32();
        // RNE error is bounded by half the spacing at v's magnitude:
        // ulp = 2^(exp - 7).
        let exp = if v == 0.0 { -126 } else { v.abs().log2().floor() as i32 };
        let half_ulp = exp2i(exp - 7) / 2.0;
        prop_assert!((back - v).abs() <= half_ulp * 1.0001, "v={v} back={back}");
    }

    #[test]
    fn bf16_conversion_is_monotone(a in act_value(), b in act_value()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ql = Bf16::from_f32(lo).to_f32();
        let qh = Bf16::from_f32(hi).to_f32();
        prop_assert!(ql <= qh, "monotonicity: {lo} -> {ql}, {hi} -> {qh}");
    }

    #[test]
    fn shift_quantize_respects_range(
        v in act_value(),
        scale in -20i32..20,
        bits in 2u32..=8,
    ) {
        let q = shift_quantize(Bf16::from_f32(v), scale, bits, Rounding::NearestEven);
        let qmax = (1i32 << (bits - 1)) - 1;
        prop_assert!(q.abs() <= qmax, "q={q} outside ±{qmax}");
        // Sign preserved (or zero).
        if q != 0 {
            prop_assert_eq!(q.is_negative(), v < 0.0);
        }
    }

    #[test]
    fn shift_quantize_error_within_step(
        v in -1000.0f32..1000.0,
        bits in 2u32..=8,
    ) {
        // RNE error is at most half a step away from saturation; the
        // symmetric-range clamp at ±(2^(b-1)-1) can cost up to one full
        // step for the largest-magnitude element of a block.
        let x = Bf16::from_f32(v);
        prop_assume!(!x.is_zero());
        let scale = x.unbiased_exponent(); // value sits exactly at the top
        let q = shift_quantize(x, scale, bits, Rounding::NearestEven);
        let back = shift_dequantize(q, scale, bits);
        let step = step_size(scale, bits);
        prop_assert!(
            (back - x.to_f32()).abs() <= step + 1e-6,
            "x={x:?} back={back} step={step}"
        );
    }

    #[test]
    fn truncate_magnitude_never_exceeds_rne(
        v in act_value(),
        scale in -10i32..15,
        bits in 2u32..=8,
    ) {
        let x = Bf16::from_f32(v);
        let t = shift_quantize(x, scale, bits, Rounding::Truncate);
        let r = shift_quantize(x, scale, bits, Rounding::NearestEven);
        prop_assert!(t.abs() <= r.abs(), "trunc {t} vs rne {r}");
        prop_assert!((t - r).abs() <= 1, "truncation differs by at most one code");
    }

    #[test]
    fn quantize_dequantize_is_idempotent(
        v in -100.0f32..100.0,
        bits in 2u32..=8,
        scale in -5i32..10,
    ) {
        // Quantizing an already-on-grid value reproduces it exactly.
        let q1 = shift_quantize(Bf16::from_f32(v), scale, bits, Rounding::NearestEven);
        let back = shift_dequantize(q1, scale, bits);
        let q2 = shift_quantize(Bf16::from_f32(back), scale, bits, Rounding::NearestEven);
        prop_assert_eq!(q1, q2, "grid values are fixed points");
    }

    #[test]
    fn integer_dot_equals_dequantized_dot(
        a in proptest::collection::vec(-8.0f32..8.0, 1..64),
        w in proptest::collection::vec(-1.0f32..1.0, 64),
    ) {
        let n = a.len().min(w.len());
        let (sa, ba) = (3, 7);
        let (sw, bw) = (0, 4);
        let mut acc = 0i64;
        let mut reference = 0.0f64;
        for i in 0..n {
            let qa = shift_quantize(Bf16::from_f32(a[i]), sa, ba, Rounding::NearestEven);
            let qw = shift_quantize(Bf16::from_f32(w[i]), sw, bw, Rounding::NearestEven);
            acc += i64::from(qa) * i64::from(qw);
            reference += f64::from(shift_dequantize(qa, sa, ba))
                * f64::from(shift_dequantize(qw, sw, bw));
        }
        let got = acc_to_f32(acc, product_scale_exp(sa, ba, sw, bw));
        prop_assert!(
            (f64::from(got) - reference).abs() <= reference.abs() * 1e-5 + 1e-5,
            "int {got} vs ref {reference}"
        );
    }
}
