//! Shift-based quantization: the core MXINT datapath of Fig. 2.
//!
//! Converting a bfloat16 element to a `b`-bit signed integer under a
//! block-shared power-of-two scale requires only a right shift of the
//! significand — this is the property that lets OPAL replace the FP dividers
//! of a conventional dynamic quantizer with shifters.
//!
//! The convention used throughout this workspace: for a block with shared
//! (unbiased) scale exponent `s` and element bit-width `b` (sign + `b-1`
//! magnitude bits), the quantized integer `q` represents the value
//! `q * 2^(s - (b - 2))`. The element whose exponent *is* `s` then lands in
//! `[2^(b-2), 2^(b-1))`, i.e. it uses the full magnitude range without
//! overflow, matching the "element w/ max exponent" row of Fig. 2(b).

use crate::Bf16;

/// Rounding behaviour of the shift quantizer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Truncate shifted-out bits (round toward zero on the magnitude).
    ///
    /// This is what a bare right-shifter does and is the behaviour drawn in
    /// Fig. 2(b) of the paper, where small elements underflow to zero.
    Truncate,
    /// Round to nearest, ties away from zero, on the shifted-out bits.
    ///
    /// One extra adder in hardware; used as the accuracy reference.
    #[default]
    NearestEven,
}

/// Quantizes a bfloat16 element to a `b`-bit signed integer under the shared
/// scale `shared_scale` (an unbiased exponent) using only shifts.
///
/// Returns `q` such that the represented value is `q * 2^(shared_scale - (bits - 2))`,
/// with `q` clamped to `[-(2^(bits-1) - 1), 2^(bits-1) - 1]` (symmetric range;
/// the most negative two's-complement code is unused, as is conventional for
/// symmetric integer quantization).
///
/// Subnormal inputs are flushed to zero (they are ≥ 2^49 below any practical
/// shared scale, so the shifter would zero them anyway).
///
/// # Panics
///
/// Panics if `bits` is not in `2..=8` (the hardware supports 3/4/5/7-bit
/// elements; 2 and 8 are included for the paper's Fig. 3 and Fig. 4 sweeps).
///
/// # Example
///
/// ```
/// use opal_numerics::{shift_quantize, Bf16, Rounding};
///
/// // Block scale 3 (max element in [8, 16)), 4-bit elements:
/// // value 12.0 = 1.5 * 2^3 -> q = 12 / 2^(3-2) = 6.
/// let q = shift_quantize(Bf16::from_f32(12.0), 3, 4, Rounding::NearestEven);
/// assert_eq!(q, 6);
/// ```
pub fn shift_quantize(x: Bf16, shared_scale: i32, bits: u32, rounding: Rounding) -> i32 {
    assert!((2..=8).contains(&bits), "element bit-width must be 2..=8");
    if x.is_zero() || x.is_subnormal() {
        return 0;
    }
    debug_assert!(!x.is_nan() && !x.is_infinite(), "non-finite input {x:?}");

    let qmax = (1i32 << (bits - 1)) - 1;
    let sig = x.significand() as u64; // 8-bit 1.M, units of 2^-7
    let exp = x.unbiased_exponent();

    // q_exact = sig * 2^(exp - 7 - (shared_scale - (bits - 2)))
    //         = sig * 2^(exp - shared_scale + bits - 9)
    let shift = (shared_scale - exp) + 9 - bits as i32;
    let magnitude: i64 = if shift <= 0 {
        // Element exponent above the shared scale: the value overflows the
        // integer range (possible when a caller clamps scales); saturate.
        let left = (-shift).min(32) as u32;
        ((sig as i64) << left).min(i64::from(qmax) + 1)
    } else if shift >= 64 {
        0
    } else {
        let shift = shift as u32;
        let kept = (sig >> shift) as i64;
        match rounding {
            Rounding::Truncate => kept,
            Rounding::NearestEven => {
                let dropped = sig & ((1u64 << shift) - 1);
                let half = 1u64 << (shift - 1);
                if dropped > half || (dropped == half && kept & 1 == 1) {
                    kept + 1
                } else {
                    kept
                }
            }
        }
    };

    let magnitude = magnitude.min(i64::from(qmax)) as i32;
    if x.is_sign_negative() {
        -magnitude
    } else {
        magnitude
    }
}

/// Reconstructs the real value represented by a quantized integer `q` under
/// shared scale `shared_scale` and bit-width `bits`.
///
/// This is the inverse scaling applied by the Int-to-FP unit:
/// `q * 2^(shared_scale - (bits - 2))`.
///
/// # Example
///
/// ```
/// use opal_numerics::shift_dequantize;
///
/// assert_eq!(shift_dequantize(6, 3, 4), 12.0);
/// ```
pub fn shift_dequantize(q: i32, shared_scale: i32, bits: u32) -> f32 {
    q as f32 * exp2i(shared_scale - (bits as i32 - 2))
}

/// The quantization step size for a given shared scale and bit-width:
/// `2^(shared_scale - (bits - 2))`.
pub fn step_size(shared_scale: i32, bits: u32) -> f32 {
    exp2i(shared_scale - (bits as i32 - 2))
}

/// Computes `2^e` for integer `e`, saturating to 0 / infinity outside the
/// `f32` range. Exact for `e` in `[-126, 127]`.
pub fn exp2i(e: i32) -> f32 {
    if e >= 128 {
        f32::INFINITY
    } else if e >= -126 {
        f32::from_bits(((e + 127) as u32) << 23)
    } else if e >= -149 {
        // Subnormal range.
        f32::from_bits(1u32 << (e + 149))
    } else {
        0.0
    }
}

/// Extracts the unbiased exponent of the largest-magnitude finite value in a
/// slice, i.e. the MXINT shared scale of Fig. 2(b).
///
/// Returns `None` if the slice is empty or all elements are zero/subnormal.
pub fn max_exponent(values: &[Bf16]) -> Option<i32> {
    values.iter().filter(|v| !v.is_zero() && !v.is_subnormal()).map(|v| v.unbiased_exponent()).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(x: f32, s: i32, b: u32, r: Rounding) -> i32 {
        shift_quantize(Bf16::from_f32(x), s, b, r)
    }

    #[test]
    fn max_element_uses_top_bin() {
        // Max element 12.0, exponent 3 -> shared scale 3.
        // 8-bit: q = 12 / 2^(3-6) = 96; range +-127. Top half used.
        assert_eq!(q(12.0, 3, 8, Rounding::NearestEven), 96);
        // 4-bit: q = 12 / 2 = 6 within +-7.
        assert_eq!(q(12.0, 3, 4, Rounding::NearestEven), 6);
        // 3-bit: q = 12 / 4 = 3 within +-3.
        assert_eq!(q(12.0, 3, 3, Rounding::NearestEven), 3);
    }

    #[test]
    fn exact_boundary_element_saturates_cleanly() {
        // 15.5 has exponent 3; q_exact = 15.5/2 = 7.75 -> rounds to 8,
        // clamps to 7 at 4 bits.
        assert_eq!(q(15.5, 3, 4, Rounding::NearestEven), 7);
        assert_eq!(q(15.5, 3, 4, Rounding::Truncate), 7);
    }

    #[test]
    fn small_elements_underflow_with_truncation() {
        // The Fig. 2(b) effect: element far below the shared scale
        // truncates to zero ("shifted zero").
        assert_eq!(q(0.02, 3, 4, Rounding::Truncate), 0);
        // Nearest rounding also gives zero here (0.02 / 2 = 0.01 < 0.5).
        assert_eq!(q(0.02, 3, 4, Rounding::NearestEven), 0);
        // But a value just under half a step survives rounding and not
        // truncation.
        let step = step_size(3, 4); // 2.0
        let v = 0.6 * step;
        assert_eq!(q(v, 3, 4, Rounding::Truncate), 0);
        assert_eq!(q(v, 3, 4, Rounding::NearestEven), 1);
    }

    #[test]
    fn signs_are_symmetric() {
        for b in 2..=8 {
            for v in [0.3f32, 1.0, 5.5, 12.0, 100.0] {
                let p = q(v, 7, b, Rounding::NearestEven);
                let n = q(-v, 7, b, Rounding::NearestEven);
                assert_eq!(p, -n, "v={v} b={b}");
            }
        }
    }

    #[test]
    fn zero_and_subnormal_flush() {
        assert_eq!(q(0.0, 0, 4, Rounding::NearestEven), 0);
        assert_eq!(q(-0.0, 0, 4, Rounding::NearestEven), 0);
        let sub = Bf16::from_bits(0x0010);
        assert_eq!(shift_quantize(sub, 0, 4, Rounding::NearestEven), 0);
    }

    #[test]
    fn above_scale_saturates() {
        // Exponent 5 element against shared scale 3: saturate to qmax.
        assert_eq!(q(40.0, 3, 4, Rounding::NearestEven), 7);
        assert_eq!(q(-40.0, 3, 4, Rounding::NearestEven), -7);
    }

    #[test]
    fn dequantize_inverts_exactly_on_grid() {
        for b in [3u32, 4, 5, 7, 8] {
            let s = 2;
            for qv in -(1i32 << (b - 1)) + 1..(1i32 << (b - 1)) {
                let v = shift_dequantize(qv, s, b);
                let back = q(v, s, b, Rounding::NearestEven);
                assert_eq!(back, qv, "b={b} q={qv}");
            }
        }
    }

    #[test]
    fn matches_float_reference_quantizer() {
        // shift-based RNE must agree with round(x / step) computed in f64
        // for every bf16 in a representative range.
        for bits in [3u32, 4, 5, 7, 8] {
            let s = 4;
            let step = f64::from(step_size(s, bits));
            let qmax = (1i64 << (bits - 1)) - 1;
            for raw in 0x3000u16..0x4400 {
                let x = Bf16::from_bits(raw);
                let expect_mag = {
                    let t = (f64::from(x.to_f32().abs()) / step).abs();
                    // round half to even
                    let fl = t.floor();
                    let frac = t - fl;
                    let r = if (frac - 0.5).abs() < 1e-12 {
                        if (fl as i64) % 2 == 0 {
                            fl as i64
                        } else {
                            fl as i64 + 1
                        }
                    } else {
                        t.round() as i64
                    };
                    r.min(qmax)
                };
                let got = shift_quantize(x, s, bits, Rounding::NearestEven);
                assert_eq!(got as i64, expect_mag, "bits={bits} x={x:?}");
            }
        }
    }

    #[test]
    fn truncate_never_exceeds_rne_magnitude() {
        for raw in (0u16..0x7F80).step_by(17) {
            let x = Bf16::from_bits(raw);
            let t = shift_quantize(x, 6, 5, Rounding::Truncate).abs();
            let r = shift_quantize(x, 6, 5, Rounding::NearestEven).abs();
            assert!(t <= r, "x={x:?} trunc={t} rne={r}");
        }
    }

    #[test]
    fn exp2i_matches_powi() {
        for e in -149..=127 {
            // `powi` flushes subnormal results to zero on some targets;
            // `powf` via f64 is exact for powers of two in the f32 range.
            let expect = 2.0f64.powi(e) as f32;
            assert_eq!(exp2i(e), expect, "e={e}");
        }
        assert_eq!(exp2i(-200), 0.0);
        assert!(exp2i(130).is_infinite());
    }

    #[test]
    fn max_exponent_examples() {
        let vals: Vec<Bf16> = [0.5f32, -6.0, 2.0, 0.0].iter().map(|&v| Bf16::from_f32(v)).collect();
        assert_eq!(max_exponent(&vals), Some(2)); // -6.0 = 1.5*2^2
        assert_eq!(max_exponent(&[]), None);
        assert_eq!(max_exponent(&[Bf16::ZERO]), None);
    }
}
