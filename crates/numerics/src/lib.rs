//! Bit-exact numeric substrate for the OPAL accelerator reproduction.
//!
//! The OPAL paper (DAC'24) manipulates numbers at the *field* level: bfloat16
//! values are decomposed into sign / exponent / mantissa, mantissas are
//! shifted by exponent differences to form microscaling integers, and the
//! log2-based softmax unit subtracts exponent fields directly. This crate
//! provides those primitives:
//!
//! * [`Bf16`] — a software bfloat16 (1 sign, 8 exponent, 7 mantissa bits)
//!   with round-to-nearest-even conversion from `f32` and direct access to
//!   every bit field.
//! * [`shift`] — the shift-based quantization datapath: converting a bfloat16
//!   element to a `b`-bit signed integer under a block-shared power-of-two
//!   scale using only a right shift (the operation in Fig. 2 of the paper),
//!   with both the hardware truncating behaviour and a round-to-nearest
//!   reference.
//! * [`convert`] — the "Int to FP" path used at the output of the INT adder
//!   tree (integer accumulator + shared scale → bfloat16/f32).
//!
//! # Example
//!
//! ```
//! use opal_numerics::Bf16;
//!
//! let x = Bf16::from_f32(3.25);
//! assert_eq!(x.to_f32(), 3.25);
//! assert_eq!(x.unbiased_exponent(), 1); // 3.25 = 1.625 * 2^1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
pub mod convert;
pub mod shift;

pub use bf16::Bf16;
pub use shift::{shift_dequantize, shift_quantize, Rounding};
