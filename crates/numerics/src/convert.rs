//! Integer-accumulator to floating-point conversion (the "Int to FP" unit).
//!
//! After the INT adder tree reduces a lane's products, the OPAL core rescales
//! the integer sum by the product of the activation and weight shared scales
//! and converts it to bfloat16 so it can merge with the outlier FP partial
//! sums in the FP adder tree. These helpers model that path.

use crate::shift::exp2i;
use crate::Bf16;

/// Converts an integer accumulator value to `f32` given the combined
/// power-of-two scale exponent of the multiplied operands.
///
/// For an activation block with scale `2^sa` (step for `ba`-bit elements is
/// `2^(sa - (ba-2))`) and a weight block with step `2^(sw - (bw-2))`, the dot
/// product of quantized integers must be rescaled by
/// `2^(sa - ba + 2 + sw - bw + 2)`; pass that exponent as `scale_exp`.
///
/// # Example
///
/// ```
/// use opal_numerics::convert::acc_to_f32;
///
/// // Accumulated integer 40 with combined scale 2^-3.
/// assert_eq!(acc_to_f32(40, -3), 5.0);
/// ```
pub fn acc_to_f32(acc: i64, scale_exp: i32) -> f32 {
    // i64 accumulators from <=8-bit products over <=4096-element dots fit
    // in f64 exactly (|acc| < 2^14 * 2^14 * 2^12 = 2^40 < 2^53).
    (acc as f64 * f64::from(exp2i(scale_exp))) as f32
}

/// Converts an integer accumulator to bfloat16 (round-to-nearest-even), the
/// exact output of the Int-to-FP unit in Fig. 6(a).
pub fn acc_to_bf16(acc: i64, scale_exp: i32) -> Bf16 {
    Bf16::from_f32(acc_to_f32(acc, scale_exp))
}

/// Combined rescale exponent for a product of two shift-quantized operands.
///
/// `a_scale`/`w_scale` are the blocks' shared scales (unbiased exponents) and
/// `a_bits`/`w_bits` their element widths, following the convention of
/// [`crate::shift_quantize`].
pub fn product_scale_exp(a_scale: i32, a_bits: u32, w_scale: i32, w_bits: u32) -> i32 {
    (a_scale - (a_bits as i32 - 2)) + (w_scale - (w_bits as i32 - 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shift_dequantize, shift_quantize, Rounding};

    #[test]
    fn acc_to_f32_basic() {
        assert_eq!(acc_to_f32(0, 5), 0.0);
        assert_eq!(acc_to_f32(-16, -2), -4.0);
        assert_eq!(acc_to_f32(7, 0), 7.0);
    }

    #[test]
    fn integer_dot_product_matches_dequantized_dot() {
        // Quantize two small vectors, do an integer MAC + single rescale,
        // and check it equals the dot product of the dequantized values.
        let a = [1.0f32, -2.0, 3.5, 0.25];
        let w = [0.5f32, 0.5, -1.0, 2.0];
        let (sa, ba) = (2, 5); // covers max |a| = 3.5
        let (sw, bw) = (1, 4); // covers max |w| = 2.0
        let mut acc = 0i64;
        let mut expect = 0.0f64;
        for (&x, &y) in a.iter().zip(&w) {
            let qa = shift_quantize(Bf16::from_f32(x), sa, ba, Rounding::NearestEven);
            let qw = shift_quantize(Bf16::from_f32(y), sw, bw, Rounding::NearestEven);
            acc += i64::from(qa) * i64::from(qw);
            expect +=
                f64::from(shift_dequantize(qa, sa, ba)) * f64::from(shift_dequantize(qw, sw, bw));
        }
        let got = acc_to_f32(acc, product_scale_exp(sa, ba, sw, bw));
        assert!((f64::from(got) - expect).abs() < 1e-6, "got {got} expect {expect}");
    }

    #[test]
    fn bf16_conversion_rounds() {
        // 257 * 2^0 is not representable in bf16 (needs 9 mantissa bits);
        // RNE rounds to 256.
        assert_eq!(acc_to_bf16(257, 0).to_f32(), 256.0);
        assert_eq!(acc_to_bf16(258, 0).to_f32(), 258.0);
    }

    #[test]
    fn product_scale_exponent_formula() {
        // a: scale 3, 4 bits -> step 2^1; w: scale 0, 3 bits -> step 2^-1.
        assert_eq!(product_scale_exp(3, 4, 0, 3), 0);
        assert_eq!(product_scale_exp(0, 8, 0, 8), -12);
    }
}
