//! Software bfloat16 with field-level access.

use std::cmp::Ordering;
use std::fmt;

/// A bfloat16 value: 1 sign bit, 8 exponent bits (bias 127), 7 mantissa bits.
///
/// This is the storage and compute format used throughout the OPAL paper for
/// outliers and for the FP datapath. The type stores the raw 16 bits and
/// performs arithmetic by widening to `f32` (which is exact: every bfloat16
/// is exactly representable as an `f32`).
///
/// # Example
///
/// ```
/// use opal_numerics::Bf16;
///
/// let x = Bf16::from_f32(1.5);
/// assert_eq!(x.to_bits(), 0x3FC0);
/// assert_eq!(x.mantissa(), 0x40); // 0b100_0000: the ".5"
/// assert_eq!(x.biased_exponent(), 127);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value, `(2 - 2^-7) * 2^127`.
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Smallest positive normal value, `2^-126`.
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// The exponent bias.
    pub const EXPONENT_BIAS: i32 = 127;
    /// Number of explicit mantissa bits.
    pub const MANTISSA_BITS: u32 = 7;

    /// Creates a `Bf16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    ///
    /// This matches the rounding performed by hardware BF16 converters
    /// (e.g. the Int-to-FP unit feeding the OPAL FP adder tree). NaN inputs
    /// produce a quiet NaN; values that overflow round to infinity.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve sign, force a quiet NaN payload.
            return Bf16(((bits >> 16) as u16 & 0x8000) | 0x7FC0);
        }
        // Round to nearest even on the 16-bit boundary.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts an `f32` to `Bf16` by truncation (drop the low 16 bits).
    ///
    /// Some low-cost hardware converters truncate instead of rounding; this
    /// is provided so both behaviours can be compared.
    pub fn from_f32_truncate(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            return Bf16(((bits >> 16) as u16 & 0x8000) | 0x7FC0);
        }
        Bf16((bits >> 16) as u16)
    }

    /// Widens to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Returns `true` if the sign bit is set.
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// The biased exponent field (0..=255).
    #[inline]
    pub const fn biased_exponent(self) -> u8 {
        ((self.0 >> 7) & 0xFF) as u8
    }

    /// The unbiased exponent.
    ///
    /// For normal numbers this is `biased_exponent() - 127`. Subnormals
    /// report the effective exponent of their implicit scaling, `-126`.
    /// Zero reports `-126` as well (it has no meaningful exponent; callers
    /// in the quantization path treat zero specially).
    #[inline]
    pub const fn unbiased_exponent(self) -> i32 {
        let e = self.biased_exponent();
        if e == 0 {
            -126
        } else {
            e as i32 - Self::EXPONENT_BIAS
        }
    }

    /// The 7-bit mantissa field (without the implicit leading bit).
    #[inline]
    pub const fn mantissa(self) -> u8 {
        (self.0 & 0x7F) as u8
    }

    /// The 8-bit significand including the implicit bit for normal numbers:
    /// `1.M` in units of 2^-7, i.e. a value in `128..=255` for normals and
    /// `0..=127` for subnormals/zero.
    #[inline]
    pub const fn significand(self) -> u16 {
        if self.biased_exponent() == 0 {
            self.mantissa() as u16
        } else {
            0x80 | self.mantissa() as u16
        }
    }

    /// Returns `true` for positive or negative zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.biased_exponent() == 0xFF && self.mantissa() != 0
    }

    /// Returns `true` for positive or negative infinity.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.biased_exponent() == 0xFF && self.mantissa() == 0
    }

    /// Returns `true` for subnormal (denormalized) values.
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.biased_exponent() == 0 && self.mantissa() != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    /// Negation (flips the sign bit).
    #[inline]
    pub const fn neg(self) -> Self {
        Bf16(self.0 ^ 0x8000)
    }

    /// Total ordering on the absolute value, suitable for top-k outlier
    /// selection: compares `|self|` with `|other|` by magnitude.
    ///
    /// NaNs order above everything (so they would be "preserved" rather than
    /// silently quantized, surfacing upstream bugs).
    pub fn abs_cmp(self, other: Self) -> Ordering {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            // For non-NaN bfloat16, magnitude order == integer order of the
            // low 15 bits.
            (false, false) => (self.0 & 0x7FFF).cmp(&(other.0 & 0x7FFF)),
        }
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> f32 {
        value.to_f32()
    }
}

impl From<f32> for Bf16 {
    /// Round-to-nearest-even conversion, identical to [`Bf16::from_f32`].
    fn from(value: f32) -> Bf16 {
        Bf16::from_f32(value)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 3.25, -3.25, 65280.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn constants_match_f32() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::NEG_ONE.to_f32(), -1.0);
        assert!(Bf16::INFINITY.to_f32().is_infinite());
        assert!(Bf16::NAN.is_nan());
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), f32::powi(2.0, -126));
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value; RNE must pick the even mantissa (1.0).
        let halfway = 1.0 + f32::powi(2.0, -8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // 1.0 + 3*2^-9 is above halfway: rounds up to 1.0 + 2^-7.
        let above = 1.0 + 3.0 * f32::powi(2.0, -9);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + f32::powi(2.0, -7));
        // Odd mantissa halfway case rounds *up* to even.
        let base = 1.0 + f32::powi(2.0, -7); // mantissa 0b0000001 (odd)
        let halfway_up = base + f32::powi(2.0, -8);
        assert_eq!(Bf16::from_f32(halfway_up).to_f32(), 1.0 + 2.0 * f32::powi(2.0, -7));
    }

    #[test]
    fn truncate_drops_low_bits() {
        let v = 1.0 + f32::powi(2.0, -8) + f32::powi(2.0, -9);
        assert_eq!(Bf16::from_f32_truncate(v).to_f32(), 1.0);
    }

    #[test]
    fn nan_conversion_is_quiet() {
        let nan = Bf16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        let neg_nan = Bf16::from_f32(f32::from_bits(0xFF80_0001));
        assert!(neg_nan.is_nan());
        assert!(neg_nan.is_sign_negative());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(Bf16::from_f32(-f32::MAX).to_f32().is_infinite());
    }

    #[test]
    fn fields_of_example_from_paper() {
        // Fig. 2(a) shows an element with biased exponent 130.
        let x = Bf16::from_f32(13.0); // 1.625 * 2^3 -> biased exp 130
        assert_eq!(x.biased_exponent(), 130);
        assert_eq!(x.unbiased_exponent(), 3);
        assert_eq!(x.significand(), 0x80 | x.mantissa() as u16);
    }

    #[test]
    fn subnormal_fields() {
        let sub = Bf16::from_bits(0x0001);
        assert!(sub.is_subnormal());
        assert_eq!(sub.significand(), 1);
        assert_eq!(sub.unbiased_exponent(), -126);
        assert!(sub.to_f32() > 0.0);
    }

    #[test]
    fn abs_and_neg() {
        let x = Bf16::from_f32(-2.5);
        assert_eq!(x.abs().to_f32(), 2.5);
        assert_eq!(x.neg().to_f32(), 2.5);
        assert_eq!(x.neg().neg(), x);
    }

    #[test]
    fn abs_cmp_orders_by_magnitude() {
        let a = Bf16::from_f32(-4.0);
        let b = Bf16::from_f32(3.0);
        assert_eq!(a.abs_cmp(b), Ordering::Greater);
        assert_eq!(b.abs_cmp(a), Ordering::Less);
        assert_eq!(a.abs_cmp(Bf16::from_f32(4.0)), Ordering::Equal);
        assert_eq!(Bf16::NAN.abs_cmp(Bf16::MAX), Ordering::Greater);
    }

    #[test]
    fn zero_detection() {
        assert!(Bf16::from_f32(0.0).is_zero());
        assert!(Bf16::from_f32(-0.0).is_zero());
        assert!(!Bf16::from_f32(1e-30).is_zero() || Bf16::from_f32(1e-30).to_f32() == 0.0);
    }
}
