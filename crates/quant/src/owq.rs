//! OWQ-style outlier-aware weight quantization (Lee et al., AAAI'24; §2.1).
//!
//! OPAL stores all weights with OWQ: the input channels whose activations
//! carry outliers (equivalently, whose Hessian diagonal `λ_i ≈ Σ x_i²` is
//! large) are kept in bfloat16, everything else is quantized to INT3/INT4.
//! The paper uses 0.25 % BF16 channels at W4 and 0.33 % at W3.

use opal_numerics::Bf16;
use opal_tensor::Matrix;

use crate::{QuantError, Quantizer};

/// Weight quantization result: a dequantized weight matrix plus the metadata
/// needed for hardware memory accounting.
#[derive(Clone, Debug)]
pub struct OwqWeights {
    dequantized: Matrix,
    outlier_rows: Vec<usize>,
    bits: u32,
    rows: usize,
    cols: usize,
}

impl OwqWeights {
    /// The reconstructed weights (BF16 outlier rows + dequantized INT body),
    /// ready for f32 matmul.
    pub fn dequantized(&self) -> &Matrix {
        &self.dequantized
    }

    /// Indices of the input channels (rows, for the `y = x · W` convention)
    /// kept in bfloat16.
    pub fn outlier_rows(&self) -> &[usize] {
        &self.outlier_rows
    }

    /// The integer bit-width of non-outlier weights.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fraction of weight values stored in bfloat16.
    pub fn outlier_fraction(&self) -> f64 {
        self.outlier_rows.len() as f64 / self.rows as f64
    }

    /// Total storage in bits: INT rows at `bits` + per-column scale/zero
    /// pairs (bf16 each, group = column) + BF16 outlier rows.
    pub fn storage_bits(&self) -> usize {
        let int_rows = self.rows - self.outlier_rows.len();
        int_rows * self.cols * self.bits as usize
            + self.cols * 32
            + self.outlier_rows.len() * self.cols * 16
    }

    /// Mean storage cost per weight element in bits (the paper quotes
    /// ~3.01 effective bits for OWQ-3 with 0.33 % outliers).
    pub fn effective_bits_per_weight(&self) -> f64 {
        self.storage_bits() as f64 / (self.rows * self.cols) as f64
    }
}

/// The OWQ weight quantizer.
///
/// Sensitivity follows OWQ: input channel `i` scores
/// `λ_i · ‖W_i‖²` where `λ_i = E[x_i²]` over a calibration set — channels
/// that see activation outliers and carry large weights are preserved.
///
/// # Example
///
/// ```
/// use opal_quant::OwqQuantizer;
/// use opal_tensor::Matrix;
///
/// let q = OwqQuantizer::new(4, 0.0025)?;
/// let w = Matrix::from_fn(64, 64, |r, c| ((r * 7 + c) % 13) as f32 * 0.02 - 0.1);
/// let calib = vec![1.0f32; 64];
/// let qw = q.quantize(&w, &calib);
/// assert_eq!(qw.dequantized().rows(), 64);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OwqQuantizer {
    bits: u32,
    outlier_fraction: f32,
}

impl OwqQuantizer {
    /// Creates an OWQ quantizer with `bits`-bit non-outlier weights and the
    /// given fraction of BF16 input channels (e.g. `0.0025` for W4).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] for `bits` outside `2..=8`, or
    /// [`QuantError::InvalidOutlierFraction`] if the fraction is not in
    /// `[0, 0.5)`.
    pub fn new(bits: u32, outlier_fraction: f32) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidBits { bits });
        }
        if !(0.0..0.5).contains(&outlier_fraction) {
            return Err(QuantError::InvalidOutlierFraction { fraction: outlier_fraction });
        }
        Ok(OwqQuantizer { bits, outlier_fraction })
    }

    /// The paper's W4 configuration: INT4 + 0.25 % BF16 channels.
    pub fn w4() -> Self {
        OwqQuantizer { bits: 4, outlier_fraction: 0.0025 }
    }

    /// The paper's W3 configuration: INT3 + 0.33 % BF16 channels.
    pub fn w3() -> Self {
        OwqQuantizer { bits: 3, outlier_fraction: 0.0033 }
    }

    /// The integer bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The BF16 input-channel fraction.
    pub fn outlier_fraction(&self) -> f32 {
        self.outlier_fraction
    }

    /// Quantizes a `d_in × d_out` weight matrix (convention `y = x · W`).
    ///
    /// `channel_second_moment` is `E[x_i²]` per input channel from a
    /// calibration run; pass all-ones for a purely weight-magnitude
    /// criterion.
    ///
    /// # Panics
    ///
    /// Panics if `channel_second_moment.len() != w.rows()`.
    pub fn quantize(&self, w: &Matrix, channel_second_moment: &[f32]) -> OwqWeights {
        assert_eq!(
            channel_second_moment.len(),
            w.rows(),
            "calibration stats must cover every input channel"
        );
        let d_in = w.rows();
        let n_outliers =
            ((d_in as f64 * f64::from(self.outlier_fraction)).ceil() as usize).min(d_in);

        // Rank channels by OWQ sensitivity λ_i · ‖W_i‖².
        let mut score: Vec<(usize, f64)> = (0..d_in)
            .map(|i| {
                let norm2: f64 = w.row(i).iter().map(|&v| f64::from(v) * f64::from(v)).sum();
                (i, f64::from(channel_second_moment[i]) * norm2)
            })
            .collect();
        score.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut outlier_rows: Vec<usize> = score[..n_outliers].iter().map(|&(i, _)| i).collect();
        outlier_rows.sort_unstable();

        // Per-output-channel (column) asymmetric min/max over non-outlier
        // rows, like GPTQ/OWQ's per-channel grids.
        let levels = f64::from((1u32 << self.bits) - 1);
        let mut out = Matrix::zeros(d_in, w.cols());
        for c in 0..w.cols() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in 0..d_in {
                if outlier_rows.binary_search(&r).is_ok() {
                    continue;
                }
                let v = f64::from(w[(r, c)]);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let scale = if hi > lo { (hi - lo) / levels } else { 0.0 };
            for r in 0..d_in {
                let v = w[(r, c)];
                out[(r, c)] = if outlier_rows.binary_search(&r).is_ok() {
                    Bf16::from_f32(v).to_f32()
                } else if scale == 0.0 {
                    v
                } else {
                    let q = ((f64::from(v) - lo) / scale).round().clamp(0.0, levels);
                    (q * scale + lo) as f32
                };
            }
        }

        OwqWeights { dequantized: out, outlier_rows, bits: self.bits, rows: d_in, cols: w.cols() }
    }
}

impl Quantizer for OwqQuantizer {
    /// Treats the slice as a single-column weight vector with unit
    /// calibration statistics. Provided so OWQ can participate in generic
    /// format comparisons; real use goes through [`OwqQuantizer::quantize`].
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32> {
        let w = Matrix::from_vec(x.len(), 1, x.to_vec());
        let calib = vec![1.0; x.len()];
        self.quantize(&w, &calib).dequantized.into_vec()
    }

    fn name(&self) -> String {
        format!("OWQ-W{}", self.bits)
    }

    fn storage_bits(&self, len: usize) -> usize {
        let n_out = ((len as f64 * f64::from(self.outlier_fraction)).ceil()) as usize;
        (len - n_out) * self.bits as usize + n_out * 16 + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_tensor::rng::TensorRng;
    use opal_tensor::stats::mse;

    fn test_weight(d_in: usize, d_out: usize) -> Matrix {
        let mut rng = TensorRng::seed(17);
        rng.normal_matrix(d_in, d_out, 0.0, 0.05)
    }

    #[test]
    fn rejects_bad_config() {
        assert!(OwqQuantizer::new(9, 0.01).is_err());
        assert!(OwqQuantizer::new(4, 0.6).is_err());
        assert!(OwqQuantizer::new(4, -0.1).is_err());
    }

    #[test]
    fn sensitive_channels_are_preserved_exactly_in_bf16() {
        let mut w = test_weight(400, 64);
        // Make channel 13 large (weight norm) and channel 99 see outlier
        // activations (calibration).
        for c in 0..64 {
            w[(13, c)] *= 40.0;
        }
        let mut calib = vec![1.0f32; 400];
        calib[99] = 500.0;
        let q = OwqQuantizer::new(4, 0.005).unwrap(); // 2 channels
        let qw = q.quantize(&w, &calib);
        assert_eq!(qw.outlier_rows(), &[13, 99]);
        for c in 0..64 {
            let exact = Bf16::from_f32(w[(13, c)]).to_f32();
            assert_eq!(qw.dequantized()[(13, c)], exact);
        }
    }

    #[test]
    fn reconstruction_error_bounded() {
        let w = test_weight(256, 128);
        let calib = vec![1.0f32; 256];
        let q = OwqQuantizer::w4();
        let qw = q.quantize(&w, &calib);
        let e = mse(w.as_slice(), qw.dequantized().as_slice());
        // 4-bit on N(0, 0.05): step ~ (6σ)/15 ~ 0.02, mse ~ step²/12 ~ 4e-5.
        assert!(e < 5e-5, "mse {e}");
    }

    #[test]
    fn w3_worse_than_w4() {
        let w = test_weight(256, 128);
        let calib = vec![1.0f32; 256];
        let e3 =
            mse(w.as_slice(), OwqQuantizer::w3().quantize(&w, &calib).dequantized().as_slice());
        let e4 =
            mse(w.as_slice(), OwqQuantizer::w4().quantize(&w, &calib).dequantized().as_slice());
        assert!(e3 > e4 * 2.0, "w3 {e3} vs w4 {e4}");
    }

    #[test]
    fn effective_bits_match_paper_claims() {
        // Paper/OWQ: ~3.01 effective bits at W3 with 0.33% outliers (plus
        // our per-column scale bookkeeping, amortized over 4096-deep rows).
        let q = OwqQuantizer::w3();
        let w = test_weight(4096, 128);
        let calib = vec![1.0f32; 4096];
        let qw = q.quantize(&w, &calib);
        let eb = qw.effective_bits_per_weight();
        assert!((3.0..3.2).contains(&eb), "effective bits {eb}");
        let q4 = OwqQuantizer::w4().quantize(&w, &calib);
        let eb4 = q4.effective_bits_per_weight();
        assert!((4.0..4.2).contains(&eb4), "effective bits {eb4}");
    }

    #[test]
    fn outlier_fraction_reported() {
        let q = OwqQuantizer::new(4, 0.01).unwrap();
        let w = test_weight(200, 8);
        let qw = q.quantize(&w, &vec![1.0; 200]);
        assert_eq!(qw.outlier_rows().len(), 2); // ceil(200 * 0.01)
        assert!((qw.outlier_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn zero_fraction_keeps_no_rows() {
        let q = OwqQuantizer::new(4, 0.0).unwrap();
        let w = test_weight(64, 16);
        let qw = q.quantize(&w, &vec![1.0; 64]);
        assert!(qw.outlier_rows().is_empty());
    }
}
