//! Conventional min/max dynamic integer quantizer (the paper's baseline).

use crate::{QuantError, Quantizer};

/// Asymmetric min/max integer quantizer with group-wise dynamic range
/// extraction, as used by ZeroQuant-style activation quantization and as the
/// normalization baseline of Fig. 3(b) and Fig. 4.
///
/// For each group of `block_size` elements the scale is
/// `S = (max − min) / (2^b − 1)` and elements are quantized to
/// `q = round((x − min) / S)`. This is the quantizer whose hardware cost the
/// paper criticizes (motivation 2): it needs FP dividers for the on-the-fly
/// scale division.
///
/// # Example
///
/// ```
/// use opal_quant::{MinMaxQuantizer, Quantizer};
///
/// let q = MinMaxQuantizer::new(8, 128)?;
/// let x: Vec<f32> = (0..128).map(|i| i as f32 / 128.0).collect();
/// let y = q.quantize_dequantize(&x);
/// assert!(x.iter().zip(&y).all(|(a, b)| (a - b).abs() < 0.005));
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinMaxQuantizer {
    bits: u32,
    block_size: usize,
}

impl MinMaxQuantizer {
    /// Creates a `bits`-bit min/max quantizer over groups of `block_size`.
    ///
    /// Use a `block_size` of at least the tensor length for token-level
    /// (whole-vector) dynamic quantization.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] if `bits` is outside `2..=8` and
    /// [`QuantError::InvalidBlockSize`] for an empty block.
    pub fn new(bits: u32, block_size: usize) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidBits { bits });
        }
        if block_size == 0 {
            return Err(QuantError::InvalidBlockSize { block_size });
        }
        Ok(MinMaxQuantizer { bits, block_size })
    }

    /// The element bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The group size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn quantize_block(&self, x: &[f32], out: &mut [f32]) {
        let (min, max) = x
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let levels = (1u32 << self.bits) - 1;
        let range = f64::from(max) - f64::from(min);
        if range <= 0.0 {
            // Constant block: reconstruct the constant exactly.
            out.copy_from_slice(x);
            return;
        }
        let scale = range / f64::from(levels);
        for (o, &v) in out.iter_mut().zip(x) {
            let q = ((f64::from(v) - f64::from(min)) / scale).round();
            let q = q.clamp(0.0, f64::from(levels));
            *o = (q * scale + f64::from(min)) as f32;
        }
    }
}

impl Quantizer for MinMaxQuantizer {
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; x.len()];
        self.quantize_dequantize_into(x, &mut out);
        out
    }

    fn quantize_dequantize_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), x.len(), "output length mismatch");
        for (xb, ob) in x.chunks(self.block_size).zip(out.chunks_mut(self.block_size)) {
            self.quantize_block(xb, ob);
        }
    }

    fn name(&self) -> String {
        format!("MinMax{}", self.bits)
    }

    fn storage_bits(&self, len: usize) -> usize {
        let blocks = len.div_ceil(self.block_size);
        // b bits per element + an FP16 scale and FP16 zero-point per group.
        len * self.bits as usize + blocks * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_config() {
        assert_eq!(MinMaxQuantizer::new(1, 128), Err(QuantError::InvalidBits { bits: 1 }));
        assert_eq!(MinMaxQuantizer::new(9, 128), Err(QuantError::InvalidBits { bits: 9 }));
        assert_eq!(MinMaxQuantizer::new(4, 0), Err(QuantError::InvalidBlockSize { block_size: 0 }));
    }

    #[test]
    fn endpoints_are_exact() {
        let q = MinMaxQuantizer::new(4, 16).unwrap();
        let x: Vec<f32> = (0..16).map(|i| i as f32 - 5.0).collect();
        let y = q.quantize_dequantize(&x);
        assert_eq!(y[0], -5.0); // min maps to code 0 exactly
        assert_eq!(y[15], 10.0); // max maps to top code exactly
    }

    #[test]
    fn constant_block_is_exact() {
        let q = MinMaxQuantizer::new(3, 8).unwrap();
        let x = vec![2.5f32; 8];
        assert_eq!(q.quantize_dequantize(&x), x);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = MinMaxQuantizer::new(5, 64).unwrap();
        let x: Vec<f32> = (0..64).map(|i| ((i * 37) % 64) as f32 * 0.17 - 3.0).collect();
        let y = q.quantize_dequantize(&x);
        let (min, max) = opal_tensor::stats::min_max(&x).unwrap();
        let step = (max - min) / 31.0;
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn outlier_widens_range_and_hurts_small_values() {
        // The paper's Fig. 3(b) effect: one outlier forces a huge step size
        // and the small values collapse onto few levels.
        let q = MinMaxQuantizer::new(2, 128).unwrap();
        let mut x = vec![0.0f32; 128];
        for (i, v) in x.iter_mut().enumerate() {
            *v = ((i % 7) as f32 - 3.0) * 0.1;
        }
        x[5] = 30.0;
        let y = q.quantize_dequantize(&x);
        // All small values land on at most 2 distinct levels.
        let mut lv: Vec<i64> = y
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 5)
            .map(|(_, &v)| (v * 1000.0) as i64)
            .collect();
        lv.sort_unstable();
        lv.dedup();
        assert!(lv.len() <= 2, "got {} levels", lv.len());
    }

    #[test]
    fn blocks_are_independent() {
        let q = MinMaxQuantizer::new(4, 4).unwrap();
        let x = [0.0f32, 1.0, 2.0, 3.0, 100.0, 101.0, 102.0, 103.0];
        let y = q.quantize_dequantize(&x);
        // Second block's offset does not disturb the first block.
        assert!((y[1] - 1.0).abs() < 0.11);
        assert!((y[5] - 101.0).abs() < 0.11);
    }

    #[test]
    fn storage_accounting() {
        let q = MinMaxQuantizer::new(8, 128).unwrap();
        assert_eq!(q.storage_bits(128), 128 * 8 + 32);
        assert_eq!(q.storage_bits(129), 129 * 8 + 2 * 32);
    }

    #[test]
    fn name_reports_bits() {
        assert_eq!(MinMaxQuantizer::new(7, 128).unwrap().name(), "MinMax7");
    }
}
