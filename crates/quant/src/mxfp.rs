//! MX floating-point element formats (MXFP4 / MXFP6 / MXFP8).
//!
//! The microscaling spec the paper builds on [Rouhani et al. 2023] defines
//! both integer elements (MXINT, §2.2 of the paper) and small
//! *floating-point* elements sharing the same per-block power-of-two scale.
//! The paper evaluates only the INT variants; this module adds the FP
//! variants so the format space can be compared head-to-head
//! (`ablation_formats` bench) — an extension beyond the paper.
//!
//! Element encodings follow the OCP MX v1.0 concrete formats:
//!
//! | name | layout | max normal |
//! |---|---|---|
//! | FP4 (E2M1)  | 1s 2e 1m, bias 1  | 6.0 |
//! | FP6 (E2M3)  | 1s 2e 3m, bias 1  | 7.5 |
//! | FP6 (E3M2)  | 1s 3e 2m, bias 3  | 28 |
//! | FP8 (E4M3)  | 1s 4e 3m, bias 7  | 448 |
//! | FP8 (E5M2)  | 1s 5e 2m, bias 15 | 57344 |
//!
//! The block shared scale is chosen as in MXINT-style microscaling: the
//! exponent of the largest-magnitude element minus the element format's
//! largest exponent, so the block maximum maps near the top of the element
//! range.

use opal_numerics::shift::exp2i;

use crate::{QuantError, Quantizer};

/// An MX floating-point element encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpElement {
    /// 4-bit E2M1.
    E2M1,
    /// 6-bit E2M3.
    E2M3,
    /// 6-bit E3M2.
    E3M2,
    /// 8-bit E4M3.
    E4M3,
    /// 8-bit E5M2.
    E5M2,
}

impl FpElement {
    /// Total storage bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            FpElement::E2M1 => 4,
            FpElement::E2M3 | FpElement::E3M2 => 6,
            FpElement::E4M3 | FpElement::E5M2 => 8,
        }
    }

    /// Mantissa field width.
    fn man_bits(&self) -> i32 {
        match self {
            FpElement::E2M1 => 1,
            FpElement::E3M2 | FpElement::E5M2 => 2,
            FpElement::E2M3 | FpElement::E4M3 => 3,
        }
    }

    /// Exponent bias (per the OCP MX concrete formats).
    fn bias(&self) -> i32 {
        match self {
            FpElement::E2M1 | FpElement::E2M3 => 1,
            FpElement::E3M2 => 3,
            FpElement::E4M3 => 7,
            FpElement::E5M2 => 15,
        }
    }

    /// Largest unbiased exponent of a normal number. (E4M3 and the MX small
    /// formats reclaim the top exponent for normals; E5M2 reserves it for
    /// inf/NaN.)
    fn max_exp(&self) -> i32 {
        match self {
            FpElement::E2M1 | FpElement::E2M3 => 2,
            FpElement::E3M2 => 4,
            FpElement::E4M3 => 8,
            FpElement::E5M2 => 15,
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f32 {
        let m = self.man_bits();
        // Top normal: (2 - 2^-m) * 2^max_exp, except E4M3 whose top
        // mantissa code is NaN (max = 1.75 * 2^8 = 448).
        match self {
            FpElement::E4M3 => 448.0,
            _ => (2.0 - exp2i(-m)) * exp2i(self.max_exp()),
        }
    }

    /// Rounds `x` (assumed scaled into the element's range) to the nearest
    /// representable value of this mini-float, ties to even, saturating.
    pub fn round(&self, x: f32) -> f32 {
        if x == 0.0 {
            return 0.0;
        }
        let sign = x.signum();
        let a = x.abs();
        let max = self.max_value();
        if a >= max {
            return sign * max;
        }
        let m = self.man_bits();
        let min_exp = 1 - self.bias(); // smallest normal exponent
        let e = a.log2().floor() as i32;
        let e = e.max(min_exp);
        // Quantization step at this binade: 2^(e - m); below the smallest
        // normal we are in the subnormal range with step 2^(min_exp - m).
        let step = exp2i(e - m);
        let q = (f64::from(a) / f64::from(step)).round_ties_even() as f32;
        sign * q * step
    }
}

impl std::fmt::Display for FpElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FpElement::E2M1 => "E2M1",
            FpElement::E2M3 => "E2M3",
            FpElement::E3M2 => "E3M2",
            FpElement::E4M3 => "E4M3",
            FpElement::E5M2 => "E5M2",
        };
        f.write_str(s)
    }
}

/// An MXFP quantizer: mini-float elements under a per-block shared
/// power-of-two scale.
///
/// # Example
///
/// ```
/// use opal_quant::mxfp::{FpElement, MxFpQuantizer};
/// use opal_quant::Quantizer;
///
/// let q = MxFpQuantizer::new(FpElement::E4M3, 32)?;
/// let x = vec![1.0f32; 32];
/// assert_eq!(q.quantize_dequantize(&x), x);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MxFpQuantizer {
    element: FpElement,
    block_size: usize,
}

impl MxFpQuantizer {
    /// Creates an MXFP quantizer over blocks of `block_size`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBlockSize`] for an empty block.
    pub fn new(element: FpElement, block_size: usize) -> Result<Self, QuantError> {
        if block_size == 0 {
            return Err(QuantError::InvalidBlockSize { block_size });
        }
        Ok(MxFpQuantizer { element, block_size })
    }

    /// The element encoding.
    pub fn element(&self) -> FpElement {
        self.element
    }

    /// The block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn quantize_block(&self, x: &[f32], out: &mut [f32]) {
        let max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max == 0.0 {
            out.fill(0.0);
            return;
        }
        // Shared scale: place the block max at the element format's top
        // binade (the OCP MX scale selection).
        let scale_exp = (max.log2().floor() as i32) - self.element.max_exp();
        let scale = exp2i(scale_exp);
        let inv = exp2i(-scale_exp);
        for (o, &v) in out.iter_mut().zip(x) {
            *o = self.element.round(v * inv) * scale;
        }
    }
}

impl Quantizer for MxFpQuantizer {
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; x.len()];
        self.quantize_dequantize_into(x, &mut out);
        out
    }

    fn quantize_dequantize_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), x.len(), "output length mismatch");
        for (xb, ob) in x.chunks(self.block_size).zip(out.chunks_mut(self.block_size)) {
            self.quantize_block(xb, ob);
        }
    }

    fn name(&self) -> String {
        format!("MXFP{}-{}", self.element.bits(), self.element)
    }

    fn storage_bits(&self, len: usize) -> usize {
        let blocks = len.div_ceil(self.block_size);
        len * self.element.bits() as usize + blocks * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MxIntQuantizer;
    use opal_tensor::rng::TensorRng;
    use opal_tensor::stats::mse;

    #[test]
    fn element_constants() {
        assert_eq!(FpElement::E2M1.max_value(), 6.0);
        assert_eq!(FpElement::E2M3.max_value(), 7.5);
        assert_eq!(FpElement::E3M2.max_value(), 28.0);
        assert_eq!(FpElement::E4M3.max_value(), 448.0);
        assert_eq!(FpElement::E5M2.max_value(), 57344.0);
    }

    #[test]
    fn e2m1_code_points() {
        // E2M1 represents exactly ±{0, 0.5, 1, 1.5, 2, 3, 4, 6}.
        let expected = [0.0f32, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];
        for &v in &expected {
            assert_eq!(FpElement::E2M1.round(v), v, "{v} must be exact");
        }
        assert_eq!(FpElement::E2M1.round(2.4), 2.0);
        assert_eq!(FpElement::E2M1.round(2.6), 3.0);
        assert_eq!(FpElement::E2M1.round(100.0), 6.0); // saturation
        assert_eq!(FpElement::E2M1.round(-2.6), -3.0);
    }

    #[test]
    fn e4m3_saturates_at_448() {
        assert_eq!(FpElement::E4M3.round(1e9), 448.0);
        assert_eq!(FpElement::E4M3.round(447.0), 448.0); // rounds to top
        assert_eq!(FpElement::E4M3.round(416.0), 416.0); // 1.625*256 exact
    }

    #[test]
    fn exact_on_powers_of_two() {
        let q = MxFpQuantizer::new(FpElement::E2M3, 8).unwrap();
        let x = [4.0f32, 2.0, 1.0, -4.0, 0.5, 0.25, 0.0, 1.5];
        assert_eq!(q.quantize_dequantize(&x), x);
    }

    /// MSE restricted to the non-outlier positions.
    fn body_mse(x: &[f32], y: &[f32], outliers: &[usize]) -> f64 {
        let xs: Vec<f32> =
            x.iter().enumerate().filter(|(i, _)| !outliers.contains(i)).map(|(_, &v)| v).collect();
        let ys: Vec<f32> =
            y.iter().enumerate().filter(|(i, _)| !outliers.contains(i)).map(|(_, &v)| v).collect();
        mse(&xs, &ys)
    }

    #[test]
    fn fp_elements_preserve_small_values_under_outliers() {
        // The FP element's own exponent range spans binades *below* the
        // block maximum, so non-outlier values survive where MXINT8's
        // fixed step wipes them out. (On the outliers themselves MXINT8's
        // 7-bit mantissa is finer — the trade the OCP MX spec describes —
        // so the comparison is on the distribution body.)
        let mut rng = TensorRng::seed(11);
        let ch = rng.distinct_indices(1024, 10);
        let x = rng.outlier_vector(1024, 1.0, &ch, 600.0);
        let fp = MxFpQuantizer::new(FpElement::E4M3, 128).unwrap();
        let int = MxIntQuantizer::new(8, 128).unwrap();
        let e_fp = body_mse(&x, &fp.quantize_dequantize(&x), &ch);
        let e_int = body_mse(&x, &int.quantize_dequantize(&x), &ch);
        assert!(e_fp < e_int / 4.0, "E4M3 body MSE {e_fp} must be well below MXINT8's {e_int}");
    }

    #[test]
    fn wider_mantissa_wins_on_smooth_data() {
        // On outlier-free data, E2M3 (3 mantissa bits) beats E3M2.
        let x: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.13).sin()).collect();
        let e2m3 = MxFpQuantizer::new(FpElement::E2M3, 128).unwrap();
        let e3m2 = MxFpQuantizer::new(FpElement::E3M2, 128).unwrap();
        let a = mse(&x, &e2m3.quantize_dequantize(&x));
        let b = mse(&x, &e3m2.quantize_dequantize(&x));
        assert!(a < b, "E2M3 {a} vs E3M2 {b}");
    }

    #[test]
    fn wider_exponent_preserves_body_under_heavy_tails() {
        // E3M2's extra exponent bit reaches further below the block max
        // than E2M3, keeping the distribution body alive when the scale is
        // pinned by a large outlier.
        let mut rng = TensorRng::seed(4);
        let ch = rng.distinct_indices(512, 5);
        let x = rng.outlier_vector(512, 1.0, &ch, 400.0);
        let e2m3 = MxFpQuantizer::new(FpElement::E2M3, 128).unwrap();
        let e3m2 = MxFpQuantizer::new(FpElement::E3M2, 128).unwrap();
        let a = body_mse(&x, &e2m3.quantize_dequantize(&x), &ch);
        let b = body_mse(&x, &e3m2.quantize_dequantize(&x), &ch);
        assert!(b < a, "E3M2 body {b} vs E2M3 body {a} under heavy tails");
    }

    #[test]
    fn zero_block_and_lengths() {
        let q = MxFpQuantizer::new(FpElement::E2M1, 32).unwrap();
        assert_eq!(q.quantize_dequantize(&[0.0; 40]), vec![0.0; 40]);
        assert_eq!(q.quantize_dequantize(&[1.0; 100]).len(), 100);
    }

    #[test]
    fn storage_accounting() {
        let q = MxFpQuantizer::new(FpElement::E2M3, 128).unwrap();
        assert_eq!(q.storage_bits(128), 128 * 6 + 8);
        assert_eq!(q.name(), "MXFP6-E2M3");
    }

    #[test]
    fn rejects_empty_block() {
        assert!(MxFpQuantizer::new(FpElement::E4M3, 0).is_err());
    }
}
