//! MX-OPAL: the paper's outlier-preserved microscaling format (§3, Fig. 2(c)).

use std::cmp::Ordering;

use opal_numerics::{shift_dequantize, shift_quantize, Bf16, Rounding};

use crate::{QuantError, Quantizer};

/// Reusable workspace for the allocation-free MX-OPAL round trip
/// ([`Quantizer::quantize_dequantize_scratch`]).
///
/// The tensor-global encoder needs two passes — per-block outlier/scale
/// plans first, then a tensor-wide scale before any element can be encoded
/// — so unlike the block-local formats it must stage intermediate state
/// somewhere. This type owns that state: the bfloat16 image of the row, the
/// top-magnitude selection buffer, and the per-block scale/outlier plans.
/// Buffers grow to the largest row ever encoded and are reused verbatim
/// afterwards, so a steady-state decode loop that owns one `EncodeScratch`
/// per sequence performs no heap allocation in the quantizer.
///
/// One workspace may be shared across quantizers of different widths and
/// block sizes (each call resets it); it carries no encoding state between
/// calls.
#[derive(Clone, Debug, Default)]
pub struct EncodeScratch {
    /// bf16 image of the input row.
    bf: Vec<Bf16>,
    /// Block-local indices of the top `n + 1` magnitudes, in stable rank
    /// order (the prefix of the allocating path's full descending sort).
    top: Vec<usize>,
    /// Natural shared scale per block (`None` for an all-zero block).
    block_scales: Vec<Option<i32>>,
    /// Preserved-outlier positions (tensor-global indices), grouped by
    /// block.
    outlier_idx: Vec<usize>,
    /// Per-block end offsets into `outlier_idx`.
    outlier_end: Vec<usize>,
}

impl EncodeScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Number of bits used for each block's shared-scale *offset* against the
/// tensor-wise global scale (§3.1: "store a 4-bit block-wise offset").
pub const SCALE_OFFSET_BITS: u32 = 4;

const MAX_OFFSET: i32 = (1 << SCALE_OFFSET_BITS) - 1;

/// One encoded MX-OPAL block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MxOpalBlock {
    /// Offset of this block's shared scale above the tensor's global scale,
    /// in `0..=15` (stored in 4 bits).
    pub scale_offset: u8,
    /// The preserved outliers: `(index within block, bfloat16 value)`.
    pub outliers: Vec<(u8, Bf16)>,
    /// Non-outlier integer elements (outlier positions hold 0).
    pub elements: Vec<i32>,
}

/// A fully encoded MX-OPAL tensor: global scale + per-block payloads.
///
/// This is the wire/SRAM format whose size the paper's Eq. (1) accounts for;
/// [`MxOpalTensor::storage_bits`] computes the same quantity from the actual
/// encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MxOpalTensor {
    /// Tensor-wise global shared scale (unbiased exponent).
    pub global_scale: i32,
    /// Encoded blocks, in order.
    pub blocks: Vec<MxOpalBlock>,
    bits: u32,
    block_size: usize,
    len: usize,
}

impl MxOpalTensor {
    /// Reassembles a tensor from its parts (used by the wire decoder in
    /// [`crate::packing`]).
    ///
    /// # Panics
    ///
    /// Panics if the blocks' element counts do not sum to `len`.
    pub fn from_parts(
        global_scale: i32,
        blocks: Vec<MxOpalBlock>,
        bits: u32,
        block_size: usize,
        len: usize,
    ) -> Self {
        let total: usize = blocks.iter().map(|b| b.elements.len()).sum();
        assert_eq!(total, len, "block contents must cover the tensor");
        MxOpalTensor { global_scale, blocks, bits, block_size, len }
    }

    /// Decodes the tensor back to real values.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for block in &self.blocks {
            let s = self.global_scale + i32::from(block.scale_offset);
            let start = out.len();
            out.extend(block.elements.iter().map(|&q| shift_dequantize(q, s, self.bits)));
            for &(idx, val) in &block.outliers {
                out[start + idx as usize] = val.to_f32();
            }
        }
        out
    }

    /// Exact storage footprint of this encoding in bits: `(k−n)` packed
    /// integer elements + 16-bit bfloat16 outliers + per-outlier indices
    /// (`ceil(log2 k)` bits each) + 4-bit scale offsets + the 8-bit global
    /// scale.
    ///
    /// This matches the numerator of the paper's Eq. (1),
    /// `(k−n)·b + 16·n + 4`, except that we additionally count the outlier
    /// index bits explicitly (Eq. (1) folds them away; for k = 128, n = 4
    /// they add ~2.7 % to the MX-OPAL payload).
    pub fn storage_bits(&self) -> usize {
        let idx_bits = usize::BITS as usize - (self.block_size - 1).leading_zeros() as usize;
        let mut bits = 8; // global scale
        for b in &self.blocks {
            bits += SCALE_OFFSET_BITS as usize;
            bits += (b.elements.len() - b.outliers.len()) * self.bits as usize;
            bits += b.outliers.len() * (16 + idx_bits);
        }
        bits
    }

    /// Number of encoded elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total preserved-outlier count across all blocks.
    pub fn outlier_count(&self) -> usize {
        self.blocks.iter().map(|b| b.outliers.len()).sum()
    }

    /// The element bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

/// The MX-OPAL quantizer: MXINT with the top-`n` outliers of every block of
/// `k` elements preserved in bfloat16, the shared scale taken from the
/// (n+1)-th largest magnitude, and block scales encoded as a global exponent
/// plus 4-bit offsets.
///
/// The paper's configuration is `k = 128`, `n = 4`, with `bits` = 3/4 for
/// post-LayerNorm activations and 5/7 elsewhere.
///
/// # Example
///
/// ```
/// use opal_quant::{MxOpalQuantizer, Quantizer};
///
/// let q = MxOpalQuantizer::new(3, 128, 4)?;
/// assert_eq!(q.name(), "MX-OPAL3");
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MxOpalQuantizer {
    bits: u32,
    block_size: usize,
    outliers: usize,
    rounding: Rounding,
}

impl MxOpalQuantizer {
    /// Creates an MX-OPAL quantizer with `bits`-bit non-outlier elements,
    /// blocks of `block_size`, and `outliers` preserved values per block.
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if `bits` ∉ `2..=8`, the block is empty, or
    /// `outliers >= block_size` (the scale needs an (n+1)-th element).
    pub fn new(bits: u32, block_size: usize, outliers: usize) -> Result<Self, QuantError> {
        Self::with_rounding(bits, block_size, outliers, Rounding::NearestEven)
    }

    /// As [`MxOpalQuantizer::new`] with an explicit shift-rounding mode.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MxOpalQuantizer::new`].
    pub fn with_rounding(
        bits: u32,
        block_size: usize,
        outliers: usize,
        rounding: Rounding,
    ) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidBits { bits });
        }
        if block_size == 0 {
            return Err(QuantError::InvalidBlockSize { block_size });
        }
        if outliers >= block_size {
            return Err(QuantError::TooManyOutliers { outliers, block_size });
        }
        Ok(MxOpalQuantizer { bits, block_size, outliers, rounding })
    }

    /// The non-outlier element bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The preserved-outlier count `n`.
    pub fn outliers(&self) -> usize {
        self.outliers
    }

    /// Encodes a whole tensor: selects per-block outliers and scales, then
    /// computes the tensor-global scale and 4-bit offsets.
    ///
    /// Blocks whose natural scale sits more than 15 exponent steps below the
    /// tensor maximum are re-quantized at the clamped (higher) scale — extra
    /// underflow for those blocks, never overflow, mirroring what the
    /// fixed-width offset field forces on hardware.
    pub fn quantize(&self, x: &[f32]) -> MxOpalTensor {
        struct Plan {
            outlier_idx: Vec<usize>,
            scale: Option<i32>,
            bf: Vec<Bf16>,
        }

        let mut plans = Vec::new();
        for chunk in x.chunks(self.block_size) {
            let bf: Vec<Bf16> = chunk.iter().map(|&v| Bf16::from_f32(v)).collect();
            // Rank indices by |value| descending (bf16 magnitude order).
            let mut order: Vec<usize> = (0..bf.len()).collect();
            order.sort_by(|&a, &b| bf[b].abs_cmp(bf[a]));
            let n = self.outliers.min(bf.len().saturating_sub(1));
            let outlier_idx: Vec<usize> = order[..n].to_vec();
            // Shared scale = exponent of the (n+1)-th largest magnitude.
            let scale_elem = bf[order[n]];
            let scale = if scale_elem.is_zero() || scale_elem.is_subnormal() {
                None
            } else {
                Some(scale_elem.unbiased_exponent())
            };
            plans.push(Plan { outlier_idx, scale, bf });
        }

        // Global scale: chosen so every block offset fits in 4 bits.
        // global = max(min_scale, max_scale - 15); blocks below are clamped
        // *up* (they lose small values to underflow but never overflow).
        let scales: Vec<i32> = plans.iter().filter_map(|p| p.scale).collect();
        let global_scale = match (scales.iter().min(), scales.iter().max()) {
            (Some(&lo), Some(&hi)) => lo.max(hi - MAX_OFFSET),
            _ => 0,
        };

        let mut blocks = Vec::with_capacity(plans.len());
        for plan in &plans {
            let scale = plan
                .scale
                .map(|s| s.clamp(global_scale, global_scale + MAX_OFFSET))
                .unwrap_or(global_scale);
            let offset = (scale - global_scale) as u8;
            let mut elements = vec![0i32; plan.bf.len()];
            for (i, &v) in plan.bf.iter().enumerate() {
                if plan.outlier_idx.contains(&i) {
                    continue;
                }
                elements[i] = shift_quantize(v, scale, self.bits, self.rounding);
            }
            let mut outliers: Vec<(u8, Bf16)> =
                plan.outlier_idx.iter().map(|&i| (i as u8, plan.bf[i])).collect();
            outliers.sort_by_key(|&(i, _)| i);
            blocks.push(MxOpalBlock { scale_offset: offset, outliers, elements });
        }

        MxOpalTensor {
            global_scale,
            blocks,
            bits: self.bits,
            block_size: self.block_size,
            len: x.len(),
        }
    }

    /// The fused, allocation-free round trip behind
    /// [`Quantizer::quantize_dequantize_scratch`]: encodes and reconstructs
    /// `x` in two passes over `scratch`, producing bit-for-bit the values of
    /// `self.quantize(x).dequantize()` without building an [`MxOpalTensor`].
    ///
    /// Pass 1 ranks each block's magnitudes with a stable top-`(n+1)`
    /// selection (the prefix of the allocating path's full descending sort,
    /// with the same earlier-index-wins tie-break), recording outlier
    /// positions and the block's natural scale. Pass 2 clamps every block
    /// scale against the tensor-global scale and round-trips non-outliers
    /// through the shift datapath; preserved outliers reconstruct to their
    /// exact bfloat16 value. Equivalence to the allocating encoder is pinned
    /// by `tests/proptests.rs` across bit-widths, block sizes, outlier
    /// counts and rounding modes.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.len()`.
    pub fn quantize_dequantize_fused(&self, x: &[f32], out: &mut [f32], s: &mut EncodeScratch) {
        assert_eq!(out.len(), x.len(), "output length mismatch");
        s.bf.clear();
        s.bf.extend(x.iter().map(|&v| Bf16::from_f32(v)));
        s.block_scales.clear();
        s.outlier_idx.clear();
        s.outlier_end.clear();

        // Pass 1: per-block outlier selection and natural scales, tracking
        // the scale range for the global-scale rule.
        let mut scale_min: Option<i32> = None;
        let mut scale_max: Option<i32> = None;
        let mut start = 0;
        while start < x.len() {
            let end = (start + self.block_size).min(x.len());
            let n = self.outliers.min(end - start - 1);
            // Stable top-(n+1) selection over |bf16| — element j displaces
            // kept entries only when strictly larger, so equal magnitudes
            // keep ascending-index order exactly like the stable sort.
            s.top.clear();
            for j in 0..end - start {
                let v = s.bf[start + j];
                let mut pos = s.top.len();
                for (t, &e) in s.top.iter().enumerate() {
                    if s.bf[start + e].abs_cmp(v) == Ordering::Less {
                        pos = t;
                        break;
                    }
                }
                if pos <= n {
                    s.top.insert(pos, j);
                    s.top.truncate(n + 1);
                }
            }
            // Shared scale = exponent of the (n+1)-th largest magnitude.
            let scale_elem = s.bf[start + s.top[n]];
            let scale = if scale_elem.is_zero() || scale_elem.is_subnormal() {
                None
            } else {
                Some(scale_elem.unbiased_exponent())
            };
            if let Some(sc) = scale {
                scale_min = Some(scale_min.map_or(sc, |m| m.min(sc)));
                scale_max = Some(scale_max.map_or(sc, |m| m.max(sc)));
            }
            // tidy: allow(alloc) -- amortized: scratch capacity is reused across calls
            s.block_scales.push(scale);
            s.outlier_idx.extend(s.top[..n].iter().map(|&j| start + j));
            // tidy: allow(alloc) -- amortized: scratch capacity is reused across calls
            s.outlier_end.push(s.outlier_idx.len());
            start = end;
        }

        // Global scale: same rule as `quantize` — every block offset must
        // fit in 4 bits, low blocks clamp upward.
        let global_scale = match (scale_min, scale_max) {
            (Some(lo), Some(hi)) => lo.max(hi - MAX_OFFSET),
            _ => 0,
        };

        // Pass 2: round-trip each block at its clamped scale, then restore
        // the preserved outliers exactly.
        let mut outlier_start = 0;
        for (b, block_scale) in s.block_scales.iter().enumerate() {
            let start = b * self.block_size;
            let end = (start + self.block_size).min(x.len());
            let scale = block_scale
                .map(|sc| sc.clamp(global_scale, global_scale + MAX_OFFSET))
                .unwrap_or(global_scale);
            for (o, &v) in out[start..end].iter_mut().zip(&s.bf[start..end]) {
                *o = shift_dequantize(
                    shift_quantize(v, scale, self.bits, self.rounding),
                    scale,
                    self.bits,
                );
            }
            let outlier_end = s.outlier_end[b];
            for &i in &s.outlier_idx[outlier_start..outlier_end] {
                out[i] = s.bf[i].to_f32();
            }
            outlier_start = outlier_end;
        }
    }

    /// Encodes one row into caller-owned packed page arrays — the KV-cache
    /// storage form of [`MxOpalQuantizer::quantize_dequantize_fused`].
    ///
    /// Runs the identical two passes over `scratch` (same stable top-`(n+1)`
    /// outlier selection, same global-scale rule, same per-block clamp) but
    /// instead of reconstructing values it emits the encoding itself:
    ///
    /// * `codes[i]` — the shift-quantized integer element (outlier positions
    ///   hold `0`, so a code-domain dot never double-counts them);
    /// * `scales[b]` — the *effective* (post-clamp) shared scale of block
    ///   `b`, so decoding needs no global scale;
    /// * `out_idx`/`out_val` — `self.outliers` fixed slots per block of
    ///   preserved `(index within block, bfloat16 value)` pairs, the live
    ///   prefix length in `out_len[b]`.
    ///
    /// [`MxOpalQuantizer::decode_row`] reconstructs bit-for-bit the values
    /// `quantize_dequantize_fused` would have produced, because the fused
    /// reconstruction is exactly `code × step_size(scale, bits)` (scaling by
    /// an exact power of two) plus exact bfloat16 outliers.
    ///
    /// # Panics
    ///
    /// Panics if any destination length disagrees with `x.len()` and this
    /// quantizer's block geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_row_scratch(
        &self,
        x: &[f32],
        codes: &mut [i8],
        scales: &mut [i16],
        out_idx: &mut [u16],
        out_val: &mut [Bf16],
        out_len: &mut [u8],
        s: &mut EncodeScratch,
    ) {
        let blocks = x.len().div_ceil(self.block_size);
        assert_eq!(codes.len(), x.len(), "code length mismatch");
        assert_eq!(scales.len(), blocks, "scale length mismatch");
        assert_eq!(out_idx.len(), blocks * self.outliers, "outlier index length mismatch");
        assert_eq!(out_val.len(), blocks * self.outliers, "outlier value length mismatch");
        assert_eq!(out_len.len(), blocks, "outlier count length mismatch");
        s.bf.clear();
        s.bf.extend(x.iter().map(|&v| Bf16::from_f32(v)));
        s.block_scales.clear();
        s.outlier_idx.clear();
        s.outlier_end.clear();

        // Pass 1: identical to `quantize_dequantize_fused`.
        let mut scale_min: Option<i32> = None;
        let mut scale_max: Option<i32> = None;
        let mut start = 0;
        while start < x.len() {
            let end = (start + self.block_size).min(x.len());
            let n = self.outliers.min(end - start - 1);
            s.top.clear();
            for j in 0..end - start {
                let v = s.bf[start + j];
                let mut pos = s.top.len();
                for (t, &e) in s.top.iter().enumerate() {
                    if s.bf[start + e].abs_cmp(v) == Ordering::Less {
                        pos = t;
                        break;
                    }
                }
                if pos <= n {
                    s.top.insert(pos, j);
                    s.top.truncate(n + 1);
                }
            }
            let scale_elem = s.bf[start + s.top[n]];
            let scale = if scale_elem.is_zero() || scale_elem.is_subnormal() {
                None
            } else {
                Some(scale_elem.unbiased_exponent())
            };
            if let Some(sc) = scale {
                scale_min = Some(scale_min.map_or(sc, |m| m.min(sc)));
                scale_max = Some(scale_max.map_or(sc, |m| m.max(sc)));
            }
            // tidy: allow(alloc) -- amortized: scratch capacity is reused across calls
            s.block_scales.push(scale);
            s.outlier_idx.extend(s.top[..n].iter().map(|&j| start + j));
            // tidy: allow(alloc) -- amortized: scratch capacity is reused across calls
            s.outlier_end.push(s.outlier_idx.len());
            start = end;
        }

        let global_scale = match (scale_min, scale_max) {
            (Some(lo), Some(hi)) => lo.max(hi - MAX_OFFSET),
            _ => 0,
        };

        // Pass 2: emit codes at each block's clamped effective scale, zero
        // the outlier positions, and record the preserved values.
        let mut outlier_start = 0;
        for (b, block_scale) in s.block_scales.iter().enumerate() {
            let start = b * self.block_size;
            let end = (start + self.block_size).min(x.len());
            let scale = block_scale
                .map(|sc| sc.clamp(global_scale, global_scale + MAX_OFFSET))
                .unwrap_or(global_scale);
            // bf16 exponents fit i16 with orders of magnitude to spare.
            scales[b] = scale as i16;
            for (c, &v) in codes[start..end].iter_mut().zip(&s.bf[start..end]) {
                // |q| <= 2^(bits-1)-1 <= 127 for bits <= 8: exact in i8.
                *c = shift_quantize(v, scale, self.bits, self.rounding) as i8;
            }
            let outlier_end = s.outlier_end[b];
            let slot0 = b * self.outliers;
            out_len[b] = (outlier_end - outlier_start) as u8;
            for (slot, &i) in s.outlier_idx[outlier_start..outlier_end].iter().enumerate() {
                codes[i] = 0;
                out_idx[slot0 + slot] = (i - start) as u16;
                out_val[slot0 + slot] = s.bf[i];
            }
            outlier_start = outlier_end;
        }
    }

    /// Decodes a row encoded by [`MxOpalQuantizer::encode_row_scratch`],
    /// bit-for-bit equal to what `quantize_dequantize_fused` writes for the
    /// same input: one power-of-two step multiply per code, then the exact
    /// bfloat16 outliers.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths disagree with the block geometry.
    pub fn decode_row(
        &self,
        codes: &[i8],
        scales: &[i16],
        out_idx: &[u16],
        out_val: &[Bf16],
        out_len: &[u8],
        out: &mut [f32],
    ) {
        let blocks = codes.len().div_ceil(self.block_size);
        assert_eq!(out.len(), codes.len(), "output length mismatch");
        assert_eq!(scales.len(), blocks, "scale length mismatch");
        assert_eq!(out_len.len(), blocks, "outlier count length mismatch");
        for b in 0..blocks {
            let start = b * self.block_size;
            let end = (start + self.block_size).min(codes.len());
            let step = opal_numerics::shift::step_size(i32::from(scales[b]), self.bits);
            for (o, &c) in out[start..end].iter_mut().zip(&codes[start..end]) {
                *o = f32::from(c) * step;
            }
            let slot0 = b * self.outliers;
            for slot in 0..usize::from(out_len[b]) {
                out[start + usize::from(out_idx[slot0 + slot])] = out_val[slot0 + slot].to_f32();
            }
        }
    }
}

impl Quantizer for MxOpalQuantizer {
    /// Round-trips through the structured [`MxOpalQuantizer::quantize`] /
    /// [`MxOpalTensor::dequantize`] pair — the allocating specification the
    /// fused scratch path is property-tested against.
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32> {
        self.quantize(x).dequantize()
    }

    fn quantize_dequantize_into(&self, x: &[f32], out: &mut [f32]) {
        self.quantize_dequantize_fused(x, out, &mut EncodeScratch::new());
    }

    fn quantize_dequantize_scratch(&self, x: &[f32], out: &mut [f32], scratch: &mut EncodeScratch) {
        self.quantize_dequantize_fused(x, out, scratch);
    }

    fn name(&self) -> String {
        format!("MX-OPAL{}", self.bits)
    }

    fn storage_bits(&self, len: usize) -> usize {
        let blocks = len.div_ceil(self.block_size);
        let idx_bits = usize::BITS as usize - (self.block_size - 1).leading_zeros() as usize;
        // Full blocks carry `outliers` preserved values; a short final block
        // carries at most `len_final - 1`.
        let full_blocks = len / self.block_size;
        let tail = len % self.block_size;
        let total_outliers = full_blocks * self.outliers.min(self.block_size - 1)
            + if tail > 0 { self.outliers.min(tail - 1) } else { 0 };
        8 + blocks * SCALE_OFFSET_BITS as usize
            + total_outliers * (16 + idx_bits)
            + (len - total_outliers) * self.bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MxIntQuantizer;
    use opal_tensor::stats::mse;

    fn outlier_block(k: usize) -> Vec<f32> {
        let mut x: Vec<f32> =
            (0..k).map(|i| (((i * 37 + 11) % 41) as f32 / 41.0 - 0.5) * 0.8).collect();
        x[k / 3] = 24.0; // single large outlier
        x
    }

    /// Wild inter-block dynamic range: block scales span >> 15 exponents,
    /// forcing the 4-bit offset clamp.
    fn wild_dynamic_range() -> Vec<f32> {
        (0..64)
            .map(|i| {
                if i < 16 {
                    1e-6 * (1.0 + i as f32 * 0.01)
                } else if i < 32 {
                    1e6 * (1.0 + i as f32 * 0.01)
                } else {
                    (i as f32 - 48.0) * 0.1
                }
            })
            .collect()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(MxOpalQuantizer::new(4, 128, 128).is_err());
        assert!(MxOpalQuantizer::new(1, 128, 4).is_err());
        assert!(MxOpalQuantizer::new(4, 0, 0).is_err());
        assert!(MxOpalQuantizer::new(4, 128, 127).is_ok());
    }

    #[test]
    fn outliers_preserved_exactly() {
        let q = MxOpalQuantizer::new(3, 128, 4).unwrap();
        let mut x = outlier_block(128);
        x[7] = -19.5; // bf16-exact
        x[80] = 12.25;
        let y = q.quantize_dequantize(&x);
        assert_eq!(y[128 / 3], 24.0);
        assert_eq!(y[7], -19.5);
        assert_eq!(y[80], 12.25);
    }

    #[test]
    fn scale_comes_from_n_plus_first() {
        // Block: one huge outlier (2^10), rest around 2^0. With n=1 the
        // shared scale must be 0-ish, not 10.
        let q = MxOpalQuantizer::new(4, 8, 1).unwrap();
        let x = [1024.0f32, 1.5, -1.2, 0.9, 1.1, -0.7, 0.4, 1.3];
        let t = q.quantize(&x);
        let s = t.global_scale + i32::from(t.blocks[0].scale_offset);
        assert_eq!(s, 0, "scale must track the 2nd largest element (1.5)");
    }

    #[test]
    fn beats_mxint_on_outlier_data() {
        // The headline effect (Fig. 3 / Fig. 4): preserving outliers slashes
        // the MSE relative to MXINT at the same bit-width.
        for bits in [2u32, 3, 4, 8] {
            let x = outlier_block(128);
            let mxint = MxIntQuantizer::new(bits, 128).unwrap();
            let mxopal = MxOpalQuantizer::new(bits, 128, 4).unwrap();
            let e_int = mse(&x, &mxint.quantize_dequantize(&x));
            let e_opal = mse(&x, &mxopal.quantize_dequantize(&x));
            assert!(
                e_opal < e_int / 2.0,
                "bits={bits}: opal {e_opal} should be well below mxint {e_int}"
            );
        }
    }

    #[test]
    fn no_outlier_data_matches_mxint_closely() {
        // Without outliers the (n+1)-th exponent ~= max exponent, so
        // MX-OPAL degenerates to MXINT accuracy (or slightly better).
        let x: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.49).sin()).collect();
        let mxint = MxIntQuantizer::new(4, 128).unwrap();
        let mxopal = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let e_int = mse(&x, &mxint.quantize_dequantize(&x));
        let e_opal = mse(&x, &mxopal.quantize_dequantize(&x));
        assert!(e_opal <= e_int * 1.05, "opal {e_opal} vs mxint {e_int}");
    }

    #[test]
    fn roundtrip_length_and_partial_blocks() {
        let q = MxOpalQuantizer::new(5, 16, 2).unwrap();
        let x = outlier_block(39);
        let y = q.quantize_dequantize(&x);
        assert_eq!(y.len(), 39);
    }

    #[test]
    fn offsets_fit_four_bits() {
        let q = MxOpalQuantizer::new(4, 16, 1).unwrap();
        let x = wild_dynamic_range();
        let t = q.quantize(&x);
        for b in &t.blocks {
            assert!(i32::from(b.scale_offset) <= MAX_OFFSET);
        }
        // Large block must not overflow: the clamp direction is upward.
        let y = t.dequantize();
        for i in 16..32 {
            assert!((y[i] - x[i]).abs() / x[i] < 0.2, "large values survive: {} vs {}", y[i], x[i]);
        }
    }

    #[test]
    fn all_zero_input() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let x = vec![0.0f32; 256];
        assert_eq!(q.quantize_dequantize(&x), x);
    }

    #[test]
    fn zero_outliers_degenerates_to_mxint() {
        let q0 = MxOpalQuantizer::new(4, 64, 0).unwrap();
        let mxint = MxIntQuantizer::new(4, 64).unwrap();
        let x: Vec<f32> = (0..64).map(|i| ((i * 29 % 31) as f32 - 15.0) * 0.3).collect();
        let a = q0.quantize_dequantize(&x);
        let b = mxint.quantize_dequantize(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn outlier_count_and_storage() {
        let q = MxOpalQuantizer::new(8, 128, 4).unwrap();
        let x = outlier_block(256);
        let t = q.quantize(&x);
        assert_eq!(t.outlier_count(), 8); // 4 per block × 2 blocks
        assert_eq!(t.len(), 256);
        // Packed size and a-priori size agree.
        assert_eq!(t.storage_bits(), q.storage_bits(256));
    }

    #[test]
    fn memory_overhead_close_to_eq1() {
        // Eq. (1): k=128, n=4, b=8 -> OMEM ≈ 1.092... with 16-bit outliers
        // and a 4-bit offset; our explicit 7-bit indices add ~2.7% more.
        let q = MxOpalQuantizer::new(8, 128, 4).unwrap();
        let mxint = MxIntQuantizer::new(8, 128).unwrap();
        let ratio = q.storage_bits(128 * 64) as f64 / mxint.storage_bits(128 * 64) as f64;
        let eq1 = crate::overhead::omem(128, 4, 8);
        assert!((ratio - eq1).abs() < 0.03, "packed ratio {ratio} vs Eq.(1) {eq1}");
    }

    /// Bit-exact comparison of the fused scratch path against the
    /// allocating specification.
    fn assert_fused_matches(q: &MxOpalQuantizer, x: &[f32], scratch: &mut EncodeScratch) {
        let spec = q.quantize_dequantize(x);
        let mut fused = vec![f32::NAN; x.len()];
        q.quantize_dequantize_fused(x, &mut fused, scratch);
        let spec_bits: Vec<u32> = spec.iter().map(|v| v.to_bits()).collect();
        let fused_bits: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        assert_eq!(spec_bits, fused_bits, "{} len {}", q.name(), x.len());
    }

    #[test]
    fn fused_matches_allocating_on_outlier_data() {
        let mut scratch = EncodeScratch::new();
        for bits in [2u32, 3, 4, 5, 7, 8] {
            let q = MxOpalQuantizer::new(bits, 128, 4).unwrap();
            assert_fused_matches(&q, &outlier_block(128), &mut scratch);
            assert_fused_matches(&q, &outlier_block(300), &mut scratch);
        }
    }

    #[test]
    fn fused_matches_on_wild_dynamic_range() {
        // The 4-bit offset clamp path.
        let q = MxOpalQuantizer::new(4, 16, 1).unwrap();
        assert_fused_matches(&q, &wild_dynamic_range(), &mut EncodeScratch::new());
    }

    #[test]
    fn fused_handles_ties_zeros_and_short_blocks() {
        let mut scratch = EncodeScratch::new();
        let q = MxOpalQuantizer::new(3, 8, 2).unwrap();
        // Repeated magnitudes force the tie-break (stable sort keeps the
        // earlier index as the outlier) to matter.
        let ties = [2.0f32, -2.0, 2.0, 2.0, -2.0, 0.5, 0.5, 0.25, 2.0, -2.0, 0.125];
        assert_fused_matches(&q, &ties, &mut scratch);
        assert_fused_matches(&q, &[0.0; 24], &mut scratch);
        assert_fused_matches(&q, &[3.5], &mut scratch);
        assert_fused_matches(&q, &[], &mut scratch);
        // Subnormal-only block: natural scale is None.
        assert_fused_matches(&q, &[1e-41, -1e-41, 0.0, 1e-40], &mut scratch);
    }

    #[test]
    fn scratch_reuse_across_lengths_and_quantizers() {
        // One workspace serving rows of different widths and two different
        // quantizer configurations, as the model's low/high sites do.
        let mut scratch = EncodeScratch::new();
        let low = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let high = MxOpalQuantizer::new(7, 128, 4).unwrap();
        for round in 0..3 {
            for len in [352usize, 128, 96, 500] {
                let x: Vec<f32> = (0..len)
                    .map(|i| (((i * 29 + round * 7 + 3) % 83) as f32 - 41.0) * 0.07)
                    .collect();
                assert_fused_matches(&low, &x, &mut scratch);
                assert_fused_matches(&high, &x, &mut scratch);
            }
        }
    }

    #[test]
    fn fused_matches_with_truncate_rounding() {
        let q = MxOpalQuantizer::with_rounding(4, 32, 2, Rounding::Truncate).unwrap();
        assert_fused_matches(&q, &outlier_block(100), &mut EncodeScratch::new());
    }

    #[test]
    fn elements_respect_bit_range() {
        let q = MxOpalQuantizer::new(3, 32, 2).unwrap();
        let t = q.quantize(&outlier_block(96));
        for b in &t.blocks {
            for &e in &b.elements {
                assert!(e.abs() <= 3, "3-bit magnitude bound");
            }
        }
    }
}
