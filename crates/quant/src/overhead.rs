//! The memory-overhead model of Eq. (1) (§3.2).

/// Memory overhead of MX-OPAL relative to MXINT/MinMax, Eq. (1) of the paper:
///
/// `OMEM = ((k − n)·b + 16·n + 4) / (k·b + 8)`
///
/// where `k` is the block size, `n` the preserved-outlier count and `b` the
/// non-outlier bit-width.
///
/// # Example
///
/// ```
/// use opal_quant::overhead::omem;
///
/// // §3.2: "only 2.7% of additional memory ... when k = 128, n = 4, b = 8"
/// assert!((omem(128, 4, 8) - 1.027).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `n > k` or `k == 0`.
pub fn omem(k: usize, n: usize, b: u32) -> f64 {
    assert!(k > 0, "block size must be positive");
    assert!(n <= k, "cannot preserve more outliers than elements");
    let num = (k - n) as f64 * f64::from(b) + 16.0 * n as f64 + 4.0;
    let den = k as f64 * f64::from(b) + 8.0;
    num / den
}

/// The paper's Fig. 4 OMEM tables as `(n, OMEM)` rows for a given `b`,
/// `k = 128`.
pub fn fig4_omem_rows(b: u32) -> Vec<(usize, f64)> {
    [1usize, 2, 4, 8].iter().map(|&n| (n, omem(128, n, b))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_b8_table() {
        // Fig. 4(a) inset: n=1,2,4,8 -> 1.004, 1.012, 1.027, 1.058.
        let expect = [(1, 1.004), (2, 1.012), (4, 1.027), (8, 1.058)];
        for (n, e) in expect {
            assert!((omem(128, n, 8) - e).abs() < 1.5e-3, "n={n}");
        }
    }

    #[test]
    fn b4_table_close_to_paper_within_its_own_inconsistency() {
        // Fig. 4(b) inset prints 1.024, 1.046, 1.092, 1.185 — consistently
        // ~0.8 % above Eq. (1) as stated (which gives 1.015, 1.038, 1.085,
        // 1.177; the printed numbers correspond to booking 4 extra bits per
        // block in the numerator). We implement Eq. (1) verbatim and accept
        // the paper's values within 1 %.
        let expect = [(1usize, 1.024), (2, 1.046), (4, 1.092), (8, 1.185)];
        for (n, e) in expect {
            let v = omem(128, n, 4);
            assert!((v - e).abs() / e < 0.01, "n={n}: {v} vs paper {e}");
        }
        // And exactly against the formula.
        assert!((omem(128, 4, 4) - 564.0 / 520.0).abs() < 1e-12);
    }

    #[test]
    fn n_zero_is_below_one() {
        // With no outliers MX-OPAL stores a 4-bit offset instead of the
        // 8-bit MXINT scale: slightly *smaller*.
        assert!(omem(128, 0, 8) < 1.0);
    }

    #[test]
    fn overhead_shrinks_with_block_size() {
        assert!(omem(256, 4, 8) < omem(128, 4, 8));
        assert!(omem(128, 4, 8) < omem(64, 4, 8));
    }

    #[test]
    #[should_panic(expected = "more outliers")]
    fn rejects_n_above_k() {
        omem(8, 9, 4);
    }
}
