//! Bit-level serialization of MX-OPAL tensors.
//!
//! [`MxOpalTensor::storage_bits`](crate::MxOpalTensor::storage_bits) *counts*
//! the wire size; this module actually produces the wire format — the byte
//! stream the OPAL global buffer and DRAM would hold — and decodes it back.
//! The encoded size is asserted to match the accounting bit-for-bit, which
//! pins the Eq. (1)-style overhead model to a real representation.
//!
//! Layout (all fields little-endian bit order, MSB-first within a field):
//!
//! ```text
//! header:  u8  element bits | u16 block size | u8 outliers per block |
//!          u32 element count | i8 global scale
//! per block:
//!          u4  scale offset
//!          n × (ceil(log2 k) bits index, u16 bfloat16 value)
//!          (len − n) × b-bit two's-complement elements, packed
//! ```

use opal_numerics::Bf16;

use crate::{MxOpalBlock, MxOpalQuantizer, MxOpalTensor, QuantError};

/// Error decoding a packed MX-OPAL stream.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnpackError {
    /// The stream ended before the declared payload.
    Truncated,
    /// A header field is inconsistent (e.g. zero block size).
    BadHeader(&'static str),
}

impl std::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnpackError::Truncated => write!(f, "packed stream ended early"),
            UnpackError::BadHeader(what) => write!(f, "invalid header field: {what}"),
        }
    }
}

impl std::error::Error for UnpackError {}

/// A bit-granular writer.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    fn push(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        for i in (0..bits).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.bit_len % 8));
            }
            self.bit_len += 1;
        }
    }
}

/// A bit-granular reader.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn pull(&mut self, bits: u32) -> Result<u64, UnpackError> {
        let mut out = 0u64;
        for _ in 0..bits {
            let byte_idx = self.pos / 8;
            if byte_idx >= self.bytes.len() {
                return Err(UnpackError::Truncated);
            }
            let bit = (self.bytes[byte_idx] >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }
}

/// Bits in the self-describing stream header.
pub const HEADER_BITS: usize = 8 + 16 + 8 + 32 + 8;

fn idx_bits(block_size: usize) -> u32 {
    usize::BITS - (block_size - 1).leading_zeros()
}

/// Serializes an encoded MX-OPAL tensor to bytes.
///
/// The payload portion (everything after the self-describing header) is
/// exactly [`MxOpalTensor::storage_bits`] bits long, rounded up to whole
/// bytes at the end of the stream.
pub fn pack(tensor: &MxOpalTensor) -> Vec<u8> {
    let bits = tensor.bits();
    let k = tensor.block_size();
    let n_out = tensor.blocks.first().map(|b| b.outliers.len()).unwrap_or(0);
    let ib = idx_bits(k);

    let mut w = BitWriter::default();
    w.push(u64::from(bits), 8);
    w.push(k as u64, 16);
    w.push(n_out as u64, 8);
    w.push(tensor.len() as u64, 32);
    w.push((tensor.global_scale as i8) as u8 as u64, 8);

    for block in &tensor.blocks {
        w.push(u64::from(block.scale_offset), 4);
        // Outlier count can differ only in a short tail block; encode it.
        w.push(block.outliers.len() as u64, 8);
        for &(idx, val) in &block.outliers {
            w.push(u64::from(idx), ib);
            w.push(u64::from(val.to_bits()), 16);
        }
        let outlier_set: Vec<u8> = block.outliers.iter().map(|&(i, _)| i).collect();
        for (i, &q) in block.elements.iter().enumerate() {
            if outlier_set.contains(&(i as u8)) {
                continue;
            }
            let mask = (1u64 << bits) - 1;
            w.push((q as i64 as u64) & mask, bits);
        }
    }
    w.bytes
}

/// Deserializes a packed MX-OPAL stream.
///
/// # Errors
///
/// Returns [`UnpackError`] if the stream is truncated or the header is
/// inconsistent.
pub fn unpack(bytes: &[u8]) -> Result<MxOpalTensor, UnpackError> {
    let mut r = BitReader::new(bytes);
    let bits = r.pull(8)? as u32;
    if !(2..=8).contains(&bits) {
        return Err(UnpackError::BadHeader("element bits"));
    }
    let k = r.pull(16)? as usize;
    if k == 0 {
        return Err(UnpackError::BadHeader("block size"));
    }
    let _n_out = r.pull(8)? as usize;
    let len = r.pull(32)? as usize;
    let global_scale = i32::from(r.pull(8)? as u8 as i8);
    let ib = idx_bits(k);

    let mut blocks = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let this_len = remaining.min(k);
        let scale_offset = r.pull(4)? as u8;
        let n = r.pull(8)? as usize;
        if n > this_len.max(1) {
            return Err(UnpackError::BadHeader("outlier count"));
        }
        let mut outliers = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.pull(ib)? as u8;
            let val = Bf16::from_bits(r.pull(16)? as u16);
            outliers.push((idx, val));
        }
        let outlier_set: Vec<u8> = outliers.iter().map(|&(i, _)| i).collect();
        let mut elements = vec![0i32; this_len];
        for (i, e) in elements.iter_mut().enumerate() {
            if outlier_set.contains(&(i as u8)) {
                continue;
            }
            let raw = r.pull(bits)?;
            // Sign-extend the b-bit two's-complement field.
            let shift = 64 - bits;
            *e = (((raw << shift) as i64) >> shift) as i32;
        }
        blocks.push(MxOpalBlock { scale_offset, outliers, elements });
        remaining -= this_len;
    }

    Ok(MxOpalTensor::from_parts(global_scale, blocks, bits, k, len))
}

/// Quantizes, packs, unpacks and dequantizes in one call — the full wire
/// round trip.
///
/// # Errors
///
/// Propagates quantizer configuration errors (the pack/unpack round trip
/// itself cannot fail on a freshly encoded tensor).
pub fn roundtrip_through_wire(
    q: &MxOpalQuantizer,
    x: &[f32],
) -> Result<(Vec<u8>, Vec<f32>), QuantError> {
    let t = q.quantize(x);
    let bytes = pack(&t);
    // tidy: allow(panic) -- pack() output always satisfies unpack()'s format checks
    let back = unpack(&bytes).expect("self-produced stream is valid");
    Ok((bytes, back.dequantize()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Quantizer;
    use opal_tensor::rng::TensorRng;

    fn sample(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::seed(seed);
        let ch = rng.distinct_indices(len, (len / 90).max(1));
        rng.outlier_vector(len, 1.0, &ch, 30.0)
    }

    #[test]
    fn roundtrip_is_lossless_over_the_wire() {
        for bits in [3u32, 4, 5, 7] {
            let q = MxOpalQuantizer::new(bits, 128, 4).unwrap();
            let x = sample(512, u64::from(bits));
            let direct = q.quantize_dequantize(&x);
            let (_, wire) = roundtrip_through_wire(&q, &x).unwrap();
            assert_eq!(direct, wire, "bits={bits}");
        }
    }

    #[test]
    fn packed_size_matches_accounting() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let x = sample(128 * 8, 5);
        let t = q.quantize(&x);
        let bytes = pack(&t);
        // Payload = storage_bits minus the 8-bit global scale (held in the
        // header) plus the per-block 8-bit outlier-count fields, plus the
        // header, rounded up to bytes.
        let payload_bits = t.storage_bits() - 8 + 8 * t.blocks.len();
        let expect_bits = HEADER_BITS + payload_bits;
        assert_eq!(bytes.len(), expect_bits.div_ceil(8));
    }

    #[test]
    fn partial_tail_block_roundtrips() {
        let q = MxOpalQuantizer::new(5, 64, 2).unwrap();
        let x = sample(150, 9); // 2 full blocks + 22-element tail
        let direct = q.quantize_dequantize(&x);
        let (_, wire) = roundtrip_through_wire(&q, &x).unwrap();
        assert_eq!(direct, wire);
    }

    #[test]
    fn negative_elements_sign_extend() {
        let q = MxOpalQuantizer::new(3, 16, 1).unwrap();
        let x: Vec<f32> = (0..16).map(|i| if i % 2 == 0 { -1.0 } else { 1.0 } * i as f32).collect();
        let direct = q.quantize_dequantize(&x);
        let (_, wire) = roundtrip_through_wire(&q, &x).unwrap();
        assert_eq!(direct, wire);
        assert!(wire.iter().any(|&v| v < 0.0), "negatives survive the wire");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let t = q.quantize(&sample(256, 2));
        let bytes = pack(&t);
        for cut in [0usize, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(unpack(&bytes[..cut]), Err(UnpackError::Truncated)));
        }
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let mut bytes = pack(&q.quantize(&sample(128, 3)));
        bytes[0] = 1; // element bits = 1: invalid
        assert!(matches!(unpack(&bytes), Err(UnpackError::BadHeader(_))));
    }

    #[test]
    fn empty_tensor_roundtrips() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let t = q.quantize(&[]);
        let bytes = pack(&t);
        let back = unpack(&bytes).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.dequantize().is_empty());
    }

    #[test]
    fn compression_ratio_vs_f32() {
        let q = MxOpalQuantizer::new(4, 128, 4).unwrap();
        let x = sample(4096, 7);
        let (bytes, _) = roundtrip_through_wire(&q, &x).unwrap();
        let ratio = (x.len() * 4) as f64 / bytes.len() as f64;
        // ~4.6 effective bits per element -> ~6.9x smaller than f32.
        assert!((6.0..7.5).contains(&ratio), "compression ratio {ratio}");
    }
}
