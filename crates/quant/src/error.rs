//! Error type for quantizer construction.

use std::error::Error;
use std::fmt;

/// Errors returned when configuring a quantizer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum QuantError {
    /// The element bit-width is outside the supported `2..=8` range.
    InvalidBits {
        /// The rejected bit-width.
        bits: u32,
    },
    /// The block size must be at least 1.
    InvalidBlockSize {
        /// The rejected block size.
        block_size: usize,
    },
    /// Preserving `outliers` elements in blocks of `block_size` leaves no
    /// room for the (n+1)-th element that defines the shared scale.
    TooManyOutliers {
        /// Requested preserved-outlier count.
        outliers: usize,
        /// Block size it was requested for.
        block_size: usize,
    },
    /// The outlier fraction for weight quantization must be in `[0, 0.5)`.
    InvalidOutlierFraction {
        /// The rejected fraction.
        fraction: f32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBits { bits } => {
                write!(f, "element bit-width {bits} is outside the supported range 2..=8")
            }
            QuantError::InvalidBlockSize { block_size } => {
                write!(f, "block size {block_size} must be at least 1")
            }
            QuantError::TooManyOutliers { outliers, block_size } => {
                write!(f, "cannot preserve {outliers} outliers in blocks of {block_size} elements")
            }
            QuantError::InvalidOutlierFraction { fraction } => {
                write!(f, "outlier fraction {fraction} must be in [0, 0.5)")
            }
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = QuantError::InvalidBits { bits: 9 };
        assert!(e.to_string().contains('9'));
        let e = QuantError::TooManyOutliers { outliers: 128, block_size: 128 };
        assert!(e.to_string().contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<QuantError>();
    }
}
