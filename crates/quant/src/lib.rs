//! Quantizers for the OPAL reproduction.
//!
//! This crate implements the three activation quantizers compared throughout
//! the paper plus the OWQ-style weight quantizer:
//!
//! * [`MinMaxQuantizer`] — the conventional dynamic integer quantizer
//!   (ZeroQuant-style): per-group min/max extraction, FP scale division.
//! * [`MxIntQuantizer`] — the original microscaling integer format
//!   (MXINT / block floating point): one shared exponent per block, elements
//!   quantized by mantissa shifts.
//! * [`MxOpalQuantizer`] — the paper's contribution: MXINT with the top-`n`
//!   outliers of each block preserved in bfloat16 and the shared scale taken
//!   from the (n+1)-th largest element, encoded as a tensor-wise global
//!   exponent plus a 4-bit per-block offset (Fig. 2(c), §3).
//! * [`OwqQuantizer`] — outlier-aware weight quantization: the most
//!   activation-sensitive input channels stay in bfloat16, the rest are
//!   INT3/INT4 (§2.1, used for all weights in the OPAL evaluation).
//!
//! All activation quantizers implement the [`Quantizer`] trait, whose
//! `quantize_dequantize` models the numerical effect of running the format
//! on hardware (integer compute + single rescale ≡ dequantized f32 compute).
//!
//! # Example
//!
//! ```
//! use opal_quant::{MxOpalQuantizer, Quantizer};
//!
//! let q = MxOpalQuantizer::new(4, 128, 4)?;
//! let mut x = vec![0.01f32; 128];
//! x[7] = 40.0; // an outlier
//! let y = q.quantize_dequantize(&x);
//! assert_eq!(y[7], 40.0); // outlier preserved exactly (it is a bf16 value)
//! # Ok::<(), opal_quant::QuantError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
mod minmax;
pub mod mxfp;
mod mxint;
mod mxopal;
pub mod overhead;
mod owq;
pub mod packing;

pub use error::QuantError;
pub use minmax::MinMaxQuantizer;
pub use mxint::{MxIntBlock, MxIntQuantizer};
pub use mxopal::{EncodeScratch, MxOpalBlock, MxOpalQuantizer, MxOpalTensor};
pub use owq::{OwqQuantizer, OwqWeights};

/// A lossy numeric format: quantize a slice and reconstruct it.
///
/// The round trip is the *fake quantization* used for accuracy studies: it
/// produces exactly the values the hardware datapath would compute with
/// (integer elements × power-of-two scales, plus preserved outliers).
pub trait Quantizer {
    /// Quantizes `x` and immediately reconstructs real values.
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32>;

    /// As [`Quantizer::quantize_dequantize`], writing the reconstruction
    /// into a caller-provided slice.
    ///
    /// The default implementation round-trips through the allocating API;
    /// block-local formats override it with a genuinely allocation-free
    /// path for the token decode loop. Either way the values are identical.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.len()`.
    fn quantize_dequantize_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), x.len(), "output length mismatch");
        out.copy_from_slice(&self.quantize_dequantize(x));
    }

    /// As [`Quantizer::quantize_dequantize_into`], reusing a caller-owned
    /// [`EncodeScratch`] workspace.
    ///
    /// Block-local formats (MinMax, MXINT) are already allocation-free
    /// through `quantize_dequantize_into` and ignore the workspace — the
    /// default implementation simply delegates. Tensor-global encoders
    /// (MX-OPAL, whose per-block plans depend on a tensor-wide scale)
    /// override this to stage those plans in `scratch`, making the token
    /// decode loop allocation-free for every format. Values are identical
    /// to the allocating API either way.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.len()`.
    fn quantize_dequantize_scratch(&self, x: &[f32], out: &mut [f32], scratch: &mut EncodeScratch) {
        let _ = scratch;
        self.quantize_dequantize_into(x, out);
    }

    /// Quantizes every `width`-wide row of a flat row-major block through
    /// one shared [`EncodeScratch`], row `i` of `x` landing in row `i` of
    /// `out`.
    ///
    /// This is the chunked-prefill entry point: a fused layer pass
    /// quantizes a whole block of token positions (post-norm activations,
    /// the K/V rows entering the cache, FFN activations) in one call, and
    /// reusing the workspace across the rows keeps the quantized prefill
    /// allocation-free exactly like the single-token decode loop. Each row
    /// is the unmodified [`Quantizer::quantize_dequantize_scratch`] kernel,
    /// so the values are bit-identical to quantizing the rows one call at a
    /// time — the scratch carries no state between rows, only capacity.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, or `x.len()`/`out.len()` differ or are not
    /// multiples of `width`.
    fn quantize_dequantize_block_scratch(
        &self,
        x: &[f32],
        width: usize,
        out: &mut [f32],
        scratch: &mut EncodeScratch,
    ) {
        assert!(width > 0, "row width must be positive");
        assert_eq!(x.len(), out.len(), "output length mismatch");
        assert!(x.len().is_multiple_of(width), "block not a whole number of rows");
        for (xi, oi) in x.chunks_exact(width).zip(out.chunks_exact_mut(width)) {
            self.quantize_dequantize_scratch(xi, oi, scratch);
        }
    }

    /// Short human-readable name for reports ("MXINT4", "MX-OPAL3", …).
    fn name(&self) -> String;

    /// Total storage footprint in bits for a tensor of `len` elements,
    /// including scales, offsets and preserved outliers.
    fn storage_bits(&self, len: usize) -> usize;
}

/// Applies a [`Quantizer`] row-wise to a matrix (each row is quantized
/// independently, matching per-token activation quantization).
pub fn quantize_matrix_rows(q: &dyn Quantizer, m: &opal_tensor::Matrix) -> opal_tensor::Matrix {
    let mut out = opal_tensor::Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let dq = q.quantize_dequantize(m.row(r));
        out.row_mut(r).copy_from_slice(&dq);
    }
    out
}
