//! MXINT: the original microscaling integer format (block floating point).

use opal_numerics::{shift_dequantize, shift_quantize, Bf16, Rounding};

use crate::{QuantError, Quantizer};

/// One encoded MXINT block: a shared scale exponent and the integer
/// elements, exactly the layout of Fig. 2(b).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MxIntBlock {
    /// Shared scale as an unbiased exponent (`None` for an all-zero block).
    pub scale: Option<i32>,
    /// Signed integer elements in `[-(2^(b-1)-1), 2^(b-1)-1]`.
    pub elements: Vec<i32>,
}

/// The MXINT-`b` quantizer [Rouhani et al., "Microscaling Data Formats for
/// Deep Learning"]: `block_size` elements share the exponent of the
/// largest-magnitude member; each element keeps `bits` of sign+mantissa,
/// produced by a right shift of its bfloat16 significand.
///
/// This is the format the paper shows failing on LLM activations (Fig. 3(c)):
/// a single outlier pushes the shared scale up and shifts every other
/// element toward zero.
///
/// # Example
///
/// ```
/// use opal_quant::{MxIntQuantizer, Quantizer};
///
/// let q = MxIntQuantizer::new(8, 32)?;
/// let x = vec![1.0f32; 32];
/// assert_eq!(q.quantize_dequantize(&x), x);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MxIntQuantizer {
    bits: u32,
    block_size: usize,
    rounding: Rounding,
}

impl MxIntQuantizer {
    /// Creates an MXINT quantizer with `bits`-bit elements over blocks of
    /// `block_size`, rounding to nearest (the accuracy reference).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] or [`QuantError::InvalidBlockSize`]
    /// for out-of-range parameters.
    pub fn new(bits: u32, block_size: usize) -> Result<Self, QuantError> {
        Self::with_rounding(bits, block_size, Rounding::NearestEven)
    }

    /// Creates an MXINT quantizer with an explicit [`Rounding`] mode;
    /// `Rounding::Truncate` models the bare-shifter hardware of Fig. 2(b).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] or [`QuantError::InvalidBlockSize`]
    /// for out-of-range parameters.
    pub fn with_rounding(
        bits: u32,
        block_size: usize,
        rounding: Rounding,
    ) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidBits { bits });
        }
        if block_size == 0 {
            return Err(QuantError::InvalidBlockSize { block_size });
        }
        Ok(MxIntQuantizer { bits, block_size, rounding })
    }

    /// The element bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The block size `k`.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The rounding mode of the shift datapath.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Encodes one block (up to `block_size` values) into its shared scale
    /// and integer elements.
    pub fn encode_block(&self, x: &[f32]) -> MxIntBlock {
        let bf: Vec<Bf16> = x.iter().map(|&v| Bf16::from_f32(v)).collect();
        let scale = opal_numerics::shift::max_exponent(&bf);
        let elements = match scale {
            Some(s) => bf.iter().map(|&v| shift_quantize(v, s, self.bits, self.rounding)).collect(),
            None => vec![0; x.len()],
        };
        MxIntBlock { scale, elements }
    }

    /// Decodes a block back to real values.
    pub fn decode_block(&self, block: &MxIntBlock) -> Vec<f32> {
        match block.scale {
            Some(s) => block.elements.iter().map(|&q| shift_dequantize(q, s, self.bits)).collect(),
            None => vec![0.0; block.elements.len()],
        }
    }

    /// Encodes one row into caller-owned packed page arrays — the KV-cache
    /// storage form of the streaming
    /// [`Quantizer::quantize_dequantize_into`] override. Block `b` of
    /// `block_size` elements gets integer codes and one shared scale in
    /// `scales[b]`; an all-zero/subnormal block stores scale `0` with all
    /// codes `0`, which decodes to `0.0` exactly like the streaming path's
    /// `fill(0.0)`.
    ///
    /// MXINT is block-local (no tensor-global pass), so no scratch is
    /// needed and the encode is allocation-free by construction.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != x.len()` or `scales` does not hold one
    /// entry per block.
    pub fn encode_row(&self, x: &[f32], codes: &mut [i8], scales: &mut [i16]) {
        assert_eq!(codes.len(), x.len(), "code length mismatch");
        assert_eq!(scales.len(), x.len().div_ceil(self.block_size), "scale length mismatch");
        for ((xb, cb), sc) in
            x.chunks(self.block_size).zip(codes.chunks_mut(self.block_size)).zip(scales.iter_mut())
        {
            let scale = xb
                .iter()
                .map(|&v| Bf16::from_f32(v))
                .filter(|v| !v.is_zero() && !v.is_subnormal())
                .map(|v| v.unbiased_exponent())
                .max();
            match scale {
                Some(s) => {
                    *sc = s as i16;
                    for (c, &v) in cb.iter_mut().zip(xb) {
                        // |q| <= 2^(bits-1)-1 <= 127 for bits <= 8.
                        *c = shift_quantize(Bf16::from_f32(v), s, self.bits, self.rounding) as i8;
                    }
                }
                None => {
                    *sc = 0;
                    cb.fill(0);
                }
            }
        }
    }

    /// Decodes a row encoded by [`MxIntQuantizer::encode_row`], bit-for-bit
    /// equal to the streaming round trip for the same input.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths disagree with the block geometry.
    pub fn decode_row(&self, codes: &[i8], scales: &[i16], out: &mut [f32]) {
        assert_eq!(out.len(), codes.len(), "output length mismatch");
        assert_eq!(scales.len(), codes.len().div_ceil(self.block_size), "scale length mismatch");
        for ((cb, ob), &sc) in
            codes.chunks(self.block_size).zip(out.chunks_mut(self.block_size)).zip(scales.iter())
        {
            let step = opal_numerics::shift::step_size(i32::from(sc), self.bits);
            for (o, &c) in ob.iter_mut().zip(cb) {
                *o = f32::from(c) * step;
            }
        }
    }
}

impl Quantizer for MxIntQuantizer {
    /// Round-trips through [`MxIntQuantizer::encode_block`] /
    /// [`MxIntQuantizer::decode_block`] — the allocating specification the
    /// streaming [`Quantizer::quantize_dequantize_into`] override is
    /// property-tested against.
    fn quantize_dequantize(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(x.len());
        for chunk in x.chunks(self.block_size) {
            let block = self.encode_block(chunk);
            out.extend(self.decode_block(&block));
        }
        out
    }

    fn quantize_dequantize_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), x.len(), "output length mismatch");
        for (xb, ob) in x.chunks(self.block_size).zip(out.chunks_mut(self.block_size)) {
            // Streaming form of encode_block/decode_block: the shared scale
            // is the max exponent over the block's bf16 images (the
            // `shift::max_exponent` rule, evaluated without materializing
            // the bf16 buffer), then each element round-trips through the
            // shift datapath. Equivalence to the block API is pinned by
            // `tests/proptests.rs`.
            let scale = xb
                .iter()
                .map(|&v| Bf16::from_f32(v))
                .filter(|v| !v.is_zero() && !v.is_subnormal())
                .map(|v| v.unbiased_exponent())
                .max();
            match scale {
                Some(s) => {
                    for (o, &v) in ob.iter_mut().zip(xb) {
                        let q = shift_quantize(Bf16::from_f32(v), s, self.bits, self.rounding);
                        *o = shift_dequantize(q, s, self.bits);
                    }
                }
                None => ob.fill(0.0),
            }
        }
    }

    fn name(&self) -> String {
        format!("MXINT{}", self.bits)
    }

    fn storage_bits(&self, len: usize) -> usize {
        let blocks = len.div_ceil(self.block_size);
        // b bits per element + 8-bit shared exponent per block (E8M0 scale,
        // as in the OCP MX spec and the denominator of the paper's Eq. (1)).
        len * self.bits as usize + blocks * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_tensor::stats::mse;

    #[test]
    fn exact_on_powers_of_two() {
        let q = MxIntQuantizer::new(4, 8).unwrap();
        // Shared scale 2 (max |x| = 4), 4-bit step = 2^0 = 1: integers in
        // [-7, 7] are exactly representable.
        let x = [4.0f32, 2.0, 1.0, -4.0, -2.0, 3.0, 0.0, 1.0];
        assert_eq!(q.quantize_dequantize(&x), x);
    }

    #[test]
    fn uniform_block_is_near_exact_at_8_bits() {
        let q = MxIntQuantizer::new(8, 128).unwrap();
        let x: Vec<f32> = (0..128).map(|i| (i as f32 - 64.0) / 17.0).collect();
        let y = q.quantize_dequantize(&x);
        // Max exponent here is 1 (|x|max≈3.76): step = 2^(1-6) = 1/32, so
        // the shift error is ≤ 1/64; the input is first taken to bf16
        // (7 mantissa bits), adding up to 2^(1-8) = 1/128 more.
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() <= 1.0 / 64.0 + 1.0 / 128.0 + 1e-6);
        }
    }

    #[test]
    fn outlier_destroys_small_values() {
        // Fig. 3(c): the outlier sets the scale and everything small
        // collapses. With b=2 (1 magnitude bit) all small values -> 0.
        let q = MxIntQuantizer::new(2, 128).unwrap();
        let mut x = vec![0.05f32; 128];
        x[0] = 32.0;
        let y = q.quantize_dequantize(&x);
        assert_eq!(y[0], 32.0);
        for &v in &y[1..] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn scale_is_max_exponent() {
        let q = MxIntQuantizer::new(4, 4).unwrap();
        let b = q.encode_block(&[0.3, -5.0, 1.0, 0.0]);
        assert_eq!(b.scale, Some(2)); // -5.0 = -1.25*2^2
    }

    #[test]
    fn all_zero_block() {
        let q = MxIntQuantizer::new(4, 4).unwrap();
        let b = q.encode_block(&[0.0; 4]);
        assert_eq!(b.scale, None);
        assert_eq!(q.decode_block(&b), vec![0.0; 4]);
    }

    #[test]
    fn truncation_has_no_lower_error_than_rne() {
        let rne = MxIntQuantizer::new(4, 64).unwrap();
        let trunc = MxIntQuantizer::with_rounding(4, 64, Rounding::Truncate).unwrap();
        let x: Vec<f32> = (0..64).map(|i| ((i * 73) % 97) as f32 * 0.11 - 5.0).collect();
        let e_rne = mse(&x, &rne.quantize_dequantize(&x));
        let e_trunc = mse(&x, &trunc.quantize_dequantize(&x));
        assert!(e_rne <= e_trunc, "rne {e_rne} trunc {e_trunc}");
    }

    #[test]
    fn partial_final_block() {
        let q = MxIntQuantizer::new(5, 8).unwrap();
        let x: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let y = q.quantize_dequantize(&x);
        assert_eq!(y.len(), 13);
    }

    #[test]
    fn storage_accounting_matches_eq1_denominator() {
        // Eq. (1) denominator: k*b + 8 per block.
        let q = MxIntQuantizer::new(8, 128).unwrap();
        assert_eq!(q.storage_bits(128), 128 * 8 + 8);
    }

    #[test]
    fn quantized_values_are_on_grid() {
        let q = MxIntQuantizer::new(4, 16).unwrap();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let block = q.encode_block(&x);
        let s = block.scale.unwrap();
        for &e in &block.elements {
            assert!(e.abs() <= 7, "4-bit range respected");
        }
        let y = q.decode_block(&block);
        let step = opal_numerics::shift::step_size(s, 4);
        for v in y {
            let ratio = v / step;
            assert!((ratio - ratio.round()).abs() < 1e-6);
        }
    }
}
