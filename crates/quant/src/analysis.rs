//! Quantization-error analysis helpers behind Fig. 3 and Fig. 4.

use opal_numerics::Rounding;
use opal_tensor::stats::mse;

use crate::{MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, QuantError, Quantizer};

/// MSE of a quantizer on a tensor.
pub fn quantization_mse(q: &dyn Quantizer, x: &[f32]) -> f64 {
    mse(x, &q.quantize_dequantize(x))
}

/// One row of the Fig. 4 study: the MSE of every compared format on a single
/// activation tensor, normalized to the MinMax baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct RelativeMseRow {
    /// Label of the activation tensor (e.g. `"query"`).
    pub label: String,
    /// MinMax baseline MSE (absolute).
    pub minmax_mse: f64,
    /// MXINT MSE relative to MinMax.
    pub mxint_rel: f64,
    /// MX-OPAL MSE relative to MinMax, for each preserved-outlier count
    /// requested (same order as the `outlier_counts` argument).
    pub mxopal_rel: Vec<f64>,
}

/// Computes the Fig. 4 relative-MSE comparison for one labelled tensor.
///
/// `bits` is the shared element width (8 for Fig. 4(a), 4 for Fig. 4(b)),
/// `block` the microscaling block size (128 in the paper), and
/// `outlier_counts` the MX-OPAL `n` values to sweep (1, 2, 4, 8).
///
/// Uses round-to-nearest shifts (one extra adder in hardware), which is
/// what reproduces the paper's "n = 4 reaches MinMax parity" observation;
/// see [`relative_mse_row_with_rounding`] to study the bare truncating
/// shifter of Fig. 2(b).
///
/// # Errors
///
/// Propagates configuration errors from the underlying quantizers.
pub fn relative_mse_row(
    label: &str,
    x: &[f32],
    bits: u32,
    block: usize,
    outlier_counts: &[usize],
) -> Result<RelativeMseRow, QuantError> {
    relative_mse_row_with_rounding(label, x, bits, block, outlier_counts, Rounding::NearestEven)
}

/// As [`relative_mse_row`] with an explicit shift-rounding mode for the
/// microscaling formats (MinMax always uses its FP divide-and-round path).
///
/// # Errors
///
/// Propagates configuration errors from the underlying quantizers.
pub fn relative_mse_row_with_rounding(
    label: &str,
    x: &[f32],
    bits: u32,
    block: usize,
    outlier_counts: &[usize],
    rounding: Rounding,
) -> Result<RelativeMseRow, QuantError> {
    let minmax = MinMaxQuantizer::new(bits, block)?;
    let mxint = MxIntQuantizer::with_rounding(bits, block, rounding)?;
    let base = quantization_mse(&minmax, x).max(f64::MIN_POSITIVE);
    let mxint_rel = quantization_mse(&mxint, x) / base;
    let mut mxopal_rel = Vec::with_capacity(outlier_counts.len());
    for &n in outlier_counts {
        let q = MxOpalQuantizer::with_rounding(bits, block, n, rounding)?;
        mxopal_rel.push(quantization_mse(&q, x) / base);
    }
    Ok(RelativeMseRow { label: label.to_owned(), minmax_mse: base, mxint_rel, mxopal_rel })
}

/// Average of relative MSEs across rows (the "Avg." column of Fig. 4).
///
/// Returns `(mxint_avg, mxopal_avgs)`; `mxopal_avgs[i]` averages the i-th
/// outlier count across rows.
///
/// # Panics
///
/// Panics if `rows` is empty or rows have inconsistent sweep lengths.
pub fn average_rows(rows: &[RelativeMseRow]) -> (f64, Vec<f64>) {
    assert!(!rows.is_empty(), "no rows to average");
    let n_sweep = rows[0].mxopal_rel.len();
    let mut mxint = 0.0;
    let mut mxopal = vec![0.0; n_sweep];
    for row in rows {
        assert_eq!(row.mxopal_rel.len(), n_sweep, "inconsistent sweep lengths");
        mxint += row.mxint_rel;
        for (acc, v) in mxopal.iter_mut().zip(&row.mxopal_rel) {
            *acc += v;
        }
    }
    let k = rows.len() as f64;
    (mxint / k, mxopal.into_iter().map(|v| v / k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_tensor::rng::TensorRng;

    fn outlier_tensor(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = TensorRng::seed(seed);
        let channels = rng.distinct_indices(len, len / 100 + 1);
        rng.outlier_vector(len, 1.0, &channels, 60.0)
    }

    #[test]
    fn mxopal_relative_error_decreases_with_n() {
        let x = outlier_tensor(1024, 3);
        let row = relative_mse_row("t", &x, 4, 128, &[1, 2, 4, 8]).unwrap();
        for w in row.mxopal_rel.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "monotone-ish decrease: {:?}", row.mxopal_rel);
        }
        assert!(row.mxint_rel > row.mxopal_rel[2], "MXINT worse than n=4");
    }

    #[test]
    fn n4_reaches_baseline_parity() {
        // The paper: "quantization error becomes similar to the baseline …
        // when four outliers among 128 elements are preserved."
        let x = outlier_tensor(4096, 9);
        let row = relative_mse_row("t", &x, 8, 128, &[4]).unwrap();
        assert!(row.mxopal_rel[0] < 2.0, "n=4 near MinMax parity: {}", row.mxopal_rel[0]);
    }

    #[test]
    fn averages() {
        let x1 = outlier_tensor(512, 1);
        let x2 = outlier_tensor(512, 2);
        let r1 = relative_mse_row("a", &x1, 4, 128, &[1, 4]).unwrap();
        let r2 = relative_mse_row("b", &x2, 4, 128, &[1, 4]).unwrap();
        let (mi, mo) = average_rows(&[r1.clone(), r2.clone()]);
        assert!((mi - (r1.mxint_rel + r2.mxint_rel) / 2.0).abs() < 1e-12);
        assert_eq!(mo.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn average_of_nothing_panics() {
        average_rows(&[]);
    }
}
