//! Property-based tests of the quantizer invariants.

use opal_numerics::Rounding;
use opal_quant::{EncodeScratch, MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, Quantizer};
use opal_tensor::stats::{min_max, mse};
use proptest::prelude::*;

/// Random activation blocks, optionally with injected outliers.
fn block(len: usize) -> impl Strategy<Value = Vec<f32>> {
    (
        proptest::collection::vec(-4.0f32..4.0, len),
        proptest::collection::vec((0..len, -500.0f32..500.0), 0..4),
    )
        .prop_map(|(mut v, outliers)| {
            for (i, o) in outliers {
                v[i] = o;
            }
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantize_dequantize_into_matches_allocating_api(x in block(96), bits in 2u32..=8) {
        // The in-place fast paths of the decode loop must reproduce the
        // allocating APIs exactly, including the odd-sized final block.
        // For MXINT this is a real cross-implementation check: the
        // allocating side composes encode_block/decode_block while the
        // `_into` override is an independent streaming rewrite of the same
        // spec (for MinMax/MxOpal the allocating API delegates, so the
        // comparison only smoke-tests the wrapper).
        let quantizers: [Box<dyn Quantizer>; 3] = [
            Box::new(MinMaxQuantizer::new(bits, 32).unwrap()),
            Box::new(MxIntQuantizer::new(bits, 32).unwrap()),
            Box::new(MxOpalQuantizer::new(bits.min(6), 32, 2).unwrap()),
        ];
        for q in &quantizers {
            for len in [1usize, 31, 32, 33, 96] {
                let mut out = vec![0.0f32; len];
                q.quantize_dequantize_into(&x[..len], &mut out);
                let reference = q.quantize_dequantize(&x[..len]);
                prop_assert_eq!(&out, &reference, "{} len {}", q.name(), len);
            }
        }
    }

    #[test]
    fn mxopal_scratch_path_is_bit_identical_to_allocating(
        x in block(300),
        bits in 2u32..=8,
        block_size in 1usize..40,
        n in 0usize..8,
        truncate in 0u32..2,
    ) {
        // The fused two-pass encoder behind `quantize_dequantize_scratch`
        // (and the MX-OPAL `quantize_dequantize_into` override) is an
        // independent rewrite of the tensor-global spec: same outlier
        // selection under stable tie-breaks, same (n+1)-th-magnitude block
        // scales, same 4-bit global-offset clamp. Compare raw f32 bits so
        // even a -0.0/0.0 divergence would fail. The scratch workspace is
        // deliberately reused across every length and configuration to
        // prove it carries no state between calls.
        let rounding = if truncate == 1 { Rounding::Truncate } else { Rounding::NearestEven };
        let n = n.min(block_size - 1);
        let q = MxOpalQuantizer::with_rounding(bits, block_size, n, rounding).unwrap();
        let mut scratch = EncodeScratch::new();
        for len in [0usize, 1, block_size, block_size + 1, 2 * block_size + 1, 300] {
            let len = len.min(x.len());
            let spec = q.quantize_dequantize(&x[..len]);
            let mut fused = vec![f32::NAN; len];
            q.quantize_dequantize_scratch(&x[..len], &mut fused, &mut scratch);
            let mut into = vec![f32::NAN; len];
            q.quantize_dequantize_into(&x[..len], &mut into);
            let spec_bits: Vec<u32> = spec.iter().map(|v| v.to_bits()).collect();
            let fused_bits: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
            let into_bits: Vec<u32> = into.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&spec_bits, &fused_bits, "scratch path diverged, len {}", len);
            prop_assert_eq!(&spec_bits, &into_bits, "into path diverged, len {}", len);
        }
    }

    #[test]
    fn scratch_trait_path_matches_allocating_for_all_formats(
        x in block(96),
        bits in 2u32..=8,
    ) {
        // Formats without an override fall through to
        // `quantize_dequantize_into`; every implementation must agree with
        // the allocating API through the scratch entry point the decode
        // loop actually calls.
        let quantizers: [Box<dyn Quantizer>; 3] = [
            Box::new(MinMaxQuantizer::new(bits, 32).unwrap()),
            Box::new(MxIntQuantizer::new(bits, 32).unwrap()),
            Box::new(MxOpalQuantizer::new(bits, 32, 2).unwrap()),
        ];
        let mut scratch = EncodeScratch::new();
        for q in &quantizers {
            let mut out = vec![0.0f32; x.len()];
            q.quantize_dequantize_scratch(&x, &mut out, &mut scratch);
            prop_assert_eq!(&out, &q.quantize_dequantize(&x), "{}", q.name());
        }
    }

    #[test]
    fn block_scratch_rows_match_per_row_calls(
        x in block(96),
        bits in 2u32..=8,
        width_sel in 0usize..3,
    ) {
        // The chunked-prefill entry point: quantizing a whole block of
        // token rows through one shared scratch must reproduce the per-row
        // scratch calls bit-for-bit (the workspace carries capacity, never
        // state) for every format family.
        let width = [8usize, 24, 96][width_sel];
        let quantizers: [Box<dyn Quantizer>; 3] = [
            Box::new(MinMaxQuantizer::new(bits, 32).unwrap()),
            Box::new(MxIntQuantizer::new(bits, 32).unwrap()),
            Box::new(MxOpalQuantizer::new(bits, 16, 2).unwrap()),
        ];
        let mut scratch = EncodeScratch::new();
        for q in &quantizers {
            let mut fused = vec![0.0f32; x.len()];
            q.quantize_dequantize_block_scratch(&x, width, &mut fused, &mut scratch);
            let mut by_row = vec![0.0f32; x.len()];
            let mut row_scratch = EncodeScratch::new();
            for (xi, oi) in x.chunks_exact(width).zip(by_row.chunks_exact_mut(width)) {
                q.quantize_dequantize_scratch(xi, oi, &mut row_scratch);
            }
            prop_assert_eq!(&fused, &by_row, "{} width {}", q.name(), width);
        }
    }

    #[test]
    fn mxint_streaming_into_matches_block_api(x in block(96), bits in 2u32..=8) {
        // Belt and braces for the streaming MXINT rewrite: compare it
        // directly against the explicit block encode/decode composition.
        let q = MxIntQuantizer::new(bits, 32).unwrap();
        let mut out = vec![0.0f32; x.len()];
        q.quantize_dequantize_into(&x, &mut out);
        let mut reference = Vec::with_capacity(x.len());
        for chunk in x.chunks(32) {
            reference.extend(q.decode_block(&q.encode_block(chunk)));
        }
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn minmax_reconstruction_stays_in_range(x in block(128), bits in 2u32..=8) {
        let q = MinMaxQuantizer::new(bits, 128).unwrap();
        let y = q.quantize_dequantize(&x);
        let (lo, hi) = min_max(&x).unwrap();
        for v in y {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn minmax_error_bounded_by_half_step(x in block(64), bits in 3u32..=8) {
        let q = MinMaxQuantizer::new(bits, 64).unwrap();
        let y = q.quantize_dequantize(&x);
        let (lo, hi) = min_max(&x).unwrap();
        let step = f64::from(hi - lo) / ((1u32 << bits) - 1) as f64;
        for (a, b) in x.iter().zip(&y) {
            prop_assert!(
                f64::from((a - b).abs()) <= step / 2.0 + 1e-4,
                "err {} > step/2 {}", (a - b).abs(), step / 2.0
            );
        }
    }

    #[test]
    fn mxint_never_increases_magnitude_beyond_max(x in block(128), bits in 2u32..=8) {
        let q = MxIntQuantizer::new(bits, 128).unwrap();
        let y = q.quantize_dequantize(&x);
        let max_in = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for v in y {
            // Reconstructions can round up to at most one step above max.
            prop_assert!(v.abs() <= max_in * 1.26 + 1e-6);
        }
    }

    #[test]
    fn mxopal_preserves_top_outliers_exactly(x in block(128), n in 1usize..8) {
        let q = MxOpalQuantizer::new(4, 128, n).unwrap();
        let y = q.quantize_dequantize(&x);
        // The n largest-|bf16| elements reconstruct to their bf16 value.
        let mut idx: Vec<usize> = (0..x.len()).collect();
        idx.sort_by(|&a, &b| {
            opal_numerics::Bf16::from_f32(x[b]).abs_cmp(opal_numerics::Bf16::from_f32(x[a]))
        });
        for &i in &idx[..n] {
            let expect = opal_numerics::Bf16::from_f32(x[i]).to_f32();
            prop_assert_eq!(y[i], expect, "outlier at {} not preserved", i);
        }
    }

    #[test]
    fn mxopal_never_worse_than_mxint_with_outliers(
        x in block(256),
        bits in 3u32..=8,
    ) {
        let mxint = MxIntQuantizer::new(bits, 128).unwrap();
        let mxopal = MxOpalQuantizer::new(bits, 128, 4).unwrap();
        let e_int = mse(&x, &mxint.quantize_dequantize(&x));
        let e_opal = mse(&x, &mxopal.quantize_dequantize(&x));
        // A small tolerance: on outlier-free blocks the two coincide and
        // float noise can tip either way.
        prop_assert!(e_opal <= e_int * 1.001 + 1e-12, "opal {e_opal} vs mxint {e_int}");
    }

    #[test]
    fn qdq_is_idempotent_for_mxint(x in block(128), bits in 2u32..=8) {
        // Quantizing a reconstruction changes nothing: the output is on the
        // format's grid and the shared scale (max exponent) is stable.
        // (MX-OPAL is deliberately excluded: rounding can reorder the
        // magnitude ranking near the outlier threshold, legitimately
        // changing which elements are preserved on a second pass.)
        let q = MxIntQuantizer::new(bits, 128).unwrap();
        let y1 = q.quantize_dequantize(&x);
        let y2 = q.quantize_dequantize(&y1);
        prop_assert_eq!(y1, y2);
    }

    #[test]
    fn packed_size_matches_a_priori_size(
        x in block(300),
        bits in 2u32..=8,
        n in 0usize..6,
    ) {
        let q = MxOpalQuantizer::new(bits, 128, n).unwrap();
        let t = q.quantize(&x);
        prop_assert_eq!(t.storage_bits(), q.storage_bits(x.len()));
    }

    #[test]
    fn length_preserved_by_every_quantizer(x in block(200), bits in 2u32..=8) {
        let quantizers: Vec<Box<dyn Quantizer>> = vec![
            Box::new(MinMaxQuantizer::new(bits, 128).unwrap()),
            Box::new(MxIntQuantizer::new(bits, 128).unwrap()),
            Box::new(MxOpalQuantizer::new(bits, 128, 4).unwrap()),
        ];
        for q in &quantizers {
            prop_assert_eq!(q.quantize_dequantize(&x).len(), x.len());
        }
    }

    #[test]
    fn mxopal_page_row_codec_round_trips_bit_identically(
        x in block(300),
        bits in 2u32..=8,
        block_size in 1usize..40,
        n in 0usize..8,
    ) {
        // The packed-page row codec behind the quantized KV cache:
        // `encode_row_scratch` → `decode_row` must reconstruct exactly what
        // `quantize_dequantize` produces for the same input — the paged
        // attention walk trusts this to score against packed codes without
        // ever materializing the reference reconstruction. Bit compare so
        // signed zeros count, across block sizes and outlier budgets.
        let n = n.min(block_size - 1);
        let q = MxOpalQuantizer::new(bits, block_size, n).unwrap();
        let mut scratch = EncodeScratch::new();
        for len in [1usize, block_size, block_size + 1, 2 * block_size + 1, 300] {
            let len = len.min(x.len());
            let qpr = len.div_ceil(block_size);
            let mut codes = vec![0i8; len];
            let mut scales = vec![0i16; qpr];
            let mut out_idx = vec![0u16; qpr * n];
            let mut out_val = vec![opal_numerics::Bf16::from_f32(0.0); qpr * n];
            let mut out_len = vec![0u8; qpr];
            q.encode_row_scratch(
                &x[..len], &mut codes, &mut scales, &mut out_idx, &mut out_val, &mut out_len,
                &mut scratch,
            );
            let mut decoded = vec![f32::NAN; len];
            q.decode_row(&codes, &scales, &out_idx, &out_val, &out_len, &mut decoded);
            let reference = q.quantize_dequantize(&x[..len]);
            let dec_bits: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&dec_bits, &ref_bits, "page codec diverged, len {}", len);
        }
    }

    #[test]
    fn mxint_page_row_codec_round_trips_bit_identically(
        x in block(300),
        bits in 2u32..=8,
        block_size in 1usize..40,
    ) {
        // The outlier-free page codec: `encode_row` → `decode_row` against
        // the streaming `quantize_dequantize_into` reference.
        let q = MxIntQuantizer::new(bits, block_size).unwrap();
        for len in [1usize, block_size, block_size + 1, 2 * block_size + 1, 300] {
            let len = len.min(x.len());
            let qpr = len.div_ceil(block_size);
            let mut codes = vec![0i8; len];
            let mut scales = vec![0i16; qpr];
            q.encode_row(&x[..len], &mut codes, &mut scales);
            let mut decoded = vec![f32::NAN; len];
            q.decode_row(&codes, &scales, &mut decoded);
            let mut reference = vec![f32::NAN; len];
            q.quantize_dequantize_into(&x[..len], &mut reference);
            let dec_bits: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&dec_bits, &ref_bits, "mxint page codec diverged, len {}", len);
        }
    }

    #[test]
    fn mxopal_page_row_error_bounded_by_half_step_or_saturation(
        x in block(256),
        bits in 3u32..=8,
        n in 0usize..6,
    ) {
        // Per-element reconstruction error of a packed page row: against
        // the bf16 input (the format's domain), every non-outlier position
        // is either within half a quantization step of its block's scale,
        // or its code saturated (the clamped block scale cannot represent
        // it — the magnitude shrinks, never grows).
        let block_size = 32usize;
        let q = MxOpalQuantizer::new(bits, block_size, n).unwrap();
        let mut scratch = EncodeScratch::new();
        let qpr = x.len().div_ceil(block_size);
        let mut codes = vec![0i8; x.len()];
        let mut scales = vec![0i16; qpr];
        let mut out_idx = vec![0u16; qpr * n];
        let mut out_val = vec![opal_numerics::Bf16::from_f32(0.0); qpr * n];
        let mut out_len = vec![0u8; qpr];
        q.encode_row_scratch(
            &x, &mut codes, &mut scales, &mut out_idx, &mut out_val, &mut out_len, &mut scratch,
        );
        let mut decoded = vec![f32::NAN; x.len()];
        q.decode_row(&codes, &scales, &out_idx, &out_val, &out_len, &mut decoded);
        let code_max = ((1i32 << (bits - 1)) - 1) as f64;
        for (i, (&v, &d)) in x.iter().zip(&decoded).enumerate() {
            let b = i / block_size;
            // Outlier slots reconstruct their bf16 value exactly and are
            // checked by `mxopal_preserves_top_outliers_exactly`.
            let slot0 = b * n;
            let is_outlier = (0..usize::from(out_len[b]))
                .any(|s| b * block_size + usize::from(out_idx[slot0 + s]) == i);
            if is_outlier {
                continue;
            }
            let target = f64::from(opal_numerics::Bf16::from_f32(v).to_f32());
            let step = f64::from(opal_numerics::shift::step_size(i32::from(scales[b]), bits));
            let err = (f64::from(d) - target).abs();
            let saturated = i64::from(codes[i]).unsigned_abs() as f64 >= code_max;
            prop_assert!(
                err <= step / 2.0 + 1e-12 || (saturated && d.abs() <= v.abs()),
                "row[{}]: err {} > step/2 {} (code {}, scale {})",
                i, err, step / 2.0, codes[i], scales[b]
            );
        }
    }

    #[test]
    fn zero_maps_to_zero(bits in 2u32..=8, len in 1usize..257) {
        let x = vec![0.0f32; len];
        let quantizers: Vec<Box<dyn Quantizer>> = vec![
            Box::new(MinMaxQuantizer::new(bits, 128).unwrap()),
            Box::new(MxIntQuantizer::new(bits, 128).unwrap()),
            Box::new(MxOpalQuantizer::new(bits, 128, 2).unwrap()),
        ];
        for q in &quantizers {
            prop_assert_eq!(q.quantize_dequantize(&x), x.clone());
        }
    }
}
