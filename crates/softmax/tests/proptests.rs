//! Property-based tests of the softmax approximations.

use opal_softmax::{exact_softmax, weighted_value_sum, Log2Softmax};
use opal_tensor::Matrix;
use proptest::prelude::*;

fn scores() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-12.0f32..12.0, 1..64)
}

proptest! {
    #[test]
    fn exact_softmax_is_a_distribution(s in scores()) {
        let p = exact_softmax(&s);
        let sum: f64 = p.iter().map(|&v| f64::from(v)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(p.iter().all(|&v| (0.0..=1.0f32).contains(&v)));
    }

    #[test]
    fn log2_codes_bounded_and_argmax_preserved(s in scores(), bits in 1u32..=6) {
        let sm = Log2Softmax::new(bits);
        let codes = sm.codes(&s);
        prop_assert_eq!(codes.len(), s.len());
        for &c in &codes {
            prop_assert!(c <= sm.max_code());
        }
        // The highest score always receives the smallest code.
        let best = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let min_code = codes.iter().copied().min().unwrap();
        prop_assert_eq!(codes[best], min_code);
    }

    #[test]
    fn log2_weights_are_powers_of_two_in_unit_interval(s in scores()) {
        let sm = Log2Softmax::new(5);
        for p in sm.probs(&s) {
            prop_assert!(p > 0.0 && p <= 1.0);
            let l = p.log2();
            prop_assert!((l - l.round()).abs() < 1e-6, "{p}");
        }
    }

    #[test]
    fn log2_weight_within_one_octave_of_exact_probability(s in scores()) {
        // |log2(q) - log2(p)| <= ~1.2: half-octave rounding plus the ±1
        // mantissa-comparator approximation, before clipping.
        let sm = Log2Softmax::new(6);
        let exact = exact_softmax(&s);
        let approx = sm.probs(&s);
        for (&p, &q) in exact.iter().zip(&approx) {
            if p > 1e-8 && f64::from(q) > f64::from(opal_numerics::shift::exp2i(-62)) {
                let dl = (f64::from(q).log2() - f64::from(p).log2()).abs();
                // Skip entries clipped at the code ceiling.
                if q > opal_numerics::shift::exp2i(-(i32::from(sm.max_code()))) * 0.99 {
                    prop_assert!(dl <= 2.1, "log2 gap {dl} (p={p}, q={q})");
                }
            }
        }
    }

    #[test]
    fn weighted_value_sum_is_linear(
        w in proptest::collection::vec(0.0f32..1.0, 8),
        scale in 0.1f32..4.0,
    ) {
        let v = Matrix::from_fn(8, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
        let base = weighted_value_sum(&w, &v);
        let scaled_w: Vec<f32> = w.iter().map(|&x| x * scale).collect();
        let scaled = weighted_value_sum(&scaled_w, &v);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!((a * scale - b).abs() < 1e-3, "{} vs {}", a * scale, b);
        }
    }

    #[test]
    fn attn_v_never_exceeds_value_row_bounds_much(s in scores()) {
        // With weights summing to <= len (each <= 1), the output of the
        // shift-accumulate is bounded by sum of |V| rows.
        let sm = Log2Softmax::new(5);
        let n = s.len();
        let v = Matrix::from_fn(n, 2, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        let out = sm.attn_v(&s, &v);
        for o in out {
            prop_assert!(o.abs() <= n as f32 + 1e-3);
        }
    }
}
