//! Hardware-friendly softmax approximations (§4.2 of the OPAL paper).
//!
//! The attention map `softmax(Q·Kᵀ/√dk)` is one of the most
//! hardware-unfriendly operations in an LLM: a conventional unit needs FP
//! dividers. OPAL instead *log2-quantizes* the attention map (Eq. 2) and
//! computes `log2(softmax(·))` directly from the exponent and mantissa
//! fields of `e^{x_i}` and `Σe^{x_i}` with two integer subtractors and one
//! mantissa comparator (Eq. 3). The attention-weighted sum `Attn·V` then
//! reduces to shift-and-accumulate (Fig. 5(e)).
//!
//! This crate provides the exact reference, the bit-exact Eq. (3) datapath,
//! and the error metrics used for the "<0.4 PPL" claim.
//!
//! # Example
//!
//! ```
//! use opal_softmax::Log2Softmax;
//!
//! let sm = Log2Softmax::new(5);
//! let codes = sm.codes(&[1.0, 2.0, 4.0]);
//! // Largest score gets the smallest shift (weight 2^0 = 1).
//! assert_eq!(codes[2], 0);
//! assert!(codes[0] >= codes[1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base2;
mod log2;
pub mod metrics;

pub use base2::Softermax;
pub use log2::Log2Softmax;

use opal_tensor::Matrix;

/// Exact softmax of a score slice (numerically stable reference).
pub fn exact_softmax(scores: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; scores.len()];
    opal_tensor::ops::softmax_into(scores, &mut out);
    out
}

/// Exact attention-weighted value sum: `softmax(scores) · V`, where `V` is
/// `seq_len × d` and `scores` has length `seq_len`.
///
/// # Panics
///
/// Panics if `scores.len() != v.rows()`.
pub fn attn_v_exact(scores: &[f32], v: &Matrix) -> Vec<f32> {
    assert_eq!(scores.len(), v.rows(), "score/value length mismatch");
    let p = exact_softmax(scores);
    weighted_value_sum(&p, v)
}

/// `Σ_j w_j · V_j` for explicit weights.
///
/// # Panics
///
/// Panics if `weights.len() != v.rows()`.
pub fn weighted_value_sum(weights: &[f32], v: &Matrix) -> Vec<f32> {
    assert_eq!(weights.len(), v.rows(), "weight/value length mismatch");
    let mut out = vec![0.0f64; v.cols()];
    for (j, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (o, &x) in out.iter_mut().zip(v.row(j)) {
            *o += f64::from(w) * f64::from(x);
        }
    }
    out.into_iter().map(|x| x as f32).collect()
}
