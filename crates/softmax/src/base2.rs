//! Base-2 softmax baselines: the integer-friendly exponential and a
//! Softermax-style online unit (Stevens et al., DAC'21 — cited by the paper
//! as prior softmax-approximation work).
//!
//! These give the OPAL log2-softmax something to be compared *against*
//! beyond the exact FP unit: Softermax replaces `e^x` with `2^x` and
//! normalizes online; the i-exp path evaluates `2^x` with one shift and a
//! linear fractional correction (no FP transcendentals).

use opal_numerics::shift::exp2i;
use opal_tensor::Matrix;

use crate::weighted_value_sum;

/// Shift-friendly `2^x`: split `x` into integer and fractional parts and
/// approximate `2^f ≈ 1 + f·(0.3431·f + 0.6568)` (max relative error
/// ≈ 0.3 %, a standard quadratic used by integer softmax units).
pub fn exp2_approx(x: f32) -> f32 {
    if x < -126.0 {
        return 0.0;
    }
    if x >= 128.0 {
        return f32::INFINITY;
    }
    let n = x.floor();
    let f = x - n;
    let frac = 1.0 + f * (0.3431 * f + 0.6568);
    frac * exp2i(n as i32)
}

/// A Softermax-style unit: softmax with base 2 instead of base e, computed
/// with a running maximum and running denominator (online normalization).
///
/// `softermax(x)_i = 2^(x_i − max) / Σ_j 2^(x_j − max)`
///
/// The exponent evaluations use [`exp2_approx`], i.e. shifts plus a small
/// multiplier — but unlike OPAL's Eq. (3) unit it still needs a divider for
/// the final normalization, which is where OPAL's area/power win comes
/// from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Softermax;

impl Softermax {
    /// Creates the unit.
    pub fn new() -> Self {
        Softermax
    }

    /// The base-2 probability vector (sums to 1).
    pub fn probs(&self, scores: &[f32]) -> Vec<f32> {
        if scores.is_empty() {
            return Vec::new();
        }
        // Online pass: track running max and rescale the running sum, as
        // the hardware does to keep one pass over the scores.
        let mut running_max = f32::NEG_INFINITY;
        let mut running_sum = 0.0f32;
        for &s in scores {
            if s > running_max {
                running_sum *= exp2_approx(running_max - s);
                running_max = s;
            }
            running_sum += exp2_approx(s - running_max);
        }
        scores.iter().map(|&s| exp2_approx(s - running_max) / running_sum).collect()
    }

    /// `softermax(scores) · V`.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != v.rows()`.
    pub fn attn_v(&self, scores: &[f32], v: &Matrix) -> Vec<f32> {
        let p = self.probs(scores);
        weighted_value_sum(&p, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_softmax;
    use opal_tensor::rng::TensorRng;

    #[test]
    fn exp2_approx_accuracy() {
        for i in -300..=300 {
            let x = i as f32 * 0.05;
            let exact = 2.0f64.powf(f64::from(x)) as f32;
            let got = exp2_approx(x);
            let rel = ((got - exact) / exact).abs();
            assert!(rel < 4e-3, "x={x}: {got} vs {exact} (rel {rel})");
        }
        assert_eq!(exp2_approx(-200.0), 0.0);
        assert!(exp2_approx(200.0).is_infinite());
    }

    #[test]
    fn exp2_exact_on_integers() {
        for e in -10..=10 {
            assert_eq!(exp2_approx(e as f32), 2.0f32.powi(e));
        }
    }

    #[test]
    fn softermax_is_a_distribution() {
        let sm = Softermax::new();
        let p = sm.probs(&[1.0, -2.0, 0.5, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn softermax_sharper_than_softmax_but_same_ranking() {
        // Base-2 tempering: same argmax ordering as exact softmax.
        let scores = [0.2f32, 1.7, -0.4, 0.9];
        let sm = Softermax::new().probs(&scores);
        let ex = exact_softmax(&scores);
        let rank = |p: &[f32]| {
            let mut idx: Vec<usize> = (0..p.len()).collect();
            idx.sort_by(|&a, &b| p[b].total_cmp(&p[a]));
            idx
        };
        assert_eq!(rank(&sm), rank(&ex));
    }

    #[test]
    fn online_pass_matches_two_pass() {
        // The online (running max) computation must equal the naive
        // two-pass base-2 softmax.
        let mut rng = TensorRng::seed(6);
        for _ in 0..20 {
            let scores: Vec<f32> = (0..24).map(|_| rng.normal(0.0, 3.0)).collect();
            let online = Softermax::new().probs(&scores);
            let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let raw: Vec<f32> = scores.iter().map(|&s| exp2_approx(s - max)).collect();
            let sum: f32 = raw.iter().sum();
            // The online rescales compound the ~0.3 % exp2_approx error a
            // few times; probabilities stay within ~1e-3 of the two-pass.
            for (a, b) in online.iter().zip(raw.iter().map(|&r| r / sum)) {
                assert!((a - b).abs() < 2e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_scores() {
        assert!(Softermax::new().probs(&[]).is_empty());
    }
}
