//! The Eq. (3) log2-softmax datapath, bit-exact on bfloat16 fields.

use opal_numerics::shift::exp2i;
use opal_numerics::Bf16;
use opal_tensor::Matrix;

use crate::weighted_value_sum;

/// The log2-based softmax unit of §4.2.
///
/// For scores `x_i`, the unit produces *shift codes*
/// `a_i = clip(−⌈log2(softmax(x)_i)⌋, 0, 2^b − 1)` so the attention weight of
/// token `i` is `2^{−a_i}` and `Attn·V` is a shift-and-accumulate.
///
/// Eq. (3) evaluates `⌈log2(e^{x_i} / Σe^{x_j})⌋` without any FP multiply,
/// divide, or log2 unit: with `e^{x_i} = 2^{E_i}·1.M_i` (bfloat16 fields)
/// and `Σ = 2^{E_Σ}·1.M_Σ`,
///
/// ```text
/// ⌈log2(e^{x_i}/Σ)⌋ = (E_i − E_Σ) + Sign(M_i − M_Σ) ∘ 1_{|M_i − M_Σ| ≥ 0.5}
/// ```
///
/// i.e. an exponent subtractor plus a mantissa comparator: the mantissa
/// correction is −1, 0 or +1 depending on whether the 7-bit mantissa fields
/// differ by at least half (64 integer units). This matches the
/// "Exponent Subtractor / Mantissa Comparator" structure of Fig. 6(c).
///
/// # Example
///
/// ```
/// use opal_softmax::Log2Softmax;
///
/// let sm = Log2Softmax::new(5);
/// let p = sm.probs(&[0.0, 0.0]);
/// // Two equal scores: each weight is 2^-1.
/// assert_eq!(p, vec![0.5, 0.5]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Log2Softmax {
    bits: u32,
}

impl Log2Softmax {
    /// Creates the unit with `bits`-bit shift codes (the paper clips to
    /// `[0, 2^b − 1]`; `b = 5` covers weights down to 2⁻³¹).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 6 (a shift code ≥ 64 would
    /// always underflow any practical accumulator).
    pub fn new(bits: u32) -> Self {
        assert!((1..=6).contains(&bits), "shift-code width must be 1..=6");
        Log2Softmax { bits }
    }

    /// The shift-code bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maximum representable shift code, `2^bits − 1`.
    pub fn max_code(&self) -> u8 {
        ((1u32 << self.bits) - 1) as u8
    }

    /// Computes the shift codes `a_i` for a score row.
    ///
    /// The exponentials are evaluated in f32 (the hardware receives them
    /// from the preceding MxV in bfloat16; we subtract the row max first,
    /// exactly like the hardware's streaming max for overflow safety), then
    /// everything after the exp is the integer-only Eq. (3) path on bf16
    /// fields.
    ///
    /// Returns an empty vector for an empty score row.
    pub fn codes(&self, scores: &[f32]) -> Vec<u8> {
        let mut out = vec![0u8; scores.len()];
        self.codes_into(scores, &mut out);
        out
    }

    /// As [`Log2Softmax::codes`], writing the shift codes into a
    /// caller-provided slice — the allocation-free kernel used by the token
    /// decode hot path.
    ///
    /// The exponentials are evaluated in two streaming passes (once for the
    /// adder-tree sum, once per element) so no intermediate buffer is
    /// needed; both passes produce identical bf16 fields, so the codes are
    /// bit-identical to the allocating API.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != scores.len()`.
    pub fn codes_into(&self, scores: &[f32], out: &mut [u8]) {
        assert_eq!(out.len(), scores.len(), "output length mismatch");
        self.for_each_code(scores, out, |o, code| *o = code);
    }

    /// The approximated attention weights `2^{−a_i}`.
    pub fn probs(&self, scores: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; scores.len()];
        self.probs_into(scores, &mut out);
        out
    }

    /// As [`Log2Softmax::probs`], writing the weights into a caller-provided
    /// slice (allocation-free; see [`Log2Softmax::codes_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != scores.len()`.
    pub fn probs_into(&self, scores: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), scores.len(), "output length mismatch");
        self.for_each_code(scores, out, |o, code| *o = exp2i(-i32::from(code)));
    }

    /// Batched [`Log2Softmax::codes_into`] over the rows of a causal score
    /// matrix: row `r` holds `lens[r]` valid scores (its causal prefix) and
    /// gets its shift codes written to the same prefix of the output row;
    /// the tails of both are ignored. Each row is the exact single-row
    /// kernel, so the codes are bit-identical to `codes_into` per row —
    /// this is the chunked-prefill entry point, where one layer pass scores
    /// a whole block of query positions against the KV cache at once.
    ///
    /// # Panics
    ///
    /// Panics if `lens.len() != scores.rows()`, any `lens[r]` exceeds the
    /// score width, or `out` is shorter than `scores.len()` (row-major,
    /// same stride as `scores`).
    pub fn codes_rows_into(&self, scores: &Matrix, lens: &[usize], out: &mut [u8]) {
        assert_eq!(lens.len(), scores.rows(), "row length count mismatch");
        assert!(out.len() >= scores.len(), "output buffer too short");
        for (r, &len) in lens.iter().enumerate() {
            let start = r * scores.cols();
            self.codes_into(&scores.row(r)[..len], &mut out[start..start + len]);
        }
    }

    /// Batched [`Log2Softmax::probs_into`] over the rows of a causal score
    /// matrix (see [`Log2Softmax::codes_rows_into`] for the ragged-row
    /// convention): attention weights `2^{−a}` land in the `lens[r]` prefix
    /// of each output row, bit-identical to `probs_into` per row.
    ///
    /// # Panics
    ///
    /// Panics if `lens.len() != scores.rows()`, any `lens[r]` exceeds the
    /// score width, or `out` has a different shape than `scores`.
    pub fn probs_rows_into(&self, scores: &Matrix, lens: &[usize], out: &mut Matrix) {
        assert_eq!(lens.len(), scores.rows(), "row length count mismatch");
        assert_eq!((out.rows(), out.cols()), (scores.rows(), scores.cols()), "shape mismatch");
        for (r, &len) in lens.iter().enumerate() {
            self.probs_into(&scores.row(r)[..len], &mut out.row_mut(r)[..len]);
        }
    }

    /// The shared streaming Eq. (3) kernel: computes the shift code of each
    /// score and hands it to `emit` with the matching output slot, so
    /// [`Log2Softmax::codes_into`] and [`Log2Softmax::probs_into`] cannot
    /// drift apart.
    fn for_each_code<T>(&self, scores: &[f32], out: &mut [T], mut emit: impl FnMut(&mut T, u8)) {
        if scores.is_empty() {
            return;
        }
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // e^{x_i - max} in bf16, as produced by the exp stage;
        // Σ e^{x_i} accumulated in bf16 precision (FP adder tree output).
        let exp_bf16 = |s: f32| Bf16::from_f32((s - max).exp());
        let sum: f32 = scores.iter().map(|&s| exp_bf16(s).to_f32()).sum();
        let sum = Bf16::from_f32(sum);
        let (e_sum, m_sum) = (sum.unbiased_exponent(), i32::from(sum.mantissa()));

        for (o, &s) in out.iter_mut().zip(scores) {
            let e = exp_bf16(s);
            let code = if e.is_zero() {
                self.max_code()
            } else {
                let (e_i, m_i) = (e.unbiased_exponent(), i32::from(e.mantissa()));
                // Eq. (3): integer exponent subtraction + mantissa comparator.
                let diff = m_i - m_sum;
                let correction = if diff.abs() >= 64 { diff.signum() } else { 0 };
                let log2_p = (e_i - e_sum) + correction;
                // log2(p) <= 0 up to the ±1 mantissa approximation; clip.
                (-log2_p).clamp(0, i32::from(self.max_code())) as u8
            };
            emit(o, code);
        }
    }

    /// Shift-and-accumulate `Attn·V` (Fig. 5(e)): `Σ_j V_j · 2^{−a_j}`.
    ///
    /// Multiplying by an exact power of two is precisely what the hardware's
    /// shifter does to the integer `V` elements.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != v.rows()`.
    pub fn attn_v(&self, scores: &[f32], v: &Matrix) -> Vec<f32> {
        let weights = self.probs(scores);
        weighted_value_sum(&weights, v)
    }

    /// As [`Log2Softmax::attn_v`] but with the weight sum normalized to 1
    /// (a cheap final correction some deployments apply; the paper's
    /// hardware does not, and the accuracy results in Table 1/2 hold
    /// without it).
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != v.rows()`.
    pub fn attn_v_normalized(&self, scores: &[f32], v: &Matrix) -> Vec<f32> {
        let mut weights = self.probs(scores);
        let total: f32 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        weighted_value_sum(&weights, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attn_v_exact, exact_softmax};
    use opal_tensor::rng::TensorRng;

    #[test]
    fn codes_are_in_range_and_ordered() {
        let sm = Log2Softmax::new(5);
        let scores = [3.0f32, 1.0, -2.0, 7.5, 7.4, -30.0];
        let codes = sm.codes(&scores);
        assert_eq!(codes.len(), scores.len());
        for &c in &codes {
            assert!(c <= sm.max_code());
        }
        // Higher score -> weight at least as large (code at most as large).
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        for w in idx.windows(2) {
            assert!(codes[w[0]] <= codes[w[1]], "monotonicity violated");
        }
    }

    #[test]
    fn weights_within_factor_sqrt2_of_exact() {
        // log2 quantization rounds log2(p) to the nearest integer, so each
        // weight is within √2 of the exact probability (before clipping),
        // modulo the ±1 mantissa-comparator approximation (≤ one extra
        // octave in the worst case).
        let sm = Log2Softmax::new(6);
        let mut rng = TensorRng::seed(4);
        for _ in 0..50 {
            let scores: Vec<f32> = (0..16).map(|_| rng.normal(0.0, 2.0)).collect();
            let exact = exact_softmax(&scores);
            let approx = sm.probs(&scores);
            for (&p, &q) in exact.iter().zip(&approx) {
                if p > 1e-6 {
                    let ratio = f64::from(q) / f64::from(p);
                    assert!(
                        (0.3..=3.3).contains(&ratio),
                        "weight ratio {ratio} out of band (p={p}, q={q})"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_scores_give_power_of_two_weights() {
        let sm = Log2Softmax::new(5);
        // 4 equal scores: p = 1/4 exactly -> a = 2.
        let p = sm.probs(&[1.0; 4]);
        assert_eq!(p, vec![0.25; 4]);
        // 3 equal scores: p = 1/3, log2 = -1.58 -> a = 2 (nearest).
        let p3 = sm.probs(&[0.5; 3]);
        assert_eq!(p3, vec![0.25; 3]);
    }

    #[test]
    fn dominant_score_gets_unit_weight() {
        let sm = Log2Softmax::new(5);
        let p = sm.probs(&[10.0, -10.0, -10.0]);
        assert_eq!(p[0], 1.0);
        assert!(p[1] < 1e-6 || p[1] == exp2i(-31));
    }

    #[test]
    fn attn_v_close_to_exact() {
        let sm = Log2Softmax::new(5);
        let mut rng = TensorRng::seed(8);
        let mut worst: f64 = 0.0;
        for _ in 0..20 {
            let seq = 24;
            let scores: Vec<f32> = (0..seq).map(|_| rng.normal(0.0, 1.5)).collect();
            let v = rng.normal_matrix(seq, 8, 0.0, 1.0);
            let exact = attn_v_exact(&scores, &v);
            let approx = sm.attn_v(&scores, &v);
            let vnorm: f64 = exact.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
            let err: f64 = exact
                .iter()
                .zip(&approx)
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum::<f64>()
                .sqrt();
            worst = worst.max(err / vnorm.max(1e-9));
        }
        // The paper reports <0.4 PPL impact: relative output error stays a
        // moderate fraction of the exact output.
        assert!(worst < 0.8, "relative Attn·V error {worst}");
    }

    #[test]
    fn normalized_variant_is_at_least_as_good_on_average() {
        let sm = Log2Softmax::new(5);
        let mut rng = TensorRng::seed(21);
        let mut e_raw = 0.0f64;
        let mut e_norm = 0.0f64;
        for _ in 0..30 {
            let seq = 16;
            let scores: Vec<f32> = (0..seq).map(|_| rng.normal(0.0, 1.0)).collect();
            let v = rng.normal_matrix(seq, 4, 0.0, 1.0);
            let exact = attn_v_exact(&scores, &v);
            for (got, label) in [
                (sm.attn_v(&scores, &v), &mut e_raw),
                (sm.attn_v_normalized(&scores, &v), &mut e_norm),
            ] {
                *label += exact
                    .iter()
                    .zip(&got)
                    .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                    .sum::<f64>();
            }
        }
        assert!(e_norm <= e_raw * 1.05, "norm {e_norm} vs raw {e_raw}");
    }

    #[test]
    fn into_variants_and_code_prob_pairing_agree() {
        let sm = Log2Softmax::new(5);
        let mut rng = TensorRng::seed(13);
        for len in [1usize, 2, 7, 33] {
            let scores: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 2.0)).collect();
            let mut codes = vec![0u8; len];
            sm.codes_into(&scores, &mut codes);
            assert_eq!(codes, sm.codes(&scores));
            let mut probs = vec![0.0f32; len];
            sm.probs_into(&scores, &mut probs);
            assert_eq!(probs, sm.probs(&scores));
            // The invariant the hardware model relies on: every weight is
            // exactly 2^-code for the code of the same score.
            for (&p, &a) in probs.iter().zip(&codes) {
                assert_eq!(p, exp2i(-i32::from(a)));
            }
        }
    }

    #[test]
    fn batched_rows_match_single_row_kernels() {
        // Causal layout: row r of a chunk scores positions 0..=r+base.
        let sm = Log2Softmax::new(5);
        let mut rng = TensorRng::seed(29);
        let (rows, cols) = (5usize, 9usize);
        let scores = rng.normal_matrix(rows, cols, 0.0, 2.0);
        let lens: Vec<usize> = (0..rows).map(|r| cols - rows + r + 1).collect();

        let mut probs = Matrix::zeros(rows, cols);
        sm.probs_rows_into(&scores, &lens, &mut probs);
        let mut codes = vec![0u8; rows * cols];
        sm.codes_rows_into(&scores, &lens, &mut codes);

        for (r, &len) in lens.iter().enumerate() {
            let want_p = sm.probs(&scores.row(r)[..len]);
            let want_c = sm.codes(&scores.row(r)[..len]);
            assert_eq!(&probs.row(r)[..len], want_p.as_slice(), "row {r}");
            assert_eq!(&codes[r * cols..r * cols + len], want_c.as_slice(), "row {r}");
            // Tails untouched.
            assert!(probs.row(r)[len..].iter().all(|&v| v == 0.0));
            assert!(codes[r * cols + len..(r + 1) * cols].iter().all(|&c| c == 0));
        }
    }

    #[test]
    #[should_panic(expected = "row length count mismatch")]
    fn batched_rows_reject_bad_lens() {
        let sm = Log2Softmax::new(5);
        let scores = Matrix::zeros(2, 4);
        let mut out = Matrix::zeros(2, 4);
        sm.probs_rows_into(&scores, &[1], &mut out);
    }

    #[test]
    fn empty_and_single() {
        let sm = Log2Softmax::new(5);
        assert!(sm.codes(&[]).is_empty());
        assert_eq!(sm.probs(&[3.7]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "shift-code width")]
    fn rejects_zero_bits() {
        Log2Softmax::new(0);
    }

    #[test]
    fn clipping_at_low_bit_width() {
        let sm = Log2Softmax::new(2); // codes in 0..=3 -> weights >= 1/8
        let p = sm.probs(&[0.0, -20.0]);
        assert_eq!(p[1], 0.125, "code clipped to 3");
    }
}
