//! Error metrics for softmax approximations.

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats between an exact
/// probability vector `p` and an (unnormalized) approximation `q`, which is
/// normalized internally.
///
/// # Panics
///
/// Panics if lengths differ, or if `q` has zero mass where `p` has support.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let qsum: f64 = q.iter().map(|&v| f64::from(v)).sum();
    assert!(qsum > 0.0, "approximation has no mass");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pi = f64::from(pi);
        if pi <= 0.0 {
            continue;
        }
        let qi = f64::from(qi) / qsum;
        assert!(qi > 0.0, "approximation assigns zero mass to a supported outcome");
        kl += pi * (pi / qi).ln();
    }
    kl.max(0.0)
}

/// Total variation distance `½ Σ |p_i − q_i|` after normalizing `q`.
///
/// # Panics
///
/// Panics if lengths differ or `q` sums to zero.
pub fn total_variation(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let qsum: f64 = q.iter().map(|&v| f64::from(v)).sum();
    assert!(qsum > 0.0, "approximation has no mass");
    0.5 * p
        .iter()
        .zip(q)
        .map(|(&pi, &qi)| (f64::from(pi) - f64::from(qi) / qsum).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_softmax, Log2Softmax};

    #[test]
    fn kl_of_identical_is_zero() {
        let p = exact_softmax(&[1.0, 2.0, 3.0]);
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_of_log2_softmax_is_small() {
        let scores = [0.4f32, -1.2, 2.2, 0.0, 1.1, -0.6, 3.0, 0.9];
        let p = exact_softmax(&scores);
        let q = Log2Softmax::new(5).probs(&scores);
        let kl = kl_divergence(&p, &q);
        // log2 quantization bounds each log-ratio by ~ln(2)/2 + mantissa
        // slack; the divergence stays well under a nat.
        assert!(kl < 0.25, "kl {kl}");
    }

    #[test]
    fn tv_distance_bounds() {
        let p = exact_softmax(&[0.0, 0.0]);
        let q = [1.0f32, 0.0];
        let tv = total_variation(&p, &q);
        assert!((tv - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn zero_mass_panics() {
        kl_divergence(&[0.5, 0.5], &[0.0, 0.0]);
    }
}
