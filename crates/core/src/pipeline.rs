//! End-to-end pipeline: quantize a model, score its accuracy against the
//! full-precision teacher, and map it onto the OPAL accelerator.

use opal_hw::accelerator::{Accelerator, AcceleratorKind, AreaBreakdown, EnergyBreakdown};
use opal_model::{eval, Model, ModelConfig, QuantScheme};
use opal_quant::QuantError;
use opal_tensor::ops;

/// The two OPAL operating points of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperatingPoint {
    /// W4A4/7 with MX-OPAL activations and the log2 softmax.
    W4A47,
    /// W3A3/5 — the most aggressive configuration.
    W3A35,
}

impl OperatingPoint {
    /// The quantization scheme this point runs (including log2 softmax).
    pub fn scheme(&self) -> QuantScheme {
        match self {
            OperatingPoint::W4A47 => QuantScheme::mxopal_w4a47().with_log2_softmax(5),
            OperatingPoint::W3A35 => QuantScheme::mxopal_w3a35().with_log2_softmax(5),
        }
    }

    /// The matching hardware design point.
    pub fn accelerator_kind(&self) -> AcceleratorKind {
        match self {
            OperatingPoint::W4A47 => AcceleratorKind::OpalW4A47,
            OperatingPoint::W3A35 => AcceleratorKind::OpalW3A35,
        }
    }
}

/// The combined accuracy + hardware report of one pipeline evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineReport {
    /// Perplexity of the full-precision teacher on the eval stream.
    pub baseline_ppl: f64,
    /// Perplexity of the quantized model on the same stream.
    pub quantized_ppl: f64,
    /// Per-token energy of the OPAL design for this model.
    pub energy: EnergyBreakdown,
    /// Per-token energy of the BF16 baseline accelerator.
    pub baseline_energy: EnergyBreakdown,
    /// OPAL chip area.
    pub area: AreaBreakdown,
    /// Fraction of operations executed on INT hardware.
    pub int_fraction: f64,
}

impl PipelineReport {
    /// Perplexity increase over the baseline (the paper reports <1).
    pub fn ppl_increase(&self) -> f64 {
        self.quantized_ppl - self.baseline_ppl
    }

    /// Energy saving versus the BF16 accelerator, in `[0, 1]`.
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.energy.total_j() / self.baseline_energy.total_j()
    }
}

/// The end-to-end OPAL flow for one model and operating point.
///
/// # Example
///
/// ```
/// use opal::{ModelConfig, OpalPipeline, OperatingPoint};
///
/// let p = OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W3A35, 3)?;
/// let tokens = p.generate(&[1, 2, 3], 5);
/// assert_eq!(tokens.len(), 5);
/// # Ok::<(), opal_quant::QuantError>(())
/// ```
#[derive(Debug)]
pub struct OpalPipeline {
    config: ModelConfig,
    point: OperatingPoint,
    teacher: Model,
    student: Model,
    accelerator: Accelerator,
}

impl OpalPipeline {
    /// Builds the teacher (BF16) and quantized student models plus the
    /// hardware model.
    ///
    /// # Errors
    ///
    /// Returns a [`QuantError`] if the operating point's quantizers reject
    /// the configuration (should not happen for the built-in points).
    pub fn new(config: ModelConfig, point: OperatingPoint, seed: u64) -> Result<Self, QuantError> {
        let teacher = Model::new(config.clone(), QuantScheme::bf16(), seed)?;
        let student = Model::new(config.clone(), point.scheme(), seed)?;
        let accelerator = Accelerator::new(point.accelerator_kind());
        Ok(OpalPipeline { config, point, teacher, student, accelerator })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// The full-precision teacher model.
    pub fn teacher(&self) -> &Model {
        &self.teacher
    }

    /// The quantized student model.
    pub fn student(&self) -> &Model {
        &self.student
    }

    /// Runs the accuracy proxy and the hardware model.
    ///
    /// `eval_tokens` is the evaluation stream length (longer = tighter
    /// perplexity estimates); `seed` controls the stream.
    ///
    /// # Panics
    ///
    /// Panics if `eval_tokens < 2`.
    pub fn evaluate(&self, eval_tokens: usize, seed: u64) -> PipelineReport {
        let stream = eval::sample_stream(&self.teacher, eval_tokens, seed);
        let baseline_ppl = eval::perplexity(&self.teacher, &stream);
        let quantized_ppl = eval::perplexity(&self.student, &stream);
        let seq = eval_tokens.max(64);
        let energy = self.accelerator.energy_per_token(&self.config, seq);
        let baseline_energy =
            Accelerator::new(AcceleratorKind::Bf16).energy_per_token(&self.config, seq);
        PipelineReport {
            baseline_ppl,
            quantized_ppl,
            energy,
            baseline_energy,
            area: self.accelerator.area(),
            int_fraction: self.accelerator.int_mac_fraction(&self.config, seq),
        }
    }

    /// Greedy generation with the quantized model: decodes `prompt` then
    /// emits `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-range tokens.
    pub fn generate(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        assert!(!prompt.is_empty(), "empty prompt");
        let mut state = self.student.begin_decode();
        let mut logits = vec![0.0f32; self.student.config().vocab];
        self.student.prefill_into(&mut state, prompt, &mut logits);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = ops::argmax(&logits).unwrap_or(0) as u32;
            out.push(t);
            self.student.decode_step_into(&mut state, t, &mut logits);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_both_points() {
        for point in [OperatingPoint::W4A47, OperatingPoint::W3A35] {
            let p = OpalPipeline::new(ModelConfig::tiny(), point, 5).unwrap();
            let r = p.evaluate(24, 3);
            assert!(r.baseline_ppl > 1.0);
            assert!(r.quantized_ppl.is_finite());
            assert!(r.energy.total_j() > 0.0);
            assert!(r.energy_saving() > 0.3, "saving {}", r.energy_saving());
            assert!(r.int_fraction > 0.9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 9).unwrap();
        let a = p.generate(&[1, 2], 6);
        let b = p.generate(&[1, 2], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn scheme_wiring() {
        assert!(OperatingPoint::W4A47.scheme().name.contains("W4A4/7"));
        assert_eq!(OperatingPoint::W3A35.accelerator_kind(), AcceleratorKind::OpalW3A35);
    }
}
