//! # OPAL: Outlier-Preserved Microscaling Quantization Accelerator
//!
//! A full reproduction of the DAC'24 paper "OPAL: Outlier-Preserved
//! Microscaling Quantization Accelerator for Generative Large Language
//! Models" as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`opal_numerics`] | bit-exact bfloat16 and the shift-based quantization datapath |
//! | [`opal_tensor`] | dense f32 tensors + NN primitives |
//! | [`opal_quant`] | MinMax / MXINT / MX-OPAL activation quantizers, OWQ weights |
//! | [`opal_softmax`] | exact and log2-based (Eq. 3) softmax |
//! | [`opal_model`] | decoder-only LLM simulator with quantization hook points |
//! | [`opal_hw`] | OPAL core, SRAM, workload and accelerator energy models |
//!
//! This crate is the façade: it re-exports the pieces and offers
//! [`OpalPipeline`], an end-to-end "quantize → evaluate accuracy → map to
//! hardware" flow.
//!
//! ## Quickstart
//!
//! ```
//! use opal::{ModelConfig, OpalPipeline, OperatingPoint};
//!
//! let config = ModelConfig::tiny();
//! let pipeline = OpalPipeline::new(config, OperatingPoint::W4A47, 42)?;
//! let report = pipeline.evaluate(32, 7);
//! assert!(report.quantized_ppl >= report.baseline_ppl * 0.9);
//! assert!(report.energy.total_j() > 0.0);
//! # Ok::<(), opal_quant::QuantError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;

pub use pipeline::{OpalPipeline, OperatingPoint, PipelineReport};

pub use opal_hw::accelerator::{Accelerator, AcceleratorKind, AreaBreakdown, EnergyBreakdown};
pub use opal_model::{Model, ModelConfig, QuantScheme};
pub use opal_quant::{
    MinMaxQuantizer, MxIntQuantizer, MxOpalQuantizer, OwqQuantizer, QuantError, Quantizer,
};
pub use opal_softmax::Log2Softmax;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::{
        Accelerator, AcceleratorKind, Log2Softmax, MinMaxQuantizer, Model, ModelConfig,
        MxIntQuantizer, MxOpalQuantizer, OpalPipeline, OperatingPoint, OwqQuantizer, QuantError,
        QuantScheme, Quantizer,
    };
    pub use opal_model::eval;
    pub use opal_tensor::Matrix;
}
