//! Deterministic random tensor generation.
//!
//! All experiments in this reproduction are seeded: the same seed produces
//! the same synthetic weights, activations and token streams on every run,
//! so benchmark tables are reproducible bit-for-bit.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// A deterministic tensor generator wrapping a seeded [`StdRng`].
///
/// # Example
///
/// ```
/// use opal_tensor::rng::TensorRng;
///
/// let mut a = TensorRng::seed(42);
/// let mut b = TensorRng::seed(42);
/// assert_eq!(a.normal_matrix(2, 3, 0.0, 1.0).as_slice(),
///            b.normal_matrix(2, 3, 0.0, 1.0).as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        TensorRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; `label` separates streams.
    pub fn child(&mut self, label: u64) -> TensorRng {
        let s: u64 = self.rng.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TensorRng::seed(s)
    }

    /// One sample from `N(mean, std²)` (Box–Muller via `rand`).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box-Muller on two uniforms; avoids depending on rand_distr.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        mean + std * z
    }

    /// A `rows × cols` matrix of i.i.d. `N(mean, std²)` samples.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.normal(mean, std))
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Samples an index from an unnormalized non-negative weight slice.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        let total: f64 = weights.iter().map(|&w| f64::from(w.max(0.0))).sum();
        assert!(total > 0.0, "weights must have positive mass");
        let mut t = self.rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            t -= f64::from(w.max(0.0));
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Log-normal sample: `exp(N(mu, sigma²))`.
    pub fn log_normal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal(mu, sigma).exp()
    }

    /// Chooses `k` distinct indices from `0..n` (Floyd's algorithm order not
    /// needed; simple partial shuffle), sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut out = idx[..k].to_vec();
        out.sort_unstable();
        out
    }

    /// Generates an activation-like vector with *channel-persistent outliers*:
    /// baseline `N(0, base_std²)` values, with the channels in
    /// `outlier_channels` scaled by `outlier_gain` (the structure observed in
    /// LLM activations by LLM.int8(), OWQ, and the OPAL paper itself —
    /// a few input channels consistently carry 10–100× magnitudes).
    pub fn outlier_vector(
        &mut self,
        len: usize,
        base_std: f32,
        outlier_channels: &[usize],
        outlier_gain: f32,
    ) -> Vec<f32> {
        let mut v: Vec<f32> = (0..len).map(|_| self.normal(0.0, base_std)).collect();
        for &c in outlier_channels {
            if c < len {
                // Outliers keep a consistent sign bias per channel in real
                // LLMs; a deterministic sign per channel index models that.
                let sign = if c % 2 == 0 { 1.0 } else { -1.0 };
                v[c] = sign * outlier_gain * base_std * (1.0 + self.uniform(-0.25, 0.25));
            }
        }
        v
    }

    /// Direct access to the underlying RNG for ad-hoc sampling.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Samples from any `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = TensorRng::seed(7);
        let mut b = TensorRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed(1);
        let mut b = TensorRng::seed(2);
        let va: Vec<f32> = (0..8).map(|_| a.normal(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.normal(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_moments() {
        let mut r = TensorRng::seed(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean: f64 = samples.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn distinct_indices_are_distinct_and_sorted() {
        let mut r = TensorRng::seed(5);
        for _ in 0..20 {
            let idx = r.distinct_indices(50, 10);
            assert_eq!(idx.len(), 10);
            for w in idx.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn outlier_vector_has_outliers() {
        let mut r = TensorRng::seed(11);
        let chans = [3usize, 40];
        let v = r.outlier_vector(128, 1.0, &chans, 50.0);
        let max_regular = v
            .iter()
            .enumerate()
            .filter(|(i, _)| !chans.contains(i))
            .map(|(_, &x)| x.abs())
            .fold(0.0f32, f32::max);
        for &c in &chans {
            assert!(v[c].abs() > 5.0 * max_regular, "channel {c} not an outlier");
        }
    }

    #[test]
    fn weighted_index_respects_mass() {
        let mut r = TensorRng::seed(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[r.weighted_index(&[0.0, 1.0, 9.0])] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5);
    }
}
