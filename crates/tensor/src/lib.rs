//! Minimal dense tensor substrate for the OPAL reproduction.
//!
//! The OPAL evaluation runs decoder-only transformers; this crate provides
//! the row-major `f32` matrix type and the neural-network primitives those
//! models need (matmul/matvec, LayerNorm, RMSNorm, activations, rotary
//! position embedding) plus deterministic random initialization and the
//! statistics helpers used by the quantization-error analyses (Fig. 3/4).
//!
//! Everything is plain `f32` — quantized execution is modelled by *quantize →
//! dequantize → f32 compute*, which is numerically identical to integer
//! compute followed by a single rescale (see
//! `opal_numerics::convert::acc_to_f32`) and is the standard methodology for
//! quantization accuracy studies (the paper itself uses QPyTorch's simulated
//! BFP).
//!
//! # Example
//!
//! ```
//! use opal_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b).as_slice(), a.as_slice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
