//! Neural-network primitives used by the transformer simulator.

use crate::Matrix;

/// Dot product of two equal-length slices, accumulated in `f64`.
///
/// The inner kernel of every matvec and attention score in the workspace,
/// unrolled 8-wide over four independent `f64` accumulators so the adds
/// pipeline instead of forming one long dependency chain (the seed's
/// `.sum::<f64>()` was latency-bound on exactly that chain). The 8-wide
/// body feeds the same four accumulators in the same per-element order as
/// the original 4-chunk loop, so widening the unroll cannot move a single
/// rounding step.
///
/// On f32 transformer activations the reassociation is invisible after the
/// final f32 cast: each `f32 × f32` product is *exact* in `f64`, so partial
/// sums differ from the sequential order by at most a few ULPs of `f64` —
/// ~29 bits below f32 precision. The decode golden tests
/// (`crates/model/tests/decode_golden.rs`) pin the output of this kernel to
/// logit bit patterns captured from the seed implementation.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Start at -0.0, matching `Iterator::sum::<f64>()` (which folds from
    // -0.0 so an all-negative-zero sum keeps its sign) — the seed decoder
    // summed with `.sum::<f64>()`, and bit-identity covers signed zeros.
    let mut acc0 = -0.0f64;
    let mut acc1 = -0.0f64;
    let mut acc2 = -0.0f64;
    let mut acc3 = -0.0f64;
    // 8-wide body: two 4-lane groups per iteration, feeding the SAME four
    // accumulators in the SAME per-element order as two 4-chunk iterations
    // would — each accumulator sees an identical addend sequence, so the
    // unroll is bit-identical by construction while halving loop overhead
    // and letting the vectorizer keep two 256-bit FMAs in flight.
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (a8, b8) in ac.by_ref().zip(bc.by_ref()) {
        acc0 += f64::from(a8[0]) * f64::from(b8[0]);
        acc1 += f64::from(a8[1]) * f64::from(b8[1]);
        acc2 += f64::from(a8[2]) * f64::from(b8[2]);
        acc3 += f64::from(a8[3]) * f64::from(b8[3]);
        acc0 += f64::from(a8[4]) * f64::from(b8[4]);
        acc1 += f64::from(a8[5]) * f64::from(b8[5]);
        acc2 += f64::from(a8[6]) * f64::from(b8[6]);
        acc3 += f64::from(a8[7]) * f64::from(b8[7]);
    }
    // Remainder: one more 4-chunk if present (lanes in order), then the
    // sub-4 tail into acc0 — exactly the original kernel's schedule.
    let mut ar = ac.remainder().chunks_exact(4);
    let mut br = bc.remainder().chunks_exact(4);
    for (a4, b4) in ar.by_ref().zip(br.by_ref()) {
        acc0 += f64::from(a4[0]) * f64::from(b4[0]);
        acc1 += f64::from(a4[1]) * f64::from(b4[1]);
        acc2 += f64::from(a4[2]) * f64::from(b4[2]);
        acc3 += f64::from(a4[3]) * f64::from(b4[3]);
    }
    for (&x, &y) in ar.remainder().iter().zip(br.remainder()) {
        acc0 += f64::from(x) * f64::from(y);
    }
    ((acc0 + acc1) + (acc2 + acc3)) as f32
}

/// Dot product of an `f32` query segment against integer quantization
/// codes — the code-domain inner loop of quantized KV attention. The
/// caller multiplies the result by the block's shared power-of-two step,
/// so one shared-exponent block costs one scale multiply no matter how
/// long it is.
///
/// Shaped for the vectorizer rather than for [`dot`]'s `f64` pipeline:
/// sixteen independent `f32` lanes over `chunks_exact(16)`, with the
/// `i8 → f32` widening inside the lane loop. `i8 → f32` and the `f32`
/// multiply-add both map onto full-width SIMD (`i8 → f64` does not, and
/// measures ~2.5x slower), which is what lets this path beat
/// dequantize-then-[`dot`] instead of merely matching it. Accumulating in
/// `f32` reorders rounding relative to an `f64` reference, but a
/// shared-exponent block is at most a few hundred elements and the caller
/// sums *blocks* in `f64` — the quantized-page tests cross-check against
/// dequantize-then-[`dot`] at a pinned tolerance. The result is
/// deterministic for fixed inputs (fixed lane assignment and association
/// order), which is all the quantized-KV bit-determinism contract needs.
///
/// # Panics
///
/// Panics if the slices differ in length.
// Inlined across crates on purpose: the block walk calls this with a
// qblock-derived length, and letting the call site see it folds the
// remainder loop and roughly halves the measured cost.
#[inline]
pub fn dot_codes(a: &[f32], codes: &[i8]) -> f32 {
    assert_eq!(a.len(), codes.len(), "dot_codes length mismatch");
    let mut acc = [-0.0f32; 16];
    let mut ac = a.chunks_exact(16);
    let mut cc = codes.chunks_exact(16);
    for (a16, c16) in ac.by_ref().zip(cc.by_ref()) {
        for k in 0..16 {
            acc[k] += a16[k] * f32::from(c16[k]);
        }
    }
    // In-order lane reduction: a fixed summation order (deterministic),
    // and — unlike an explicit pairwise tree, which bolts specific lane
    // groupings onto the loop above and makes LLVM shuffle every vector —
    // one that leaves the accumulator layout entirely to the vectorizer.
    // The tree variant measures ~2x slower for exactly that reason.
    let mut s = -0.0f32;
    for &lane in &acc {
        s += lane;
    }
    for (&x, &c) in ac.remainder().iter().zip(cc.remainder()) {
        s += x * f32::from(c);
    }
    s
}

/// LayerNorm over the last dimension of each row, with learnable gain and
/// bias (the OPT family uses LayerNorm).
///
/// # Panics
///
/// Panics if `gain` / `bias` lengths differ from the row width.
pub fn layer_norm(x: &Matrix, gain: &[f32], bias: &[f32], eps: f32) -> Matrix {
    assert_eq!(gain.len(), x.cols(), "gain length mismatch");
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        layer_norm_into(x.row(r), gain, bias, eps, out.row_mut(r));
    }
    out
}

/// LayerNorm of a single row written into a caller-provided slice — the
/// allocation-free kernel behind [`layer_norm`].
///
/// # Panics
///
/// Panics if `gain`, `bias` or `out` lengths differ from `x`.
pub fn layer_norm_into(x: &[f32], gain: &[f32], bias: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(gain.len(), x.len(), "gain length mismatch");
    assert_eq!(bias.len(), x.len(), "bias length mismatch");
    assert_eq!(out.len(), x.len(), "output length mismatch");
    let mean = x.iter().map(|&v| f64::from(v)).sum::<f64>() / x.len() as f64;
    let var = x.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / x.len() as f64;
    let inv = 1.0 / (var + f64::from(eps)).sqrt();
    for (i, &v) in x.iter().enumerate() {
        out[i] = (((f64::from(v) - mean) * inv) as f32) * gain[i] + bias[i];
    }
}

/// RMSNorm over the last dimension of each row (the Llama family uses
/// RMSNorm: no mean subtraction, no bias).
///
/// # Panics
///
/// Panics if `gain.len() != x.cols()`.
pub fn rms_norm(x: &Matrix, gain: &[f32], eps: f32) -> Matrix {
    assert_eq!(gain.len(), x.cols(), "gain length mismatch");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        rms_norm_into(x.row(r), gain, eps, out.row_mut(r));
    }
    out
}

/// RMSNorm of a single row written into a caller-provided slice — the
/// allocation-free kernel behind [`rms_norm`].
///
/// # Panics
///
/// Panics if `gain` or `out` lengths differ from `x`.
pub fn rms_norm_into(x: &[f32], gain: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(gain.len(), x.len(), "gain length mismatch");
    assert_eq!(out.len(), x.len(), "output length mismatch");
    let ms = x.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>() / x.len() as f64;
    let inv = 1.0 / (ms + f64::from(eps)).sqrt();
    for (i, &v) in x.iter().enumerate() {
        out[i] = ((f64::from(v) * inv) as f32) * gain[i];
    }
}

/// Numerically stable softmax applied independently to each row.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        softmax_into(row, out.row_mut(r));
    }
    out
}

/// Numerically stable softmax of a single slice into `out`.
///
/// # Panics
///
/// Panics if `out.len() != x.len()`.
pub fn softmax_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "output length mismatch");
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f64;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = f64::from(v - max).exp();
        *o = e as f32;
        sum += e;
    }
    let inv = (1.0 / sum) as f32;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// SiLU (swish) activation: `x * sigmoid(x)` (Llama FFN).
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// GELU activation, tanh approximation (OPT FFN uses ReLU historically, GPT
/// uses GELU; we expose both and let the model config choose).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh()))
}

/// ReLU activation.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Applies rotary position embedding in-place to a `seq_len × head_dim` block
/// of query or key vectors, starting at absolute position `pos0`.
///
/// Pairs dimension `2i`/`2i+1` are rotated by angle `pos / theta^(2i/d)`.
///
/// # Panics
///
/// Panics if the head dimension is odd.
pub fn rope_in_place(x: &mut Matrix, pos0: usize, theta: f32) {
    for r in 0..x.rows() {
        let pos = pos0 + r;
        rope_row(x.row_mut(r), pos, theta);
    }
}

/// Applies rotary position embedding to a single head-vector at absolute
/// position `pos`.
///
/// # Panics
///
/// Panics if the vector length is odd.
pub fn rope_row(row: &mut [f32], pos: usize, theta: f32) {
    let d = row.len();
    assert!(d.is_multiple_of(2), "RoPE requires an even head dimension");
    let pos = pos as f32;
    for i in 0..d / 2 {
        let freq = theta.powf(-2.0 * i as f32 / d as f32);
        let (sin, cos) = (pos * freq).sin_cos();
        let (a, b) = (row[2 * i], row[2 * i + 1]);
        row[2 * i] = a * cos - b * sin;
        row[2 * i + 1] = a * sin + b * cos;
    }
}

/// Index of the maximum element (first occurrence).
///
/// Returns `None` for an empty slice.
pub fn argmax(x: &[f32]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

/// `log(sum(exp(x)))` computed stably.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    if x.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    let sum: f64 = x.iter().map(|&v| f64::from(v - max).exp()).sum();
    max + sum.ln() as f32
}

/// Cross-entropy of a logits row against a target index, in nats.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy(logits: &[f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target {target} out of range");
    log_sum_exp(logits) - logits[target]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn dot_matches_sequential_sum() {
        // Lengths around the 4-wide unroll boundary. The 4-accumulator
        // reduction may differ from the sequential f64 sum by ULPs of f64 —
        // far below f32 resolution — so the f32 results must agree to at
        // most one ULP (and exactly, for every case tried here).
        for len in [0usize, 1, 3, 4, 5, 7, 8, 15, 33, 128] {
            let a: Vec<f32> = (0..len).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37).collect();
            let b: Vec<f32> = (0..len).map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.19).collect();
            let reference =
                a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum::<f64>() as f32;
            let got = dot(&a, &b);
            assert!(
                got.to_bits().abs_diff(reference.to_bits()) <= 1,
                "len {len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn dot_is_exact_on_integer_values() {
        // Integer-valued products sum exactly in f64 under any association.
        let a: Vec<f32> = (0..37).map(|i| (i % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..37).map(|i| (i % 7) as f32 - 3.0).collect();
        let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
        assert_eq!(dot(&a, &b), exact as f32);
        assert_eq!(dot(&[], &[]).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn norm_into_matches_matrix_norms() {
        let x = Matrix::from_rows(&[&[1.0, -2.0, 3.5, 0.25]]);
        let gain = [1.5, 0.5, 2.0, 1.0];
        let bias = [0.1, -0.2, 0.0, 0.3];
        let mut out = [0.0f32; 4];
        layer_norm_into(x.row(0), &gain, &bias, 1e-5, &mut out);
        assert_eq!(out, layer_norm(&x, &gain, &bias, 1e-5).row(0));
        rms_norm_into(x.row(0), &gain, 1e-5, &mut out);
        assert_eq!(out, rms_norm(&x, &gain, 1e-5).row(0));
    }

    #[test]
    fn layer_norm_normalizes() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layer_norm(&x, &g, &b, 1e-5);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert_close(mean, 0.0, 1e-6);
        assert_close(var, 1.0, 1e-3);
    }

    #[test]
    fn layer_norm_gain_bias() {
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let y = layer_norm(&x, &[2.0, 2.0], &[1.0, 1.0], 1e-9);
        assert_close(y[(0, 0)], 3.0, 1e-4);
        assert_close(y[(0, 1)], -1.0, 1e-4);
    }

    #[test]
    fn rms_norm_unit_rms() {
        let x = Matrix::from_rows(&[&[3.0, 4.0]]);
        let y = rms_norm(&x, &[1.0, 1.0], 0.0);
        let ms: f32 = y.row(0).iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert_close(ms, 1.0, 1e-5);
        // Direction preserved.
        assert_close(y[(0, 1)] / y[(0, 0)], 4.0 / 3.0, 1e-5);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1001.0, 1002.0, 1003.0]]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert_close(s, 1.0, 1e-6);
        }
        // shift invariance: both rows identical
        for c in 0..3 {
            assert_close(y[(0, c)], y[(1, c)], 1e-6);
        }
        assert!(y[(0, 2)] > y[(0, 1)] && y[(0, 1)] > y[(0, 0)]);
    }

    #[test]
    fn activations_reference_points() {
        assert_close(silu(0.0), 0.0, 1e-9);
        assert!(silu(5.0) > 4.9);
        assert_close(gelu(0.0), 0.0, 1e-9);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
    }

    #[test]
    fn rope_preserves_norm_and_is_position_dependent() {
        let mut a = Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.5]]);
        let before: f32 = a.row(0).iter().map(|v| v * v).sum();
        rope_in_place(&mut a, 3, 10000.0);
        let after: f32 = a.row(0).iter().map(|v| v * v).sum();
        assert_close(before, after, 1e-5);

        let mut b = Matrix::from_rows(&[&[1.0, 0.0, 0.5, 0.5]]);
        rope_in_place(&mut b, 4, 10000.0);
        assert!(a.as_slice() != b.as_slice(), "rotation must depend on position");
    }

    #[test]
    fn rope_relative_property() {
        // <RoPE(q,m), RoPE(k,n)> depends only on m-n.
        let q = [0.3f32, -0.7, 1.1, 0.2];
        let k = [0.9f32, 0.4, -0.5, 0.8];
        let dot = |m: usize, n: usize| -> f32 {
            let mut qm = Matrix::from_row_slice(&q);
            let mut kn = Matrix::from_row_slice(&k);
            rope_in_place(&mut qm, m, 10000.0);
            rope_in_place(&mut kn, n, 10000.0);
            qm.row(0).iter().zip(kn.row(0)).map(|(a, b)| a * b).sum()
        };
        assert_close(dot(5, 3), dot(9, 7), 1e-4);
        assert_close(dot(2, 2), dot(11, 11), 1e-4);
    }

    #[test]
    fn argmax_and_lse() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        let lse = log_sum_exp(&[0.0, 0.0]);
        assert_close(lse, std::f32::consts::LN_2, 1e-6);
        // stability with large values
        assert_close(log_sum_exp(&[1000.0, 1000.0]), 1000.0 + std::f32::consts::LN_2, 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform() {
        let ce = cross_entropy(&[0.0, 0.0, 0.0, 0.0], 2);
        assert_close(ce, (4.0f32).ln(), 1e-6);
        // Confident correct prediction -> near-zero CE.
        let ce2 = cross_entropy(&[10.0, -10.0], 0);
        assert!(ce2 < 1e-3);
    }
}
