//! Error metrics and summary statistics for quantization studies.

/// Mean squared error between two slices.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Maximum absolute error between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn max_abs_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(Σx² / Σ(x−x̂)²)`.
///
/// Returns `f64::INFINITY` when the reconstruction is exact.
///
/// # Panics
///
/// Panics if lengths differ or slices are empty.
pub fn sqnr_db(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    assert!(!original.is_empty(), "sqnr of empty slices");
    let signal: f64 = original.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    let noise: f64 = original
        .iter()
        .zip(reconstructed)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(x: &[f32]) -> f64 {
    assert!(!x.is_empty(), "mean of empty slice");
    x.iter().map(|&v| f64::from(v)).sum::<f64>() / x.len() as f64
}

/// Population variance.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn variance(x: &[f32]) -> f64 {
    let m = mean(x);
    x.iter().map(|&v| (f64::from(v) - m).powi(2)).sum::<f64>() / x.len() as f64
}

/// Minimum and maximum of a slice.
///
/// Returns `None` for an empty slice.
pub fn min_max(x: &[f32]) -> Option<(f32, f32)> {
    if x.is_empty() {
        return None;
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}

/// Kurtosis (Fisher, excess) — heavy-tail diagnostic used to sanity-check the
/// synthetic activation generator against LLM statistics (LLM activations
/// have strongly positive excess kurtosis).
///
/// # Panics
///
/// Panics if the slice has fewer than 2 elements or zero variance.
pub fn excess_kurtosis(x: &[f32]) -> f64 {
    assert!(x.len() >= 2, "kurtosis needs at least 2 samples");
    let m = mean(x);
    let var = variance(x);
    assert!(var > 0.0, "kurtosis of constant data");
    let m4 = x.iter().map(|&v| (f64::from(v) - m).powi(4)).sum::<f64>() / x.len() as f64;
    m4 / (var * var) - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
    }

    #[test]
    fn max_abs_err_basics() {
        assert_eq!(max_abs_err(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        assert_eq!(max_abs_err(&[], &[]), 0.0);
    }

    #[test]
    fn sqnr_reference() {
        // noise power 1% of signal power -> 20 dB
        let x = [10.0f32, 10.0];
        let y = [11.0f32, 9.0];
        assert!((sqnr_db(&x, &y) - 20.0).abs() < 1e-9);
        assert!(sqnr_db(&x, &x).is_infinite());
    }

    #[test]
    fn moments() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert_eq!(variance(&x), 1.25);
        assert_eq!(min_max(&x), Some((1.0, 4.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn kurtosis_flags_heavy_tails() {
        // Uniform-ish data: negative excess kurtosis.
        let flat: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert!(excess_kurtosis(&flat) < 0.0);
        // One huge outlier among small noise: strongly positive.
        let mut spiky = vec![0.1f32; 127];
        spiky.push(100.0);
        assert!(excess_kurtosis(&spiky) > 50.0);
    }
}
