//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// This is the single tensor type of the workspace: vectors are `1 × n` or
/// `n × 1` matrices, activations for a token sequence are `seq_len × d_model`.
///
/// # Example
///
/// ```
/// use opal_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { data, rows: rows.len(), cols }
    }

    /// Creates a matrix taking ownership of a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { data, rows, cols }
    }

    /// Creates a single-row matrix from a slice.
    pub fn from_row_slice(row: &[f32]) -> Self {
        Matrix { data: row.to_vec(), rows: 1, cols: row.len() }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({})", self.cols);
        self.data.chunks_exact(self.cols).map(|row| row[c]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix transpose.
    ///
    /// Iterates in write-major order: each output row (one input column) is
    /// filled left to right, so every store is sequential and only the
    /// strided loads pay for the layout change.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        for (c, out_row) in out.data.chunks_exact_mut(self.rows).enumerate() {
            let mut src = c;
            for o in out_row.iter_mut() {
                *o = self.data[src];
                src += self.cols;
            }
        }
        out
    }

    /// Inner GEMM update `acc[j] += a * b_row[j]`, unrolled 4-wide — the
    /// shared kernel of [`Matrix::matmul`] and [`Matrix::matmul_into`]. The
    /// per-`j` addend sequence over `k` is untouched (unrolling spans
    /// independent `j` lanes, never reassociates within one), so this is
    /// bit-identical to the scalar loop while exposing four independent
    /// f64 FMAs per iteration to the vectorizer.
    #[inline]
    fn axpy_acc(acc: &mut [f64], a: f64, b_row: &[f32]) {
        let mut a4 = acc.chunks_exact_mut(4);
        let mut b4 = b_row.chunks_exact(4);
        for (o, b) in a4.by_ref().zip(b4.by_ref()) {
            o[0] += a * f64::from(b[0]);
            o[1] += a * f64::from(b[1]);
            o[2] += a * f64::from(b[2]);
            o[3] += a * f64::from(b[3]);
        }
        for (o, &b) in a4.into_remainder().iter_mut().zip(b4.remainder()) {
            *o += a * f64::from(b);
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// Accumulates in `f64` per output element so quantization-error studies
    /// are not polluted by accumulation error.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
            let mut acc = vec![0.0f64; rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                Self::axpy_acc(&mut acc, f64::from(a), b_row);
            }
            for (o, a) in out_row.iter_mut().zip(&acc) {
                *o = *a as f32;
            }
        }
        out
    }

    /// Matrix product `self · rhs` written into a caller-provided `out`
    /// matrix, bit-identical to [`Matrix::matmul`] (same per-element `f64`
    /// accumulation in the same order; one `f64` accumulator row is still
    /// allocated per call, reused across output rows).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows` or `out` is not
    /// `self.rows × rhs.cols`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!((out.rows, out.cols), (self.rows, rhs.cols), "output shape mismatch");
        let mut acc = vec![0.0f64; rhs.cols];
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            acc.fill(0.0);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                Self::axpy_acc(&mut acc, f64::from(a), b_row);
            }
            let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (o, a) in out_row.iter_mut().zip(&acc) {
                *o = *a as f32;
            }
        }
    }

    /// Matrix product with the transpose of `rhs`: `self · rhsᵀ`.
    ///
    /// Used for `Q · Kᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0f64;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += f64::from(a) * f64::from(b);
                }
                out.data[r * rhs.rows + j] = acc as f32;
            }
        }
        out
    }

    /// Matrix product with the transpose of `rhs` written into `out`:
    /// `out = self · rhsᵀ`, computed with the 4-accumulator
    /// [`crate::ops::dot`] kernel — the fused GEMM of the multi-token
    /// prefill path.
    ///
    /// Both operands are read row-major, so every inner product runs over
    /// two contiguous rows. The loop is ordered `rhs`-row-major: each `rhs`
    /// row (a transposed weight row) is loaded once and dotted against every
    /// row of `self` while hot, which is where the fused prefill gains its
    /// weight-locality over a matvec per token.
    ///
    /// Because `ops::dot` is bitwise commutative in its arguments (each
    /// `f32×f32` product is exact in `f64` and the accumulator schedule is
    /// symmetric), row `i` of the output is bit-identical to
    /// `rhs.matvec_into(self.row(i), ..)` — the single-token projection this
    /// GEMM replaces.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols` or `out` is not
    /// `self.rows × rhs.rows`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!((out.rows, out.cols), (self.rows, rhs.rows), "output shape mismatch");
        if self.cols == 0 {
            // Zero-width operands: every output element is the empty dot
            // reduction (numerically zero), matching `matmul` on the same
            // degenerate shapes instead of leaving `out` stale.
            out.data.fill(crate::ops::dot(&[], &[]));
            return;
        }
        if self.rows == 0 || rhs.rows == 0 {
            return;
        }
        let width = self.cols.max(1);
        for (j, b_row) in rhs.data.chunks_exact(rhs.cols.max(1)).enumerate() {
            for (a_row, out_row) in
                self.data.chunks_exact(width).zip(out.data.chunks_exact_mut(rhs.rows))
            {
                out_row[j] = crate::ops::dot(a_row, b_row);
            }
        }
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix–vector product `self · v` written into `out` — the
    /// allocation-free kernel behind [`Matrix::matvec`], used by the token
    /// decode hot path.
    ///
    /// Accumulates each output element in `f64` in strict element order
    /// (the products of `f32` inputs are exact in `f64`, and the sum order
    /// matches the allocating API), so results are bit-identical to
    /// [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols` or `out.len() != self.rows`.
    pub fn matvec_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols.max(1))) {
            *o = crate::ops::dot(row, v);
        }
    }

    /// Resizes the matrix to `rows` rows in place, keeping the column
    /// width; new rows are zeroed, and shrinking keeps the allocation.
    ///
    /// This is the row-block helper behind the chunked-prefill scratch
    /// buffers: a scratch matrix is resized to the live chunk length each
    /// pass, so kernels like [`Matrix::matmul_t_into`] see exactly the rows
    /// in flight while the backing `Vec` is reused across chunks
    /// (allocation-free once grown to the largest chunk).
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.cols, 0.0);
        self.rows = rows;
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { data: self.data.iter().map(|&x| f(x)).collect(), rows: self.rows, cols: self.cols }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Horizontal slice: rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "bad row range {start}..{end}");
        Matrix {
            data: self.data[start * self.cols..end * self.cols].to_vec(),
            rows: end - start,
            cols: self.cols,
        }
    }

    /// Vertical slice: columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn cols_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "bad col range {start}..{end}");
        let width = end - start;
        let mut data = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        Matrix { data, rows: self.rows, cols: width }
    }

    /// Concatenates `self` and `rhs` along columns (`[self | rhs]`).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row count mismatch");
        let mut data = Vec::with_capacity(self.len() + rhs.len());
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(rhs.row(r));
        }
        Matrix { data, rows: self.rows, cols: self.cols + rhs.cols }
    }

    /// Appends the rows of `rhs` below `self`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ (unless `self` is empty).
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        if self.is_empty() && self.rows == 0 {
            return rhs.clone();
        }
        assert_eq!(self.cols, rhs.cols, "column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix { data, rows: self.rows + rhs.rows, cols: self.cols }
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix (no allocation).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let row = self.row(r);
            let head: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            writeln!(f, "  [{}{}]", head.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.col(1), vec![1.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.1 - 0.3);
        let direct = a.matmul_t(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let v = [1.0, 2.0, 3.0];
        let got = a.matvec(&v);
        let expect = a.matmul(&Matrix::from_vec(3, 1, v.to_vec()));
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = Matrix::from_fn(5, 7, |r, c| (r as f32 - c as f32) * 0.31 + 0.07);
        let v: Vec<f32> = (0..7).map(|i| (i as f32 - 3.0) * 1.7).collect();
        let mut out = vec![0.0f32; 5];
        a.matvec_into(&v, &mut out);
        let reference = a.matvec(&v);
        for (x, y) in out.iter().zip(&reference) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn matvec_into_rejects_bad_output_len() {
        let a = Matrix::zeros(2, 2);
        let mut out = vec![0.0f32; 3];
        a.matvec_into(&[1.0, 2.0], &mut out);
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.37 + 0.11);
        let b = Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f32).sin());
        let mut out = Matrix::zeros(4, 3);
        a.matmul_into(&b, &mut out);
        let reference = a.matmul(&b);
        for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_t_into_rows_match_matvec_bitwise() {
        // The fused-prefill contract: row i of X · Wᵀ must be bit-identical
        // to the matvec W · xᵢ it replaces, for widths around the dot
        // kernel's 4-wide unroll boundary.
        for width in [1usize, 3, 4, 5, 8, 17] {
            let x = Matrix::from_fn(5, width, |r, c| ((r * 7 + c * 3) as f32).cos() * 1.3);
            let w = Matrix::from_fn(9, width, |r, c| ((r + c * 5) as f32).sin() * 0.7);
            let mut out = Matrix::zeros(5, 9);
            x.matmul_t_into(&w, &mut out);
            let mut row = vec![0.0f32; 9];
            for r in 0..5 {
                w.matvec_into(x.row(r), &mut row);
                for (got, want) in out.row(r).iter().zip(&row) {
                    assert_eq!(got.to_bits(), want.to_bits(), "width {width} row {r}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_t_into_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 3);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_t_into(&b, &mut out);
    }

    #[test]
    fn resize_rows_zeroes_new_rows_and_keeps_content() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 + 1.0);
        m.resize_rows(4);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.row(3), &[0.0, 0.0, 0.0]);
        m.resize_rows(1);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        // Regrowing reuses the zeroed tail.
        m.resize_rows(2);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn slices_and_concat() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let top = m.rows_range(0, 2);
        let bottom = m.rows_range(2, 4);
        assert_eq!(top.vcat(&bottom), m);
        let left = m.cols_range(0, 2);
        let right = m.cols_range(2, 4);
        assert_eq!(left.hcat(&right), m);
    }

    #[test]
    fn identity_is_neutral() {
        let m = Matrix::from_fn(3, 3, |r, c| (r as f32) * 1.5 - c as f32);
        assert_eq!(m.matmul(&Matrix::identity(3)), m);
        assert_eq!(Matrix::identity(3).matmul(&m), m);
    }

    #[test]
    fn map_add_hadamard_scale() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(m.map(f32::abs).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.add(&m).as_slice(), &[2.0, -4.0]);
        assert_eq!(m.hadamard(&m).as_slice(), &[1.0, 4.0]);
        assert_eq!(m.scale(-1.0).as_slice(), &[-1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
