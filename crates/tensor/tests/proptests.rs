//! Property-based tests of the tensor substrate.

use opal_tensor::ops;
use opal_tensor::Matrix;
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in small_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_matmul_neutral(m in small_matrix(10)) {
        let i_right = Matrix::identity(m.cols());
        let i_left = Matrix::identity(m.rows());
        let r = m.matmul(&i_right);
        let l = i_left.matmul(&m);
        for (a, b) in m.as_slice().iter().zip(r.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in m.as_slice().iter().zip(l.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(8),
        seed in 0u64..1000,
    ) {
        // (B + C)·A == B·A + C·A with B, C derived from `a`'s shape.
        let rows = 4usize;
        let b = Matrix::from_fn(rows, a.rows(), |r, c| ((r * 7 + c * 3 + seed as usize) % 11) as f32 - 5.0);
        let c = Matrix::from_fn(rows, a.rows(), |r, c| ((r * 5 + c * 2 + seed as usize) % 13) as f32 - 6.0);
        let lhs = b.add(&c).matmul(&a);
        let rhs = b.matmul(&a).add(&c.matmul(&a));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_t_consistent_with_transpose(a in small_matrix(8), cols in 1usize..6) {
        let b = Matrix::from_fn(cols, a.cols(), |r, c| (r as f32 - c as f32) * 0.3);
        let direct = a.matmul_t(&b);
        let via = a.matmul(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(via.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_shift_invariant(
        row in proptest::collection::vec(-8.0f32..8.0, 1..32),
        shift in -100.0f32..100.0,
    ) {
        let m = Matrix::from_row_slice(&row);
        let shifted = m.map(|v| v + shift);
        let p1 = ops::softmax_rows(&m);
        let p2 = ops::softmax_rows(&shifted);
        for (a, b) in p1.as_slice().iter().zip(p2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rms_norm_output_has_unit_rms(
        row in proptest::collection::vec(-50.0f32..50.0, 2..64),
    ) {
        prop_assume!(row.iter().any(|&v| v.abs() > 1e-3));
        let m = Matrix::from_row_slice(&row);
        let g = vec![1.0; row.len()];
        let y = ops::rms_norm(&m, &g, 0.0);
        let rms: f64 = y.row(0).iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>()
            / row.len() as f64;
        prop_assert!((rms - 1.0).abs() < 1e-3, "rms {rms}");
    }

    #[test]
    fn rope_preserves_vector_norm(
        row in proptest::collection::vec(-5.0f32..5.0, 2..32),
        pos in 0usize..2048,
    ) {
        prop_assume!(row.len() % 2 == 0);
        let mut v = row.clone();
        let before: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        ops::rope_row(&mut v, pos, 10000.0);
        let after: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        prop_assert!((before - after).abs() <= before * 1e-4 + 1e-6);
    }

    #[test]
    fn log_sum_exp_bounds(row in proptest::collection::vec(-30.0f32..30.0, 1..40)) {
        let lse = ops::log_sum_exp(&row);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (row.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn slicing_roundtrips(m in small_matrix(10), split_frac in 0.0f64..1.0) {
        let split = ((m.rows() as f64 * split_frac) as usize).min(m.rows());
        let top = m.rows_range(0, split);
        let bottom = m.rows_range(split, m.rows());
        prop_assert_eq!(top.vcat(&bottom), m);
    }
}
