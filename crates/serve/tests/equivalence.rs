//! Correctness of the batch scheduler against the single-sequence path:
//! a batch of one must match `OpalPipeline::generate` token-for-token, and
//! continuous admission must never perturb the KV caches of sequences
//! already in flight.

use opal::{ModelConfig, OpalPipeline, OperatingPoint};
use opal_serve::{ServeConfig, ServeEngine};

fn pipeline() -> OpalPipeline {
    OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 42).expect("valid point")
}

#[test]
fn batch_of_one_matches_pipeline_generate() {
    let p = pipeline();
    let prompt = [1u32, 2, 3, 4];
    let n = 12;
    let reference = p.generate(&prompt, n);

    let mut engine = ServeEngine::new(
        p.student(),
        ServeConfig { max_batch: 1, max_tokens: n, ..ServeConfig::default() },
    );
    let id = engine.submit(&prompt).expect("valid prompt");
    let report = engine.run();

    assert_eq!(report.request(id).expect("finished").tokens, reference);
}

#[test]
fn every_batch_member_matches_its_solo_run() {
    let p = pipeline();
    let prompts: [&[u32]; 4] = [&[1, 2, 3], &[9, 8], &[5], &[30, 31, 32, 33]];
    let n = 8;

    let mut engine = ServeEngine::new(
        p.student(),
        ServeConfig { max_batch: 4, max_tokens: n, ..ServeConfig::default() },
    );
    let ids: Vec<_> = prompts.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
    let report = engine.run();

    for (prompt, id) in prompts.iter().zip(ids) {
        let solo = p.generate(prompt, n);
        assert_eq!(
            report.request(id).expect("finished").tokens,
            solo,
            "batched output diverged from solo generation for prompt {prompt:?}"
        );
    }
}

#[test]
fn mid_stream_admission_does_not_corrupt_other_sequences() {
    let p = pipeline();
    let early: [&[u32]; 3] = [&[1, 2, 3], &[7, 8], &[20, 21, 22]];
    let late: &[u32] = &[40, 41];
    let n = 10;

    let mut engine = ServeEngine::new(
        p.student(),
        ServeConfig { max_batch: 4, max_tokens: n, ..ServeConfig::default() },
    );
    let early_ids: Vec<_> =
        early.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();

    // Let the first three decode part of their output...
    for _ in 0..4 {
        engine.step();
    }
    // ...then admit a fourth mid-stream and finish everything.
    let late_id = engine.submit(late).expect("valid prompt");
    while !engine.is_idle() {
        engine.step();
    }
    let report = engine.report(std::time::Duration::from_secs(1));

    for (prompt, id) in early.iter().zip(&early_ids) {
        assert_eq!(
            report.request(*id).expect("finished").tokens,
            p.generate(prompt, n),
            "mid-stream admission corrupted the KV cache of prompt {prompt:?}"
        );
    }
    let late_report = report.request(late_id).expect("finished");
    assert_eq!(late_report.tokens, p.generate(late, n));
    assert!(
        late_report.admitted_step >= 4,
        "late request must have joined mid-stream (step {})",
        late_report.admitted_step
    );
}

#[test]
fn oversubscribed_queue_drains_in_submission_order() {
    let p = pipeline();
    let n = 5;
    let mut engine = ServeEngine::new(
        p.student(),
        ServeConfig { max_batch: 2, max_tokens: n, ..ServeConfig::default() },
    );
    let ids: Vec<_> =
        (0..6).map(|i| engine.submit(&[i as u32 + 1, 2]).expect("valid prompt")).collect();
    let report = engine.run();

    assert_eq!(report.requests.len(), 6);
    assert_eq!(report.peak_batch, 2);
    // Earlier submissions are admitted no later than later ones.
    for pair in ids.windows(2) {
        let a = report.request(pair[0]).unwrap().admitted_step;
        let b = report.request(pair[1]).unwrap().admitted_step;
        assert!(a <= b, "queue order violated: {a} > {b}");
    }
    // And each still matches its solo run.
    for (i, id) in ids.iter().enumerate() {
        let solo = p.generate(&[i as u32 + 1, 2], n);
        assert_eq!(report.request(*id).unwrap().tokens, solo);
    }
}
