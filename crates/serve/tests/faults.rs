//! Chaos regression: injected worker panics must be quarantined to their
//! victim on every dispatch path, deadlines must retire requests with
//! their blocks freed exactly once, injected allocation pressure must
//! drive the reclamation ladder instead of erroring, and the engine must
//! drop cleanly right after a fault — no deadlock on the worker pool.

use std::time::Duration;

use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::faults::FaultKind;
use opal_serve::{
    DegradedConfig, FinishReason, Request, RequestId, ServeConfig, ServeEngine, StepMode,
};

fn model() -> Model {
    Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 33).expect("tiny model")
}

fn prompts(vocab: u32, n: u32) -> Vec<Vec<u32>> {
    (0..n).map(|i| (0..6 + i % 3).map(|j| (i * 17 + j * 5 + 3) % vocab).collect()).collect()
}

/// Runs the same four-request workload with a panic injected mid-flight
/// and without, and asserts the quarantine contract: exactly the planned
/// victim retires `Failed`, every survivor's tokens are bit-identical to
/// the fault-free run, and all non-cache blocks return to the pool.
fn quarantine_case(step_mode: StepMode, num_threads: usize) {
    let m = model();
    let vocab = m.config().vocab as u32;
    let n_layers = m.config().n_layers;
    let prompts = prompts(vocab, 4);
    let config = ServeConfig {
        max_batch: 4,
        max_tokens: 12,
        block_size: 4,
        num_threads,
        step_mode,
        ..ServeConfig::default()
    };

    let run = |fault: Option<FaultKind>| {
        let mut engine = ServeEngine::new(&m, config);
        let ids: Vec<RequestId> = prompts
            .iter()
            .map(|p| engine.submit_request(Request::new(p)).expect("submit"))
            .collect();
        for _ in 0..3 {
            engine.step();
        }
        let mut failed_in_step = 0;
        if let Some(fault) = fault {
            engine.inject_fault(fault);
            failed_in_step = engine.step().failed;
        }
        let report = engine.run();
        assert_eq!(
            engine.kv_blocks_in_use(),
            engine.prefix_cache_len() * n_layers,
            "non-cache blocks leaked after drain"
        );
        (ids, report, failed_in_step)
    };

    let (ids, clean, _) = run(None);
    let (chaos_ids, chaos, failed_in_step) = run(Some(FaultKind::WorkerPanic { victim_rank: 1 }));
    assert_eq!(ids, chaos_ids, "submission must be identical across runs");
    assert_eq!(failed_in_step, 1, "the injected panic must fail exactly one sequence");

    assert_eq!(chaos.requests.len(), prompts.len(), "every request must be accounted for");
    let failed: Vec<&RequestId> =
        chaos.requests.iter().filter(|r| r.finish == FinishReason::Failed).map(|r| &r.id).collect();
    assert_eq!(failed.len(), 1, "exactly one quarantined sequence");
    assert_eq!(chaos.failed, 1);
    // victim_rank 1 reduces onto batch slot 1; all four were admitted in
    // submission order at step 1, so the victim is the second request.
    assert_eq!(*failed[0], ids[1], "the planned victim must be the one quarantined");

    for &id in ids.iter().filter(|&&id| id != ids[1]) {
        let got = &chaos.request(id).expect("survivor finished").tokens;
        let want = &clean.request(id).expect("clean run finished").tokens;
        assert_eq!(got, want, "survivor {id} diverged from the fault-free run");
        assert_eq!(chaos.request(id).unwrap().finish, FinishReason::Limit);
    }
}

#[test]
fn injected_panic_quarantines_only_victim_serial() {
    quarantine_case(StepMode::Auto, 1);
}

#[test]
fn injected_panic_quarantines_only_victim_pool() {
    quarantine_case(StepMode::ForcePool, 4);
}

#[test]
fn injected_panic_quarantines_only_victim_scoped() {
    quarantine_case(StepMode::ForceScoped, 4);
}

/// The pool must keep serving after a quarantined panic: the engine
/// re-dispatches to the same workers and they keep acking.
#[test]
fn pool_survives_repeated_panics() {
    let m = model();
    let vocab = m.config().vocab as u32;
    let config = ServeConfig {
        max_batch: 4,
        max_tokens: 16,
        num_threads: 4,
        step_mode: StepMode::ForcePool,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&m, config);
    for p in prompts(vocab, 8) {
        engine.submit_request(Request::new(&p)).expect("submit");
    }
    let mut failed = 0;
    for i in 0..6 {
        engine.inject_fault(FaultKind::WorkerPanic { victim_rank: i });
        failed += engine.step().failed;
    }
    assert!(failed >= 3, "repeated injected panics must keep firing (got {failed})");
    let report = engine.run();
    assert_eq!(report.requests.len(), 8);
    assert!(
        report.requests.iter().any(|r| r.finish == FinishReason::Limit),
        "the engine must still complete work after repeated panics"
    );
}

/// Regression for the worker-pool drop ordering: dropping the engine right
/// after an injected panic fired (workers possibly mid-ack, a sequence
/// freshly quarantined) must complete promptly instead of deadlocking on
/// an ack that never comes.
#[test]
fn drop_right_after_panic_does_not_deadlock() {
    let (tx, rx) = std::sync::mpsc::channel();
    let watchdog = std::thread::spawn(move || {
        let m = model();
        let vocab = m.config().vocab as u32;
        let config = ServeConfig {
            max_batch: 4,
            max_tokens: 32,
            num_threads: 4,
            step_mode: StepMode::ForcePool,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&m, config);
        for p in prompts(vocab, 4) {
            engine.submit_request(Request::new(&p)).expect("submit");
        }
        engine.step();
        engine.inject_fault(FaultKind::WorkerPanic { victim_rank: 0 });
        let summary = engine.step();
        assert_eq!(summary.failed, 1);
        drop(engine);
        tx.send(()).ok();
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("engine drop deadlocked after an injected worker panic");
    watchdog.join().expect("watchdog thread");
}

/// Injected allocation pressure drives the evict → shrink → preempt ladder
/// exactly like a real shortfall: sequences get preempted, nothing errors,
/// and every request still completes with fault-free tokens.
#[test]
fn pressure_fault_preempts_and_preserves_output() {
    let m = model();
    let vocab = m.config().vocab as u32;
    let n_layers = m.config().n_layers;
    let prompts = prompts(vocab, 4);
    let config = ServeConfig {
        max_batch: 4,
        max_tokens: 8,
        block_size: 4,
        max_blocks: n_layers * 24,
        ..ServeConfig::default()
    };

    let run = |pressure: bool| {
        let mut engine = ServeEngine::new(&m, config);
        let ids: Vec<RequestId> = prompts
            .iter()
            .map(|p| engine.submit_request(Request::new(p)).expect("submit"))
            .collect();
        for _ in 0..2 {
            engine.step();
        }
        if pressure {
            engine.inject_fault(FaultKind::BlockPressure { blocks: n_layers * 20 });
            engine.step();
        }
        (ids, engine.run())
    };

    let (ids, clean) = run(false);
    let (_, chaos) = run(true);
    assert!(chaos.preemptions > 0, "pressure on a near-full pool must preempt");
    assert_eq!(chaos.failed, 0, "pressure is a resource fault, not a crash");
    for &id in &ids {
        let r = chaos.request(id).expect("request finished despite pressure");
        assert_eq!(r.finish, FinishReason::Limit);
        assert_eq!(
            &r.tokens,
            &clean.request(id).unwrap().tokens,
            "preempted-and-resumed request {id} diverged"
        );
    }
}

/// A lone sequence must not be preempted (there is nothing to yield to):
/// injected pressure against a single-sequence batch clears itself.
#[test]
fn pressure_fault_on_lone_sequence_is_relieved() {
    let m = model();
    let config =
        ServeConfig { max_batch: 1, max_tokens: 6, block_size: 4, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(&m, config);
    let id = engine.submit(&[5, 6, 7]).expect("submit");
    engine.step();
    engine.inject_fault(FaultKind::BlockPressure { blocks: usize::MAX });
    engine.step();
    let report = engine.run();
    assert_eq!(report.request(id).expect("finished").finish, FinishReason::Limit);
    assert_eq!(report.preemptions, 0);
}

/// Latency spikes are telemetry-only: they surface in the step summary for
/// the harness clock and change nothing about the schedule.
#[test]
fn latency_spike_is_telemetry_only() {
    let m = model();
    let mut engine = ServeEngine::new(&m, ServeConfig { max_tokens: 4, ..ServeConfig::default() });
    engine.submit(&[1, 2, 3]).expect("submit");
    engine.inject_fault(FaultKind::LatencySpike { extra_steps: 5 });
    assert_eq!(engine.step().latency_spike_steps, 5);
    assert_eq!(engine.step().latency_spike_steps, 0, "a spike lasts exactly one step");
}

/// Faults injected while the engine is idle stay armed until work arrives:
/// firing is defined in engine steps, never in wall time.
#[test]
fn idle_injection_stays_armed_until_work_arrives() {
    let m = model();
    let mut engine = ServeEngine::new(&m, ServeConfig { max_tokens: 4, ..ServeConfig::default() });
    engine.inject_fault(FaultKind::WorkerPanic { victim_rank: 0 });
    assert_eq!(engine.step().failed, 0, "idle step must not consume the fault");
    engine.submit(&[9, 8, 7]).expect("submit");
    assert_eq!(engine.step().failed, 1, "the armed fault must fire on the first non-idle step");
}

#[test]
fn queued_deadline_expires_before_admission() {
    let m = model();
    let config = ServeConfig { max_batch: 1, max_tokens: 8, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(&m, config);
    let hog = engine.submit(&[1, 2, 3]).expect("submit");
    let doomed = engine
        .submit_request(Request::new(&[4, 5, 6]).with_deadline(3))
        .expect("submit with deadline");
    let report = engine.run();
    assert_eq!(report.request(hog).expect("hog").finish, FinishReason::Limit);
    let r = report.request(doomed).expect("expired request must still be reported");
    assert_eq!(r.finish, FinishReason::DeadlineExceeded);
    assert!(r.tokens.is_empty(), "a never-admitted request cannot have generated tokens");
    assert_eq!(report.deadline_exceeded, 1);
}

#[test]
fn decoding_deadline_truncates_generation_and_frees_blocks() {
    let m = model();
    let n_layers = m.config().n_layers;
    let config = ServeConfig { max_tokens: 64, block_size: 4, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(&m, config);
    let id = engine
        .submit_request(Request::new(&[3, 1, 4, 1, 5]).with_deadline(6))
        .expect("submit with deadline");
    let report = engine.run();
    let r = report.request(id).expect("expired request reported");
    assert_eq!(r.finish, FinishReason::DeadlineExceeded);
    assert!(
        !r.tokens.is_empty() && r.tokens.len() < 64,
        "a mid-decode expiry keeps partial output ({} tokens)",
        r.tokens.len()
    );
    assert_eq!(
        engine.kv_blocks_in_use(),
        engine.prefix_cache_len() * n_layers,
        "expired request must free its private blocks"
    );
}

#[test]
fn generous_deadline_never_fires() {
    let m = model();
    let mut engine = ServeEngine::new(&m, ServeConfig { max_tokens: 4, ..ServeConfig::default() });
    let id = engine
        .submit_request(Request::new(&[2, 7, 1]).with_deadline(10_000))
        .expect("submit with deadline");
    let report = engine.run();
    assert_eq!(report.request(id).expect("finished").finish, FinishReason::Limit);
    assert_eq!(report.deadline_exceeded, 0);
}

/// The deadline × preemption interaction: a request preempted under
/// pressure and then expiring in the queue must report `DeadlineExceeded`
/// (not `Cancelled`), and its blocks — already freed by the preemption —
/// must not be freed twice (the audit and drain accounting would catch a
/// double free).
#[test]
fn preempted_then_expired_reports_deadline_and_frees_once() {
    let m = model();
    let vocab = m.config().vocab as u32;
    let n_layers = m.config().n_layers;
    let config = ServeConfig {
        max_batch: 3,
        max_tokens: 24,
        block_size: 4,
        max_blocks: n_layers * 18,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&m, config);
    for p in prompts(vocab, 2) {
        engine.submit_request(Request::new(&p)).expect("submit");
    }
    // The youngest sequence is the preemption victim; give it the deadline.
    let doomed = engine
        .submit_request(Request::new(&[8, 6, 7, 5, 3, 0, 9]).with_deadline(4))
        .expect("submit with deadline");
    for _ in 0..2 {
        engine.step();
    }
    // Starve the pool so the ladder reaches preemption while `doomed` is
    // both the youngest active sequence and inside its deadline window.
    engine.inject_fault(FaultKind::BlockPressure { blocks: usize::MAX });
    let summary = engine.step();
    assert!(summary.preempted > 0, "pressure must preempt the youngest sequence");
    let report = engine.run();
    let r = report.request(doomed).expect("expired request reported");
    assert_eq!(
        r.finish,
        FinishReason::DeadlineExceeded,
        "a preempted-then-expired request reports its deadline, never a cancellation"
    );
    assert!(report.preemptions > 0);
    assert_eq!(
        engine.kv_blocks_in_use(),
        engine.prefix_cache_len() * n_layers,
        "blocks must be freed exactly once across preemption and expiry"
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "audit violations: {:#?}", audit.violations);
}

/// Degraded mode under sustained pressure: the engine transitions in,
/// shrinks its budgets, sheds queued load down to the configured bound,
/// and transitions back out once the pressure clears.
#[test]
fn degraded_mode_sheds_load_and_recovers() {
    let m = model();
    let vocab = m.config().vocab as u32;
    let config = ServeConfig {
        max_batch: 2,
        max_tokens: 6,
        block_size: 4,
        // Pressure is a percentage of capacity: the pool must be bounded
        // for the degraded-mode thresholds to mean anything.
        max_blocks: m.config().n_layers * 64,
        degraded: Some(DegradedConfig {
            enter_pressure_pct: 50,
            exit_pressure_pct: 40,
            cooldown_steps: 2,
            shed_queue: 1,
            ..DegradedConfig::default()
        }),
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(&m, config);
    for p in prompts(vocab, 8) {
        engine.submit_request(Request::new(&p)).expect("submit");
    }
    // Inject pressure for a few consecutive steps to hold the engine in
    // degraded mode while the queue is deep, then let it clear.
    let mut saw_degraded = false;
    let mut shed = 0;
    for _ in 0..4 {
        engine.inject_fault(FaultKind::BlockPressure { blocks: usize::MAX });
        let s = engine.step();
        saw_degraded |= s.degraded;
        shed += s.shed;
    }
    assert!(saw_degraded, "sustained pressure above the threshold must enter degraded mode");
    assert!(shed > 0, "a queue above shed_queue must be shed while degraded");
    let report = engine.run();
    assert!(!engine.degraded(), "the engine must recover once pressure clears");
    assert!(report.degraded_steps > 0);
    assert!(report.mode_transitions >= 2, "enter and exit must both be counted");
    assert_eq!(report.shed, shed as u64);
    assert!(report.requests.iter().any(|r| r.finish == FinishReason::Shed));
    assert!(
        report.requests.iter().any(|r| r.finish == FinishReason::Limit),
        "surviving requests still complete"
    );
}
