//! Property tests over the engine's public API: arbitrary
//! submit/step/cancel churn under a tight KV pool must preserve the
//! prefix-cache/pool accounting invariants and stay bit-deterministic.

use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{Request, ServeConfig, ServeEngine};
use proptest::prelude::*;

fn model() -> Model {
    Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 11).expect("tiny model")
}

/// Replays one op-coded churn step. `op`: 0 ⇒ submit a prompt from a
/// small shared-prefix universe (parameterized by `a`, length by `b`),
/// 1 ⇒ run a scheduler step, 2 ⇒ cancel the `a`-th in-flight request,
/// 3 ⇒ submit with a tight `deadline_steps` TTL (so expiry races
/// admission, decoding, cancellation and preemption freely). Returns a
/// digest of what happened for cross-run comparison.
fn apply(engine: &mut ServeEngine<'_>, vocab: u32, op: u8, a: usize, b: usize) -> u64 {
    match op {
        0 | 3 => {
            let sys: Vec<u32> = (0..8u32).map(|i| (i * 7 + a as u32) % vocab).collect();
            let mut prompt = sys;
            prompt.extend((0..b as u32).map(|j| (j * 13 + a as u32 * 3) % vocab));
            let mut request = Request::new(&prompt).with_limit(1 + b);
            if op == 3 {
                request = request.with_deadline(1 + (a + b) as u64 % 6);
            }
            match engine.submit_request(request) {
                Ok(id) => 1000 + format!("{id}").bytes().map(u64::from).sum::<u64>(),
                Err(_) => 2000,
            }
        }
        1 => {
            let s = engine.step();
            3000 + s.generated as u64 * 16 + s.finished as u64 + s.expired as u64 * 256
        }
        _ => {
            let ids = engine.in_flight();
            if ids.is_empty() {
                4000
            } else {
                4001 + u64::from(engine.cancel(ids[a % ids.len()]))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any churn sequence drains, the only KV blocks still
    /// allocated are the prefix cache's (`n_layers` per cached block) —
    /// every block-table, copy-on-write and cancelled-request block went
    /// back to the free list.
    #[test]
    fn drained_engine_accounts_every_block(
        ops in proptest::collection::vec((0u8..4, 0usize..4, 1usize..8), 1..40)
    ) {
        let m = model();
        let n_layers = m.config().n_layers;
        let vocab = m.config().vocab as u32;
        let config = ServeConfig {
            max_batch: 3,
            max_tokens: 12,
            block_size: 4,
            max_blocks: n_layers * 16, // tight: forces evict/preempt churn
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&m, config);
        for &(op, a, b) in &ops {
            apply(&mut engine, vocab, op, a, b);
            prop_assert!(engine.kv_blocks_in_use() <= config.max_blocks, "pool bound violated");
        }
        let mid = engine.audit();
        prop_assert!(mid.is_clean(), "audit violations mid-churn: {:#?}", mid.violations);
        let mut guard = 0;
        while !engine.is_idle() {
            engine.step();
            guard += 1;
            prop_assert!(guard < 100_000, "drain failed to make progress");
        }
        prop_assert_eq!(
            engine.kv_blocks_in_use(),
            engine.prefix_cache_len() * n_layers,
            "non-cache blocks leaked after drain"
        );
        prop_assert!(engine.kv_blocks_peak() <= config.max_blocks);
        let audit = engine.audit();
        prop_assert!(audit.is_clean(), "audit violations after drain: {:#?}", audit.violations);
    }

    /// The identical op sequence replayed against two engines produces
    /// identical step summaries, cancellations and final reports — churn
    /// scheduling is a pure function of the op sequence.
    #[test]
    fn churn_is_deterministic(
        ops in proptest::collection::vec((0u8..4, 0usize..4, 1usize..8), 1..40)
    ) {
        let m = model();
        let config = ServeConfig {
            max_batch: 3,
            max_tokens: 12,
            block_size: 4,
            max_blocks: m.config().n_layers * 16,
            ..ServeConfig::default()
        };
        let mut x = ServeEngine::new(&m, config);
        let mut y = ServeEngine::new(&m, config);
        let vocab = m.config().vocab as u32;
        for &(op, a, b) in &ops {
            let dx = apply(&mut x, vocab, op, a, b);
            let dy = apply(&mut y, vocab, op, a, b);
            prop_assert_eq!(dx, dy, "op ({}, {}, {}) diverged", op, a, b);
        }
        while !x.is_idle() {
            x.step();
        }
        while !y.is_idle() {
            y.step();
        }
        let (rx, ry) = (x.report(Default::default()), y.report(Default::default()));
        prop_assert_eq!(rx.requests.len(), ry.requests.len());
        for (a, b) in rx.requests.iter().zip(&ry.requests) {
            prop_assert_eq!(&a.tokens, &b.tokens, "request {} tokens diverged", a.id);
            prop_assert_eq!(a.finish, b.finish);
            prop_assert_eq!(a.token_steps.clone(), b.token_steps.clone());
            // An expiry must never masquerade as a client cancellation or
            // vice versa: cancel ops and deadline expiries race freely in
            // this workload, and each retirement keeps its true reason.
            if a.finish == opal_serve::FinishReason::DeadlineExceeded {
                prop_assert!(a.tokens.len() < 1 + 7, "an expired request cannot be at its limit");
            }
        }
        prop_assert_eq!(rx.deadline_exceeded, ry.deadline_exceeded);
        prop_assert_eq!(rx.rejections, ry.rejections);
    }
}
