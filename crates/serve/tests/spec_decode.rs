//! Speculative decoding: output identity and rollback accounting.
//!
//! The speculation contract is absolute — draft/verify may only change
//! *when* tokens are emitted, never *what*: every configuration (draft
//! source, depth `k`, KV scheme, step mode, thread count, preemption,
//! cancellation) must reproduce the non-speculative engine's token
//! streams and finish reasons bit-for-bit, and every rejected draft tail
//! must roll its KV blocks back without leaking a single one.

use opal_model::sampling::Sampler;
use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{
    DraftSource, FinishReason, KvScheme, Request, SamplingParams, ServeConfig, ServeEngine,
    SpecConfig, StepMode,
};
use proptest::prelude::*;

fn model() -> Model {
    Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 42).expect("tiny model")
}

const MODES: [StepMode; 3] = [StepMode::Auto, StepMode::ForcePool, StepMode::ForceScoped];

fn prompts(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32).map(|i| (0..8).map(|j| (i * 17 + j * 3 + 1) % 64).collect()).collect()
}

/// Runs `prompts` to completion under `config`; request 1 (when present)
/// samples with temperature so the RNG-cloning acceptance path is always
/// exercised alongside greedy. Returns per-request token streams and the
/// final report.
fn run_all(
    m: &Model,
    config: ServeConfig,
    prompts: &[Vec<u32>],
    limit: usize,
) -> (Vec<Vec<u32>>, opal_serve::ServeReport) {
    let mut engine = ServeEngine::new(m, config);
    let mut ids = Vec::new();
    for (i, pr) in prompts.iter().enumerate() {
        let mut req = Request::new(pr).with_limit(limit);
        if i == 1 {
            req =
                req.with_sampling(SamplingParams { sampler: Sampler::Temperature(0.8), seed: 99 });
        }
        ids.push(engine.submit_request(req).expect("valid request"));
    }
    let report = engine.run();
    let tokens =
        ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect();
    (tokens, report)
}

/// A draft that keeps the full layer stack reproduces the served model
/// exactly, so greedy verification must accept every proposal and the
/// engine must emit `k + 1` tokens per speculative step.
#[test]
fn full_depth_draft_accepts_every_proposal() {
    let m = model();
    let full = m.config().n_layers;
    let base = ServeConfig { max_batch: 1, max_tokens: 12, ..ServeConfig::default() };
    let (plain, _) = run_all(&m, base, &prompts(1), 12);
    for k in 1..=4usize {
        let cfg = ServeConfig {
            spec: Some(SpecConfig { draft: DraftSource::Truncated { layers: full }, k }),
            ..base
        };
        let (tokens, report) = run_all(&m, cfg, &prompts(1), 12);
        assert_eq!(tokens, plain, "full-depth draft changed output at k={k}");
        assert!(report.drafted_tokens > 0);
        assert_eq!(
            report.acceptance_rate(),
            1.0,
            "a full-depth greedy draft must be accepted verbatim (k={k}): {} / {}",
            report.accepted_tokens,
            report.drafted_tokens
        );
        // k accepted tokens ride along with each sampled one, so the
        // speculative run must take strictly fewer steps than 1/step.
        assert!(
            report.steps < plain[0].len() as u64 + 4,
            "speculation saved no steps: {} steps for {} tokens",
            report.steps,
            plain[0].len()
        );
    }
}

/// Every draft source × depth × KV scheme must match the plain engine's
/// token streams under batched serving with a stochastic sampler in the
/// mix, and leave zero blocks behind once drained and dropped.
#[test]
fn spec_output_is_bit_identical_across_sources_depths_and_schemes() {
    let m = model();
    let ps = prompts(3);
    let limit = 10;
    for scheme in [KvScheme::Exact, KvScheme::mxopal(), KvScheme::mxopal4()] {
        let base = ServeConfig {
            max_batch: 3,
            max_tokens: limit,
            block_size: 4,
            kv_scheme: scheme,
            ..ServeConfig::default()
        };
        let (plain, _) = run_all(&m, base, &ps, limit);
        for draft in [
            DraftSource::Truncated { layers: 1 },
            DraftSource::Truncated { layers: 2 },
            DraftSource::NGram,
        ] {
            for k in 1..=4usize {
                let cfg = ServeConfig { spec: Some(SpecConfig { draft, k }), ..base };
                let mut engine = ServeEngine::new(&m, cfg);
                let ids: Vec<_> = ps
                    .iter()
                    .enumerate()
                    .map(|(i, pr)| {
                        let mut req = Request::new(pr).with_limit(limit);
                        if i == 1 {
                            req = req.with_sampling(SamplingParams {
                                sampler: Sampler::Temperature(0.8),
                                seed: 99,
                            });
                        }
                        engine.submit_request(req).expect("valid request")
                    })
                    .collect();
                let report = engine.run();
                for (i, id) in ids.iter().enumerate() {
                    let r = report.request(*id).expect("finished");
                    assert_eq!(r.finish, FinishReason::Limit);
                    assert_eq!(
                        r.tokens, plain[i],
                        "diverged: scheme {scheme:?}, draft {draft:?}, k={k}, request {i}"
                    );
                }
                let audit = engine.audit();
                assert!(audit.is_clean(), "audit after drain: {:#?}", audit.violations);
                let pool = engine.kv_pool().clone();
                drop(engine);
                assert_eq!(
                    pool.in_use(),
                    0,
                    "leaked blocks: scheme {scheme:?}, draft {draft:?}, k={k}"
                );
            }
        }
    }
}

/// Speculation must survive preemption and resume without changing a
/// token: a pool sized to thrash forces preempt→re-admit cycles, the
/// draft state is dropped with the sequence and lazily rebuilt, and the
/// output still matches the unconstrained non-speculative run.
#[test]
fn spec_survives_preemption_and_resume() {
    let m = model();
    let nl = m.config().n_layers;
    let ps = prompts(4);
    let limit = 8;
    let unconstrained =
        ServeConfig { max_batch: 4, max_tokens: limit, block_size: 4, ..ServeConfig::default() };
    let (plain, plain_report) = run_all(&m, unconstrained, &ps, limit);
    assert_eq!(plain_report.preemptions, 0);

    for draft in [DraftSource::Truncated { layers: 1 }, DraftSource::NGram] {
        let tight = ServeConfig {
            // Tight enough to preempt, roomy enough for the feasibility
            // gate (prompt 8 + limit 8 + k 3 − 1 = 18 positions → 5+1
            // blocks × layers = 12; two residents peak at 16).
            max_blocks: nl * 7,
            spec: Some(SpecConfig { draft, k: 3 }),
            ..unconstrained
        };
        let (tokens, report) = run_all(&m, tight, &ps, limit);
        assert!(
            report.preemptions > 0,
            "pool of {} blocks was sized to force preemption ({draft:?})",
            nl * 7
        );
        assert_eq!(tokens, plain, "preempt→resume changed output under speculation ({draft:?})");
    }
}

/// Cancelling mid-flight while drafts are in play: the partial stream
/// must be a prefix of the plain run's, and the cancelled sequence's
/// blocks — including any speculative rows awaiting rollback — must all
/// return to the pool.
#[test]
fn cancel_mid_draft_releases_every_block() {
    let m = model();
    let ps = prompts(2);
    let limit = 16;
    let base = ServeConfig { max_batch: 2, max_tokens: limit, ..ServeConfig::default() };
    let (plain, _) = run_all(&m, base, &ps, limit);

    let cfg = ServeConfig {
        spec: Some(SpecConfig { draft: DraftSource::Truncated { layers: 1 }, k: 4 }),
        ..base
    };
    let mut engine = ServeEngine::new(&m, cfg);
    let ids: Vec<_> = ps.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
    for _ in 0..3 {
        engine.step();
    }
    assert!(engine.cancel(ids[0]), "request 0 should be in flight");
    let report = engine.run();
    let cancelled = report.request(ids[0]).expect("reported");
    assert_eq!(cancelled.finish, FinishReason::Cancelled);
    assert!(
        plain[0].starts_with(&cancelled.tokens),
        "cancelled stream is not a prefix of the plain run"
    );
    let survivor = report.request(ids[1]).expect("finished");
    // Request 1 carries the temperature sampler in `run_all`; here both
    // were greedy, so compare against the greedy plain run directly.
    assert_eq!(survivor.tokens.len(), limit);
    let audit = engine.audit();
    assert!(audit.is_clean(), "audit after cancel: {:#?}", audit.violations);
    let pool = engine.kv_pool().clone();
    drop(engine);
    assert_eq!(pool.in_use(), 0, "cancel mid-draft leaked blocks");
}

/// The n-gram draft feeds on repetition: a looping prompt must reach a
/// positive acceptance rate with zero draft-model forward passes, and
/// still match the plain engine exactly.
#[test]
fn ngram_draft_accepts_on_repetitive_streams() {
    let m = model();
    let prompt: Vec<u32> = (0..16).map(|i| [5u32, 9, 13][i % 3]).collect();
    let limit = 20;
    let base = ServeConfig { max_batch: 1, max_tokens: limit, ..ServeConfig::default() };
    let (plain, _) = run_all(&m, base, &[prompt.clone()], limit);
    let cfg = ServeConfig { spec: Some(SpecConfig { draft: DraftSource::NGram, k: 3 }), ..base };
    let (tokens, report) = run_all(&m, cfg, &[prompt], limit);
    assert_eq!(tokens, plain);
    assert!(report.drafted_tokens > 0, "a periodic stream must produce n-gram hits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary (scheme, draft, k, threads, mode) points: token streams
    /// and finish reasons equal the plain single-threaded run, and the
    /// drained pool holds only prefix-cache blocks (audited clean).
    #[test]
    fn spec_matches_plain_engine_everywhere(
        scheme_ix in 0usize..3,
        draft_ix in 0usize..3,
        k in 1usize..=4,
        threads in 1usize..=4,
        mode_ix in 0usize..3,
        seed in 0u32..50,
    ) {
        let m = model();
        let scheme = [KvScheme::Exact, KvScheme::mxopal(), KvScheme::mxopal4()][scheme_ix];
        let draft = [
            DraftSource::Truncated { layers: 1 },
            DraftSource::Truncated { layers: m.config().n_layers },
            DraftSource::NGram,
        ][draft_ix];
        let ps: Vec<Vec<u32>> = (0..3u32)
            .map(|i| (0..6).map(|j| (seed + i * 29 + j * 5) % 64).collect())
            .collect();
        let limit = 8;
        let base = ServeConfig {
            max_batch: 3,
            max_tokens: limit,
            block_size: 4,
            kv_scheme: scheme,
            ..ServeConfig::default()
        };
        let (plain, _) = run_all(&m, base, &ps, limit);
        let cfg = ServeConfig {
            spec: Some(SpecConfig { draft, k }),
            num_threads: threads,
            step_mode: MODES[mode_ix],
            ..base
        };
        let mut engine = ServeEngine::new(&m, cfg);
        let ids: Vec<_> = ps
            .iter()
            .enumerate()
            .map(|(i, pr)| {
                let mut req = Request::new(pr).with_limit(limit);
                if i == 1 {
                    req = req.with_sampling(SamplingParams {
                        sampler: Sampler::Temperature(0.8),
                        seed: 99,
                    });
                }
                engine.submit_request(req).expect("valid request")
            })
            .collect();
        let report = engine.run();
        for (i, id) in ids.iter().enumerate() {
            let r = report.request(*id).expect("finished");
            prop_assert_eq!(r.finish, FinishReason::Limit);
            prop_assert_eq!(
                &r.tokens, &plain[i],
                "scheme {:?} draft {:?} k={} threads={} mode={:?}",
                scheme, draft, k, threads, MODES[mode_ix]
            );
        }
        let audit = engine.audit();
        prop_assert!(audit.is_clean(), "audit: {:#?}", audit.violations);
        let pool = engine.kv_pool().clone();
        drop(engine);
        prop_assert_eq!(pool.in_use(), 0, "dropped engine must free every block");
    }
}
