//! The scheduler over quantized KV pages, and trie-aware queue
//! reordering.
//!
//! Quantized pages have no exact-cache oracle — their contract is
//! determinism with themselves: the same workload must produce identical
//! tokens across step modes, thread counts, and preempt→resume cycles
//! (a resumed sequence re-encodes the same rows into the same codes).
//! The reordering tests pin the admission policy: under block pressure a
//! queued request whose prefix is trie-resident may jump a cache-cold
//! head, but never past [`REORDER_STARVATION_BOUND`] bypasses.

use opal::{ModelConfig, OpalPipeline, OperatingPoint};
use opal_model::sampling::Sampler;
use opal_serve::{
    FinishReason, KvScheme, Request, SamplingParams, ServeConfig, ServeEngine, StepMode,
    REORDER_STARVATION_BOUND,
};

fn pipeline() -> OpalPipeline {
    OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 42).expect("valid point")
}

const MODES: [StepMode; 3] = [StepMode::Auto, StepMode::ForcePool, StepMode::ForceScoped];

/// Quantized KV under pressure: every StepMode × thread-count combination
/// must reproduce the single-threaded uncontended run bit-for-bit, and a
/// pool small enough to force preemption must resume every sequence onto
/// re-encoded pages without changing a token — including a
/// temperature-sampled request whose RNG crosses the preemption.
#[test]
fn quantized_kv_is_deterministic_across_modes_threads_and_preemption() {
    let p = pipeline();
    let prompts: Vec<Vec<u32>> =
        (0..4u32).map(|i| (0..8).map(|j| (i * 17 + j * 3 + 1) % 64).collect()).collect();
    let n = 6;
    let sampled = SamplingParams { sampler: Sampler::Temperature(1.0), seed: 7 };

    let run = |kv: KvScheme, max_blocks: usize, mode: StepMode, threads: usize| {
        let config = ServeConfig {
            max_batch: 4,
            max_tokens: n,
            num_threads: threads,
            step_mode: mode,
            block_size: 4,
            max_blocks,
            kv_scheme: kv,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        let mut ids = Vec::new();
        for (i, pr) in prompts.iter().enumerate() {
            let mut req = Request::new(pr).with_limit(n);
            if i == 2 {
                req = req.with_sampling(sampled);
            }
            ids.push(engine.submit_request(req).expect("valid request"));
        }
        let report = engine.run();
        let tokens: Vec<Vec<u32>> =
            ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect();
        (tokens, report.preemptions)
    };

    for kv in [KvScheme::mxopal(), KvScheme::mxint()] {
        let (reference, baseline_preemptions) = run(kv, usize::MAX, StepMode::Auto, 1);
        assert_eq!(baseline_preemptions, 0, "an unbounded pool must never preempt");
        for tokens in &reference {
            assert_eq!(tokens.len(), n);
        }
        for mode in MODES {
            for threads in [1usize, 4] {
                let (uncontended, _) = run(kv, usize::MAX, mode, threads);
                assert_eq!(
                    uncontended,
                    reference,
                    "{} {mode:?} threads={threads} diverged uncontended",
                    kv.name()
                );
                // 12 blocks can hold barely more than one sequence's worst
                // case (same block geometry as the exact cache), so
                // concurrent progress forces preempt→resume cycles.
                let (pressured, preemptions) = run(kv, 12, mode, threads);
                assert!(preemptions > 0, "a 12-block pool must preempt under this load");
                assert_eq!(
                    pressured,
                    reference,
                    "{} {mode:?} threads={threads}: preemption changed quantized output",
                    kv.name()
                );
            }
        }
    }
}

/// Trie-aware reordering under block pressure: warm requests (prefix
/// resident via a long-running donor) jump a cache-cold queue head, but
/// the cold request is bypassed at most [`REORDER_STARVATION_BOUND`]
/// times and still completes — reordering trades latency within a bound,
/// never starvation.
#[test]
fn reordering_never_starves_a_cold_request_past_the_bound() {
    let p = pipeline();
    let nl = p.student().config().n_layers;
    assert_eq!(nl, 2, "block arithmetic below assumes the tiny model");
    let prefix: Vec<u32> = (0..12u32).map(|i| (i * 5 + 2) % 64).collect(); // 3 blocks of 4
    let cold_prompt: Vec<u32> = (0..12u32).map(|i| (i * 7 + 33) % 64).collect(); // no overlap
    let n_warm = 8u32;

    let config = ServeConfig {
        max_batch: 8,
        max_tokens: 4,
        prefill_chunk: usize::MAX,
        block_size: 4,
        // Donor resident (8 blocks) leaves 6 free: the cold request needs
        // nl * (3 + 1) = 8, a warm follower only nl * (1 + 1) = 4.
        max_blocks: 14,
        prefix_sharing: true,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);

    // The donor prefills the prefix (publishing it to the trie) and keeps
    // decoding, so the prefix blocks stay mapped — pressure cannot be
    // relieved by evicting them.
    let donor = engine.submit_request(Request::new(&prefix).with_limit(8)).expect("valid request");
    engine.step();

    // A cache-cold request at the head of the queue, warm followers behind.
    let cold = engine.submit(&cold_prompt).expect("valid request");
    let warm_ids: Vec<_> = (0..n_warm)
        .map(|i| {
            let mut pr = prefix.clone();
            pr.extend([40 + i, 50 + i]);
            engine.submit(&pr).expect("valid request")
        })
        .collect();

    let report = engine.run();
    for id in warm_ids.iter().chain([&donor, &cold]) {
        assert_eq!(report.request(*id).expect("finished").finish, FinishReason::Limit);
    }
    let cold_admitted = report.request(cold).expect("finished").admitted_step;
    let jumped = warm_ids
        .iter()
        .filter(|id| report.request(**id).expect("finished").admitted_step < cold_admitted)
        .count();
    assert!(jumped >= 1, "no warm request was reordered ahead of the cold head");
    assert!(
        jumped as u32 <= REORDER_STARVATION_BOUND,
        "cold request bypassed {jumped} times, bound is {REORDER_STARVATION_BOUND}"
    );
    assert!(
        warm_ids
            .iter()
            .any(|id| report.request(*id).expect("finished").admitted_step > cold_admitted),
        "the bound never bound: every warm request was admitted before the cold one"
    );
}

/// With sharing disabled the queue is strictly FIFO even under pressure:
/// the reorder path must not engage.
#[test]
fn no_reordering_without_prefix_sharing() {
    let p = pipeline();
    let prefix: Vec<u32> = (0..12u32).map(|i| (i * 5 + 2) % 64).collect();
    let cold_prompt: Vec<u32> = (0..12u32).map(|i| (i * 7 + 33) % 64).collect();

    let config = ServeConfig {
        max_batch: 8,
        max_tokens: 4,
        prefill_chunk: usize::MAX,
        block_size: 4,
        max_blocks: 14,
        prefix_sharing: false,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);
    engine.submit_with_limit(&prefix, 8).expect("valid request");
    engine.step();
    let cold = engine.submit(&cold_prompt).expect("valid request");
    let followers: Vec<_> = (0..4u32)
        .map(|i| {
            let mut pr = prefix.clone();
            pr.extend([40 + i, 50 + i]);
            engine.submit(&pr).expect("valid request")
        })
        .collect();

    let report = engine.run();
    let cold_admitted = report.request(cold).expect("finished").admitted_step;
    for id in followers {
        assert!(
            report.request(id).expect("finished").admitted_step >= cold_admitted,
            "a later request was admitted before the queue head without prefix sharing"
        );
    }
}
