//! Determinism of the parallel batch step: for any `num_threads`, every
//! sequence's output must be token-identical to the sequential seed path
//! (single-sequence generation), for mixed prompt lengths and mid-stream
//! admission, and independent of its batch neighbours.

use opal::{ModelConfig, OpalPipeline, OperatingPoint};
use opal_model::sampling::Sampler;
use opal_serve::{Request, SamplingParams, ServeConfig, ServeEngine, StepMode};

fn pipeline() -> OpalPipeline {
    OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 42).expect("valid point")
}

/// Every dispatch mode the engine supports. `ForcePool` and `ForceScoped`
/// genuinely cross threads regardless of host core count; `Auto` may
/// legitimately serialize (that's its job), but must still be
/// token-identical.
const MODES: [StepMode; 3] = [StepMode::Auto, StepMode::ForcePool, StepMode::ForceScoped];

/// Mixed prompt lengths, batch 16, one token stream per (thread count,
/// dispatch mode) — every member must match its solo run exactly, and all
/// engines (1 thread, 4 threads, oversubscribed 16 threads; persistent
/// pool, per-step scoped threads, and the auto heuristic) must agree.
#[test]
fn parallel_step_matches_sequential_for_mixed_prompts() {
    let p = pipeline();
    let prompts: Vec<Vec<u32>> =
        (0..16u32).map(|i| (0..(i % 5 + 1)).map(|j| (i * 7 + j * 3) % 64).collect()).collect();
    let n = 12;

    let mut outputs = Vec::new();
    for step_mode in MODES {
        for threads in [1usize, 4, 16] {
            let config = ServeConfig {
                max_batch: 16,
                max_tokens: n,
                num_threads: threads,
                step_mode,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(p.student(), config);
            let ids: Vec<_> =
                prompts.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
            let report = engine.run();
            let tokens: Vec<Vec<u32>> = ids
                .iter()
                .map(|id| report.request(*id).expect("finished").tokens.clone())
                .collect();
            outputs.push((step_mode, threads, tokens));
        }
    }

    let (_, _, reference) = &outputs[0];
    for (prompt, got) in prompts.iter().zip(reference) {
        let solo = p.generate(prompt, n);
        assert_eq!(got, &solo, "batched output diverged from solo for {prompt:?}");
    }
    for (mode, threads, tokens) in &outputs[1..] {
        assert_eq!(tokens, reference, "{mode:?} with num_threads={threads} diverged");
    }
}

/// The pool under churn: requests retire mid-run (staggered limits) while
/// new ones are admitted from the queue, across thread counts. Chunk
/// boundaries shift every step as the batch shrinks and refills; output
/// must not.
#[test]
fn pool_is_deterministic_under_mid_run_admission_and_retirement() {
    let p = pipeline();
    let prompts: Vec<Vec<u32>> =
        (0..12u32).map(|i| (0..(i % 4 + 1)).map(|j| (i * 11 + j * 5) % 64).collect()).collect();
    // Staggered limits: retirements at different steps reshuffle the batch.
    let limit = |i: usize| 3 + (i * 5) % 9;

    let run = |step_mode: StepMode, threads: usize| -> Vec<Vec<u32>> {
        let config = ServeConfig {
            max_batch: 4,
            max_tokens: 16,
            num_threads: threads,
            step_mode,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        // Submit in two waves with steps in between, so admission happens
        // both into a fresh batch and into one mid-decode.
        let mut ids = Vec::new();
        for (i, pr) in prompts[..6].iter().enumerate() {
            ids.push(engine.submit_with_limit(pr, limit(i)).expect("valid prompt"));
        }
        for _ in 0..5 {
            engine.step();
        }
        for (i, pr) in prompts[6..].iter().enumerate() {
            ids.push(engine.submit_with_limit(pr, limit(6 + i)).expect("valid prompt"));
        }
        let report = engine.run();
        ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect()
    };

    let reference = run(StepMode::Auto, 1);
    for (i, tokens) in reference.iter().enumerate() {
        assert_eq!(tokens.len(), limit(i), "request {i} must run to its own limit");
        assert_eq!(tokens, &p.generate(&prompts[i], limit(i)), "request {i} diverged from solo");
    }
    for step_mode in MODES {
        for threads in [2usize, 4, 16] {
            assert_eq!(
                run(step_mode, threads),
                reference,
                "{step_mode:?} with num_threads={threads} diverged under churn"
            );
        }
    }
}

/// Chunked, fairness-aware admission under every dispatch mode: long
/// prompts consumed a few positions per step, interleaved with decode,
/// while slots churn — output must be identical to the solo run for every
/// `prefill_chunk`, `StepMode` and thread count (prefill grants are fixed
/// by scheduler state before any fan-out, so workers cannot race on them).
#[test]
fn chunked_admission_is_deterministic_across_modes_and_threads() {
    let p = pipeline();
    // Long prompts (up to 23 tokens) so small chunks genuinely span many
    // steps; lengths staggered so prefill completions interleave with
    // decode and retirement.
    let prompts: Vec<Vec<u32>> =
        (0..8u32).map(|i| (0..(5 + i * 3)).map(|j| (i * 13 + j * 7) % 64).collect()).collect();
    let n = 6;

    let run = |step_mode: StepMode, threads: usize, chunk: usize| -> Vec<Vec<u32>> {
        let config = ServeConfig {
            max_batch: 3,
            max_tokens: n,
            num_threads: threads,
            step_mode,
            prefill_chunk: chunk,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        let ids: Vec<_> =
            prompts.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
        let report = engine.run();
        ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect()
    };

    let reference = run(StepMode::Auto, 1, 3);
    for (prompt, got) in prompts.iter().zip(&reference) {
        assert_eq!(got, &p.generate(prompt, n), "chunked output diverged from solo");
    }
    for step_mode in MODES {
        for threads in [1usize, 4, 16] {
            for chunk in [1usize, 3, 7, usize::MAX] {
                assert_eq!(
                    run(step_mode, threads, chunk),
                    reference,
                    "{step_mode:?} threads={threads} chunk={chunk} diverged"
                );
            }
        }
    }
}

/// Dropping an engine mid-flight — queued requests, active sequences, pool
/// threads spawned — must join every worker and return; repeatedly, so a
/// leaked thread or wedged channel would show up as a hang or as resource
/// exhaustion across iterations.
#[test]
fn engine_drop_with_work_pending_shuts_down_cleanly() {
    let p = pipeline();
    for step_mode in [StepMode::ForcePool, StepMode::Auto] {
        for _ in 0..8 {
            let config = ServeConfig {
                max_batch: 4,
                max_tokens: 64,
                num_threads: 16,
                step_mode,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(p.student(), config);
            for i in 0..8u32 {
                engine.submit(&[i, i + 1]).expect("valid prompt");
            }
            for _ in 0..3 {
                engine.step();
            }
            assert!(!engine.is_idle());
            drop(engine); // joins the pool with 4 active + 4 queued requests
        }
    }
    // Dropping an engine whose pool was never spawned (no step fanned out)
    // must be equally clean.
    let config = ServeConfig { max_batch: 2, max_tokens: 4, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(p.student(), config);
    engine.submit(&[1]).expect("valid prompt");
    drop(engine);
}

/// Mid-stream admission under 4 threads: late joiners must not perturb
/// in-flight sequences, and vice versa.
#[test]
fn parallel_mid_stream_admission_is_isolated() {
    let p = pipeline();
    let early: [&[u32]; 3] = [&[1, 2, 3], &[7, 8], &[20, 21, 22, 23, 24]];
    let late: &[u32] = &[40, 41];
    let n = 10;

    let config = ServeConfig {
        max_batch: 4,
        max_tokens: n,
        num_threads: 4,
        step_mode: StepMode::ForcePool,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);
    let early_ids: Vec<_> =
        early.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
    for _ in 0..4 {
        engine.step();
    }
    let late_id = engine.submit(late).expect("valid prompt");
    while !engine.is_idle() {
        engine.step();
    }
    let report = engine.report(std::time::Duration::from_secs(1));

    for (prompt, id) in early.iter().zip(&early_ids) {
        assert_eq!(report.request(*id).expect("finished").tokens, p.generate(prompt, n));
    }
    assert_eq!(report.request(late_id).expect("finished").tokens, p.generate(late, n));
}

/// Per-request sampling: a sampled request's output depends only on its
/// own (sampler, seed), not on batch composition or thread count.
#[test]
fn per_request_sampling_is_deterministic_across_batches_and_threads() {
    let p = pipeline();
    let sampled = SamplingParams { sampler: Sampler::Temperature(1.0), seed: 99 };
    let n = 10;

    let run = |threads: usize, with_neighbours: bool| -> Vec<u32> {
        let config = ServeConfig {
            max_batch: 8,
            max_tokens: n,
            num_threads: threads,
            step_mode: StepMode::ForcePool,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        if with_neighbours {
            engine.submit(&[4, 5, 6]).expect("valid prompt");
        }
        let id = engine
            .submit_request(Request::new(&[1, 2]).with_limit(n).with_sampling(sampled))
            .expect("valid request");
        if with_neighbours {
            engine.submit(&[9]).expect("valid prompt");
        }
        let report = engine.run();
        report.request(id).expect("finished").tokens.clone()
    };

    let alone_1t = run(1, false);
    let crowded_1t = run(1, true);
    let crowded_4t = run(4, true);
    assert_eq!(alone_1t, crowded_1t, "batch neighbours changed sampled output");
    assert_eq!(crowded_1t, crowded_4t, "thread count changed sampled output");
    assert_eq!(alone_1t.len(), n);

    // The sampled stream must match the single-sequence sampling loop with
    // the same policy and seed — one shared decode path end to end.
    let solo = opal_model::sampling::generate(p.student(), &[1, 2], n, sampled.sampler, 99);
    assert_eq!(alone_1t, solo, "engine sampling diverged from sampling::generate");
}

/// Greedy requests through `submit_request` are identical to `submit`.
#[test]
fn greedy_request_matches_plain_submit() {
    let p = pipeline();
    let n = 8;
    let config = ServeConfig {
        max_batch: 2,
        max_tokens: n,
        num_threads: 2,
        step_mode: StepMode::ForcePool,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);
    let a = engine.submit(&[3, 1, 4]).expect("valid prompt");
    let b = engine
        .submit_request(Request::new(&[3, 1, 4]).with_sampling(SamplingParams::default()))
        .expect("valid request");
    let report = engine.run();
    assert_eq!(report.request(a).unwrap().tokens, report.request(b).unwrap().tokens);
}
