//! Determinism of the parallel batch step: for any `num_threads`, every
//! sequence's output must be token-identical to the sequential seed path
//! (single-sequence generation), for mixed prompt lengths and mid-stream
//! admission, and independent of its batch neighbours.

use opal::{ModelConfig, OpalPipeline, OperatingPoint};
use opal_model::sampling::Sampler;
use opal_serve::{Request, SamplingParams, ServeConfig, ServeEngine};

fn pipeline() -> OpalPipeline {
    OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 42).expect("valid point")
}

/// Mixed prompt lengths, batch 16, one token stream per thread count —
/// every member must match its solo run exactly, and the three engines
/// (1 thread, 4 threads, oversubscribed 16 threads) must agree.
#[test]
fn parallel_step_matches_sequential_for_mixed_prompts() {
    let p = pipeline();
    let prompts: Vec<Vec<u32>> =
        (0..16u32).map(|i| (0..(i % 5 + 1)).map(|j| (i * 7 + j * 3) % 64).collect()).collect();
    let n = 12;

    let mut outputs = Vec::new();
    for threads in [1usize, 4, 16] {
        let config = ServeConfig { max_batch: 16, max_tokens: n, num_threads: threads };
        let mut engine = ServeEngine::new(p.student(), config);
        let ids: Vec<_> =
            prompts.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
        let report = engine.run();
        let tokens: Vec<Vec<u32>> =
            ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect();
        outputs.push((threads, tokens));
    }

    for (threads, tokens) in &outputs {
        for (prompt, got) in prompts.iter().zip(tokens) {
            let solo = p.generate(prompt, n);
            assert_eq!(
                got, &solo,
                "num_threads={threads}: batched output diverged from solo for {prompt:?}"
            );
        }
    }
    assert_eq!(outputs[0].1, outputs[1].1, "1 vs 4 threads diverged");
    assert_eq!(outputs[1].1, outputs[2].1, "4 vs 16 threads diverged");
}

/// Mid-stream admission under 4 threads: late joiners must not perturb
/// in-flight sequences, and vice versa.
#[test]
fn parallel_mid_stream_admission_is_isolated() {
    let p = pipeline();
    let early: [&[u32]; 3] = [&[1, 2, 3], &[7, 8], &[20, 21, 22, 23, 24]];
    let late: &[u32] = &[40, 41];
    let n = 10;

    let config = ServeConfig { max_batch: 4, max_tokens: n, num_threads: 4 };
    let mut engine = ServeEngine::new(p.student(), config);
    let early_ids: Vec<_> =
        early.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
    for _ in 0..4 {
        engine.step();
    }
    let late_id = engine.submit(late).expect("valid prompt");
    while !engine.is_idle() {
        engine.step();
    }
    let report = engine.report(std::time::Duration::from_secs(1));

    for (prompt, id) in early.iter().zip(&early_ids) {
        assert_eq!(report.request(*id).expect("finished").tokens, p.generate(prompt, n));
    }
    assert_eq!(report.request(late_id).expect("finished").tokens, p.generate(late, n));
}

/// Per-request sampling: a sampled request's output depends only on its
/// own (sampler, seed), not on batch composition or thread count.
#[test]
fn per_request_sampling_is_deterministic_across_batches_and_threads() {
    let p = pipeline();
    let sampled = SamplingParams { sampler: Sampler::Temperature(1.0), seed: 99 };
    let n = 10;

    let run = |threads: usize, with_neighbours: bool| -> Vec<u32> {
        let config = ServeConfig { max_batch: 8, max_tokens: n, num_threads: threads };
        let mut engine = ServeEngine::new(p.student(), config);
        if with_neighbours {
            engine.submit(&[4, 5, 6]).expect("valid prompt");
        }
        let id = engine
            .submit_request(Request::new(&[1, 2]).with_limit(n).with_sampling(sampled))
            .expect("valid request");
        if with_neighbours {
            engine.submit(&[9]).expect("valid prompt");
        }
        let report = engine.run();
        report.request(id).expect("finished").tokens.clone()
    };

    let alone_1t = run(1, false);
    let crowded_1t = run(1, true);
    let crowded_4t = run(4, true);
    assert_eq!(alone_1t, crowded_1t, "batch neighbours changed sampled output");
    assert_eq!(crowded_1t, crowded_4t, "thread count changed sampled output");
    assert_eq!(alone_1t.len(), n);

    // The sampled stream must match the single-sequence sampling loop with
    // the same policy and seed — one shared decode path end to end.
    let solo = opal_model::sampling::generate(p.student(), &[1, 2], n, sampled.sampler, 99);
    assert_eq!(alone_1t, solo, "engine sampling diverged from sampling::generate");
}

/// Greedy requests through `submit_request` are identical to `submit`.
#[test]
fn greedy_request_matches_plain_submit() {
    let p = pipeline();
    let n = 8;
    let config = ServeConfig { max_batch: 2, max_tokens: n, num_threads: 2 };
    let mut engine = ServeEngine::new(p.student(), config);
    let a = engine.submit(&[3, 1, 4]).expect("valid prompt");
    let b = engine
        .submit_request(Request::new(&[3, 1, 4]).with_sampling(SamplingParams::default()))
        .expect("valid request");
    let report = engine.run();
    assert_eq!(report.request(a).unwrap().tokens, report.request(b).unwrap().tokens);
}
