//! The paged KV cache under the scheduler: prefix sharing must never
//! change a single token (on or off, for every dispatch mode and thread
//! count), shared prefixes must be stored once in the block pool, pool
//! exhaustion must preempt-and-resume rather than error — with resumed
//! requests matching their uncontended output bit-for-bit — and
//! cancellation must release blocks immediately.

use opal::{ModelConfig, OpalPipeline, OperatingPoint};
use opal_model::sampling::Sampler;
use opal_serve::{
    FinishReason, Request, SamplingParams, ServeConfig, ServeEngine, ServeError, StepMode,
};

fn pipeline() -> OpalPipeline {
    OpalPipeline::new(ModelConfig::tiny(), OperatingPoint::W4A47, 42).expect("valid point")
}

const MODES: [StepMode; 3] = [StepMode::Auto, StepMode::ForcePool, StepMode::ForceScoped];

/// Prompts with heavy prefix overlap, admitted in waves so later requests
/// find earlier blocks resident: output must be identical with sharing on
/// and off, across StepModes and thread counts, and equal to the solo run.
#[test]
fn sharing_on_off_is_bit_identical_across_modes_and_threads() {
    let p = pipeline();
    let sys: Vec<u32> = (0..9u32).map(|i| (i * 5 + 2) % 64).collect();
    let mut prompts: Vec<Vec<u32>> = (0..4u32)
        .map(|i| {
            let mut pr = sys.clone();
            pr.extend((0..=i).map(|j| (i * 11 + j * 3 + 40) % 64));
            pr
        })
        .collect();
    prompts.push(vec![1, 2, 3]); // no shared prefix at all
    let n = 6;

    let run = |sharing: bool, step_mode: StepMode, threads: usize| -> Vec<Vec<u32>> {
        let config = ServeConfig {
            max_batch: 2, // staggered admission: later prompts hit the cache
            max_tokens: n,
            num_threads: threads,
            step_mode,
            block_size: 4,
            prefix_sharing: sharing,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        let ids: Vec<_> =
            prompts.iter().map(|pr| engine.submit(pr).expect("valid prompt")).collect();
        let report = engine.run();
        ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect()
    };

    let reference = run(false, StepMode::Auto, 1);
    for (prompt, got) in prompts.iter().zip(&reference) {
        assert_eq!(got, &p.generate(prompt, n), "unshared output diverged from solo");
    }
    for sharing in [true, false] {
        for step_mode in MODES {
            for threads in [1usize, 4] {
                assert_eq!(
                    run(sharing, step_mode, threads),
                    reference,
                    "sharing={sharing} {step_mode:?} threads={threads} diverged"
                );
            }
        }
    }
}

/// A batch of N requests with a common 128-token prefix stores the prefix
/// blocks once: pool residency with sharing is a fraction of the unshared
/// run's, and followers report the skipped span.
#[test]
fn common_prefix_blocks_are_stored_once() {
    let p = pipeline();
    let nl = p.student().config().n_layers;
    let block_size = 16;
    let prefix: Vec<u32> = (0..128u32).map(|i| (i * 13 + 1) % 64).collect();
    let n_requests = 4;
    let prompts: Vec<Vec<u32>> = (0..n_requests as u32)
        .map(|i| {
            let mut pr = prefix.clone();
            pr.extend([40 + i, 50 + i]);
            pr
        })
        .collect();
    let prefix_blocks = prefix.len() / block_size; // 8 full blocks per layer

    let run = |sharing: bool| -> (usize, u64) {
        let config = ServeConfig {
            max_batch: n_requests,
            max_tokens: 8,
            prefill_chunk: usize::MAX,
            block_size,
            prefix_sharing: sharing,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        // The first request prefills (and publishes) the prefix...
        engine.submit(&prompts[0]).expect("valid prompt");
        engine.step();
        // ...then the followers join while it decodes.
        for pr in &prompts[1..] {
            engine.submit(pr).expect("valid prompt");
        }
        let mut resident_blocks = 0;
        while engine.prefilling_len() > 0 || engine.pending_len() > 0 || resident_blocks == 0 {
            let s = engine.step();
            if engine.active_len() == n_requests && engine.prefilling_len() == 0 {
                resident_blocks = s.blocks_in_use;
                break;
            }
            assert!(!engine.is_idle(), "requests drained before full residency");
        }
        let report = engine.run();
        assert_eq!(report.requests.len(), n_requests);
        (resident_blocks, report.shared_prefill_tokens)
    };

    let (shared_blocks, shared_tokens) = run(true);
    let (unshared_blocks, no_shared_tokens) = run(false);
    assert_eq!(no_shared_tokens, 0);
    // Followers adopt the full 8-block prefix (capped one short of the
    // prompt only when the prompt *is* the prefix — not the case here).
    assert_eq!(shared_tokens, ((n_requests - 1) * prefix.len()) as u64);
    // Unshared: every request owns its own prefix copy.
    assert!(
        unshared_blocks >= n_requests * prefix_blocks * nl,
        "unshared run must hold {n_requests} private prefix copies, got {unshared_blocks} blocks"
    );
    // Shared: one prefix copy plus a couple of private tail blocks each.
    let shared_budget = prefix_blocks * nl + n_requests * 2 * nl;
    assert!(
        shared_blocks <= shared_budget,
        "shared run must store the prefix once: {shared_blocks} blocks > budget {shared_budget}"
    );
    assert!(
        shared_blocks + (n_requests - 1) * prefix_blocks * nl <= unshared_blocks,
        "sharing saved fewer than {} prefix copies ({shared_blocks} vs {unshared_blocks})",
        n_requests - 1
    );
}

/// Cache pressure: a pool far too small for the offered load must preempt
/// (dropping blocks, re-queuing sequences) yet complete every request with
/// output identical to an uncontended run — including a temperature-sampled
/// request whose RNG must survive preemption.
#[test]
fn preempted_requests_resume_and_match_uncontended_output() {
    let p = pipeline();
    let prompts: Vec<Vec<u32>> =
        (0..4u32).map(|i| (0..8).map(|j| (i * 17 + j * 3 + 1) % 64).collect()).collect();
    let n = 6;
    let sampled = SamplingParams { sampler: Sampler::Temperature(1.0), seed: 7 };

    let run = |max_blocks: usize| -> (Vec<Vec<u32>>, u64) {
        let config = ServeConfig {
            max_batch: 4,
            max_tokens: n,
            block_size: 4,
            max_blocks,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(p.student(), config);
        let mut ids = Vec::new();
        for (i, pr) in prompts.iter().enumerate() {
            let mut req = Request::new(pr).with_limit(n);
            if i == 2 {
                req = req.with_sampling(sampled);
            }
            ids.push(engine.submit_request(req).expect("valid request"));
        }
        let report = engine.run();
        let tokens =
            ids.iter().map(|id| report.request(*id).expect("finished").tokens.clone()).collect();
        (tokens, report.preemptions)
    };

    // Uncontended baseline, then a pool that can hold barely more than one
    // sequence's worst case (8 + 6 - 1 = 13 positions -> (4 + 1) * 2 = 10
    // blocks): concurrent progress is impossible without preemption.
    let (reference, baseline_preemptions) = run(usize::MAX);
    assert_eq!(baseline_preemptions, 0, "an unbounded pool must never preempt");
    let (pressured, preemptions) = run(12);
    assert!(preemptions > 0, "a 12-block pool must preempt under this load");
    assert_eq!(pressured, reference, "preemption changed request output");
    for tokens in &pressured {
        assert_eq!(tokens.len(), n, "every preempted request must still complete");
    }
}

/// `cancel` aborts queued and running requests, reports them with
/// `FinishReason::Cancelled`, and releases their blocks immediately.
#[test]
fn cancel_aborts_and_releases_blocks() {
    let p = pipeline();
    let config = ServeConfig {
        max_batch: 2,
        max_tokens: 16,
        block_size: 4,
        prefix_sharing: false, // keep residency arithmetic exact
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);
    let a = engine.submit(&[1, 2, 3, 4, 5]).expect("valid prompt");
    let b = engine.submit(&[9, 8, 7]).expect("valid prompt");
    let queued = engine.submit(&[11, 12]).expect("valid prompt");

    for _ in 0..3 {
        engine.step();
    }
    assert_eq!(engine.active_len(), 2);
    assert_eq!(engine.pending_len(), 1);

    // Cancel one running and one queued request; an unknown id is refused.
    assert!(engine.cancel(a));
    assert!(engine.cancel(queued));
    assert!(!engine.cancel(a), "a cancelled request is gone");
    assert_eq!(engine.active_len(), 1);
    assert_eq!(engine.pending_len(), 0);
    let survivor_blocks = engine.kv_blocks_in_use();
    let expected = p.student().config().n_layers * 5usize.div_ceil(4);
    assert!(
        survivor_blocks <= expected + p.student().config().n_layers,
        "cancelled requests must free their blocks ({survivor_blocks} > {expected})"
    );

    let report = engine.run();
    assert_eq!(report.requests.len(), 3);
    let ra = report.request(a).expect("reported");
    assert_eq!(ra.finish, FinishReason::Cancelled);
    assert!(ra.tokens.len() < 16, "cancelled mid-decode");
    assert_eq!(report.request(queued).expect("reported").finish, FinishReason::Cancelled);
    assert!(report.request(queued).expect("reported").tokens.is_empty());
    let rb = report.request(b).expect("reported");
    assert_eq!(rb.finish, FinishReason::Limit);
    assert_eq!(rb.tokens, p.generate(&[9, 8, 7], 16), "survivor must be unperturbed");
    assert_eq!(engine.kv_blocks_in_use(), 0, "a drained engine holds no blocks");
}

/// A request whose worst-case residency cannot fit the pool even alone is
/// rejected at submission instead of deadlocking the scheduler later.
#[test]
fn impossible_requests_are_rejected_at_submission() {
    let p = pipeline();
    let config = ServeConfig {
        max_batch: 2,
        max_tokens: 16,
        block_size: 4,
        max_blocks: 8,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(p.student(), config);
    // 20 + 16 - 1 = 35 positions -> (9 + 1) * 2 layers = 20 blocks > 8.
    let long: Vec<u32> = (0..20u32).collect();
    match engine.submit(&long) {
        Err(ServeError::InsufficientBlocks { required, max_blocks }) => {
            assert_eq!(max_blocks, 8);
            assert!(required > 8);
        }
        other => panic!("expected InsufficientBlocks, got {other:?}"),
    }
    // A short request fits ((2 + 1) * 2 = 6 <= 8) and completes.
    let ok = engine.submit_with_limit(&[1, 2, 3], 4).expect("fits the pool");
    let report = engine.run();
    assert_eq!(report.request(ok).expect("finished").tokens.len(), 4);
}
