//! Cancellation-storm regression: cancelling half the in-flight requests
//! mid-step under a tight block pool must not perturb a single survivor
//! token, and every cancelled request's blocks must return to the pool.

use opal_model::{Model, ModelConfig, QuantScheme};
use opal_serve::{FinishReason, Request, RequestId, ServeConfig, ServeEngine};

fn model() -> Model {
    Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 21).expect("tiny model")
}

fn prompts(vocab: u32) -> Vec<Vec<u32>> {
    // Heavy prefix overlap so the storm also hits shared blocks.
    let sys: Vec<u32> = (0..10u32).map(|i| (i * 5 + 2) % vocab).collect();
    (0..12u32)
        .map(|i| {
            let mut p = sys.clone();
            p.extend((0..=(i % 5)).map(|j| (i * 11 + j * 3 + 40) % vocab));
            p
        })
        .collect()
}

#[test]
fn storm_survivors_are_bit_identical_and_blocks_return() {
    let m = model();
    let vocab = m.config().vocab as u32;
    let n_layers = m.config().n_layers;
    let prompts = prompts(vocab);
    let config = ServeConfig {
        max_batch: 4,
        max_tokens: 10,
        block_size: 4,
        max_blocks: n_layers * 20, // tight enough that churn causes paging pressure
        ..ServeConfig::default()
    };

    // Contended run: all twelve requests, then a 50% storm mid-flight.
    let mut engine = ServeEngine::new(&m, config);
    let ids: Vec<RequestId> =
        prompts.iter().map(|p| engine.submit_request(Request::new(p)).expect("submit")).collect();
    for _ in 0..6 {
        engine.step(); // get a batch decoding and a queue waiting
    }
    let mut in_flight = engine.in_flight();
    in_flight.sort_unstable();
    assert!(in_flight.len() >= 4, "storm needs a populated engine");
    let victims: Vec<RequestId> = in_flight.iter().copied().step_by(2).collect();
    let blocks_before = engine.kv_blocks_in_use();
    for &v in &victims {
        assert!(engine.cancel(v), "cancel of in-flight {v} must succeed");
    }
    assert!(
        engine.kv_blocks_in_use() < blocks_before,
        "cancelling {} of {} in-flight requests must free private blocks ({} -> {})",
        victims.len(),
        in_flight.len(),
        blocks_before,
        engine.kv_blocks_in_use()
    );
    let report = engine.run();

    // Every request is accounted for: cancelled victims plus completed rest.
    assert_eq!(report.requests.len(), prompts.len());
    for &v in &victims {
        assert_eq!(report.request(v).expect("cancelled report").finish, FinishReason::Cancelled);
    }

    // After drain only the prefix cache may hold blocks.
    assert_eq!(engine.kv_blocks_in_use(), engine.prefix_cache_len() * n_layers);

    // Uncontended reference: only the survivors, unbounded pool, no storm.
    let survivors: Vec<usize> =
        (0..prompts.len()).filter(|i| !victims.contains(&ids[*i])).collect();
    let mut reference = ServeEngine::new(&m, ServeConfig { max_blocks: usize::MAX, ..config });
    let ref_ids: Vec<RequestId> = survivors
        .iter()
        .map(|&i| reference.submit_request(Request::new(&prompts[i])).expect("submit"))
        .collect();
    let ref_report = reference.run();

    for (&i, &rid) in survivors.iter().zip(&ref_ids) {
        let got = &report.request(ids[i]).expect("survivor finished").tokens;
        let want = &ref_report.request(rid).expect("reference finished").tokens;
        assert_eq!(got, want, "survivor {} diverged from uncontended run", ids[i]);
    }
}

#[test]
fn storm_on_queued_requests_releases_them_without_steps() {
    let m = model();
    let config = ServeConfig { max_batch: 2, max_tokens: 4, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(&m, config);
    let ids: Vec<RequestId> =
        (0..6).map(|i| engine.submit(&[1 + i as u32, 2, 3]).expect("submit")).collect();
    // Cancel queued requests before any step ever runs.
    for &id in &ids[2..] {
        assert!(engine.cancel(id), "queued cancel must succeed");
    }
    let report = engine.run();
    assert_eq!(report.requests.len(), 6);
    for &id in &ids[..2] {
        assert_eq!(report.request(id).unwrap().finish, FinishReason::Limit);
    }
    for &id in &ids[2..] {
        let r = report.request(id).unwrap();
        assert_eq!(r.finish, FinishReason::Cancelled);
        assert!(r.tokens.is_empty(), "never-admitted request generated tokens");
    }
    assert_eq!(engine.kv_blocks_in_use(), engine.prefix_cache_len() * m.config().n_layers);
}
