//! Serving statistics: throughput, per-request latency, aggregate energy,
//! and KV-pool residency.

use std::time::Duration;

use crate::engine::RequestId;

/// Why a request left the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FinishReason {
    /// The request generated its full token limit.
    #[default]
    Limit,
    /// The request was aborted via `ServeEngine::cancel` (its KV blocks
    /// were released immediately; `tokens` holds whatever was generated
    /// before the cancellation).
    Cancelled,
    /// The request's `deadline_steps` TTL elapsed — in the queue, while
    /// prefilling, or mid-decode — before it could finish. Its KV blocks
    /// were released immediately; `tokens` holds whatever was generated
    /// before expiry. Never reported as [`FinishReason::Cancelled`], even
    /// when the expiry races a preemption or cancellation.
    DeadlineExceeded,
    /// The sequence panicked mid-step (a model invariant tripped, or an
    /// injected chaos fault). The panic was quarantined: this sequence was
    /// retired and its blocks returned, while every other in-flight
    /// sequence continued bit-identically and the worker pool survived.
    Failed,
    /// The request was shed from the admission queue by degraded-mode load
    /// shedding (youngest-queued first) while the engine was protecting
    /// in-flight work under pressure.
    Shed,
}

/// Submission rejections split by type (satellite telemetry: one aggregate
/// counter hides whether clients are hitting backpressure, memory limits,
/// or their own malformed requests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectionCounts {
    /// Rejections with `ServeError::QueueFull` (retryable backpressure).
    pub queue_full: u64,
    /// Rejections with `ServeError::InsufficientBlocks` (the request could
    /// never fit the KV pool).
    pub insufficient_blocks: u64,
    /// Permanently-invalid submissions: empty prompt, out-of-vocabulary
    /// token, zero token limit, invalid sampling parameters.
    pub invalid: u64,
}

impl RejectionCounts {
    /// Total rejections of every type.
    pub fn total(&self) -> u64 {
        self.queue_full + self.insufficient_blocks + self.invalid
    }
}

/// Outcome of one finished request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestReport {
    /// The handle returned by `submit`.
    pub id: RequestId,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// The generated tokens, in order.
    pub tokens: Vec<u32>,
    /// Why the request retired.
    pub finish: FinishReason,
    /// The tenant tag the request was submitted with
    /// (`Request::with_tenant`), if any. Multi-tenant harnesses aggregate
    /// per-tenant token shares from this field.
    pub tenant: Option<String>,
    /// Scheduler step at which the request entered the batch (the start of
    /// its `Prefilling` phase; for a preempted request, its most recent
    /// re-admission).
    pub admitted_step: u64,
    /// Scheduler step at which the request retired.
    pub finished_step: u64,
    /// Times this request was preempted under KV-pool pressure (each one
    /// dropped its blocks and re-queued it; output is unaffected).
    pub preemptions: u32,
    /// Prompt positions whose prefill was skipped because their KV blocks
    /// were adopted read-only from the prefix cache (cumulative across
    /// re-admissions).
    pub shared_prefill_tokens: usize,
    /// Wall time spent waiting in the admission queue (submission → batch
    /// slot; for a preempted request, submission → final re-admission).
    /// Under chunked admission this is the fairness-sensitive number: a
    /// long prompt ahead in the queue costs bounded per-step work, not its
    /// whole prefill, before this request gets a slot.
    pub queue_wait: Duration,
    /// Wall time from submission to the first sampled token (the TTFT the
    /// client observed: queue wait plus the chunked prefill of the whole
    /// prompt). `None` when the request was cancelled before its first
    /// token.
    pub ttft: Option<Duration>,
    /// Scheduler step at which each generated token was sampled, parallel
    /// to `tokens`. Consecutive differences are the inter-token step gaps
    /// (1 in steady decode; larger when the request was preempted and had
    /// to re-prefill). Steps recorded before a preemption are preserved.
    pub token_steps: Vec<u64>,
    /// Wall time from submission to retirement.
    pub latency: Duration,
}

impl RequestReport {
    /// Scheduler steps spent in the batch: the chunked-prefill steps of the
    /// `Prefilling` phase plus one step per generated token (with blocking
    /// admission — `prefill_chunk = usize::MAX` — this equals the generated
    /// token count).
    pub fn decode_steps(&self) -> u64 {
        self.finished_step - self.admitted_step
    }

    /// Scheduler steps from submission (the step count when the request
    /// entered the queue is not recorded, so this anchors at the step of
    /// first admission) to the first token: `token_steps[0] −
    /// admitted_step`, or `None` before the first token. In a step-clocked
    /// harness the caller anchors at its own submit step instead.
    pub fn steps_to_first_token(&self) -> Option<u64> {
        self.token_steps.first().map(|&s| s.saturating_sub(self.admitted_step))
    }

    /// Inter-token gaps in scheduler steps (`token_steps` consecutive
    /// differences): empty for zero or one generated token.
    pub fn inter_token_step_gaps(&self) -> Vec<u64> {
        self.token_steps.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Aggregate statistics of a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Scheduler steps executed.
    pub steps: u64,
    /// Prompt tokens processed during admission prefill.
    pub prefill_tokens: u64,
    /// Prompt tokens whose prefill was skipped via prefix sharing (their
    /// blocks were already resident).
    pub shared_prefill_tokens: u64,
    /// Tokens generated across all requests.
    pub generated_tokens: u64,
    /// Draft tokens proposed and verified by speculative decoding (zero
    /// when `ServeConfig::spec` is off).
    pub drafted_tokens: u64,
    /// Draft tokens accepted by verification — each one is a generated
    /// token that skipped its own sequential decode pass.
    pub accepted_tokens: u64,
    /// Largest concurrent batch observed.
    pub peak_batch: usize,
    /// High-water mark of KV blocks allocated from the engine's pool
    /// (block tables plus prefix cache; shared blocks count once).
    pub blocks_peak: usize,
    /// Sequences preempted under KV-pool pressure (dropped and re-queued;
    /// every preempted request still completes with unchanged output).
    pub preemptions: u64,
    /// Requests retired with [`FinishReason::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Sequences retired with [`FinishReason::Failed`] (quarantined
    /// panics).
    pub failed: u64,
    /// Requests retired with [`FinishReason::Shed`] (degraded-mode load
    /// shedding).
    pub shed: u64,
    /// Steps the engine spent in degraded mode (shrunken batch/prefill
    /// budgets and load shedding under pressure).
    pub degraded_steps: u64,
    /// Transitions into or out of degraded mode (an even count means the
    /// engine ended the run healthy).
    pub mode_transitions: u64,
    /// Submission rejections, split by type.
    pub rejections: RejectionCounts,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Total tokens (prefill + generated) per second of wall time.
    pub tokens_per_sec: f64,
    /// Generated tokens per second of wall time.
    pub generated_per_sec: f64,
    /// Aggregate accelerator energy in joules (zero when no accelerator
    /// model is attached).
    pub energy_j: f64,
    /// Per-request outcomes, ordered by request id.
    pub requests: Vec<RequestReport>,
}

impl ServeReport {
    /// The report for `id`, if that request finished during this run.
    pub fn request(&self, id: RequestId) -> Option<&RequestReport> {
        self.requests.iter().find(|r| r.id == id)
    }

    /// Mean request latency, or zero when no request finished.
    pub fn mean_latency(&self) -> Duration {
        if self.requests.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.requests.iter().map(|r| r.latency).sum();
        total / self.requests.len() as u32
    }

    /// Mean time finished requests spent in the admission queue, or zero
    /// when no request finished.
    pub fn mean_queue_wait(&self) -> Duration {
        if self.requests.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.requests.iter().map(|r| r.queue_wait).sum();
        total / self.requests.len() as u32
    }

    /// Fraction of drafted tokens the verifier accepted, or zero when
    /// speculation never drafted (off, or every step fell back).
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted_tokens == 0 {
            0.0
        } else {
            self.accepted_tokens as f64 / self.drafted_tokens as f64
        }
    }

    /// Energy per generated token in joules, or zero without accounting.
    pub fn energy_per_generated_token(&self) -> f64 {
        if self.generated_tokens == 0 {
            0.0
        } else {
            self.energy_j / self.generated_tokens as f64
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ServeReport")?;
        writeln!(
            f,
            "  {} requests, {} steps, peak batch {}",
            self.requests.len(),
            self.steps,
            self.peak_batch
        )?;
        writeln!(
            f,
            "  tokens: {} prefill + {} generated in {:.3?}",
            self.prefill_tokens, self.generated_tokens, self.elapsed
        )?;
        writeln!(
            f,
            "  kv: peak {} blocks, {} prefix-shared prompt tokens, {} preemptions",
            self.blocks_peak, self.shared_prefill_tokens, self.preemptions
        )?;
        if self.deadline_exceeded + self.failed + self.shed + self.mode_transitions > 0
            || self.rejections.total() > 0
        {
            writeln!(
                f,
                "  robustness: {} expired, {} failed, {} shed, {} degraded steps \
                 ({} transitions); rejections {} queue-full / {} insufficient-blocks / {} invalid",
                self.deadline_exceeded,
                self.failed,
                self.shed,
                self.degraded_steps,
                self.mode_transitions,
                self.rejections.queue_full,
                self.rejections.insufficient_blocks,
                self.rejections.invalid
            )?;
        }
        if self.drafted_tokens > 0 {
            writeln!(
                f,
                "  speculation: {} drafted, {} accepted ({:.1}% acceptance)",
                self.drafted_tokens,
                self.accepted_tokens,
                100.0 * self.acceptance_rate()
            )?;
        }
        writeln!(
            f,
            "  throughput: {:.1} tok/s total, {:.1} tok/s generated",
            self.tokens_per_sec, self.generated_per_sec
        )?;
        writeln!(
            f,
            "  mean latency: {:.3?} (queue wait {:.3?})",
            self.mean_latency(),
            self.mean_queue_wait()
        )?;
        if self.energy_j > 0.0 {
            writeln!(
                f,
                "  energy: {:.3e} J total, {:.3e} J per generated token",
                self.energy_j,
                self.energy_per_generated_token()
            )?;
        }
        for r in &self.requests {
            writeln!(
                f,
                "  {}: prompt {}, generated {}{}, steps {}..{}, latency {:.3?}",
                r.id,
                r.prompt_len,
                r.tokens.len(),
                match r.finish {
                    FinishReason::Limit => "",
                    FinishReason::Cancelled => " (cancelled)",
                    FinishReason::DeadlineExceeded => " (deadline exceeded)",
                    FinishReason::Failed => " (failed)",
                    FinishReason::Shed => " (shed)",
                },
                r.admitted_step,
                r.finished_step,
                r.latency
            )?;
        }
        Ok(())
    }
}
