//! The persistent decode worker pool.
//!
//! `ServeEngine::step` used to fan the active batch out under
//! `std::thread::scope`, paying a thread spawn (~25 µs) per worker per
//! step — invisible on large models, dominant on small ones. This module
//! replaces those per-step spawns with long-lived threads owned by the
//! engine: workers park on a job channel, a step sends each one a chunk of
//! the batch, and the dispatcher blocks until every chunk is reported done.
//! Chunk assignment, intra-chunk order and post-join accounting are
//! identical to the scoped dispatcher, so output is bit-for-bit unchanged
//! for every thread count.
//!
//! Panic containment is layered. Sequences are stepped through
//! `advance_sequence_guarded`, so a panic inside one sequence is caught
//! *per sequence* and quarantined by the engine without disturbing its
//! chunk-mates. The chunk-level `catch_unwind` below is the backstop for
//! panics escaping that guard, shipping the payload back to the dispatcher
//! for re-raise. And should a worker thread die anyway — without acking —
//! the dispatcher forgives the debt once the thread is provably finished
//! instead of blocking forever: `Drop for ServeEngine` cannot deadlock on
//! a dead worker.
//!
//! Shutdown is channel-driven: dropping the pool closes the job channels,
//! each worker's `recv` errors out and the thread exits, and `Drop` joins
//! them all — no sentinel messages, no leaked threads, safe to run with
//! requests still queued (pending work simply stays in the engine).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// One chunk acknowledgement from worker `.0`: `Ok` on success, or the
/// worker's caught panic payload, re-raised on the dispatcher thread so
/// the original assertion message/location is not lost.
type Ack = (usize, Result<(), Box<dyn std::any::Any + Send>>);

use opal_model::Model;

use crate::engine::{advance_sequence_guarded, Active};

/// How long the dispatcher waits for an acknowledgement before checking
/// whether a worker it is waiting on has died. Purely a liveness poll:
/// acks arriving earlier wake the `recv_timeout` immediately, so healthy
/// steps never pay this.
const ACK_POLL: Duration = Duration::from_millis(20);

/// One chunk of the active batch, dispatched to a worker for one step.
///
/// The raw pointers stand in for the `&Model` and `&mut [Active]` borrows
/// that `ServeEngine::step` holds: a long-lived thread cannot carry those
/// lifetimes in its type, so the dispatch protocol carries the proof
/// instead. [`WorkerPool::step_chunks`] sends jobs and then blocks until
/// every worker acknowledges completion — or is provably dead, its thread
/// finished and so incapable of touching the borrows — so a `Job`'s
/// pointers are only dereferenced while the step's borrows are alive, and
/// every chunk is disjoint from every other (they come from one
/// `chunks_mut`).
struct Job {
    model: *const Model,
    seqs: *mut Active,
    len: usize,
}

// SAFETY: a `Job` transfers exclusive access to a disjoint `&mut [Active]`
// chunk (`Active` is `Send`: every field is owned data) plus a shared
// `&Model` (`Model` is `Sync`; its quantizer boxes are `Send + Sync` by
// construction). The channel handoff provides the happens-before edges on
// both sides of the step.
unsafe impl Send for Job {}

/// Statically prove the assumptions the `unsafe impl Send` above rests on.
fn _assert_bounds() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<Active>();
    sync::<Model>();
}

struct Worker {
    /// `None` only during shutdown: dropping the sender is what tells the
    /// thread to exit.
    jobs: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    /// Whether this worker's thread can still receive and run jobs. A
    /// finished thread has exited `worker_loop` (it died mid-step, or its
    /// channel closed); it will never ack again, and — crucially — can
    /// never again touch a job's borrows.
    fn alive(&self) -> bool {
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }
}

/// Long-lived decode workers, created lazily by the first step that fans
/// out and owned by the engine for the rest of its life.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    done: Receiver<Ack>,
}

impl WorkerPool {
    /// Spawns `workers` named threads, each parked on its job channel.
    pub(crate) fn new(workers: usize) -> Self {
        let (done_tx, done) = channel();
        let workers = (0..workers)
            .map(|i| {
                let (jobs_tx, jobs_rx) = channel::<Job>();
                let done_tx = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("opal-serve-{i}"))
                    .spawn(move || worker_loop(i, &jobs_rx, &done_tx))
                    // tidy: allow(panic) -- thread-spawn failure at pool construction is
                    // unrecoverable; the engine falls back to serial when workers <= 1
                    .expect("spawn serve worker");
                Worker { jobs: Some(jobs_tx), handle: Some(handle) }
            })
            .collect();
        WorkerPool { workers, done }
    }

    /// Number of pool threads.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Advances every sequence of every chunk by one token: chunks after
    /// the first go to the pool, the caller's thread works the first chunk
    /// instead of idling at the join (mirroring the scoped dispatcher),
    /// then the call blocks until all dispatched chunks complete. Chunks
    /// that find no live worker — every pool thread died, or more chunks
    /// arrived than live workers — run inline on the caller's thread, so
    /// a decimated pool degrades to serial stepping instead of erroring.
    ///
    /// This function **never returns or unwinds with a job in flight** —
    /// the soundness keystone. Acknowledgements are drained by a drop
    /// guard, so even a panic on the caller's chunk (or in the panicking
    /// branch below) blocks until every worker has finished touching the
    /// step's borrows before the unwind proceeds. A worker that died
    /// without acking satisfies the same condition vacuously the moment
    /// its thread is finished — a dead thread touches nothing — which is
    /// what lets the guard forgive its ack instead of deadlocking;
    /// afterwards the engine — and the `active` vector the jobs pointed
    /// into — can be reused or dropped freely.
    ///
    /// # Panics
    ///
    /// Re-raises a worker's panic payload if one escaped the per-sequence
    /// quarantine while advancing its chunk (the engine's step cannot
    /// produce a consistent batch state in that case; the panic is raised
    /// only after every dispatched chunk is accounted for).
    pub(crate) fn step_chunks<'a>(
        &self,
        model: &Model,
        mut chunks: impl Iterator<Item = &'a mut [Active]>,
    ) {
        /// Tracks which workers still owe an acknowledgement and blocks,
        /// on drop, until each has acked or provably died — owned here so
        /// no early exit path can skip the wait.
        struct PendingAcks<'p> {
            done: &'p Receiver<Ack>,
            workers: &'p [Worker],
            /// Indices of workers owing an ack for a dispatched job.
            owed: Vec<usize>,
        }
        impl PendingAcks<'_> {
            /// Waits for the next acknowledgement. Returns `None` when no
            /// further ack can ever arrive: every still-owing worker's
            /// thread has finished (died mid-step), so their debts are
            /// forgiven — safe, because a finished thread can no longer
            /// touch the step's borrows.
            fn collect(&mut self) -> Option<Ack> {
                loop {
                    match self.done.recv_timeout(ACK_POLL) {
                        Ok((idx, ack)) => {
                            if let Some(pos) = self.owed.iter().position(|&i| i == idx) {
                                self.owed.swap_remove(pos);
                            }
                            return Some((idx, ack));
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let workers = self.workers;
                            self.owed.retain(|&i| workers[i].alive());
                            if self.owed.is_empty() {
                                return None;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            self.owed.clear();
                            return None;
                        }
                    }
                }
            }
        }
        impl Drop for PendingAcks<'_> {
            fn drop(&mut self) {
                while !self.owed.is_empty() {
                    if self.collect().is_none() {
                        break;
                    }
                }
            }
        }

        let first = chunks.next();
        let mut pending =
            PendingAcks { done: &self.done, workers: &self.workers, owed: Vec::new() };
        let mut inline: Vec<&'a mut [Active]> = Vec::new();
        let mut next_worker = 0usize;
        for chunk in chunks {
            let mut dispatched = false;
            while next_worker < self.workers.len() {
                let i = next_worker;
                next_worker += 1;
                let worker = &self.workers[i];
                if !worker.alive() {
                    continue; // died in an earlier step; route around it
                }
                // `jobs` is only `None` mid-`Drop`, after which no step
                // can run; routing around it like a dead worker keeps the
                // step correct either way.
                let Some(jobs) = worker.jobs.as_ref() else { continue };
                let job = Job { model, seqs: chunk.as_mut_ptr(), len: chunk.len() };
                // A send can still lose the race with a worker exiting;
                // the unreceived `Job` comes back in the error and is
                // dropped without ever being dereferenced.
                if jobs.send(job).is_ok() {
                    pending.owed.push(i);
                    dispatched = true;
                    break;
                }
            }
            if !dispatched {
                inline.push(chunk);
            }
        }
        for chunk in inline {
            for seq in chunk {
                advance_sequence_guarded(model, seq);
            }
        }
        for seq in first.into_iter().flatten() {
            advance_sequence_guarded(model, seq);
        }
        let mut panic_payload = None;
        while !pending.owed.is_empty() {
            match pending.collect() {
                Some((_, Err(payload))) => {
                    panic_payload.get_or_insert(payload);
                }
                Some((_, Ok(()))) => {}
                None => break,
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.jobs = None; // close the channel: the worker's recv errors out
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(index: usize, jobs: &Receiver<Job>, done: &Sender<Ack>) {
    while let Ok(job) = jobs.recv() {
        // Per-sequence panics are quarantined inside
        // `advance_sequence_guarded`; this chunk-level catch is the
        // backstop for panics escaping the guard (e.g. in the guard
        // itself), so even those cannot strand the dispatcher at its
        // join: catch, ship the payload back, and let the dispatcher
        // re-raise it on its own thread with the original message intact.
        let ack = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `step_chunks` blocks until this job is acknowledged
            // below (or this thread exits — observed via `is_finished` —
            // after which it provably cannot run this code), so the
            // `&Model` and `&mut [Active]` borrows it was built from are
            // still live, and no other thread touches this chunk in the
            // meantime.
            let model = unsafe { &*job.model };
            let seqs = unsafe { std::slice::from_raw_parts_mut(job.seqs, job.len) };
            for seq in seqs {
                advance_sequence_guarded(model, seq);
            }
        }));
        if done.send((index, ack)).is_err() {
            break;
        }
    }
}
