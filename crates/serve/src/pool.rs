//! The persistent decode worker pool.
//!
//! `ServeEngine::step` used to fan the active batch out under
//! `std::thread::scope`, paying a thread spawn (~25 µs) per worker per
//! step — invisible on large models, dominant on small ones. This module
//! replaces those per-step spawns with long-lived threads owned by the
//! engine: workers park on a job channel, a step sends each one a chunk of
//! the batch, and the dispatcher blocks until every chunk is reported done.
//! Chunk assignment, intra-chunk order and post-join accounting are
//! identical to the scoped dispatcher, so output is bit-for-bit unchanged
//! for every thread count.
//!
//! Shutdown is channel-driven: dropping the pool closes the job channels,
//! each worker's `recv` errors out and the thread exits, and `Drop` joins
//! them all — no sentinel messages, no leaked threads, safe to run with
//! requests still queued (pending work simply stays in the engine).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// One chunk acknowledgement: `Ok` on success, or the worker's caught
/// panic payload, re-raised on the dispatcher thread so the original
/// assertion message/location is not lost.
type Ack = Result<(), Box<dyn std::any::Any + Send>>;

use opal_model::Model;

use crate::engine::{advance_sequence, Active};

/// One chunk of the active batch, dispatched to a worker for one step.
///
/// The raw pointers stand in for the `&Model` and `&mut [Active]` borrows
/// that `ServeEngine::step` holds: a long-lived thread cannot carry those
/// lifetimes in its type, so the dispatch protocol carries the proof
/// instead. [`WorkerPool::step_chunks`] sends jobs and then blocks until
/// every worker acknowledges completion, so a `Job`'s pointers are only
/// dereferenced while the step's borrows are alive, and every chunk is
/// disjoint from every other (they come from one `chunks_mut`).
struct Job {
    model: *const Model,
    seqs: *mut Active,
    len: usize,
}

// SAFETY: a `Job` transfers exclusive access to a disjoint `&mut [Active]`
// chunk (`Active` is `Send`: every field is owned data) plus a shared
// `&Model` (`Model` is `Sync`; its quantizer boxes are `Send + Sync` by
// construction). The channel handoff provides the happens-before edges on
// both sides of the step.
unsafe impl Send for Job {}

/// Statically prove the assumptions the `unsafe impl Send` above rests on.
fn _assert_bounds() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<Active>();
    sync::<Model>();
}

struct Worker {
    /// `None` only during shutdown: dropping the sender is what tells the
    /// thread to exit.
    jobs: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// Long-lived decode workers, created lazily by the first step that fans
/// out and owned by the engine for the rest of its life.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    done: Receiver<Ack>,
}

impl WorkerPool {
    /// Spawns `workers` named threads, each parked on its job channel.
    pub(crate) fn new(workers: usize) -> Self {
        let (done_tx, done) = channel();
        let workers = (0..workers)
            .map(|i| {
                let (jobs_tx, jobs_rx) = channel::<Job>();
                let done_tx = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("opal-serve-{i}"))
                    .spawn(move || worker_loop(&jobs_rx, &done_tx))
                    .expect("spawn serve worker");
                Worker { jobs: Some(jobs_tx), handle: Some(handle) }
            })
            .collect();
        WorkerPool { workers, done }
    }

    /// Number of pool threads.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Advances every sequence of every chunk by one token: chunks after
    /// the first go to the pool, the caller's thread works the first chunk
    /// instead of idling at the join (mirroring the scoped dispatcher),
    /// then the call blocks until all dispatched chunks complete.
    ///
    /// This function **never returns or unwinds with a job in flight** —
    /// the soundness keystone. Acknowledgements are drained by a drop
    /// guard, so even a panic on the caller's chunk (or in the panicking
    /// branch below) blocks until every worker has finished touching the
    /// step's borrows before the unwind proceeds; afterwards the engine —
    /// and the `active` vector the jobs pointed into — can be reused or
    /// dropped freely.
    ///
    /// # Panics
    ///
    /// Re-raises a worker's panic payload if one panicked while advancing
    /// its chunk (the engine's step cannot produce a consistent batch
    /// state in that case; the panic is raised only after all
    /// acknowledgements are in), and panics if more chunks arrive than the
    /// pool has workers.
    pub(crate) fn step_chunks<'a>(
        &self,
        model: &Model,
        mut chunks: impl Iterator<Item = &'a mut [Active]>,
    ) {
        /// Blocks, on drop, until every outstanding job has been
        /// acknowledged — the in-flight count is owned here so no early
        /// exit path can skip the wait.
        struct PendingAcks<'p> {
            done: &'p Receiver<Ack>,
            outstanding: usize,
        }
        impl Drop for PendingAcks<'_> {
            fn drop(&mut self) {
                while self.outstanding > 0 {
                    let _ = self.done.recv();
                    self.outstanding -= 1;
                }
            }
        }

        let first = chunks.next();
        let mut workers = self.workers.iter();
        let mut pending = PendingAcks { done: &self.done, outstanding: 0 };
        for chunk in chunks {
            let worker = workers.next().expect("more chunks than pool workers");
            let job = Job { model, seqs: chunk.as_mut_ptr(), len: chunk.len() };
            worker.jobs.as_ref().expect("pool shutting down").send(job).expect("worker exited");
            pending.outstanding += 1;
        }
        for seq in first.into_iter().flatten() {
            advance_sequence(model, seq);
        }
        let mut panic_payload = None;
        while pending.outstanding > 0 {
            match pending.done.recv() {
                Ok(ack) => {
                    pending.outstanding -= 1;
                    if let Err(payload) = ack {
                        panic_payload.get_or_insert(payload);
                    }
                }
                Err(_) => unreachable!("workers outlive the pool"),
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.jobs = None; // close the channel: the worker's recv errors out
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(jobs: &Receiver<Job>, done: &Sender<Ack>) {
    while let Ok(job) = jobs.recv() {
        // A panic inside the model (e.g. an assert tripping on corrupt
        // state) must not strand the dispatcher at its join: catch it,
        // ship the payload back, and let the dispatcher re-raise it on its
        // own thread with the original message intact.
        let ack = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `step_chunks` blocks until this job is acknowledged
            // below, so the `&Model` and `&mut [Active]` borrows it was
            // built from are still live, and no other thread touches this
            // chunk in the meantime.
            let model = unsafe { &*job.model };
            let seqs = unsafe { std::slice::from_raw_parts_mut(job.seqs, job.len) };
            for seq in seqs {
                advance_sequence(model, seq);
            }
        }));
        if done.send(ack).is_err() {
            break;
        }
    }
}
