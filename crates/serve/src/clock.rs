//! The workspace's single home for wall-clock reads.
//!
//! Everything outside this module takes timestamps as values (an
//! `Instant` handed in, a `Duration` measured by a caller) or calls
//! [`now`]. Funneling `Instant::now()` through one function keeps the
//! deterministic-replay modules honest — `opal-tidy` denies direct
//! wall-clock reads everywhere else — and gives one grep-able seam if the
//! clock ever needs to be virtualized for simulation.

use std::time::Instant;

/// Reads the monotonic wall clock.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}
