//! The batch scheduler: continuous admission over per-request KV caches.

use std::collections::VecDeque;
use std::time::Instant;

use opal_hw::accelerator::Accelerator;
use opal_model::sampling::Sampler;
use opal_model::{DecodeState, Model};
use opal_tensor::rng::TensorRng;

use crate::pool::WorkerPool;
use crate::report::{RequestReport, ServeReport};

/// Per-request decoding policy: which [`Sampler`] picks each token, and the
/// seed of the request-private RNG driving it.
///
/// The RNG is owned by the request, so a request's output depends only on
/// its prompt, sampler and seed — never on batch composition, admission
/// timing or thread count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// The decoding policy (greedy by default).
    pub sampler: Sampler,
    /// Seed of the request-private RNG (unused by greedy).
    pub seed: u64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams { sampler: Sampler::Greedy, seed: 0 }
    }
}

/// A request specification: prompt plus per-request decoding options.
///
/// # Example
///
/// ```
/// use opal_model::sampling::Sampler;
/// use opal_serve::{Request, SamplingParams};
///
/// let req = Request::new(&[1, 2, 3])
///     .with_limit(8)
///     .with_sampling(SamplingParams { sampler: Sampler::TopK(4), seed: 7 });
/// assert_eq!(req.prompt(), &[1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    prompt: Vec<u32>,
    max_new_tokens: Option<usize>,
    sampling: SamplingParams,
}

impl Request {
    /// A greedy request generating the engine's default token budget.
    pub fn new(prompt: &[u32]) -> Self {
        Request {
            prompt: prompt.to_vec(),
            max_new_tokens: None,
            sampling: SamplingParams::default(),
        }
    }

    /// Caps generation at `max_new_tokens` (clamped to the engine's
    /// [`ServeConfig::max_tokens`] on submission).
    #[must_use]
    pub fn with_limit(mut self, max_new_tokens: usize) -> Self {
        self.max_new_tokens = Some(max_new_tokens);
        self
    }

    /// Sets the decoding policy.
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingParams) -> Self {
        self.sampling = sampling;
        self
    }

    /// The prompt tokens.
    pub fn prompt(&self) -> &[u32] {
        &self.prompt
    }
}

/// Opaque handle identifying a submitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// How a multi-threaded decode step is dispatched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StepMode {
    /// Decide per step (the default): fan out across the persistent worker
    /// pool only when the host has spare cores *and* every worker's chunk
    /// carries enough per-token work to amortize the dispatch — otherwise
    /// run the step on the caller's thread. This is what makes
    /// `num_threads = 4` never slower than `num_threads = 1`: a tiny model,
    /// a small batch, or a single-core host all fall back to the serial
    /// path instead of paying wake-ups that dwarf the work.
    #[default]
    Auto,
    /// Always fan out across the persistent pool when the batch has more
    /// than one sequence, regardless of cores or model size. Used by tests
    /// and benches to exercise the pool machinery deterministically (output
    /// is identical to every other mode either way).
    ForcePool,
    /// Always fan out with per-step `std::thread::scope` workers — the
    /// pre-pool dispatcher, kept as an A/B baseline so
    /// `BENCH_decode.json` can price the spawn-per-step overhead the pool
    /// removes.
    ForceScoped,
}

/// Scheduler limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum number of sequences decoded concurrently. Requests beyond
    /// this wait in the admission queue and join as slots free up.
    pub max_batch: usize,
    /// Default number of tokens generated per request (a request-level
    /// override via [`ServeEngine::submit_with_limit`] is clamped to this).
    pub max_tokens: usize,
    /// Worker threads for the batch decode step. `1` (the default) steps
    /// sequences on the caller's thread; larger values split the active
    /// batch across the engine's persistent worker pool (subject to
    /// [`StepMode`]). Output is identical for every thread count — each
    /// sequence owns its state, and results are committed in batch order.
    pub num_threads: usize,
    /// Dispatch policy for multi-threaded steps; see [`StepMode`].
    pub step_mode: StepMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 8, max_tokens: 32, num_threads: 1, step_mode: StepMode::Auto }
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The prompt was empty.
    EmptyPrompt,
    /// A prompt token is outside the model's vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// A per-request token limit of zero was requested.
    ZeroTokenLimit,
    /// The request's [`SamplingParams`] are invalid (non-positive or
    /// non-finite temperature, `k == 0`, `p` outside `(0, 1]`).
    ///
    /// Caught at submission: letting such a request into the batch would
    /// panic inside [`opal_model::sampling::Sampler::pick`] mid-step, on a
    /// worker thread, taking every other in-flight sequence down with it.
    InvalidSampling {
        /// What is wrong with the parameters.
        reason: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyPrompt => write!(f, "empty prompt"),
            ServeError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} outside vocabulary of {vocab}")
            }
            ServeError::ZeroTokenLimit => write!(f, "token limit must be at least 1"),
            ServeError::InvalidSampling { reason } => {
                write!(f, "invalid sampling parameters: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// What one call to [`ServeEngine::step`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepSummary {
    /// Requests admitted from the queue before this step.
    pub admitted: usize,
    /// Tokens generated across the batch during this step.
    pub generated: usize,
    /// Requests that reached their token limit and retired.
    pub finished: usize,
}

/// A request waiting for a batch slot.
struct Queued {
    id: RequestId,
    prompt: Vec<u32>,
    limit: usize,
    sampling: SamplingParams,
    submitted_at: Instant,
}

/// A sequence currently in the decode batch. Each owns a private
/// [`DecodeState`] — its KV cache and scratch buffers — plus its sampler
/// RNG, so sequences are fully isolated and can be stepped from different
/// threads.
pub(crate) struct Active {
    id: RequestId,
    state: DecodeState,
    last_logits: Vec<f32>,
    tokens: Vec<u32>,
    prompt_len: usize,
    limit: usize,
    sampler: Sampler,
    rng: TensorRng,
    submitted_at: Instant,
    admitted_step: u64,
}

/// Minimum matvec work (multiply-accumulates) a worker's chunk must carry
/// for [`StepMode::Auto`] to hand it to a pool thread instead of running it
/// inline.
///
/// 400k MACs is roughly 150–250 µs of scalar decode on one current core
/// (the `llama7b-proxy128` config measures ≈580k MACs/token at ≈250 µs),
/// an order of magnitude above the few-µs channel-send + wake-up cost of a
/// dispatch — while the tiny test config (≈30k MACs/token) stays serial up
/// to batch 13/worker, which is exactly the regime where PR 2's scoped
/// threads lost to the single-threaded path.
const FANOUT_MIN_MACS_PER_WORKER: u64 = 400_000;

/// Matvec multiply-accumulates per decoded token: the decoder stack's
/// weight MACs (identical to its parameter count) plus the unembedding row.
fn approx_macs_per_token(config: &opal_model::ModelConfig) -> u64 {
    config.decoder_params() + (config.d_model * config.vocab) as u64
}

/// Advances one sequence by one token: sample from the last logits, then —
/// unless the sequence just hit its limit — run the next forward pass,
/// reusing the `last_logits` buffer. Runs on worker threads; everything it
/// touches is owned by the sequence.
pub(crate) fn advance_sequence(model: &Model, seq: &mut Active) {
    let token = seq.sampler.pick(&seq.last_logits, &mut seq.rng);
    seq.tokens.push(token);
    // A sequence that just hit its limit retires without another forward
    // pass — its next logits would be discarded.
    if seq.tokens.len() < seq.limit {
        model.decode_step_into(&mut seq.state, token, &mut seq.last_logits);
    }
}

/// The batched serving engine.
///
/// Drives a borrowed [`Model`] for up to [`ServeConfig::max_batch`]
/// concurrent sequences. The model itself is immutable during decoding
/// (all mutable state lives in the per-request [`DecodeState`]s), which is
/// what makes mid-stream admission safe: admitting or retiring a sequence
/// cannot touch any other sequence's KV cache.
///
/// Decoding defaults to greedy (argmax), matching the single-sequence
/// `OpalPipeline::generate` loop token-for-token at batch size one; each
/// request may carry its own [`SamplingParams`] for temperature / top-k /
/// top-p serving. With [`ServeConfig::num_threads`] > 1 the decode step
/// fans out across the engine's persistent worker pool, one chunk of
/// sequences per worker; the pool is spawned lazily by the first step that
/// fans out and shut down (channels closed, threads joined) when the engine
/// drops — even with requests still queued or decoding.
pub struct ServeEngine<'m> {
    model: &'m Model,
    accelerator: Option<Accelerator>,
    config: ServeConfig,
    /// Lazily-spawned persistent decode workers. Declared before `active`:
    /// fields drop in declaration order, so the pool joins its threads
    /// (which may be finishing a chunk if the engine is dropped during an
    /// unwinding step) while the sequences they borrow are still alive.
    pool: Option<WorkerPool>,
    pending: VecDeque<Queued>,
    active: Vec<Active>,
    finished: Vec<RequestReport>,
    next_id: u64,
    steps: u64,
    prefill_tokens: u64,
    generated_tokens: u64,
    peak_batch: usize,
    energy_j: f64,
    started_at: Option<Instant>,
}

impl<'m> ServeEngine<'m> {
    /// Creates an engine over `model` with the given scheduler limits and
    /// no energy accounting.
    pub fn new(model: &'m Model, config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(config.max_tokens > 0, "max_tokens must be at least 1");
        assert!(config.num_threads > 0, "num_threads must be at least 1");
        ServeEngine {
            model,
            accelerator: None,
            config,
            pool: None,
            pending: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            steps: 0,
            prefill_tokens: 0,
            generated_tokens: 0,
            peak_batch: 0,
            energy_j: 0.0,
            started_at: None,
        }
    }

    /// Attaches an accelerator model; every forward pass the engine runs
    /// (prompt prefill and decode alike) is then charged
    /// `energy_per_token` at its sequence length, accumulating into
    /// [`ServeReport::energy_j`].
    #[must_use]
    pub fn with_accelerator(mut self, accelerator: Accelerator) -> Self {
        self.accelerator = Some(accelerator);
        self
    }

    /// The scheduler limits.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The model being served.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Requests waiting for a batch slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequences currently decoding.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Enqueues a request generating the configured default
    /// [`ServeConfig::max_tokens`] tokens.
    ///
    /// # Errors
    ///
    /// Rejects empty prompts and out-of-vocabulary tokens.
    pub fn submit(&mut self, prompt: &[u32]) -> Result<RequestId, ServeError> {
        self.submit_with_limit(prompt, self.config.max_tokens)
    }

    /// Enqueues a request generating at most `max_new_tokens` tokens
    /// (clamped to [`ServeConfig::max_tokens`]).
    ///
    /// The request joins the decode batch at the start of the next
    /// [`step`](Self::step) with a free slot — submission mid-stream is the
    /// normal case, not an edge case.
    ///
    /// # Errors
    ///
    /// Rejects empty prompts, out-of-vocabulary tokens, and a zero token
    /// limit.
    pub fn submit_with_limit(
        &mut self,
        prompt: &[u32],
        max_new_tokens: usize,
    ) -> Result<RequestId, ServeError> {
        self.submit_request(Request::new(prompt).with_limit(max_new_tokens))
    }

    /// Enqueues a full [`Request`] — prompt, token limit and per-request
    /// [`SamplingParams`]. Greedy sampling reproduces [`submit`](Self::submit)
    /// exactly; other samplers draw from a request-private seeded RNG, so
    /// output is independent of batch composition and thread count.
    ///
    /// # Errors
    ///
    /// Rejects empty prompts, out-of-vocabulary tokens, a zero token limit
    /// (which could never retire sanely: the first step would sample a
    /// token the limit says must not exist), and invalid sampling
    /// parameters (which would panic mid-step on a worker thread instead
    /// of failing at the API boundary).
    pub fn submit_request(&mut self, request: Request) -> Result<RequestId, ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::EmptyPrompt);
        }
        let limit = request.max_new_tokens.unwrap_or(self.config.max_tokens);
        if limit == 0 {
            return Err(ServeError::ZeroTokenLimit);
        }
        if let Err(reason) = request.sampling.sampler.validate() {
            return Err(ServeError::InvalidSampling { reason });
        }
        let vocab = self.model.config().vocab;
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(ServeError::TokenOutOfRange { token: bad, vocab });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Queued {
            id,
            prompt: request.prompt,
            limit: limit.min(self.config.max_tokens),
            sampling: request.sampling,
            submitted_at: Instant::now(),
        });
        Ok(id)
    }

    /// Admits queued requests into free batch slots, prefilling their
    /// prompts. Returns the number admitted. Called automatically by
    /// [`step`](Self::step).
    pub fn admit(&mut self) -> usize {
        let mut admitted = 0;
        while self.active.len() < self.config.max_batch {
            let Some(q) = self.pending.pop_front() else { break };
            let mut state = self.model.begin_decode();
            let last_logits = self.model.prefill(&mut state, &q.prompt);
            for pos in 1..=q.prompt.len() {
                self.charge_energy(pos);
            }
            self.prefill_tokens += q.prompt.len() as u64;
            self.active.push(Active {
                id: q.id,
                state,
                last_logits,
                tokens: Vec::with_capacity(q.limit),
                prompt_len: q.prompt.len(),
                limit: q.limit,
                sampler: q.sampling.sampler,
                rng: TensorRng::seed(q.sampling.seed),
                submitted_at: q.submitted_at,
                admitted_step: self.steps,
            });
            admitted += 1;
        }
        self.peak_batch = self.peak_batch.max(self.active.len());
        admitted
    }

    /// Runs one scheduler step: admit what fits, then advance every active
    /// sequence by exactly one token (sampled per the request's
    /// [`SamplingParams`], greedy by default), then retire sequences that
    /// hit their limit. A step with nothing to do is a no-op.
    ///
    /// With [`ServeConfig::num_threads`] > 1 the active batch is split into
    /// contiguous chunks stepped by the engine's persistent worker pool
    /// (spawned lazily by the first step that fans out; [`StepMode::Auto`]
    /// keeps small steps on the caller's thread entirely). The model is
    /// shared immutably; every mutable structure (KV cache, scratch,
    /// sampler RNG, output buffer) is owned by exactly one sequence, and
    /// energy accounting and retirement run after the join in batch order —
    /// so results are deterministic and identical to `num_threads == 1`
    /// under every [`StepMode`].
    pub fn step(&mut self) -> StepSummary {
        let admitted = self.admit();
        let mut summary = StepSummary { admitted, ..StepSummary::default() };
        if self.active.is_empty() {
            return summary;
        }
        if self.started_at.is_none() {
            self.started_at = Some(Instant::now());
        }

        let model = self.model;
        let workers = self.plan_workers();
        if workers <= 1 {
            for seq in &mut self.active {
                advance_sequence(model, seq);
            }
        } else {
            let chunk_size = self.active.len().div_ceil(workers);
            if self.config.step_mode == StepMode::ForceScoped {
                let mut chunks = self.active.chunks_mut(chunk_size);
                let first = chunks.next();
                std::thread::scope(|scope| {
                    for chunk in chunks.by_ref() {
                        scope.spawn(move || {
                            for seq in chunk {
                                advance_sequence(model, seq);
                            }
                        });
                    }
                    // The caller's thread works the first chunk instead of
                    // idling at the join — one fewer spawn per step.
                    for seq in first.into_iter().flatten() {
                        advance_sequence(model, seq);
                    }
                });
            } else {
                // Pool size is fixed at first fan-out: `ForcePool` may use
                // every configured thread, but `Auto` never plans beyond
                // the host's cores — don't park threads that can never
                // receive work (num_threads = 16 on a 4-core box would
                // otherwise idle 12 stacks for the engine's lifetime).
                let size = match self.config.step_mode {
                    StepMode::Auto => {
                        let cores =
                            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                        self.config.num_threads.min(cores) - 1
                    }
                    _ => self.config.num_threads - 1,
                };
                let pool = self.pool.get_or_insert_with(|| WorkerPool::new(size));
                // `available_parallelism` can in principle change after the
                // pool is sized; never cut more chunks than pool + caller.
                let workers = workers.min(pool.len() + 1);
                let chunk_size = self.active.len().div_ceil(workers);
                pool.step_chunks(model, self.active.chunks_mut(chunk_size));
            }
        }
        summary.generated = self.active.len();
        // Charge energy post-join, in batch order, so the f64 accumulation
        // is independent of thread scheduling. A sequence at its limit did
        // not run a forward pass this step.
        if let Some(acc) = &self.accelerator {
            for seq in &self.active {
                if seq.tokens.len() < seq.limit {
                    self.energy_j +=
                        acc.energy_per_token(self.model.config(), seq.state.pos()).total_j();
                }
            }
        }
        self.generated_tokens += summary.generated as u64;
        self.steps += 1;

        let steps = self.steps;
        let mut retired = Vec::new();
        self.active.retain_mut(|seq| {
            if seq.tokens.len() < seq.limit {
                return true;
            }
            retired.push(RequestReport {
                id: seq.id,
                prompt_len: seq.prompt_len,
                tokens: std::mem::take(&mut seq.tokens),
                admitted_step: seq.admitted_step,
                finished_step: steps,
                latency: seq.submitted_at.elapsed(),
            });
            false
        });
        summary.finished = retired.len();
        self.finished.append(&mut retired);
        summary
    }

    /// How many threads (caller included) this step should use.
    ///
    /// The force modes cap only by batch size. [`StepMode::Auto`]
    /// additionally refuses to fan out beyond what can pay for itself:
    ///
    /// * **Cores.** More workers than hardware threads never increases
    ///   throughput — they time-slice one another and add context-switch
    ///   overhead on top (the `optimized-4t` < `optimized-1t` regression in
    ///   the PR-2 `BENCH_decode.json`, measured on a single-core host).
    /// * **Work.** Each worker's chunk must carry enough arithmetic to
    ///   amortize the dispatch (a channel send plus a thread wake-up, a few
    ///   µs): estimated as matvec MACs per token, a chunk below
    ///   [`FANOUT_MIN_MACS_PER_WORKER`] runs on the caller's thread
    ///   instead. The attention scan's seq-length term is deliberately
    ///   ignored — it only grows the true work, so the gate errs toward
    ///   serial.
    fn plan_workers(&self) -> usize {
        self.planned_threads(self.active.len())
    }

    /// The number of threads (caller included) a decode step would use with
    /// `batch` active sequences, after [`StepMode::Auto`]'s core and
    /// per-worker-work gates.
    ///
    /// Exposed so operators and benchmarks can tell whether a
    /// configuration actually fans out on this host — e.g. on a single-core
    /// machine every `Auto` configuration resolves to `1`, making
    /// `num_threads = 4` the *same execution* as `num_threads = 1` rather
    /// than a slower one.
    pub fn planned_threads(&self, batch: usize) -> usize {
        let cap = self.config.num_threads.min(batch);
        match self.config.step_mode {
            StepMode::ForcePool | StepMode::ForceScoped => cap,
            StepMode::Auto => {
                let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                let cap = cap.min(cores);
                if cap <= 1 {
                    return 1;
                }
                let total_macs =
                    approx_macs_per_token(self.model.config()).saturating_mul(batch as u64);
                cap.min((total_macs / FANOUT_MIN_MACS_PER_WORKER).max(1) as usize)
            }
        }
    }

    /// Whether any request is still queued or decoding.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Runs the scheduler until every submitted request has finished, then
    /// reports throughput, per-request latency and aggregate energy.
    ///
    /// Wall time is measured from the first [`step`](Self::step) of the
    /// current serving period — manual steps taken before `run` count —
    /// and the clock resets once the engine drains.
    pub fn run(&mut self) -> ServeReport {
        let t0 = self.started_at.unwrap_or_else(Instant::now);
        while !self.is_idle() {
            self.step();
        }
        self.started_at = None;
        self.report(t0.elapsed())
    }

    /// Snapshot of the statistics so far (useful between manual
    /// [`step`](Self::step) calls; `elapsed` is the caller's measured wall
    /// time for throughput).
    pub fn report(&self, elapsed: std::time::Duration) -> ServeReport {
        let mut requests = self.finished.clone();
        requests.sort_by_key(|r| r.id);
        let total = self.prefill_tokens + self.generated_tokens;
        let secs = elapsed.as_secs_f64();
        ServeReport {
            steps: self.steps,
            prefill_tokens: self.prefill_tokens,
            generated_tokens: self.generated_tokens,
            peak_batch: self.peak_batch,
            elapsed,
            tokens_per_sec: if secs > 0.0 { total as f64 / secs } else { 0.0 },
            generated_per_sec: if secs > 0.0 { self.generated_tokens as f64 / secs } else { 0.0 },
            energy_j: self.energy_j,
            requests,
        }
    }

    fn charge_energy(&mut self, seq_len: usize) {
        if let Some(acc) = &self.accelerator {
            self.energy_j += acc.energy_per_token(self.model.config(), seq_len.max(1)).total_j();
        }
    }
}

impl std::fmt::Debug for ServeEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServeEngine(active={}, pending={}, finished={}, steps={})",
            self.active.len(),
            self.pending.len(),
            self.finished.len(),
            self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_model::{ModelConfig, QuantScheme};

    fn model() -> Model {
        Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 11).expect("valid scheme")
    }

    #[test]
    fn rejects_bad_prompts() {
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.submit(&[]), Err(ServeError::EmptyPrompt));
        let vocab = m.config().vocab;
        assert_eq!(
            e.submit(&[0, vocab as u32]),
            Err(ServeError::TokenOutOfRange { token: vocab as u32, vocab })
        );
    }

    #[test]
    fn batch_respects_max_batch() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 3, ..ServeConfig::default() },
        );
        for _ in 0..5 {
            e.submit(&[1, 2]).unwrap();
        }
        e.step();
        assert_eq!(e.active_len(), 2);
        assert_eq!(e.pending_len(), 3);
        let report = e.run();
        assert_eq!(report.requests.len(), 5);
        assert!(report.peak_batch <= 2);
        for r in &report.requests {
            assert_eq!(r.tokens.len(), 3);
        }
    }

    #[test]
    fn per_request_limit_is_clamped() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 4, max_tokens: 5, ..ServeConfig::default() },
        );
        let a = e.submit_with_limit(&[1], 2).unwrap();
        let b = e.submit_with_limit(&[1], 99).unwrap();
        assert_eq!(e.submit_with_limit(&[1], 0), Err(ServeError::ZeroTokenLimit));
        let report = e.run();
        assert_eq!(report.request(a).unwrap().tokens.len(), 2);
        assert_eq!(report.request(b).unwrap().tokens.len(), 5);
    }

    #[test]
    fn planned_threads_respects_gates() {
        let m = model();
        let plan = |threads: usize, step_mode: StepMode, batch: usize| {
            let cfg = ServeConfig { num_threads: threads, step_mode, ..ServeConfig::default() };
            ServeEngine::new(&m, cfg).planned_threads(batch)
        };
        // Force modes cap only by batch size.
        assert_eq!(plan(4, StepMode::ForcePool, 16), 4);
        assert_eq!(plan(4, StepMode::ForceScoped, 2), 2);
        assert_eq!(plan(4, StepMode::ForcePool, 1), 1);
        // Auto never exceeds cores or the force-mode cap, and the tiny test
        // model never carries enough per-token work to fan out at all.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for batch in [1usize, 4, 16] {
            let p = plan(4, StepMode::Auto, batch);
            assert!(p <= cores.min(4).min(batch));
            assert_eq!(p, 1, "tiny model steps must stay on the caller thread");
        }
        // A model the size of the bench proxy fans out wherever cores allow.
        let proxy =
            Model::new(ModelConfig::llama2_7b().proxy(128, 4, 192), QuantScheme::bf16(), 11)
                .expect("valid scheme");
        let cfg = ServeConfig { num_threads: 4, ..ServeConfig::default() };
        assert_eq!(ServeEngine::new(&proxy, cfg).planned_threads(16), 4.min(cores));
    }

    #[test]
    fn zero_token_limit_rejected_on_every_path() {
        // Regression guard: a zero `max_new_tokens` must not slip into the
        // queue through any submission path and bypass the `max_tokens > 0`
        // constructor invariant via the admission-time clamp.
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.submit_with_limit(&[1, 2], 0), Err(ServeError::ZeroTokenLimit));
        assert_eq!(
            e.submit_request(Request::new(&[1, 2]).with_limit(0)),
            Err(ServeError::ZeroTokenLimit)
        );
        assert_eq!(
            e.submit_request(
                Request::new(&[1]).with_limit(0).with_sampling(SamplingParams::default())
            ),
            Err(ServeError::ZeroTokenLimit)
        );
        assert_eq!(e.pending_len(), 0, "rejected requests must not be queued");
    }

    #[test]
    fn invalid_sampling_rejected_at_submission() {
        // These parameters would panic inside `Sampler::pick` on a worker
        // thread mid-step; they must be caught at the API boundary instead.
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        for sampler in [
            Sampler::Temperature(0.0),
            Sampler::Temperature(-2.0),
            Sampler::Temperature(f32::NAN),
            Sampler::TopK(0),
            Sampler::TopP(0.0),
            Sampler::TopP(1.0001),
        ] {
            let req = Request::new(&[1, 2]).with_sampling(SamplingParams { sampler, seed: 1 });
            assert!(
                matches!(e.submit_request(req), Err(ServeError::InvalidSampling { .. })),
                "{sampler:?} must be rejected"
            );
        }
        assert_eq!(e.pending_len(), 0);
        // Valid parameters still pass, and the engine drains normally.
        let ok = SamplingParams { sampler: Sampler::TopK(4), seed: 5 };
        e.submit_request(Request::new(&[1, 2]).with_limit(2).with_sampling(ok)).unwrap();
        let report = e.run();
        assert_eq!(report.requests.len(), 1);
    }

    #[test]
    fn idle_step_is_a_noop() {
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.step(), StepSummary::default());
        let report = e.report(std::time::Duration::from_millis(1));
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn energy_accumulates_when_accelerator_attached() {
        use opal_hw::accelerator::{Accelerator, AcceleratorKind};
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 2, ..ServeConfig::default() },
        )
        .with_accelerator(Accelerator::new(AcceleratorKind::OpalW4A47));
        e.submit(&[1, 2, 3]).unwrap();
        let report = e.run();
        assert!(report.energy_j > 0.0);
    }

    #[test]
    fn step_summary_counts() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 3, max_tokens: 1, ..ServeConfig::default() },
        );
        e.submit(&[1]).unwrap();
        e.submit(&[2]).unwrap();
        let s = e.step();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.generated, 2);
        assert_eq!(s.finished, 2);
        assert!(e.is_idle());
    }
}
