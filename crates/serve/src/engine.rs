//! The batch scheduler: continuous admission over a paged, prefix-shared
//! KV cache with memory-aware preemption.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use opal_hw::accelerator::Accelerator;
use opal_model::kv::{BlockPool, KvBlock, KvScheme};
use opal_model::sampling::Sampler;
use opal_model::{DecodeState, Model};
use opal_tensor::rng::TensorRng;
use opal_tensor::Matrix;

use crate::faults::FaultKind;
use crate::pool::WorkerPool;
use crate::report::{FinishReason, RejectionCounts, RequestReport, ServeReport};
use crate::trie::PrefixTrie;

/// Per-request decoding policy: which [`Sampler`] picks each token, and the
/// seed of the request-private RNG driving it.
///
/// The RNG is owned by the request, so a request's output depends only on
/// its prompt, sampler and seed — never on batch composition, admission
/// timing or thread count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// The decoding policy (greedy by default).
    pub sampler: Sampler,
    /// Seed of the request-private RNG (unused by greedy).
    pub seed: u64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams { sampler: Sampler::Greedy, seed: 0 }
    }
}

/// A request specification: prompt plus per-request decoding options.
///
/// # Example
///
/// ```
/// use opal_model::sampling::Sampler;
/// use opal_serve::{Request, SamplingParams};
///
/// let req = Request::new(&[1, 2, 3])
///     .with_limit(8)
///     .with_sampling(SamplingParams { sampler: Sampler::TopK(4), seed: 7 });
/// assert_eq!(req.prompt(), &[1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    prompt: Vec<u32>,
    max_new_tokens: Option<usize>,
    sampling: SamplingParams,
    tenant: Option<String>,
    deadline_steps: Option<u64>,
}

impl Request {
    /// A greedy request generating the engine's default token budget.
    pub fn new(prompt: &[u32]) -> Self {
        Request {
            prompt: prompt.to_vec(),
            max_new_tokens: None,
            sampling: SamplingParams::default(),
            tenant: None,
            deadline_steps: None,
        }
    }

    /// Caps generation at `max_new_tokens` (clamped to the engine's
    /// [`ServeConfig::max_tokens`] on submission).
    #[must_use]
    pub fn with_limit(mut self, max_new_tokens: usize) -> Self {
        self.max_new_tokens = Some(max_new_tokens);
        self
    }

    /// Sets the decoding policy.
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingParams) -> Self {
        self.sampling = sampling;
        self
    }

    /// Tags the request with a tenant label. The tag is carried verbatim
    /// into the final [`RequestReport`](crate::RequestReport), where
    /// multi-tenant harnesses aggregate per-tenant token shares (fairness
    /// metrics); the scheduler itself treats every tenant identically.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Gives the request a time-to-live of `deadline_steps` scheduler
    /// steps, measured from submission. A request that has not retired
    /// within its TTL — whether still queued, prefilling, or mid-decode —
    /// is expired at the start of the next step with
    /// [`FinishReason::DeadlineExceeded`](crate::FinishReason::DeadlineExceeded)
    /// and its KV blocks are freed immediately. The TTL survives
    /// preemption: re-queued time still counts against it. Measured in
    /// steps, not wall time, so expiry is deterministic under replay.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_steps` is zero (such a request could never run).
    #[must_use]
    pub fn with_deadline(mut self, deadline_steps: u64) -> Self {
        assert!(deadline_steps > 0, "deadline must allow at least one step");
        self.deadline_steps = Some(deadline_steps);
        self
    }

    /// The prompt tokens.
    pub fn prompt(&self) -> &[u32] {
        &self.prompt
    }

    /// The tenant tag, if one was set.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// The TTL in scheduler steps, if one was set.
    pub fn deadline_steps(&self) -> Option<u64> {
        self.deadline_steps
    }
}

/// Opaque handle identifying a submitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// How a multi-threaded decode step is dispatched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StepMode {
    /// Decide per step (the default): fan out across the persistent worker
    /// pool only when the host has spare cores *and* every worker's chunk
    /// carries enough per-token work to amortize the dispatch — otherwise
    /// run the step on the caller's thread. This is what makes
    /// `num_threads = 4` never slower than `num_threads = 1`: a tiny model,
    /// a small batch, or a single-core host all fall back to the serial
    /// path instead of paying wake-ups that dwarf the work.
    #[default]
    Auto,
    /// Always fan out across the persistent pool when the batch has more
    /// than one sequence, regardless of cores or model size. Used by tests
    /// and benches to exercise the pool machinery deterministically (output
    /// is identical to every other mode either way).
    ForcePool,
    /// Always fan out with per-step `std::thread::scope` workers — the
    /// pre-pool dispatcher, kept as an A/B baseline so
    /// `BENCH_decode.json` can price the spawn-per-step overhead the pool
    /// removes.
    ForceScoped,
}

/// Where speculative draft tokens come from (see [`SpecConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DraftSource {
    /// A truncated-depth sibling of the served model: the first `layers`
    /// decoder layers plus the shared embedding, final norm and
    /// unembedding (built once per engine via `Model::draft_truncated`).
    /// `layers` equal to the full stack yields a draft that reproduces the
    /// served model exactly — 100% acceptance, useful as a deterministic
    /// harness mode — while shallow depths trade acceptance for a cheaper
    /// proposal pass.
    Truncated {
        /// Decoder layers the draft keeps (`1 ..=` the model's `n_layers`).
        layers: usize,
    },
    /// Model-free n-gram lookup: propose the tokens that followed the most
    /// recent earlier occurrence of the sequence's current suffix (bigram
    /// match preferred, unigram fallback). Costs no forward passes at all,
    /// so any accepted token is pure profit; acceptance is high exactly
    /// when greedy decode revisits its own context (repetitive or
    /// templated streams).
    NGram,
}

/// Speculative-decoding policy ([`ServeConfig::spec`]): a cheap draft
/// proposes up to `k` tokens per sequence per pure-decode step, and the
/// served model verifies all of them plus the step's sampled token in one
/// fused multi-row pass, accepting the longest prefix the request's own
/// sampler reproduces and rolling the rejected tail back by truncating
/// the sequence's block tables.
///
/// Output — token streams and finish reasons — is bit-identical to
/// non-speculative decoding for every sampler (greedy and
/// seeded-stochastic alike); only the steps-per-token ratio changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecConfig {
    /// The draft proposal source.
    pub draft: DraftSource,
    /// Maximum tokens drafted per sequence per step (must be at least 1).
    /// Each step verifies at most `k + 1` positions and rolls back the
    /// rejected tail, so per-step KV reservations grow by the same bound.
    pub k: usize,
}

/// Upper bound on how many times one queued request can be bypassed by
/// [`ServeEngine::admit`]'s trie-aware reordering. Under block pressure a
/// cache-warm request may be admitted ahead of colder ones submitted
/// earlier; every jumped request counts the bypass, and the reorder scan
/// refuses to pass a request that has reached this count — so a cold
/// request is delayed by at most this many out-of-order admissions before
/// the queue falls back to strict arrival order.
pub const REORDER_STARVATION_BOUND: u32 = 4;

/// Scheduler limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum number of sequences decoded concurrently. Requests beyond
    /// this wait in the admission queue and join as slots free up.
    pub max_batch: usize,
    /// Default number of tokens generated per request (a request-level
    /// override via [`ServeEngine::submit_with_limit`] is clamped to this).
    pub max_tokens: usize,
    /// Worker threads for the batch decode step. `1` (the default) steps
    /// sequences on the caller's thread; larger values split the active
    /// batch across the engine's persistent worker pool (subject to
    /// [`StepMode`]). Output is identical for every thread count — each
    /// sequence owns its state, and results are committed in batch order.
    pub num_threads: usize,
    /// Dispatch policy for multi-threaded steps; see [`StepMode`].
    pub step_mode: StepMode,
    /// Prompt positions the scheduler prefills per step, shared across the
    /// batch (the per-step [`PrefillBudget`]). Admitted requests consume
    /// their prompt incrementally in fused chunks of up to this many
    /// positions, interleaved with decoding, so one long prompt can stall a
    /// step by at most `prefill_chunk` extra forward passes instead of its
    /// whole length. `usize::MAX` restores blocking admission (a prompt
    /// prefills entirely in its first step). Must be at least 1; default 8.
    pub prefill_chunk: usize,
    /// Maximum requests waiting in the admission queue; a
    /// [`ServeEngine::submit`] beyond this is rejected with
    /// [`ServeError::QueueFull`] instead of growing `pending` without
    /// bound. Must be at least 1; default `usize::MAX` (unbounded).
    pub max_queue: usize,
    /// Positions per KV cache page: the granularity of allocation and of
    /// prefix sharing (only full blocks enter the prefix trie). Must be at
    /// least 1; default 16.
    pub block_size: usize,
    /// Hard bound on KV blocks across the whole engine — every layer of
    /// every resident sequence plus the prefix cache; total KV memory is
    /// `max_blocks × 2 ×` [`KvScheme::page_bytes`] for the configured
    /// [`ServeConfig::kv_scheme`] (`block_size × d_model × 2` floats per
    /// block when exact). When the pool runs dry the scheduler evicts
    /// unused prefix-cache blocks, shrinks prefill grants, and finally
    /// preempts the youngest sequence (its blocks are freed and it
    /// re-queues to re-prefill later) instead of erroring. Default
    /// `usize::MAX` (unbounded).
    pub max_blocks: usize,
    /// Storage format of the KV-cache pages (see [`KvScheme`]). The
    /// default [`KvScheme::Exact`] keeps decode bit-identical to the
    /// unpaged cache; [`KvScheme::mxopal`] / [`KvScheme::mxint`] store
    /// packed shared-exponent codes instead — ~3.5× smaller pages, so a
    /// bounded pool holds ~3.5× more resident tokens — and attention runs
    /// in the quantized domain (bit-deterministic, accuracy-bounded
    /// against the exact cache). Prefix sharing works identically in
    /// either mode, but blocks never cross schemes.
    pub kv_scheme: KvScheme,
    /// Exact-prefix KV sharing: requests whose token prefix matches blocks
    /// already resident adopt them read-only and skip that span's prefill.
    /// Output is bit-identical either way (shared rows are exactly the
    /// rows the request would have computed); disable to trade the
    /// admission speedup for zero cross-request block aliasing. Default
    /// `true`.
    pub prefix_sharing: bool,
    /// Degraded-mode policy: when set, the engine watches pool pressure
    /// and the recent preemption rate, and under stress shrinks its
    /// admission and prefill budgets (and optionally sheds queued load)
    /// until the pressure clears — protecting in-flight work instead of
    /// thrashing. `None` (the default) disables the mode entirely; the
    /// scheduler behaves exactly as before.
    pub degraded: Option<DegradedConfig>,
    /// Speculative decoding ([`SpecConfig`]): when set, pure-decode steps
    /// draft up to `spec.k` tokens per sequence and verify them together
    /// with the step's sampled token in one fused multi-row pass, emitting
    /// every accepted token in a single step. Rejected tails roll back by
    /// truncating the sequence's block tables, so the served KV cache is
    /// always exactly what non-speculative decode would hold. `None` (the
    /// default) decodes one token per step.
    pub spec: Option<SpecConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_tokens: 32,
            num_threads: 1,
            step_mode: StepMode::Auto,
            prefill_chunk: 8,
            max_queue: usize::MAX,
            block_size: 16,
            max_blocks: usize::MAX,
            kv_scheme: KvScheme::Exact,
            prefix_sharing: true,
            degraded: None,
            spec: None,
        }
    }
}

/// Thresholds and hysteresis of the engine's degraded mode
/// ([`ServeConfig::degraded`]).
///
/// The engine **enters** degraded mode when KV-pool pressure (allocated
/// blocks — plus any injected pressure fault — as a percentage of
/// [`ServeConfig::max_blocks`]) reaches [`enter_pressure_pct`], or when at
/// least [`preempt_threshold`] preemptions happened within the last
/// [`preempt_window`] steps. While degraded it admits into a batch of
/// `max_batch × batch_pct / 100` slots, mints a per-step prefill budget of
/// `prefill_chunk × prefill_pct / 100` positions, and sheds the
/// youngest-queued requests down to [`shed_queue`] entries
/// ([`FinishReason::Shed`](crate::FinishReason::Shed)). It **exits** only
/// after [`cooldown_steps`] consecutive healthy steps (pressure at or
/// below [`exit_pressure_pct`] and zero preemptions in the window) — the
/// hysteresis that stops the mode from flapping at the threshold.
///
/// All fields are integers and every decision is a pure function of
/// scheduler state, so degraded-mode transitions replay deterministically.
///
/// [`enter_pressure_pct`]: DegradedConfig::enter_pressure_pct
/// [`exit_pressure_pct`]: DegradedConfig::exit_pressure_pct
/// [`preempt_threshold`]: DegradedConfig::preempt_threshold
/// [`preempt_window`]: DegradedConfig::preempt_window
/// [`cooldown_steps`]: DegradedConfig::cooldown_steps
/// [`shed_queue`]: DegradedConfig::shed_queue
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradedConfig {
    /// Pool-pressure percentage at which the engine enters degraded mode.
    pub enter_pressure_pct: u32,
    /// Pool-pressure percentage at or below which a step counts as healthy.
    pub exit_pressure_pct: u32,
    /// Width, in steps, of the sliding window over recent preemptions.
    pub preempt_window: u64,
    /// Preemptions within the window that trigger degraded mode.
    pub preempt_threshold: usize,
    /// Consecutive healthy steps required to exit (the hysteresis).
    pub cooldown_steps: u64,
    /// Percentage of `max_batch` admitted while degraded (min 1 slot).
    pub batch_pct: u32,
    /// Percentage of `prefill_chunk` minted per step while degraded
    /// (min 1 position).
    pub prefill_pct: u32,
    /// Queue length the shedder trims the admission queue down to while
    /// degraded, youngest first. `usize::MAX` (the default) disables
    /// shedding.
    pub shed_queue: usize,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            enter_pressure_pct: 85,
            exit_pressure_pct: 60,
            preempt_window: 16,
            preempt_threshold: 4,
            cooldown_steps: 8,
            batch_pct: 50,
            prefill_pct: 50,
            shed_queue: usize::MAX,
        }
    }
}

/// The per-step allowance of prompt positions the scheduler may prefill.
///
/// One budget of [`ServeConfig::prefill_chunk`] positions is minted per
/// [`ServeEngine::step`] and handed out round-robin over the sequences
/// still in their `Prefilling` phase — the scan resuming just past the last
/// grantee, so a sequence that drained the budget this step goes last the
/// next, however many decoding neighbours sit between the prefilling slots.
/// This bounds the prompt work any single step performs (the decode
/// stall a long prompt can inflict) while guaranteeing every queued prompt
/// makes progress: intake is chunked and latency-bounded rather than
/// blocking, in the spirit of sustained-throughput DAQ pipelines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefillBudget {
    remaining: usize,
}

impl PrefillBudget {
    /// A fresh budget of `limit` prompt positions.
    pub fn new(limit: usize) -> Self {
        PrefillBudget { remaining: limit }
    }

    /// Grants up to `want` positions, returning how many were granted.
    pub fn take(&mut self, want: usize) -> usize {
        let granted = want.min(self.remaining);
        self.remaining -= granted;
        granted
    }

    /// Positions still available this step.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The prompt was empty.
    EmptyPrompt,
    /// A prompt token is outside the model's vocabulary.
    TokenOutOfRange {
        /// The offending token id.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// A per-request token limit of zero was requested.
    ZeroTokenLimit,
    /// The request's [`SamplingParams`] are invalid (non-positive or
    /// non-finite temperature, `k == 0`, `p` outside `(0, 1]`).
    ///
    /// Caught at submission: letting such a request into the batch would
    /// panic inside [`opal_model::sampling::Sampler::pick`] mid-step, on a
    /// worker thread, taking every other in-flight sequence down with it.
    InvalidSampling {
        /// What is wrong with the parameters.
        reason: &'static str,
    },
    /// The admission queue already holds [`ServeConfig::max_queue`]
    /// requests. Backpressure for callers: retry after draining some steps
    /// instead of letting `pending` grow without bound.
    QueueFull {
        /// The configured queue bound that was hit.
        max_queue: usize,
    },
    /// The request could never fit the KV block pool even running alone
    /// with the prefix cache fully evicted: its worst-case lifetime
    /// residency (prompt plus token limit, plus one copy-on-write block
    /// per layer of headroom) exceeds [`ServeConfig::max_blocks`].
    /// Admitting it would deadlock the memory-aware scheduler, so it is
    /// rejected at submission.
    InsufficientBlocks {
        /// Worst-case blocks the request needs to complete.
        required: usize,
        /// The configured pool bound.
        max_blocks: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyPrompt => write!(f, "empty prompt"),
            ServeError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} outside vocabulary of {vocab}")
            }
            ServeError::ZeroTokenLimit => write!(f, "token limit must be at least 1"),
            ServeError::InvalidSampling { reason } => {
                write!(f, "invalid sampling parameters: {reason}")
            }
            ServeError::QueueFull { max_queue } => {
                write!(f, "admission queue full ({max_queue} requests)")
            }
            ServeError::InsufficientBlocks { required, max_blocks } => {
                write!(
                    f,
                    "request needs up to {required} KV blocks but the pool holds {max_blocks}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// What one call to [`ServeEngine::step`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepSummary {
    /// Requests admitted from the queue before this step (they enter the
    /// `Prefilling` phase; their prompts are consumed over later steps).
    pub admitted: usize,
    /// Prompt positions prefilled across the batch during this step
    /// (bounded by [`ServeConfig::prefill_chunk`]).
    pub prefilled: usize,
    /// Tokens generated across the batch during this step.
    pub generated: usize,
    /// Requests that reached their token limit and retired.
    pub finished: usize,
    /// Sequences preempted under KV-pool pressure during this step (their
    /// blocks were freed and they re-queued at the front of the admission
    /// queue).
    pub preempted: usize,
    /// KV blocks allocated from the engine's pool after this step (block
    /// tables plus prefix cache; a block shared by many sequences counts
    /// once).
    pub blocks_in_use: usize,
    /// High-water mark of `blocks_in_use` over the engine's lifetime.
    pub blocks_peak: usize,
    /// Requests whose `deadline_steps` TTL expired before this step
    /// (queued or in-batch; their blocks were freed immediately).
    pub expired: usize,
    /// Sequences that panicked during this step and were quarantined
    /// (retired with `FinishReason::Failed`, blocks returned; every other
    /// sequence continued bit-identically).
    pub failed: usize,
    /// Queued requests shed by degraded-mode load shedding before this
    /// step.
    pub shed: usize,
    /// Whether the engine ran this step in degraded mode (shrunken batch
    /// and prefill budgets).
    pub degraded: bool,
    /// Virtual steps of injected latency-spike faults consumed by this
    /// step (telemetry for step-clocked harnesses; the schedule itself is
    /// unaffected).
    pub latency_spike_steps: u64,
    /// Draft tokens proposed and verified across the batch during this
    /// step (zero when speculative decoding is off).
    pub drafted: usize,
    /// Drafted tokens the verify passes accepted this step — each one an
    /// extra generated token beyond the per-sequence sampled one, so
    /// `generated` counts them too.
    pub accepted: usize,
}

/// Decoding progress carried across a preemption: everything needed to
/// resume the request bit-identically once blocks are available again.
struct Resume {
    /// Tokens generated before the preemption (they re-prefill as part of
    /// the prompt — bit-identical to having decoded them, per the golden
    /// prefill-equivalence tests — and stay in the final report).
    tokens: Vec<u32>,
    /// The request-private sampler RNG, mid-stream.
    rng: TensorRng,
    preemptions: u32,
    /// Prefix positions adopted from the cache before the preemption.
    shared: usize,
    /// Per-token sample steps recorded before the preemption (the timing
    /// history survives; re-prefilled tokens keep their original steps).
    token_steps: Vec<u64>,
    /// Time to first token, if the first token predates the preemption.
    ttft: Option<std::time::Duration>,
}

/// A request waiting for a batch slot.
struct Queued {
    id: RequestId,
    prompt: Vec<u32>,
    limit: usize,
    sampling: SamplingParams,
    tenant: Option<String>,
    submitted_at: Instant,
    /// Scheduler step at submission — the anchor of the deadline TTL
    /// (preserved across preemptions, so re-queued time keeps counting).
    submitted_step: u64,
    /// TTL in scheduler steps from `submitted_step`, if the request set
    /// one.
    deadline: Option<u64>,
    /// Present when this entry is a preempted sequence awaiting
    /// re-admission rather than a fresh request.
    resume: Option<Resume>,
    /// Times a younger cache-warm request was admitted past this one under
    /// block pressure (see [`REORDER_STARVATION_BOUND`]).
    bypassed: u32,
}

/// What [`advance_sequence`] did to one sequence during one step — written
/// by the worker that stepped it, read back by the scheduler's post-join
/// accounting (energy, throughput counters) in batch order, so the
/// bookkeeping is independent of thread scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StepWork {
    /// Cache position before this step's prefill slice (meaningful when
    /// `prefilled > 0`).
    prefill_start: usize,
    /// Prompt positions consumed this step.
    prefilled: usize,
    /// Whether a token was sampled this step.
    sampled: bool,
    /// Whether a decode forward pass ran this step.
    forwarded: bool,
    /// Draft tokens proposed and verified this step.
    drafted: usize,
    /// Drafted tokens accepted (tokens emitted beyond the sampled one).
    accepted: usize,
    /// Context length before the fused verify pass, when one ran.
    verify_start: usize,
    /// Rows the fused verify pass computed (`1 + drafted`; zero when no
    /// verify pass ran this step).
    verify_rows: usize,
    /// Draft-model context length before this step's draft work.
    draft_start: usize,
    /// Draft-model forward passes this step (catch-up rows plus proposal
    /// steps), priced under the draft sibling's config.
    draft_rows: usize,
}

/// What one sequence did during the most recent [`ServeEngine::step`] —
/// the realized schedule, exported via [`ServeEngine::last_step_work`] so
/// load harnesses can reconstruct the step's arithmetic (e.g. as an
/// `opal_hw::workload::TokenWorkload` schedule) without re-deriving
/// scheduler decisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqStepWork {
    /// Cache position before this step's prefill slice.
    pub prefill_start: usize,
    /// Prompt positions consumed this step (each one fused layer sweep at
    /// contexts `prefill_start + 1 ..= prefill_start + prefilled`).
    pub prefilled: usize,
    /// Whether a token was sampled this step.
    pub sampled: bool,
    /// Context length (cached positions) of this step's decode forward
    /// pass, or `None` when no decode pass ran (still prefilling, the
    /// sequence retired at its limit and its next logits were never
    /// needed, or a fused verify pass replaced the decode pass — see
    /// [`SeqStepWork::verify_rows`]).
    pub decode_context: Option<usize>,
    /// Draft tokens proposed and verified for this sequence this step.
    pub drafted: usize,
    /// Drafted tokens accepted (tokens emitted beyond the sampled one).
    pub accepted: usize,
    /// Context length before the fused verify pass, when one ran.
    pub verify_start: usize,
    /// Rows the fused verify pass computed — one fused layer sweep over
    /// contexts `verify_start + 1 ..= verify_start + verify_rows`, exactly
    /// like a prefill chunk. Zero when no verify pass ran.
    pub verify_rows: usize,
    /// Draft-model cache position before this step's draft rows.
    pub draft_start: usize,
    /// Rows the *draft* model computed this step (catch-up plus proposal
    /// feeds, at contexts `draft_start + 1 ..= draft_start + draft_rows`).
    /// These price against the draft's truncated layer count, not the
    /// served model's. Zero without a truncated draft.
    pub draft_rows: usize,
}

/// A sequence currently in the batch. Each owns a private [`DecodeState`] —
/// its KV cache and scratch buffers — plus its sampler RNG, so sequences
/// are fully isolated and can be stepped from different threads.
///
/// # Lifecycle
///
/// An admitted sequence starts in the **`Prefilling` phase**
/// (`prefilled < prompt.len()`): each step it consumes up to its granted
/// share of the step's [`PrefillBudget`] in one fused
/// [`Model::prefill_chunk`] pass, generating nothing. The step whose grant
/// covers the last prompt position computes the prompt logits and the
/// sequence transitions to **`Decoding`** — sampling its first token in
/// that same step, exactly as blocking admission would have — where it
/// advances one token per step until it retires at its limit.
pub(crate) struct Active {
    id: RequestId,
    state: DecodeState,
    last_logits: Vec<f32>,
    tokens: Vec<u32>,
    /// The tokens to prefill: the original prompt plus — after a
    /// preemption — the tokens generated before it (re-prefilling them is
    /// bit-identical to having decoded them). `prefill[..prefilled]` is in
    /// the KV cache.
    prefill: Vec<u32>,
    /// Original prompt length (`prefill[..prompt_len]`), for reporting.
    prompt_len: usize,
    /// Prefill positions already in the KV cache (starts at the
    /// prefix-shared span, not zero, when blocks were adopted).
    prefilled: usize,
    /// Prefill positions this step's scheduler granted (consumed and reset
    /// by [`advance_sequence`]).
    grant: usize,
    /// Per-step activity record for post-join accounting.
    work: StepWork,
    limit: usize,
    sampler: Sampler,
    rng: TensorRng,
    tenant: Option<String>,
    submitted_at: Instant,
    /// Time spent in the admission queue (submission → batch slot).
    queue_wait: std::time::Duration,
    /// Scheduler step at which each generated token was sampled (parallel
    /// to `tokens`; survives preemption via [`Resume`]).
    token_steps: Vec<u64>,
    /// Wall time from submission to the first sampled token.
    ttft: Option<std::time::Duration>,
    admitted_step: u64,
    /// Times this request has been preempted so far.
    preemptions: u32,
    /// Prefill positions skipped via prefix sharing (cumulative across
    /// re-admissions).
    shared: usize,
    /// Full prompt blocks already published into the prefix trie (the
    /// registration watermark — steady-state steps publish nothing and do
    /// no trie work for this sequence).
    registered_blocks: usize,
    /// Trie node of the last published block (`PrefixTrie::ROOT` before
    /// the first), so registration appends without re-walking the path.
    /// Verified live before use: a published node is normally pinned by
    /// this sequence's own table (shared `Arc`s) or by its children, but a
    /// node adopted-then-diverged or inherited from a retired twin can be
    /// evicted, and ids are never reused, so a dead anchor is detectable.
    trie_parent: usize,
    /// Scheduler step at submission (the deadline TTL anchor).
    submitted_step: u64,
    /// TTL in scheduler steps from `submitted_step`, if set.
    deadline: Option<u64>,
    /// Set by [`advance_sequence_guarded`] when this sequence's step
    /// panicked: the caught panic message. The scheduler quarantines the
    /// sequence — retires it with `FinishReason::Failed` and returns its
    /// blocks — before publishing anything or stepping it again (its KV
    /// writes may be half-finished, so its blocks must never enter the
    /// prefix trie).
    failed: Option<String>,
    /// Armed by an injected [`FaultKind::WorkerPanic`]: the next
    /// [`advance_sequence`] call on this sequence panics, on whichever
    /// thread runs it.
    panic_next: bool,
    /// Speculative-decoding state when [`ServeConfig::spec`] is set:
    /// draft source plus the reusable draft/verify buffers. Dropped on
    /// preemption (never carried in [`Resume`]) and rebuilt at
    /// re-admission — the draft re-prefills lazily, so resumption stays
    /// output-identical.
    spec: Option<Box<SpecState>>,
}

/// Per-sequence speculative-decoding state: the proposal source and the
/// reusable buffers of the draft/verify loop. Everything here is scratch —
/// none of it influences output, only how many tokens each step emits.
struct SpecState {
    /// Maximum tokens drafted per step ([`SpecConfig::k`]).
    k: usize,
    /// Draft-model side of this sequence (`DraftSource::Truncated` only;
    /// `None` drafts by n-gram lookup).
    draft: Option<DraftSeq>,
    /// Draft tokens proposed this step (reused).
    proposals: Vec<u32>,
    /// Verify-row token buffer `[t0, d1..dk]` (reused).
    verify: Vec<u32>,
    /// Logits of the fused verify pass, one row per verify token
    /// (pre-grown to `k + 1` rows; reused).
    logits: Matrix,
}

/// The truncated-depth draft sibling's side of one sequence.
struct DraftSeq {
    /// The engine-wide draft sibling (shared `Arc`, built once).
    model: Arc<Model>,
    /// The draft's private KV cache over the sequence's committed tokens,
    /// allocated from a per-sequence unbounded pool — draft KV is a
    /// throwaway accelerant, never part of the served cache, so it counts
    /// against neither [`ServeConfig::max_blocks`] nor the audit.
    state: DecodeState,
    /// The draft's last-row logits buffer (reused).
    logits: Vec<f32>,
    /// Committed tokens (prefill + emitted) the draft has consumed; the
    /// draft catches up lazily at the start of each speculative step, so
    /// a fresh or resumed sequence just starts from `seen == 0`.
    seen: usize,
}

impl Active {
    /// Whether this sequence is still consuming its prompt.
    fn prefilling(&self) -> bool {
        self.prefilled < self.prefill.len()
    }
}

/// Minimum matvec work (multiply-accumulates) a worker's chunk must carry
/// for [`StepMode::Auto`] to hand it to a pool thread instead of running it
/// inline.
///
/// 400k MACs is roughly 150–250 µs of scalar decode on one current core
/// (the `llama7b-proxy128` config measures ≈580k MACs/token at ≈250 µs),
/// an order of magnitude above the few-µs channel-send + wake-up cost of a
/// dispatch — while the tiny test config (≈30k MACs/token) stays serial up
/// to batch 13/worker, which is exactly the regime where PR 2's scoped
/// threads lost to the single-threaded path.
const FANOUT_MIN_MACS_PER_WORKER: u64 = 400_000;

/// Matvec multiply-accumulates per decoded token: the decoder stack's
/// weight MACs (identical to its parameter count) plus the unembedding row.
fn approx_macs_per_token(config: &opal_model::ModelConfig) -> u64 {
    config.decoder_params() + (config.d_model * config.vocab) as u64
}

/// Decode-equivalent forward passes this sequence will run this step: its
/// granted prefill positions (each one layer sweep of the fused chunk)
/// plus one if it will sample (a prefill position costs about as much as a
/// decoded token), plus up to `k` fused verify rows when a speculative
/// step will fire — a pure function of pre-fan-out scheduler state, so
/// chunk cuts stay deterministic.
fn seq_units(seq: &Active) -> u64 {
    let samples = seq.prefilled + seq.grant >= seq.prefill.len();
    let spec_rows = match &seq.spec {
        Some(spec) if samples && !seq.prefilling() => spec.k as u64,
        _ => 0,
    };
    seq.grant as u64 + u64::from(samples) + spec_rows
}

/// Exclusive end indices (all but the last) cutting `units` into `chunks`
/// contiguous groups of near-equal sum, each with at least one element.
fn balanced_cuts(units: &[u64], chunks: usize) -> Vec<usize> {
    let n = units.len();
    let chunks = chunks.clamp(1, n.max(1));
    let total: u64 = units.iter().sum();
    let mut cuts = Vec::with_capacity(chunks.saturating_sub(1));
    let mut acc = 0u64;
    let mut end = 0usize;
    for k in 1..chunks {
        let target = total * k as u64 / chunks as u64;
        // Leave at least one element for each group still to cut.
        let max_end = n - (chunks - k);
        let min_end = end + 1;
        while end < max_end && (end < min_end || acc + units[end] <= target) {
            acc += units[end];
            end += 1;
        }
        cuts.push(end);
    }
    cuts
}

/// Cuts the active batch into at most `workers` contiguous chunks weighted
/// by per-sequence work ([`seq_units`]), not by sequence count: a sequence
/// carrying a large prefill grant would otherwise turn its equal-count
/// chunk into the step's straggler, idling the threads the work-based
/// fan-out plan just justified. Cut placement is a pure function of
/// scheduler state fixed before the fan-out, so dispatch stays
/// deterministic (and chunk shape never affects output — sequences are
/// independent and accounting runs post-join in batch order).
fn split_by_work(seqs: &mut [Active], workers: usize) -> Vec<&mut [Active]> {
    let units: Vec<u64> = seqs.iter().map(seq_units).collect();
    let cuts = balanced_cuts(&units, workers);
    let mut chunks = Vec::with_capacity(cuts.len() + 1);
    let mut rest = seqs;
    let mut prev = 0usize;
    for &cut in &cuts {
        let (chunk, tail) = rest.split_at_mut(cut - prev);
        chunks.push(chunk);
        rest = tail;
        prev = cut;
    }
    chunks.push(rest);
    chunks
}

/// Advances one sequence by one step. Runs on worker threads; everything
/// it touches is owned by the sequence, and the work it performs is fully
/// determined by scheduler state fixed before the fan-out (`grant`), so
/// output is independent of thread count and dispatch mode.
///
/// A `Prefilling` sequence consumes its granted prompt slice in one fused
/// [`Model::prefill_chunk`] pass; if the grant covers the rest of the
/// prompt it computes the prompt logits and falls through to `Decoding`.
/// A `Decoding` sequence samples from the last logits, then — unless it
/// just hit its limit — runs the next forward pass, reusing the
/// `last_logits` buffer.
pub(crate) fn advance_sequence(model: &Model, seq: &mut Active) {
    seq.work = StepWork::default();
    if seq.panic_next {
        // Deterministic chaos: fire the injected fault inside the
        // sequence's step, on whatever thread is running it. The flag is
        // cleared first so the quarantined sequence is never re-armed.
        seq.panic_next = false;
        // tidy: allow(panic) -- deliberate fault injection; the step harness catches it
        panic!("injected chaos fault: worker panic stepping {}", seq.id);
    }
    if seq.prefilling() {
        let grant = std::mem::take(&mut seq.grant);
        if grant == 0 {
            return; // another sequence drained this step's budget
        }
        let start = seq.prefilled;
        let end = start + grant; // the scheduler never grants past the prompt
        seq.work.prefill_start = start;
        seq.work.prefilled = grant;
        seq.prefilled = end;
        if end < seq.prefill.len() {
            model.prefill_chunk(&mut seq.state, &seq.prefill[start..end]);
            return;
        }
        // Final chunk: materialize the prompt logits and sample the first
        // token in this same step, exactly like blocking admission did.
        model.prefill_chunk_into(&mut seq.state, &seq.prefill[start..end], &mut seq.last_logits);
    }
    let token = seq.sampler.pick(&seq.last_logits, &mut seq.rng);
    seq.tokens.push(token);
    seq.work.sampled = true;
    // A sequence that just hit its limit retires without another forward
    // pass — its next logits would be discarded.
    if seq.tokens.len() >= seq.limit {
        return;
    }
    // Speculative path: pure-decode steps only. The prompt-completion
    // step's decode row was reserved by `grant_block_cost`, while
    // `decode_block_need` reserves the speculative rows only for
    // sequences already decoding at planning time — this gate must match
    // that reservation exactly. (Speculation is output-invariant, so the
    // gate can only shift throughput, never tokens.)
    if seq.work.prefilled == 0 {
        if let Some(mut spec) = seq.spec.take() {
            speculative_advance(model, seq, &mut spec, token);
            seq.spec = Some(spec);
            return;
        }
    }
    model.decode_step_into(&mut seq.state, token, &mut seq.last_logits);
    seq.work.forwarded = true;
}

/// One speculative decode step for `seq`, entered after the step's token
/// `t0` was sampled and pushed, with capacity for at least one more token.
/// Drafts up to `spec.k` proposals, verifies `[t0, d1..dk]` in one fused
/// multi-row pass, accepts the longest proposal prefix the request's own
/// sampler reproduces, and rolls the rejected tail back by truncating the
/// sequence's block tables.
///
/// Bit-identity with plain decode holds by construction:
///
/// * Verify-row logits are bit-identical to sequential decode rows
///   (`Model::verify_chunk_into`'s contract, pinned by the model's golden
///   tests): row `i` is exactly the `last_logits` a plain run would hold
///   after emitting `t0, d1..di`.
/// * Each acceptance test runs the *real* sampler on a clone of the
///   request RNG. A match commits the clone — the RNG advances exactly as
///   the plain run's pick would have — while a mismatch discards it, so
///   the next step's pick re-runs the same decision from the same state
///   and emits the token the plain run would have emitted: the correction
///   token costs no extra forward pass.
/// * Proposals can only shift *when* tokens are emitted, never *what*: a
///   wrong draft just wastes its verify row.
fn speculative_advance(model: &Model, seq: &mut Active, spec: &mut SpecState, t0: u32) {
    let k_eff = spec.k.min(seq.limit - seq.tokens.len());
    debug_assert!(k_eff >= 1, "caller guarantees capacity for at least one draft token");
    spec.proposals.clear();
    match &mut spec.draft {
        Some(draft) => {
            let (start, rows) =
                draft_propose(draft, &seq.prefill, &seq.tokens, k_eff, &mut spec.proposals);
            seq.work.draft_start = start;
            seq.work.draft_rows = rows;
        }
        None => ngram_propose(&seq.prefill, &seq.tokens, k_eff, &mut spec.proposals),
    }
    if spec.proposals.is_empty() {
        // Nothing to verify (an n-gram miss): plain decode for this step.
        model.decode_step_into(&mut seq.state, t0, &mut seq.last_logits);
        seq.work.forwarded = true;
        return;
    }
    let pos0 = seq.state.pos();
    spec.verify.clear();
    // tidy: allow(alloc) -- within the `k + 1` capacity reserved in SpecState
    spec.verify.push(t0);
    spec.verify.extend_from_slice(&spec.proposals);
    model.verify_chunk_into(&mut seq.state, &spec.verify, &mut spec.logits);
    seq.work.verify_start = pos0;
    seq.work.verify_rows = spec.verify.len();
    seq.work.drafted = spec.proposals.len();
    // Accept the longest proposal prefix the request's own sampler
    // reproduces; row `i` holds the logits after `t0, d1..di`.
    let mut accepted = 0;
    while accepted < spec.proposals.len() {
        // tidy: allow(alloc) -- TensorRng is a fixed-size value; cloning stays on the stack
        let mut trial = seq.rng.clone();
        let pick = seq.sampler.pick(spec.logits.row(accepted), &mut trial);
        if pick != spec.proposals[accepted] {
            break;
        }
        seq.rng = trial;
        // tidy: allow(alloc) -- `tokens` reserves its generation limit at admission
        seq.tokens.push(pick);
        accepted += 1;
    }
    seq.work.accepted = accepted;
    // The next step samples from the logits after the last committed
    // token — exactly row `accepted`.
    seq.last_logits.copy_from_slice(spec.logits.row(accepted));
    // Roll back the rejected tail: keep `t0` plus the accepted rows.
    seq.state.truncate(pos0 + 1 + accepted);
    if let Some(draft) = &mut spec.draft {
        // Drop draft rows past the committed stream (rejected proposals);
        // rows the draft never computed are caught up lazily next step.
        let committed = seq.prefill.len() + seq.tokens.len();
        if draft.state.pos() > committed {
            draft.state.truncate(committed);
        }
        draft.seen = draft.state.pos();
    }
}

/// Drafts up to `k_eff` proposals from the truncated-depth sibling:
/// catches the draft KV up to the committed stream (one fused pass over
/// the gap, which also covers fresh and just-resumed sequences), then
/// rolls the draft forward greedily. Returns `(draft_start, draft_rows)`
/// for energy and roofline pricing. Proposals never affect output, only
/// acceptance, so the draft always picks its own argmax regardless of the
/// request's sampler.
fn draft_propose(
    draft: &mut DraftSeq,
    prefill: &[u32],
    tokens: &[u32],
    k_eff: usize,
    proposals: &mut Vec<u32>,
) -> (usize, usize) {
    let start = draft.seen;
    let p = prefill.len();
    if draft.seen < p {
        draft.model.prefill_chunk(&mut draft.state, &prefill[draft.seen..]);
        draft.seen = p;
    }
    // The step's sampled token was just pushed, so the gap is never empty.
    // `catchup_chunk_into` keeps the chunk scratch alive — this runs every
    // decode step, unlike a prompt's final prefill chunk.
    draft.model.catchup_chunk_into(&mut draft.state, &tokens[draft.seen - p..], &mut draft.logits);
    draft.seen = p + tokens.len();
    let mut rows = draft.seen - start;
    for i in 0..k_eff {
        let d = argmax(&draft.logits);
        // tidy: allow(alloc) -- within the `k` capacity reserved in SpecState
        proposals.push(d);
        if i + 1 < k_eff {
            draft.model.decode_step_into(&mut draft.state, d, &mut draft.logits);
            rows += 1;
        }
    }
    (start, rows)
}

/// First-index argmax over draft logits (ties break low, matching the
/// greedy sampler — which maximizes acceptance under greedy serving).
fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

/// Model-free draft: proposes the tokens that followed the most recent
/// earlier occurrence of the committed stream's current suffix, preferring
/// a bigram match over a unigram one. O(context) backward scan per step,
/// no allocation; an empty result falls back to plain decode.
fn ngram_propose(prefill: &[u32], tokens: &[u32], k_eff: usize, proposals: &mut Vec<u32>) {
    let p = prefill.len();
    let n = p + tokens.len();
    let at = |i: usize| -> u32 {
        if i < p {
            prefill[i]
        } else {
            tokens[i - p]
        }
    };
    if n < 2 {
        return;
    }
    let last = at(n - 1);
    let mut hit = None;
    if n >= 3 {
        let prev = at(n - 2);
        for i in (1..n - 1).rev() {
            if at(i) == last && at(i - 1) == prev {
                hit = Some(i);
                break;
            }
        }
    }
    if hit.is_none() {
        for i in (0..n - 1).rev() {
            if at(i) == last {
                hit = Some(i);
                break;
            }
        }
    }
    let Some(hit) = hit else { return };
    for j in hit + 1..n.min(hit + 1 + k_eff) {
        // tidy: allow(alloc) -- within the `k` capacity reserved in SpecState
        proposals.push(at(j));
    }
}

/// [`advance_sequence`] behind a per-sequence `catch_unwind`: the panic
/// quarantine. A panic while stepping one sequence — a model invariant
/// tripping on corrupt state, or an injected chaos fault — is caught here,
/// on the thread that ran the sequence, and recorded in [`Active::failed`];
/// the scheduler retires the sequence with `FinishReason::Failed` after the
/// join. Every dispatch path (serial, scoped, pool) steps through this
/// wrapper, so one poisoned sequence never takes down its chunk-mates, the
/// worker pool, or the engine.
///
/// The `AssertUnwindSafe` is sound for the same reason preemption is: a
/// quarantined sequence is *dropped*, never observed again — its possibly
/// half-written `DecodeState` is released to the pool without its contents
/// ever being read (the quarantine runs before `register_prefixes`, so
/// poisoned blocks cannot leak into the prefix cache either).
pub(crate) fn advance_sequence_guarded(model: &Model, seq: &mut Active) {
    if seq.failed.is_some() {
        return; // already quarantined; never step a poisoned sequence
    }
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| advance_sequence(model, seq))) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "sequence step panicked with a non-string payload".to_owned());
        seq.failed = Some(message);
    }
}

/// The batched serving engine.
///
/// Drives a borrowed [`Model`] for up to [`ServeConfig::max_batch`]
/// concurrent sequences. The model itself is immutable during decoding
/// (all mutable state lives in the per-request [`DecodeState`]s), which is
/// what makes mid-stream admission safe: admitting or retiring a sequence
/// cannot touch any other sequence's KV cache.
///
/// Decoding defaults to greedy (argmax), matching the single-sequence
/// `OpalPipeline::generate` loop token-for-token at batch size one; each
/// request may carry its own [`SamplingParams`] for temperature / top-k /
/// top-p serving. With [`ServeConfig::num_threads`] > 1 the decode step
/// fans out across the engine's persistent worker pool, one chunk of
/// sequences per worker; the pool is spawned lazily by the first step that
/// fans out and shut down (channels closed, threads joined) when the engine
/// drops — even with requests still queued or decoding.
pub struct ServeEngine<'m> {
    model: &'m Model,
    /// The truncated-depth draft sibling when [`ServeConfig::spec`] selects
    /// [`DraftSource::Truncated`]; shares the served model's weight tensors.
    draft_model: Option<Arc<Model>>,
    accelerator: Option<Accelerator>,
    config: ServeConfig,
    /// Lazily-spawned persistent decode workers. Declared before `active`:
    /// fields drop in declaration order, so the pool joins its threads
    /// (which may be finishing a chunk if the engine is dropped during an
    /// unwinding step) while the sequences they borrow are still alive.
    pool: Option<WorkerPool>,
    /// The engine-wide KV block pool: every sequence's block tables and the
    /// prefix cache allocate from it, bounded by [`ServeConfig::max_blocks`].
    kv_pool: Arc<BlockPool>,
    /// The exact-match prefix cache over full KV blocks.
    trie: PrefixTrie,
    pending: VecDeque<Queued>,
    active: Vec<Active>,
    finished: Vec<RequestReport>,
    /// Realized per-sequence schedule of the most recent step (batch
    /// order, including sequences that retired at the end of that step).
    last_work: Vec<SeqStepWork>,
    next_id: u64,
    steps: u64,
    prefill_tokens: u64,
    shared_tokens: u64,
    generated_tokens: u64,
    preemptions: u64,
    peak_batch: usize,
    energy_j: f64,
    /// Rotates which `Prefilling` sequence gets first claim on each step's
    /// [`PrefillBudget`] (the round-robin fairness policy).
    prefill_cursor: usize,
    /// Prefix sums of per-position prefill energy (see [`PrefillEnergy`]).
    prefill_energy: PrefillEnergy,
    /// Separate prefix sums for draft-model rows — the draft's layer count
    /// differs, so its per-position energies cannot share `prefill_energy`.
    draft_energy: PrefillEnergy,
    /// Draft proposals verified (successful or not) and accepted, across
    /// the engine lifetime; the speculation win is `accepted / drafted`.
    drafted_total: u64,
    accepted_total: u64,
    started_at: Option<Instant>,
    /// Injected worker-panic faults waiting for the next non-idle step
    /// (victim ranks, reduced modulo the batch at firing time).
    armed_panics: Vec<usize>,
    /// Injected allocation-pressure blocks waiting for the next non-idle
    /// step.
    armed_pressure: usize,
    /// Injected latency-spike steps waiting for the next non-idle step.
    armed_spikes: u64,
    /// Free blocks hidden from this step's planner (consumed from
    /// `armed_pressure`; cleared when the step completes, or early when it
    /// would wedge a lone sequence).
    fault_pressure: usize,
    /// Whether the engine is currently in degraded mode.
    degraded_now: bool,
    /// Consecutive healthy steps while degraded (the exit hysteresis).
    healthy_streak: u64,
    /// Steps of recent preemptions, pruned to the degraded-mode window.
    recent_preempts: VecDeque<u64>,
    deadline_exceeded_total: u64,
    failed_total: u64,
    shed_total: u64,
    degraded_steps_total: u64,
    mode_transitions: u64,
    rejections: RejectionCounts,
}

/// Lazily-extended prefix sums of per-position prefill energy:
/// `prefix[n] = Σ_{pos=1..=n} energy_per_token(pos)`, accumulated
/// sequentially in `f64` — the exact sum the retired per-position admission
/// loop produced.
///
/// Charging a prompt slice covering cache positions `(start, start+n]` is
/// then one subtraction, `prefix[start+n] − prefix[start]`: amortized O(1)
/// per admission regardless of prompt length (each position's energy is
/// evaluated once per engine lifetime and shared by every later request),
/// where the old loop re-evaluated the analytical accelerator model once
/// per prompt position per request.
#[derive(Debug)]
struct PrefillEnergy {
    prefix: Vec<f64>,
}

impl PrefillEnergy {
    fn new() -> Self {
        PrefillEnergy { prefix: vec![0.0] }
    }

    /// Energy of prefilling cache positions `(start, start+n]`.
    fn range_j(
        &mut self,
        acc: &Accelerator,
        config: &opal_model::ModelConfig,
        start: usize,
        n: usize,
    ) -> f64 {
        let end = start + n;
        while self.prefix.len() <= end {
            let pos = self.prefix.len();
            let last = self.prefix.last().copied().unwrap_or(0.0);
            self.prefix.push(last + acc.energy_per_token(config, pos).total_j());
        }
        self.prefix[end] - self.prefix[start]
    }
}

impl<'m> ServeEngine<'m> {
    /// Creates an engine over `model` with the given scheduler limits and
    /// no energy accounting.
    pub fn new(model: &'m Model, config: ServeConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(config.max_tokens > 0, "max_tokens must be at least 1");
        assert!(config.num_threads > 0, "num_threads must be at least 1");
        assert!(config.prefill_chunk > 0, "prefill_chunk must be at least 1");
        assert!(config.max_queue > 0, "max_queue must be at least 1");
        assert!(config.block_size > 0, "block_size must be at least 1");
        assert!(config.max_blocks > 0, "max_blocks must be at least 1");
        if let Some(spec) = &config.spec {
            assert!(spec.k >= 1, "spec.k must be at least 1");
            if let DraftSource::Truncated { layers } = spec.draft {
                assert!(
                    layers >= 1 && layers <= model.config().n_layers,
                    "draft layers must be in 1..={}",
                    model.config().n_layers
                );
            }
        }
        let draft_model = match config.spec {
            Some(SpecConfig { draft: DraftSource::Truncated { layers }, .. }) => {
                Some(Arc::new(model.draft_truncated(layers)))
            }
            _ => None,
        };
        let kv_pool = Arc::new(BlockPool::with_scheme(
            config.block_size,
            model.config().d_model,
            config.max_blocks,
            config.kv_scheme,
        ));
        ServeEngine {
            model,
            draft_model,
            accelerator: None,
            config,
            pool: None,
            kv_pool,
            trie: PrefixTrie::new(),
            pending: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            last_work: Vec::new(),
            next_id: 0,
            steps: 0,
            prefill_tokens: 0,
            shared_tokens: 0,
            generated_tokens: 0,
            preemptions: 0,
            peak_batch: 0,
            energy_j: 0.0,
            prefill_cursor: 0,
            prefill_energy: PrefillEnergy::new(),
            draft_energy: PrefillEnergy::new(),
            drafted_total: 0,
            accepted_total: 0,
            started_at: None,
            armed_panics: Vec::new(),
            armed_pressure: 0,
            armed_spikes: 0,
            fault_pressure: 0,
            degraded_now: false,
            healthy_streak: 0,
            recent_preempts: VecDeque::new(),
            deadline_exceeded_total: 0,
            failed_total: 0,
            shed_total: 0,
            degraded_steps_total: 0,
            mode_transitions: 0,
            rejections: RejectionCounts::default(),
        }
    }

    /// Attaches an accelerator model; every forward pass the engine runs
    /// (prompt prefill and decode alike) is then charged
    /// `energy_per_token` at its sequence length, accumulating into
    /// [`ServeReport::energy_j`].
    #[must_use]
    pub fn with_accelerator(mut self, accelerator: Accelerator) -> Self {
        // The prefix sums cache per-position energies of the *current*
        // accelerator; swapping models mid-life must not mix the two.
        self.prefill_energy = PrefillEnergy::new();
        self.draft_energy = PrefillEnergy::new();
        self.accelerator = Some(accelerator);
        self
    }

    /// The scheduler limits.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The model being served.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Requests waiting for a batch slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequences currently in the batch (prefilling or decoding).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Batch sequences still consuming their prompt (the `Prefilling`
    /// phase). Useful for benchmarks and operators separating admission
    /// latency from steady-state decode.
    pub fn prefilling_len(&self) -> usize {
        self.active.iter().filter(|s| s.prefilling()).count()
    }

    /// KV blocks currently allocated from the engine's pool (block tables
    /// of resident sequences plus the prefix cache; a block shared by many
    /// sequences counts once).
    pub fn kv_blocks_in_use(&self) -> usize {
        self.kv_pool.in_use()
    }

    /// High-water mark of [`ServeEngine::kv_blocks_in_use`].
    pub fn kv_blocks_peak(&self) -> usize {
        self.kv_pool.peak()
    }

    /// The configured pool bound ([`ServeConfig::max_blocks`]).
    pub fn kv_blocks_capacity(&self) -> usize {
        self.kv_pool.capacity()
    }

    /// The engine's KV block pool. Harnesses clone the `Arc` to check for
    /// leaked blocks after the engine itself has been dropped (a drained
    /// and dropped engine must leave `in_use() == 0`).
    pub fn kv_pool(&self) -> &Arc<BlockPool> {
        &self.kv_pool
    }

    /// Whether the engine is currently running in degraded mode (see
    /// [`ServeConfig::degraded`]).
    pub fn degraded(&self) -> bool {
        self.degraded_now
    }

    /// Arms a fault to fire at the next non-idle [`step`](Self::step):
    /// worker panics mark their victim after admission, pressure faults
    /// hide free blocks from that step's planner, latency spikes surface in
    /// [`StepSummary::latency_spike_steps`]. Multiple faults stack. Faults
    /// injected while the engine is idle stay armed until work arrives —
    /// injection is deterministic in engine steps, never in wall time.
    pub fn inject_fault(&mut self, fault: FaultKind) {
        match fault {
            FaultKind::WorkerPanic { victim_rank } => self.armed_panics.push(victim_rank),
            FaultKind::BlockPressure { blocks } => {
                self.armed_pressure = self.armed_pressure.saturating_add(blocks);
            }
            FaultKind::LatencySpike { extra_steps } => {
                self.armed_spikes = self.armed_spikes.saturating_add(extra_steps);
            }
        }
    }

    /// Full KV blocks resident in the prefix cache.
    pub fn prefix_cache_len(&self) -> usize {
        self.trie.len()
    }

    /// Scheduler steps executed so far (the clock that stamps
    /// [`RequestReport::admitted_step`](crate::RequestReport) and
    /// [`RequestReport::token_steps`](crate::RequestReport); idle calls to
    /// [`step`](Self::step) do not advance it).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The realized per-sequence schedule of the most recent non-idle
    /// [`step`](Self::step), in batch order — including sequences that
    /// retired at the end of that step. Load harnesses use this to convert
    /// each step into analytical workload terms (see
    /// `opal_hw::workload::TokenWorkload::from_schedule`) without
    /// re-deriving scheduler decisions.
    pub fn last_step_work(&self) -> &[SeqStepWork] {
        &self.last_work
    }

    /// Ids of every request still in flight: active sequences in batch
    /// order, then queued requests in queue order. Useful for harnesses
    /// injecting cancellation storms against live traffic.
    pub fn in_flight(&self) -> Vec<RequestId> {
        self.active.iter().map(|s| s.id).chain(self.pending.iter().map(|q| q.id)).collect()
    }

    /// Enqueues a request generating the configured default
    /// [`ServeConfig::max_tokens`] tokens.
    ///
    /// # Errors
    ///
    /// Rejects empty prompts and out-of-vocabulary tokens.
    pub fn submit(&mut self, prompt: &[u32]) -> Result<RequestId, ServeError> {
        self.submit_with_limit(prompt, self.config.max_tokens)
    }

    /// Enqueues a request generating at most `max_new_tokens` tokens
    /// (clamped to [`ServeConfig::max_tokens`]).
    ///
    /// The request joins the decode batch at the start of the next
    /// [`step`](Self::step) with a free slot — submission mid-stream is the
    /// normal case, not an edge case.
    ///
    /// # Errors
    ///
    /// Rejects empty prompts, out-of-vocabulary tokens, and a zero token
    /// limit.
    pub fn submit_with_limit(
        &mut self,
        prompt: &[u32],
        max_new_tokens: usize,
    ) -> Result<RequestId, ServeError> {
        self.submit_request(Request::new(prompt).with_limit(max_new_tokens))
    }

    /// Enqueues a full [`Request`] — prompt, token limit and per-request
    /// [`SamplingParams`]. Greedy sampling reproduces [`submit`](Self::submit)
    /// exactly; other samplers draw from a request-private seeded RNG, so
    /// output is independent of batch composition and thread count.
    ///
    /// # Errors
    ///
    /// Rejects submissions while the admission queue is at
    /// [`ServeConfig::max_queue`] (backpressure), empty prompts,
    /// out-of-vocabulary tokens, a zero token limit (which could never
    /// retire sanely: the first step would sample a token the limit says
    /// must not exist), and invalid sampling parameters (which would panic
    /// mid-step on a worker thread instead of failing at the API boundary).
    pub fn submit_request(&mut self, request: Request) -> Result<RequestId, ServeError> {
        let result = self.submit_request_inner(request);
        if let Err(e) = &result {
            match e {
                ServeError::QueueFull { .. } => self.rejections.queue_full += 1,
                ServeError::InsufficientBlocks { .. } => self.rejections.insufficient_blocks += 1,
                _ => self.rejections.invalid += 1,
            }
        }
        result
    }

    fn submit_request_inner(&mut self, request: Request) -> Result<RequestId, ServeError> {
        if request.prompt.is_empty() {
            return Err(ServeError::EmptyPrompt);
        }
        let limit = request.max_new_tokens.unwrap_or(self.config.max_tokens);
        if limit == 0 {
            return Err(ServeError::ZeroTokenLimit);
        }
        if let Err(reason) = request.sampling.sampler.validate() {
            return Err(ServeError::InvalidSampling { reason });
        }
        let vocab = self.model.config().vocab;
        if let Some(&bad) = request.prompt.iter().find(|&&t| t as usize >= vocab) {
            return Err(ServeError::TokenOutOfRange { token: bad, vocab });
        }
        let limit = limit.min(self.config.max_tokens);
        // Worst-case lifetime residency running alone: one block per layer
        // per `block_size` cached positions (prompt plus all but the last
        // generated token), plus one block per layer of copy-on-write
        // headroom. If even that exceeds the pool, no amount of eviction or
        // preemption could ever let this request finish — reject it now
        // rather than deadlock the scheduler later.
        // Speculation appends up to `k` transient verify rows past the last
        // committed position before rolling back; size the feasibility bound
        // for that peak so a lone speculative sequence can always progress.
        let spec_rows = self.config.spec.map_or(0, |s| s.k);
        let positions =
            request.prompt.len().saturating_add(limit).saturating_add(spec_rows).saturating_sub(1);
        let required = self
            .model
            .config()
            .n_layers
            .saturating_mul(positions.div_ceil(self.config.block_size).saturating_add(1));
        if required > self.config.max_blocks {
            return Err(ServeError::InsufficientBlocks {
                required,
                max_blocks: self.config.max_blocks,
            });
        }
        // Capacity last: a permanently-invalid request must surface its own
        // error, not a retryable `QueueFull` the client would wait out.
        if self.pending.len() >= self.config.max_queue {
            return Err(ServeError::QueueFull { max_queue: self.config.max_queue });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Queued {
            id,
            prompt: request.prompt,
            limit,
            sampling: request.sampling,
            tenant: request.tenant,
            submitted_at: crate::clock::now(),
            submitted_step: self.steps,
            deadline: request.deadline_steps,
            resume: None,
            bypassed: 0,
        });
        Ok(id)
    }

    /// Admits queued requests into free batch slots. Returns the number
    /// admitted. Called automatically by [`step`](Self::step).
    ///
    /// Admission is memory-aware and prefix-shared:
    ///
    /// * The prefix cache is probed with the request's tokens; matched full
    ///   blocks are adopted read-only (refcount bumps, no prefill) and the
    ///   sequence starts its `Prefilling` phase at the shared span, which
    ///   is capped at one position short of the prompt so the final
    ///   position's logits are always computed.
    /// * A request only enters the batch when the pool can cover its first
    ///   prefill chunk plus one decode round of headroom; otherwise unused
    ///   prefix-cache blocks are evicted, and if that is not enough the
    ///   request waits — admission never triggers preemption by itself.
    ///
    /// Admission stays O(prompt blocks) per request and never runs a
    /// forward pass: the prompt is consumed incrementally by later steps
    /// under the per-step [`PrefillBudget`].
    pub fn admit(&mut self) -> usize {
        let nl = self.model.config().n_layers;
        let bs = self.config.block_size;
        let mut admitted = 0;
        // Blocks promised to requests admitted earlier in this same pass.
        // Their prefills only allocate later in the step, so the raw free
        // count alone would let one pass admit an entire backlog the pool
        // cannot actually hold — and preemption would thrash it back out.
        let mut planned = 0usize;
        while self.active.len() < self.effective_max_batch() {
            let Some(q) = self.pending.front() else { break };
            // The prefill target: the prompt, plus — when resuming a
            // preempted request — the tokens generated before preemption.
            // Only the (rare) resumed case materializes the concatenation;
            // a fresh request is probed through its queued prompt directly.
            let resumed_target: Option<Vec<u32>> = q.resume.as_ref().map(|r| {
                let mut t = q.prompt.clone();
                t.extend_from_slice(&r.tokens);
                t
            });
            let target: &[u32] = resumed_target.as_deref().unwrap_or(&q.prompt);
            // Probe the prefix cache; cap the shared span one short of the
            // target so the final position always computes its logits.
            let matched =
                if self.config.prefix_sharing { self.trie.lookup(target, bs) } else { Vec::new() };
            let shared_len = (matched.len() * bs).min(target.len() - 1);
            let shared_blocks = shared_len.div_ceil(bs);
            // Block gate: first prefill chunk (new blocks past the shared
            // span, plus a copy-on-write of a partial shared tail) and one
            // decode round of headroom.
            let first_chunk = self.config.prefill_chunk.min(target.len() - shared_len);
            let new_blocks = (shared_len + first_chunk).div_ceil(bs) - shared_blocks;
            let cow = usize::from(!shared_len.is_multiple_of(bs));
            let need = nl * (new_blocks + cow + 1);
            if self.planning_free() < planned.saturating_add(need) {
                // With admissions already planned this pass, the pool is
                // merely spoken for, not under pressure: stop here and let
                // the next step re-evaluate against real allocations.
                if planned > 0 {
                    break;
                }
                if self.trie.evict_lru_leaf() > 0 {
                    continue; // re-probe: the eviction may have freed enough
                }
                // Trie-aware reordering: the front request doesn't fit and
                // nothing more can be evicted. A younger request whose
                // prompt prefix is already resident needs fewer fresh
                // blocks — admit it first rather than stalling the whole
                // queue behind a cache-cold head. Every jumped request
                // counts the bypass, and the scan never passes one that
                // has reached [`REORDER_STARVATION_BOUND`], so cold
                // requests are delayed by at most that many admissions.
                if self.config.prefix_sharing {
                    if let Some(idx) = self.find_warm_fit(nl, bs) {
                        for e in self.pending.iter_mut().take(idx) {
                            e.bypassed += 1;
                        }
                        if let Some(warm) = self.pending.remove(idx) {
                            self.pending.push_front(warm);
                            continue; // the loop re-enters and admits it
                        }
                    }
                }
                break;
            }
            let Some(q) = self.pending.pop_front() else { break };
            let prompt_len = q.prompt.len();
            let prefill = resumed_target.unwrap_or(q.prompt);
            let (tokens, rng, preemptions, shared_before, token_steps, ttft) = match q.resume {
                Some(r) => (r.tokens, r.rng, r.preemptions, r.shared, r.token_steps, r.ttft),
                // Capacity is only a hint: effectively-unbounded limits
                // (long-running residents) must not reserve absurd buffers.
                None => (
                    Vec::with_capacity(q.limit.min(4096)),
                    TensorRng::seed(q.sampling.seed),
                    0,
                    0,
                    Vec::with_capacity(q.limit.min(4096)),
                    None,
                ),
            };
            let mut state = self.model.begin_decode_paged(&self.kv_pool);
            if shared_len > 0 {
                let prefix: Vec<Vec<Arc<KvBlock>>> = (0..nl)
                    .map(|l| {
                        matched[..shared_blocks]
                            .iter()
                            .map(|&node| self.trie.node_block(node, l))
                            .collect()
                    })
                    .collect();
                state.adopt_shared_prefix(prefix, shared_len);
                self.shared_tokens += shared_len as u64;
            }
            // Fully-adopted blocks are already published; anchor the
            // registration watermark at the last of them.
            let full_adopted = shared_len / bs;
            self.active.push(Active {
                id: q.id,
                state,
                last_logits: vec![0.0; self.model.config().vocab],
                tokens,
                prompt_len,
                prefill,
                prefilled: shared_len,
                grant: 0,
                work: StepWork::default(),
                limit: q.limit,
                sampler: q.sampling.sampler,
                rng,
                tenant: q.tenant,
                submitted_at: q.submitted_at,
                queue_wait: q.submitted_at.elapsed(),
                token_steps,
                ttft,
                admitted_step: self.steps,
                preemptions,
                shared: shared_before + shared_len,
                registered_blocks: full_adopted,
                trie_parent: if full_adopted > 0 {
                    matched[full_adopted - 1]
                } else {
                    PrefixTrie::ROOT
                },
                submitted_step: q.submitted_step,
                deadline: q.deadline,
                failed: None,
                panic_next: false,
                spec: self.new_spec_state(),
            });
            admitted += 1;
            planned += need;
        }
        self.peak_batch = self.peak_batch.max(self.active.len());
        admitted
    }

    /// Builds the per-sequence speculation state for a newly-admitted (or
    /// re-admitted) sequence, or `None` when speculation is off.
    ///
    /// A truncated-depth draft gets a *private, unbounded* KV pool: draft
    /// blocks are scratch that speculation may discard wholesale, so they
    /// must never compete with committed sequence state for
    /// [`ServeConfig::max_blocks`] or show up in [`ServeEngine::audit`].
    /// Resume after preemption rebuilds this state from scratch (`seen: 0`)
    /// and the first speculative step re-prefills the draft lazily.
    fn new_spec_state(&self) -> Option<Box<SpecState>> {
        let spec = self.config.spec?;
        let vocab = self.model.config().vocab;
        let draft = self.draft_model.as_ref().map(|dm| {
            let pool = Arc::new(BlockPool::with_scheme(
                self.config.block_size,
                dm.config().d_model,
                usize::MAX,
                KvScheme::Exact,
            ));
            DraftSeq {
                state: dm.begin_decode_paged(&pool),
                model: Arc::clone(dm),
                logits: vec![0.0; vocab],
                seen: 0,
            }
        });
        Some(Box::new(SpecState {
            k: spec.k,
            draft,
            proposals: Vec::with_capacity(spec.k),
            verify: Vec::with_capacity(spec.k + 1),
            logits: Matrix::zeros(spec.k + 1, vocab),
        }))
    }

    /// Runs one scheduler step: admit what fits, hand out the step's
    /// [`PrefillBudget`] round-robin over `Prefilling` sequences, then
    /// advance every active sequence — a granted prefill chunk for
    /// prefilling sequences, one sampled token (per the request's
    /// [`SamplingParams`], greedy by default) for decoding ones — and
    /// finally retire sequences that hit their limit. A step with nothing
    /// to do is a no-op.
    ///
    /// With [`ServeConfig::num_threads`] > 1 the active batch is split into
    /// contiguous chunks stepped by the engine's persistent worker pool
    /// (spawned lazily by the first step that fans out; [`StepMode::Auto`]
    /// keeps small steps on the caller's thread entirely). The model is
    /// shared immutably; every mutable structure (KV cache, scratch,
    /// sampler RNG, output buffer) is owned by exactly one sequence, the
    /// work each worker performs is fixed by scheduler state decided before
    /// the fan-out, and energy accounting and retirement run after the join
    /// in batch order — so results are deterministic and identical to
    /// `num_threads == 1` under every [`StepMode`].
    pub fn step(&mut self) -> StepSummary {
        let mut summary = StepSummary::default();
        // Consume armed faults first: pressure shapes this step's planning
        // and admission, panics mark their victims after admission.
        let pending_panics = std::mem::take(&mut self.armed_panics);
        self.fault_pressure = std::mem::take(&mut self.armed_pressure);
        let spike = std::mem::take(&mut self.armed_spikes);

        // Deadlines before admission: an expired queued request must not
        // consume the batch slot a live one is waiting for.
        self.expire_deadlines(&mut summary);
        self.update_degraded(&mut summary);
        summary.admitted = self.admit();
        if self.active.is_empty() && !self.pending.is_empty() && self.fault_pressure > 0 {
            // An injected pressure fault must never wedge an empty engine
            // with a runnable queue (the idle path would re-arm it and
            // block admission forever): the simulated shortfall yields —
            // exactly where a real allocator would have recovered — and
            // admission retries without it.
            self.fault_pressure = 0;
            summary.admitted += self.admit();
        }
        if self.active.is_empty() {
            // Nothing ran: re-arm the consumed faults for the next
            // non-idle step (fault firing is defined in engine steps).
            self.armed_panics = pending_panics;
            self.armed_pressure = self.fault_pressure;
            self.armed_spikes = spike;
            self.fault_pressure = 0;
            summary.blocks_in_use = self.kv_pool.in_use();
            summary.blocks_peak = self.kv_pool.peak();
            return summary;
        }
        summary.latency_spike_steps = spike;
        for rank in pending_panics {
            let victim = rank % self.active.len();
            self.active[victim].panic_next = true;
        }
        if self.started_at.is_none() {
            self.started_at = Some(crate::clock::now());
        }

        self.plan_step(&mut summary);

        let model = self.model;
        let workers = self.plan_workers();
        if workers <= 1 {
            for seq in &mut self.active {
                advance_sequence_guarded(model, seq);
            }
        } else if self.config.step_mode == StepMode::ForceScoped {
            let mut chunks = split_by_work(&mut self.active, workers).into_iter();
            let first = chunks.next();
            std::thread::scope(|scope| {
                for chunk in chunks.by_ref() {
                    scope.spawn(move || {
                        for seq in chunk {
                            advance_sequence_guarded(model, seq);
                        }
                    });
                }
                // The caller's thread works the first chunk instead of
                // idling at the join — one fewer spawn per step.
                for seq in first.into_iter().flatten() {
                    advance_sequence_guarded(model, seq);
                }
            });
        } else {
            // Pool size is fixed at first fan-out: `ForcePool` may use
            // every configured thread, but `Auto` never plans beyond
            // the host's cores — don't park threads that can never
            // receive work (num_threads = 16 on a 4-core box would
            // otherwise idle 12 stacks for the engine's lifetime).
            let size = match self.config.step_mode {
                StepMode::Auto => {
                    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                    self.config.num_threads.min(cores) - 1
                }
                _ => self.config.num_threads - 1,
            };
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(size));
            // `available_parallelism` can in principle change after the
            // pool is sized; never cut more chunks than pool + caller.
            let workers = workers.min(pool.len() + 1);
            pool.step_chunks(model, split_by_work(&mut self.active, workers).into_iter());
        }

        // Quarantine: retire every sequence whose step panicked *before*
        // any accounting or prefix publication — its KV writes may be
        // half-finished, so its work is not counted and its blocks must
        // never enter the prefix trie. Dropping the sequence returns every
        // block nobody else maps; all other sequences continue untouched.
        if self.active.iter().any(|s| s.failed.is_some()) {
            let failed_step = self.steps + 1;
            let mut failed = Vec::new();
            self.active.retain_mut(|seq| {
                if seq.failed.take().is_none() {
                    return true;
                }
                failed.push(RequestReport {
                    id: seq.id,
                    prompt_len: seq.prompt_len,
                    tokens: std::mem::take(&mut seq.tokens),
                    finish: FinishReason::Failed,
                    tenant: seq.tenant.take(),
                    admitted_step: seq.admitted_step,
                    finished_step: failed_step,
                    preemptions: seq.preemptions,
                    shared_prefill_tokens: seq.shared,
                    queue_wait: seq.queue_wait,
                    ttft: seq.ttft,
                    token_steps: std::mem::take(&mut seq.token_steps),
                    latency: seq.submitted_at.elapsed(),
                });
                false
            });
            summary.failed = failed.len();
            self.failed_total += failed.len() as u64;
            self.finished.append(&mut failed);
        }

        for seq in &self.active {
            summary.prefilled += seq.work.prefilled;
            summary.generated += usize::from(seq.work.sampled) + seq.work.accepted;
            summary.drafted += seq.work.drafted;
            summary.accepted += seq.work.accepted;
        }
        // Charge energy post-join, in batch order, so the f64 accumulation
        // is independent of thread scheduling — prefill charges before
        // decode charges, matching the order the blocking scheduler used
        // (admission first, then the step's forward passes). A sequence at
        // its limit did not run a forward pass this step.
        if let Some(acc) = &self.accelerator {
            let config = self.model.config();
            for seq in &self.active {
                let w = seq.work;
                if w.prefilled > 0 {
                    self.energy_j +=
                        self.prefill_energy.range_j(acc, config, w.prefill_start, w.prefilled);
                }
            }
            for seq in &self.active {
                let w = seq.work;
                if w.draft_rows > 0 {
                    // tidy: allow(panic) -- draft rows imply a Truncated
                    // draft, so the sibling model always exists.
                    let dm = self.draft_model.as_ref().expect("draft rows without draft model");
                    self.energy_j +=
                        self.draft_energy.range_j(acc, dm.config(), w.draft_start, w.draft_rows);
                }
                if w.verify_rows > 0 {
                    // A verify pass is energetically a prefill chunk over
                    // the appended rows — including the rows later rolled
                    // back, whose compute was still spent.
                    self.energy_j +=
                        self.prefill_energy.range_j(acc, config, w.verify_start, w.verify_rows);
                }
                if w.forwarded {
                    self.energy_j += acc.energy_per_token(config, seq.state.pos()).total_j();
                }
            }
        }
        self.prefill_tokens += summary.prefilled as u64;
        self.generated_tokens += summary.generated as u64;
        self.drafted_total += summary.drafted as u64;
        self.accepted_total += summary.accepted as u64;
        self.steps += 1;

        // Stamp per-token timing and capture the realized schedule before
        // retirement removes finished sequences from the batch.
        let now_step = self.steps;
        self.last_work.clear();
        for seq in &mut self.active {
            let w = seq.work;
            if w.sampled {
                // Accepted draft tokens commit in the same step as the
                // sampled token; each gets its own stamp so `token_steps`
                // stays parallel to `tokens` (resume depends on that).
                for _ in 0..1 + w.accepted {
                    seq.token_steps.push(now_step);
                }
                if seq.ttft.is_none() {
                    seq.ttft = Some(seq.submitted_at.elapsed());
                }
            }
            self.last_work.push(SeqStepWork {
                prefill_start: w.prefill_start,
                prefilled: w.prefilled,
                sampled: w.sampled,
                decode_context: if w.forwarded { Some(seq.state.pos()) } else { None },
                drafted: w.drafted,
                accepted: w.accepted,
                verify_start: w.verify_start,
                verify_rows: w.verify_rows,
                draft_start: w.draft_start,
                draft_rows: w.draft_rows,
            });
        }

        // Publish freshly-completed full prompt blocks into the prefix
        // cache before retiring anything, so even a request that finishes
        // in its first decode step leaves its prefix behind for followers.
        self.register_prefixes();

        let steps = self.steps;
        let mut retired = Vec::new();
        self.active.retain_mut(|seq| {
            if seq.tokens.len() < seq.limit {
                return true;
            }
            retired.push(RequestReport {
                id: seq.id,
                prompt_len: seq.prompt_len,
                tokens: std::mem::take(&mut seq.tokens),
                finish: FinishReason::Limit,
                tenant: seq.tenant.take(),
                admitted_step: seq.admitted_step,
                finished_step: steps,
                preemptions: seq.preemptions,
                shared_prefill_tokens: seq.shared,
                queue_wait: seq.queue_wait,
                ttft: seq.ttft,
                token_steps: std::mem::take(&mut seq.token_steps),
                latency: seq.submitted_at.elapsed(),
            });
            false
        });
        summary.finished = retired.len();
        self.finished.append(&mut retired);
        summary.blocks_in_use = self.kv_pool.in_use();
        summary.blocks_peak = self.kv_pool.peak();
        // Injected pressure lasts exactly one planned step.
        self.fault_pressure = 0;
        // Debug builds cross-check the memory-accounting invariants after
        // every step; release builds leave this to the harness cadence.
        #[cfg(debug_assertions)]
        {
            let audit = self.audit();
            debug_assert!(audit.is_clean(), "KV audit violations: {:#?}", audit.violations);
        }
        summary
    }

    /// Expires every queued or in-batch request whose `deadline_steps` TTL
    /// has elapsed: it retires with `FinishReason::DeadlineExceeded` and
    /// its KV blocks (if any) are freed immediately. Runs at the start of
    /// each step, before admission.
    ///
    /// The TTL anchors at the submission step and survives preemption, so
    /// a request preempted and then expired while re-queued reports
    /// `DeadlineExceeded` — and frees nothing, because its blocks were
    /// already returned when the preemption dropped its `DecodeState`
    /// (blocks are freed exactly once on every path).
    fn expire_deadlines(&mut self, summary: &mut StepSummary) {
        let now = self.steps;
        let mut expired = Vec::new();
        self.pending.retain_mut(|q| {
            let Some(deadline) = q.deadline else { return true };
            if now.saturating_sub(q.submitted_step) < deadline {
                return true;
            }
            let (tokens, preemptions, shared, token_steps, ttft) = match q.resume.take() {
                Some(r) => (r.tokens, r.preemptions, r.shared, r.token_steps, r.ttft),
                None => (Vec::new(), 0, 0, Vec::new(), None),
            };
            expired.push(RequestReport {
                id: q.id,
                prompt_len: q.prompt.len(),
                tokens,
                finish: FinishReason::DeadlineExceeded,
                tenant: q.tenant.take(),
                admitted_step: now,
                finished_step: now,
                preemptions,
                shared_prefill_tokens: shared,
                queue_wait: q.submitted_at.elapsed(),
                ttft,
                token_steps,
                latency: q.submitted_at.elapsed(),
            });
            false
        });
        self.active.retain_mut(|seq| {
            let Some(deadline) = seq.deadline else { return true };
            if now.saturating_sub(seq.submitted_step) < deadline {
                return true;
            }
            expired.push(RequestReport {
                id: seq.id,
                prompt_len: seq.prompt_len,
                tokens: std::mem::take(&mut seq.tokens),
                finish: FinishReason::DeadlineExceeded,
                tenant: seq.tenant.take(),
                admitted_step: seq.admitted_step,
                finished_step: now,
                preemptions: seq.preemptions,
                shared_prefill_tokens: seq.shared,
                queue_wait: seq.queue_wait,
                ttft: seq.ttft,
                token_steps: std::mem::take(&mut seq.token_steps),
                latency: seq.submitted_at.elapsed(),
            });
            false // the sequence drops here, releasing its blocks
        });
        summary.expired = expired.len();
        self.deadline_exceeded_total += expired.len() as u64;
        self.finished.append(&mut expired);
    }

    /// Pool pressure as a percentage of capacity, counting injected
    /// pressure faults as real allocations (a simulated shortfall must
    /// look like one to the degraded-mode policy too). Zero for an
    /// unbounded pool.
    fn pool_pressure_pct(&self) -> u32 {
        let capacity = self.kv_pool.capacity();
        if capacity == usize::MAX {
            return 0;
        }
        let used = self.kv_pool.in_use().saturating_add(self.fault_pressure).min(capacity);
        ((used as u128 * 100) / capacity as u128) as u32
    }

    /// Updates the degraded-mode state machine (see [`DegradedConfig`])
    /// and, while degraded, sheds youngest-queued load down to the
    /// configured bound. Runs before admission so a mode entered this step
    /// already shapes this step's batch.
    fn update_degraded(&mut self, summary: &mut StepSummary) {
        let Some(cfg) = self.config.degraded else { return };
        let now = self.steps;
        while self
            .recent_preempts
            .front()
            .is_some_and(|&s| now.saturating_sub(s) > cfg.preempt_window)
        {
            self.recent_preempts.pop_front();
        }
        let pressure = self.pool_pressure_pct();
        let preempts = self.recent_preempts.len();
        if !self.degraded_now {
            if pressure >= cfg.enter_pressure_pct || preempts >= cfg.preempt_threshold.max(1) {
                self.degraded_now = true;
                self.mode_transitions += 1;
                self.healthy_streak = 0;
            }
        } else {
            if pressure <= cfg.exit_pressure_pct && preempts == 0 {
                self.healthy_streak += 1;
            } else {
                self.healthy_streak = 0;
            }
            if self.healthy_streak >= cfg.cooldown_steps.max(1) {
                self.degraded_now = false;
                self.mode_transitions += 1;
            }
        }
        if self.degraded_now {
            self.degraded_steps_total += 1;
            let mut shed = Vec::new();
            while self.pending.len() > cfg.shed_queue {
                let Some(mut q) = self.pending.pop_back() else { break };
                let (tokens, preemptions, shared, token_steps, ttft) = match q.resume.take() {
                    Some(r) => (r.tokens, r.preemptions, r.shared, r.token_steps, r.ttft),
                    None => (Vec::new(), 0, 0, Vec::new(), None),
                };
                shed.push(RequestReport {
                    id: q.id,
                    prompt_len: q.prompt.len(),
                    tokens,
                    finish: FinishReason::Shed,
                    tenant: q.tenant.take(),
                    admitted_step: now,
                    finished_step: now,
                    preemptions,
                    shared_prefill_tokens: shared,
                    queue_wait: q.submitted_at.elapsed(),
                    ttft,
                    token_steps,
                    latency: q.submitted_at.elapsed(),
                });
            }
            summary.shed = shed.len();
            self.shed_total += shed.len() as u64;
            self.finished.append(&mut shed);
        }
        summary.degraded = self.degraded_now;
    }

    /// Batch slots available this step: the configured `max_batch`, shrunk
    /// while degraded.
    fn effective_max_batch(&self) -> usize {
        match (self.degraded_now, self.config.degraded) {
            (true, Some(cfg)) => {
                (self.config.max_batch.saturating_mul(cfg.batch_pct as usize) / 100).max(1)
            }
            _ => self.config.max_batch,
        }
    }

    /// Prefill positions minted per step: the configured `prefill_chunk`,
    /// shrunk while degraded (blocking admission stays blocking).
    fn effective_prefill_chunk(&self) -> usize {
        match (self.degraded_now, self.config.degraded) {
            (true, Some(cfg)) if self.config.prefill_chunk != usize::MAX => {
                (self.config.prefill_chunk.saturating_mul(cfg.prefill_pct as usize) / 100).max(1)
            }
            _ => self.config.prefill_chunk,
        }
    }

    /// Free blocks the planner may spend this step: the pool's real free
    /// count minus any injected pressure fault.
    fn planning_free(&self) -> usize {
        self.kv_pool.free_blocks().saturating_sub(self.fault_pressure)
    }

    /// Scans the admission queue behind its (unadmittable) front for the
    /// earliest request whose prompt prefix is already resident in the
    /// prefix trie *and* whose first-chunk block need fits the pool right
    /// now — the candidate [`ServeEngine::admit`]'s trie-aware reordering
    /// moves to the front. Probing is read-only (no LRU touches), the
    /// earliest qualifying request wins (deterministic arrival-order
    /// tie-break), and the scan never passes a request already bypassed
    /// [`REORDER_STARVATION_BOUND`] times.
    fn find_warm_fit(&self, nl: usize, bs: usize) -> Option<usize> {
        if self.pending.front().is_none_or(|q| q.bypassed >= REORDER_STARVATION_BOUND) {
            return None;
        }
        for (i, q) in self.pending.iter().enumerate().skip(1) {
            let resumed_target: Option<Vec<u32>> = q.resume.as_ref().map(|r| {
                let mut t = q.prompt.clone();
                t.extend_from_slice(&r.tokens);
                t
            });
            let target: &[u32] = resumed_target.as_deref().unwrap_or(&q.prompt);
            let matched_blocks = self.trie.probe(target, bs);
            let shared_len = (matched_blocks * bs).min(target.len() - 1);
            if shared_len > 0 {
                // Same arithmetic as the admission gate, so a returned
                // candidate is guaranteed to admit on the next iteration.
                let shared_blocks = shared_len.div_ceil(bs);
                let first_chunk = self.config.prefill_chunk.min(target.len() - shared_len);
                let new_blocks = (shared_len + first_chunk).div_ceil(bs) - shared_blocks;
                let cow = usize::from(!shared_len.is_multiple_of(bs));
                if self.planning_free() >= nl * (new_blocks + cow + 1) {
                    return Some(i);
                }
            }
            if q.bypassed >= REORDER_STARVATION_BOUND {
                break; // jumping past this request would starve it
            }
        }
        None
    }

    /// Plans this step's memory use: fixes every sequence's prefill grant
    /// so the forthcoming appends — decode rows, granted prefill rows, and
    /// any copy-on-write of a shared tail block — are guaranteed to fit the
    /// pool before any worker runs. Under pressure the scheduler reclaims
    /// memory in escalating order:
    ///
    /// 1. **evict** least-recently-used prefix-cache blocks nobody maps,
    /// 2. **shrink** prefill grants (prompt intake is elastic; decode
    ///    progress is not), and finally
    /// 3. **preempt** the youngest sequence — drop its blocks, push it to
    ///    the front of the admission queue to re-prefill later — repeating
    ///    until the step can make progress.
    ///
    /// Every decision is a pure function of scheduler state (block counts,
    /// refcounts, the trie's LRU clock), so planning is deterministic and
    /// independent of thread count or wall time.
    fn plan_step(&mut self, summary: &mut StepSummary) {
        loop {
            // Inelastic first: rows decoding sequences will append this
            // step. If they don't fit, reclaim until they do — a decoding
            // sequence never stalls, it either advances or is preempted.
            let decode_need = loop {
                let need: usize = self
                    .active
                    .iter()
                    .filter(|s| !s.prefilling())
                    .map(|s| self.decode_block_need(s))
                    .sum();
                if need <= self.planning_free() {
                    break need;
                }
                if self.trie.evict_lru_leaf() > 0 {
                    continue;
                }
                // An injected pressure fault must never wedge a lone
                // sequence the admission check guaranteed can run: the
                // simulated shortfall yields once real reclamation is
                // exhausted, exactly where a real allocator would have
                // recovered.
                if self.fault_pressure > 0 && self.active.len() <= 1 {
                    self.fault_pressure = 0;
                    continue;
                }
                self.preempt_youngest(summary);
            };
            let mut block_budget = self.planning_free() - decode_need;

            // Hand out this step's prefill budget. The scan starts at the
            // rotating cursor and the cursor advances to just past the last
            // sequence that received a grant, so a prompt that drained the
            // budget goes last next step — round-robin over the
            // *prefilling* sequences, regardless of how many decoding
            // neighbours sit between them in the slot order. Each grant is
            // additionally capped by the blocks still affordable after the
            // decode reservation.
            for seq in &mut self.active {
                seq.grant = 0;
            }
            let batch = self.active.len();
            let mut new_cursor = None;
            if self.active.iter().any(Active::prefilling) {
                new_cursor = Some(self.prefill_cursor.wrapping_add(1));
                let mut budget = PrefillBudget::new(self.effective_prefill_chunk());
                let start = self.prefill_cursor % batch;
                let mut last_grantee = None;
                for i in 0..batch {
                    if budget.remaining() == 0 {
                        break;
                    }
                    let idx = (start + i) % batch;
                    if !self.active[idx].prefilling() {
                        continue;
                    }
                    let want = self.affordable_grant(&self.active[idx], block_budget);
                    let granted = budget.take(want);
                    let cost = self.grant_block_cost(&self.active[idx], granted);
                    debug_assert!(cost <= block_budget, "grant exceeded its block budget");
                    block_budget -= cost;
                    self.active[idx].grant = granted;
                    if granted > 0 {
                        last_grantee = Some(idx);
                    }
                }
                if let Some(idx) = last_grantee {
                    new_cursor = Some(idx + 1);
                }
            }

            // Progress check: every decoding sequence advances (its blocks
            // are reserved), so the step can only wedge when the whole
            // batch is prefilling with zero grants. Reclaim and replan.
            let progress = self.active.iter().any(|s| !s.prefilling() || s.grant > 0);
            if progress {
                if let Some(cursor) = new_cursor {
                    self.prefill_cursor = cursor;
                }
                return;
            }
            if self.trie.evict_lru_leaf() == 0 {
                if self.fault_pressure > 0 && self.active.len() <= 1 {
                    self.fault_pressure = 0; // see the decode-need relief above
                } else {
                    self.preempt_youngest(summary);
                }
            }
        }
    }

    /// Blocks a decoding sequence's forward pass will allocate this step:
    /// new blocks the appended rows open plus a copy-on-write of a shared
    /// tail, all × layers; zero when the sequence retires at its limit
    /// without another forward pass.
    ///
    /// With speculation on, a verify pass appends up to `1 + k` rows before
    /// rolling back, so the reservation covers that transient peak. The row
    /// count computed here matches `speculative_advance`'s `k_eff` exactly
    /// (this method is only consulted for sequences already decoding at
    /// planning time, which is the same gate the advance uses), and an
    /// n-gram draft that proposes fewer rows merely under-uses the
    /// reservation — never exceeds it.
    fn decode_block_need(&self, seq: &Active) -> usize {
        if seq.tokens.len() + 1 >= seq.limit {
            return 0;
        }
        let rows = match &seq.spec {
            // `tokens.len() + 1` mirrors the post-push count the advance
            // sees when it computes `k_eff`.
            Some(spec) => 1 + spec.k.min(seq.limit - seq.tokens.len() - 1),
            None => 1,
        };
        let bs = self.config.block_size;
        let pos = seq.state.pos();
        let new_blocks = (pos + rows).div_ceil(bs) - pos.div_ceil(bs);
        let cow = usize::from(!pos.is_multiple_of(bs) && seq.state.tail_block_shared());
        self.model.config().n_layers * (new_blocks + cow)
    }

    /// Blocks a prefill grant of `granted` positions will allocate: new
    /// blocks the span opens (including the same-step first decode forward
    /// when the grant completes the prompt), plus a copy-on-write of a
    /// shared partial tail — all × layers.
    fn grant_block_cost(&self, seq: &Active, granted: usize) -> usize {
        if granted == 0 {
            return 0;
        }
        let bs = self.config.block_size;
        let pos = seq.prefilled;
        let completes = pos + granted == seq.prefill.len();
        let extra = usize::from(completes && seq.tokens.len() + 1 < seq.limit);
        let new_blocks =
            (pos + granted + extra).div_ceil(bs).saturating_sub(seq.state.blocks_per_layer());
        let cow = usize::from(!pos.is_multiple_of(bs) && seq.state.tail_block_shared());
        self.model.config().n_layers * (new_blocks + cow)
    }

    /// The largest prefill grant for `seq` whose [`Self::grant_block_cost`]
    /// fits in `block_budget`, capped at the sequence's remaining prompt.
    fn affordable_grant(&self, seq: &Active, block_budget: usize) -> usize {
        let remaining = seq.prefill.len() - seq.prefilled;
        if self.grant_block_cost(seq, remaining) <= block_budget {
            return remaining;
        }
        let bs = self.config.block_size;
        let nl = self.model.config().n_layers;
        let pos = seq.prefilled;
        let per_layer = block_budget / nl;
        let cow = usize::from(!pos.is_multiple_of(bs) && seq.state.tail_block_shared());
        let Some(new_blocks) = per_layer.checked_sub(cow) else { return 0 };
        // Fill the affordable blocks to their last row; the whole prompt
        // did not fit, so no completion forward pass rides on this grant —
        // unless only the completion's extra row overflowed, in which case
        // stop one position short and complete next step.
        let max_positions = ((seq.state.blocks_per_layer() + new_blocks) * bs).saturating_sub(pos);
        if max_positions >= remaining {
            remaining.saturating_sub(1)
        } else {
            max_positions
        }
    }

    /// Preempts the youngest sequence (the most recently admitted — the
    /// tail of the admission-ordered batch): its `DecodeState` is dropped,
    /// returning every block nobody else maps to the pool, and the request
    /// re-queues at the *front* of the admission queue carrying its
    /// generated tokens and sampler RNG. On re-admission it re-prefills
    /// prompt + generated tokens — bit-identical to having decoded them —
    /// and resumes sampling exactly where it left off, so preemption never
    /// changes output, only timing.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty — the submission-time
    /// [`ServeError::InsufficientBlocks`] check guarantees a lone sequence
    /// can always advance, so the scheduler never preempts the last one.
    fn preempt_youngest(&mut self, summary: &mut StepSummary) {
        assert!(
            self.active.len() > 1,
            "KV pool cannot make progress with a single resident sequence; \
             ServeError::InsufficientBlocks should have rejected it at submission"
        );
        let Some(seq) = self.active.pop() else { return };
        self.preemptions += 1;
        summary.preempted += 1;
        self.recent_preempts.push_back(self.steps);
        let mut prompt = seq.prefill;
        prompt.truncate(seq.prompt_len);
        self.pending.push_front(Queued {
            id: seq.id,
            prompt,
            limit: seq.limit,
            sampling: SamplingParams { sampler: seq.sampler, seed: 0 },
            tenant: seq.tenant,
            submitted_at: seq.submitted_at,
            submitted_step: seq.submitted_step,
            deadline: seq.deadline,
            resume: Some(Resume {
                tokens: seq.tokens,
                rng: seq.rng,
                preemptions: seq.preemptions + 1,
                shared: seq.shared,
                token_steps: seq.token_steps,
                ttft: seq.ttft,
            }),
            bypassed: 0,
        });
        // `seq.state` drops here, releasing its blocks.
    }

    /// Publishes newly-completed full prompt blocks of every active
    /// sequence into the prefix cache, appending under the sequence's
    /// registration anchor ([`Active::trie_parent`]). Steady-state steps —
    /// no sequence crossed a full-block boundary — do no trie work at all,
    /// keeping the decode loop free of hashing and key allocation.
    ///
    /// The anchor is normally un-evictable while the sequence lives (its
    /// blocks are pinned by the sequence's own table, and interior nodes
    /// by their children), but a node inherited from a retired twin or
    /// diverged from by copy-on-write can die; ids are never reused, so a
    /// dead anchor is detected and the path re-published from the root
    /// with this sequence's own blocks — the self-healing slow path.
    fn register_prefixes(&mut self) {
        if !self.config.prefix_sharing {
            return;
        }
        let bs = self.config.block_size;
        let nl = self.model.config().n_layers;
        for seq in &mut self.active {
            let full = seq.prefilled.min(seq.prefill.len()) / bs;
            if seq.registered_blocks >= full {
                continue;
            }
            if !self.trie.contains(seq.trie_parent) {
                seq.trie_parent = PrefixTrie::ROOT;
                seq.registered_blocks = 0;
            }
            while seq.registered_blocks < full {
                let b = seq.registered_blocks;
                let tokens = &seq.prefill[b * bs..(b + 1) * bs];
                seq.trie_parent = self.trie.insert_or_touch(seq.trie_parent, tokens, || {
                    (0..nl).map(|l| seq.state.block(l, b)).collect()
                });
                seq.registered_blocks += 1;
            }
        }
    }

    /// Aborts a queued or running request, releasing its KV blocks
    /// immediately (minus any prefix-cache blocks other requests still
    /// map). The request appears in the final report with
    /// [`FinishReason::Cancelled`] and whatever tokens it had generated.
    /// Returns `false` when the id is unknown or the request already
    /// finished.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        let now = self.steps;
        if let Some(i) = self.pending.iter().position(|q| q.id == id) {
            let Some(q) = self.pending.remove(i) else { return false };
            let (tokens, preemptions, shared, token_steps, ttft) = match q.resume {
                Some(r) => (r.tokens, r.preemptions, r.shared, r.token_steps, r.ttft),
                None => (Vec::new(), 0, 0, Vec::new(), None),
            };
            self.finished.push(RequestReport {
                id,
                prompt_len: q.prompt.len(),
                tokens,
                finish: FinishReason::Cancelled,
                tenant: q.tenant,
                admitted_step: now,
                finished_step: now,
                preemptions,
                shared_prefill_tokens: shared,
                queue_wait: q.submitted_at.elapsed(),
                ttft,
                token_steps,
                latency: q.submitted_at.elapsed(),
            });
            return true;
        }
        if let Some(i) = self.active.iter().position(|s| s.id == id) {
            let seq = self.active.remove(i);
            self.finished.push(RequestReport {
                id,
                prompt_len: seq.prompt_len,
                tokens: seq.tokens,
                finish: FinishReason::Cancelled,
                tenant: seq.tenant,
                admitted_step: seq.admitted_step,
                finished_step: now,
                preemptions: seq.preemptions,
                shared_prefill_tokens: seq.shared,
                queue_wait: seq.queue_wait,
                ttft: seq.ttft,
                token_steps: seq.token_steps,
                latency: seq.submitted_at.elapsed(),
            });
            return true; // `seq.state` dropped: its blocks are free again
        }
        false
    }

    /// How many threads (caller included) this step should use.
    ///
    /// The force modes cap only by batch size. [`StepMode::Auto`]
    /// additionally refuses to fan out beyond what can pay for itself:
    ///
    /// * **Cores.** More workers than hardware threads never increases
    ///   throughput — they time-slice one another and add context-switch
    ///   overhead on top (the `optimized-4t` < `optimized-1t` regression in
    ///   the PR-2 `BENCH_decode.json`, measured on a single-core host).
    /// * **Work.** Each worker's chunk must carry enough arithmetic to
    ///   amortize the dispatch (a channel send plus a thread wake-up, a few
    ///   µs): estimated as matvec MACs per token, a chunk below
    ///   [`FANOUT_MIN_MACS_PER_WORKER`] runs on the caller's thread
    ///   instead. The attention scan's seq-length term is deliberately
    ///   ignored — it only grows the true work, so the gate errs toward
    ///   serial.
    fn plan_workers(&self) -> usize {
        // Work this step ≈ one decode-equivalent pass per granted prefill
        // position, plus one per sequence that will sample (a prefill
        // position costs the same layer sweep as a decoded token).
        let units: u64 = self.active.iter().map(seq_units).sum();
        self.planned_threads_for(self.active.len(), units)
    }

    /// The number of threads (caller included) a decode step would use with
    /// `batch` active sequences, after [`StepMode::Auto`]'s core and
    /// per-worker-work gates.
    ///
    /// Exposed so operators and benchmarks can tell whether a
    /// configuration actually fans out on this host — e.g. on a single-core
    /// machine every `Auto` configuration resolves to `1`, making
    /// `num_threads = 4` the *same execution* as `num_threads = 1` rather
    /// than a slower one.
    pub fn planned_threads(&self, batch: usize) -> usize {
        self.planned_threads_for(batch, batch as u64)
    }

    /// [`ServeEngine::planned_threads`] with an explicit work estimate:
    /// `units` decode-equivalent forward passes across the step (each
    /// granted prefill position counts as one).
    fn planned_threads_for(&self, batch: usize, units: u64) -> usize {
        let cap = self.config.num_threads.min(batch);
        match self.config.step_mode {
            StepMode::ForcePool | StepMode::ForceScoped => cap,
            StepMode::Auto => {
                let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                let cap = cap.min(cores);
                if cap <= 1 {
                    return 1;
                }
                let total_macs = approx_macs_per_token(self.model.config()).saturating_mul(units);
                cap.min((total_macs / FANOUT_MIN_MACS_PER_WORKER).max(1) as usize)
            }
        }
    }

    /// Whether any request is still queued or decoding.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Runs the scheduler until every submitted request has finished, then
    /// reports throughput, per-request latency and aggregate energy.
    ///
    /// Wall time is measured from the first [`step`](Self::step) of the
    /// current serving period — manual steps taken before `run` count —
    /// and the clock resets once the engine drains.
    pub fn run(&mut self) -> ServeReport {
        let t0 = self.started_at.unwrap_or_else(crate::clock::now);
        while !self.is_idle() {
            self.step();
        }
        self.started_at = None;
        self.report(t0.elapsed())
    }

    /// Snapshot of the statistics so far (useful between manual
    /// [`step`](Self::step) calls; `elapsed` is the caller's measured wall
    /// time for throughput).
    pub fn report(&self, elapsed: std::time::Duration) -> ServeReport {
        let mut requests = self.finished.clone();
        requests.sort_by_key(|r| r.id);
        let total = self.prefill_tokens + self.generated_tokens;
        let secs = elapsed.as_secs_f64();
        ServeReport {
            steps: self.steps,
            prefill_tokens: self.prefill_tokens,
            shared_prefill_tokens: self.shared_tokens,
            generated_tokens: self.generated_tokens,
            drafted_tokens: self.drafted_total,
            accepted_tokens: self.accepted_total,
            peak_batch: self.peak_batch,
            blocks_peak: self.kv_pool.peak(),
            preemptions: self.preemptions,
            deadline_exceeded: self.deadline_exceeded_total,
            failed: self.failed_total,
            shed: self.shed_total,
            degraded_steps: self.degraded_steps_total,
            mode_transitions: self.mode_transitions,
            rejections: self.rejections,
            elapsed,
            tokens_per_sec: if secs > 0.0 { total as f64 / secs } else { 0.0 },
            generated_per_sec: if secs > 0.0 { self.generated_tokens as f64 / secs } else { 0.0 },
            energy_j: self.energy_j,
            requests,
        }
    }

    /// Cross-checks the engine's three views of KV memory against each
    /// other — the invariant auditor:
    ///
    /// 1. **Residency**: the set of distinct blocks reachable from active
    ///    block tables and the prefix trie has exactly
    ///    [`BlockPool::in_use`] members (nothing leaked, nothing freed
    ///    while still mapped).
    /// 2. **Refcounts**: every reachable block's `Arc::strong_count`
    ///    equals its table references plus its trie references (no hidden
    ///    holder, no dangling bookkeeping).
    /// 3. **Table shape**: each sequence maps exactly
    ///    `⌈pos / block_size⌉` blocks per layer.
    ///
    /// Read-only and refcount-neutral (block visits borrow, never clone),
    /// so the audit observes true counts and can run at any between-steps
    /// point: debug builds run it after every step, harnesses every N
    /// steps and after churn tests.
    pub fn audit(&self) -> AuditReport {
        struct Refs {
            table: usize,
            trie: usize,
            strong: usize,
        }
        let mut seen: std::collections::HashMap<*const KvBlock, Refs> =
            std::collections::HashMap::new();
        let mut violations = Vec::new();
        let bs = self.config.block_size;
        let nl = self.model.config().n_layers;
        for seq in &self.active {
            let mut per_layer = vec![0usize; nl];
            seq.state.with_blocks(|layer, block| {
                per_layer[layer] += 1;
                let entry = seen.entry(Arc::as_ptr(block)).or_insert(Refs {
                    table: 0,
                    trie: 0,
                    strong: Arc::strong_count(block),
                });
                entry.table += 1;
            });
            let expected = seq.state.pos().div_ceil(bs);
            for (layer, &mapped) in per_layer.iter().enumerate() {
                if mapped != expected {
                    violations.push(format!(
                        "{}: layer {layer} maps {mapped} blocks for {} positions \
                         (expected {expected} at block_size {bs})",
                        seq.id,
                        seq.state.pos()
                    ));
                }
            }
        }
        self.trie.for_each_block(|block| {
            let entry = seen.entry(Arc::as_ptr(block)).or_insert(Refs {
                table: 0,
                trie: 0,
                strong: Arc::strong_count(block),
            });
            entry.trie += 1;
        });
        let (mut table_refs, mut trie_refs) = (0, 0);
        for (ptr, refs) in &seen {
            table_refs += refs.table;
            trie_refs += refs.trie;
            if refs.strong != refs.table + refs.trie {
                violations.push(format!(
                    "block {ptr:?}: strong_count {} != {} table refs + {} trie refs",
                    refs.strong, refs.table, refs.trie
                ));
            }
        }
        let pool_in_use = self.kv_pool.in_use();
        if seen.len() != pool_in_use {
            violations.push(format!(
                "pool reports {pool_in_use} blocks in use but {} are reachable \
                 from tables and trie",
                seen.len()
            ));
        }
        AuditReport { pool_in_use, live_blocks: seen.len(), table_refs, trie_refs, violations }
    }
}

/// Result of [`ServeEngine::audit`]: the reconciliation of pool
/// accounting, block tables, and prefix-trie refcounts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Blocks the pool believes are allocated.
    pub pool_in_use: usize,
    /// Distinct blocks reachable from active tables and the trie.
    pub live_blocks: usize,
    /// Total block-table references across active sequences (a shared
    /// block counts once per mapping sequence).
    pub table_refs: usize,
    /// Total prefix-trie references (one per node per layer).
    pub trie_refs: usize,
    /// Human-readable descriptions of every violated invariant; empty for
    /// a consistent engine.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Debug for ServeEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServeEngine(active={}, pending={}, finished={}, steps={})",
            self.active.len(),
            self.pending.len(),
            self.finished.len(),
            self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opal_model::{ModelConfig, QuantScheme};

    fn model() -> Model {
        Model::new(ModelConfig::tiny(), QuantScheme::bf16(), 11).expect("valid scheme")
    }

    #[test]
    fn rejects_bad_prompts() {
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.submit(&[]), Err(ServeError::EmptyPrompt));
        let vocab = m.config().vocab;
        assert_eq!(
            e.submit(&[0, vocab as u32]),
            Err(ServeError::TokenOutOfRange { token: vocab as u32, vocab })
        );
    }

    #[test]
    fn batch_respects_max_batch() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 3, ..ServeConfig::default() },
        );
        for _ in 0..5 {
            e.submit(&[1, 2]).unwrap();
        }
        e.step();
        assert_eq!(e.active_len(), 2);
        assert_eq!(e.pending_len(), 3);
        let report = e.run();
        assert_eq!(report.requests.len(), 5);
        assert!(report.peak_batch <= 2);
        for r in &report.requests {
            assert_eq!(r.tokens.len(), 3);
        }
    }

    #[test]
    fn per_request_limit_is_clamped() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 4, max_tokens: 5, ..ServeConfig::default() },
        );
        let a = e.submit_with_limit(&[1], 2).unwrap();
        let b = e.submit_with_limit(&[1], 99).unwrap();
        assert_eq!(e.submit_with_limit(&[1], 0), Err(ServeError::ZeroTokenLimit));
        let report = e.run();
        assert_eq!(report.request(a).unwrap().tokens.len(), 2);
        assert_eq!(report.request(b).unwrap().tokens.len(), 5);
    }

    #[test]
    fn planned_threads_respects_gates() {
        let m = model();
        let plan = |threads: usize, step_mode: StepMode, batch: usize| {
            let cfg = ServeConfig { num_threads: threads, step_mode, ..ServeConfig::default() };
            ServeEngine::new(&m, cfg).planned_threads(batch)
        };
        // Force modes cap only by batch size.
        assert_eq!(plan(4, StepMode::ForcePool, 16), 4);
        assert_eq!(plan(4, StepMode::ForceScoped, 2), 2);
        assert_eq!(plan(4, StepMode::ForcePool, 1), 1);
        // Auto never exceeds cores or the force-mode cap, and the tiny test
        // model never carries enough per-token work to fan out at all.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for batch in [1usize, 4, 16] {
            let p = plan(4, StepMode::Auto, batch);
            assert!(p <= cores.min(4).min(batch));
            assert_eq!(p, 1, "tiny model steps must stay on the caller thread");
        }
        // A model the size of the bench proxy fans out wherever cores allow.
        let proxy =
            Model::new(ModelConfig::llama2_7b().proxy(128, 4, 192), QuantScheme::bf16(), 11)
                .expect("valid scheme");
        let cfg = ServeConfig { num_threads: 4, ..ServeConfig::default() };
        assert_eq!(ServeEngine::new(&proxy, cfg).planned_threads(16), 4.min(cores));
    }

    #[test]
    fn zero_token_limit_rejected_on_every_path() {
        // Regression guard: a zero `max_new_tokens` must not slip into the
        // queue through any submission path and bypass the `max_tokens > 0`
        // constructor invariant via the admission-time clamp.
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.submit_with_limit(&[1, 2], 0), Err(ServeError::ZeroTokenLimit));
        assert_eq!(
            e.submit_request(Request::new(&[1, 2]).with_limit(0)),
            Err(ServeError::ZeroTokenLimit)
        );
        assert_eq!(
            e.submit_request(
                Request::new(&[1]).with_limit(0).with_sampling(SamplingParams::default())
            ),
            Err(ServeError::ZeroTokenLimit)
        );
        assert_eq!(e.pending_len(), 0, "rejected requests must not be queued");
    }

    #[test]
    fn invalid_sampling_rejected_at_submission() {
        // These parameters would panic inside `Sampler::pick` on a worker
        // thread mid-step; they must be caught at the API boundary instead.
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        for sampler in [
            Sampler::Temperature(0.0),
            Sampler::Temperature(-2.0),
            Sampler::Temperature(f32::NAN),
            Sampler::TopK(0),
            Sampler::TopP(0.0),
            Sampler::TopP(1.0001),
        ] {
            let req = Request::new(&[1, 2]).with_sampling(SamplingParams { sampler, seed: 1 });
            assert!(
                matches!(e.submit_request(req), Err(ServeError::InvalidSampling { .. })),
                "{sampler:?} must be rejected"
            );
        }
        assert_eq!(e.pending_len(), 0);
        // Valid parameters still pass, and the engine drains normally.
        let ok = SamplingParams { sampler: Sampler::TopK(4), seed: 5 };
        e.submit_request(Request::new(&[1, 2]).with_limit(2).with_sampling(ok)).unwrap();
        let report = e.run();
        assert_eq!(report.requests.len(), 1);
    }

    #[test]
    fn queue_full_rejected_at_submission() {
        // Regression guard for unbounded `pending` growth: the bound holds
        // on every submission path, and draining the queue frees capacity.
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 1, max_tokens: 1, max_queue: 2, ..ServeConfig::default() },
        );
        e.submit(&[1]).unwrap();
        e.submit(&[2]).unwrap();
        assert_eq!(e.submit(&[3]), Err(ServeError::QueueFull { max_queue: 2 }));
        assert_eq!(e.submit_with_limit(&[3], 1), Err(ServeError::QueueFull { max_queue: 2 }));
        assert_eq!(
            e.submit_request(Request::new(&[3])),
            Err(ServeError::QueueFull { max_queue: 2 })
        );
        assert_eq!(e.pending_len(), 2);
        // One step admits a request into the freed batch slot; capacity is
        // available again.
        e.step();
        assert!(e.pending_len() < 2);
        e.submit(&[3]).unwrap();
        let report = e.run();
        assert_eq!(report.requests.len(), 3);
    }

    #[test]
    fn chunked_prefill_consumes_prompts_incrementally() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 2, prefill_chunk: 2, ..ServeConfig::default() },
        );
        e.submit(&[1, 2, 3, 4, 5]).unwrap();
        // Step 1: admission + first chunk. Nothing decodes yet.
        let s1 = e.step();
        assert_eq!((s1.admitted, s1.prefilled, s1.generated), (1, 2, 0));
        assert_eq!(e.prefilling_len(), 1);
        // Step 2: second chunk.
        let s2 = e.step();
        assert_eq!((s2.admitted, s2.prefilled, s2.generated), (0, 2, 0));
        // Step 3: final prompt position + the first sampled token, in the
        // same step (blocking admission parity).
        let s3 = e.step();
        assert_eq!((s3.prefilled, s3.generated), (1, 1));
        assert_eq!(e.prefilling_len(), 0);
        let s4 = e.step();
        assert_eq!((s4.prefilled, s4.generated, s4.finished), (0, 1, 1));
        let report = e.report(std::time::Duration::from_millis(1));
        assert_eq!(report.prefill_tokens, 5);
        assert_eq!(report.generated_tokens, 2);
    }

    #[test]
    fn chunked_admission_matches_blocking_tokens_and_steps() {
        // `prefill_chunk = usize::MAX` is the blocking scheduler: one step
        // consumes the whole prompt and samples the first token. Chunked
        // admission must produce the same tokens (logits are bit-identical)
        // while spreading the prompt over more steps.
        let m = model();
        let run = |chunk: usize| {
            let mut e = ServeEngine::new(
                &m,
                ServeConfig {
                    max_batch: 2,
                    max_tokens: 4,
                    prefill_chunk: chunk,
                    ..ServeConfig::default()
                },
            );
            let a = e.submit(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
            let b = e.submit(&[9, 8]).unwrap();
            let report = e.run();
            (
                report.request(a).unwrap().tokens.clone(),
                report.request(b).unwrap().tokens.clone(),
                report.steps,
            )
        };
        let (a_blocking, b_blocking, steps_blocking) = run(usize::MAX);
        for chunk in [1usize, 3, 8] {
            let (a, b, steps) = run(chunk);
            assert_eq!(a, a_blocking, "chunk {chunk}");
            assert_eq!(b, b_blocking, "chunk {chunk}");
            if chunk < 8 {
                assert!(steps > steps_blocking, "chunk {chunk} must spread prompt work");
            }
        }
    }

    #[test]
    fn prefill_budget_grants_round_robin() {
        let mut b = PrefillBudget::new(4);
        assert_eq!(b.take(3), 3);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.take(5), 1);
        assert_eq!(b.take(2), 0);
        // Two equally long prompts sharing one budget finish their prefill
        // within one step of each other — neither starves.
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 2, prefill_chunk: 4, ..ServeConfig::default() },
        );
        let long_a: Vec<u32> = (0..10u32).collect();
        let long_b: Vec<u32> = (10..20u32).collect();
        let a = e.submit(&long_a).unwrap();
        let b = e.submit(&long_b).unwrap();
        let report = e.run();
        let (ra, rb) = (report.request(a).unwrap(), report.request(b).unwrap());
        assert!(
            ra.finished_step.abs_diff(rb.finished_step) <= 1,
            "round-robin budget must not starve one prompt: {} vs {}",
            ra.finished_step,
            rb.finished_step
        );
        // And every step's prompt work stayed within the budget.
        assert!(report.steps >= (20 / 4) as u64);
    }

    #[test]
    fn prefill_round_robin_skips_decoding_neighbours() {
        // Two long prompts admitted into a batch dominated by decoding
        // residents: the budget cursor must alternate between the two
        // *prefilling* sequences, not between batch slots — rotating one
        // slot per step would let the lower-slot prompt reclaim the whole
        // budget on almost every step and starve the other.
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig {
                max_batch: 8,
                max_tokens: 64,
                prefill_chunk: 4,
                ..ServeConfig::default()
            },
        );
        for i in 0..6u32 {
            e.submit_with_limit(&[i + 1, i + 2], 64).unwrap();
        }
        for _ in 0..3 {
            e.step();
        }
        let long_a: Vec<u32> = (0..24u32).collect();
        let long_b: Vec<u32> = (24..48u32).collect();
        let a = e.submit(&long_a).unwrap();
        let b = e.submit(&long_b).unwrap();
        let report = e.run();
        let (ra, rb) = (report.request(a).unwrap(), report.request(b).unwrap());
        // Fair share: each prompt needs 24/4 = 6 granted steps; alternating
        // grants finish them within one step of each other. Slot-based
        // rotation would push B's finish ~6 steps past A's.
        assert!(
            ra.finished_step.abs_diff(rb.finished_step) <= 1,
            "budget rotation starved a prompt behind decoding neighbours: {} vs {}",
            ra.finished_step,
            rb.finished_step
        );
    }

    #[test]
    fn invalid_request_reported_over_queue_full() {
        // A permanently-invalid request must surface its own error even
        // when the queue is full — `QueueFull` is a retryable signal.
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 1, max_tokens: 1, max_queue: 1, ..ServeConfig::default() },
        );
        e.submit(&[1]).unwrap();
        assert_eq!(e.submit(&[2]), Err(ServeError::QueueFull { max_queue: 1 }));
        assert_eq!(e.submit(&[]), Err(ServeError::EmptyPrompt));
        assert_eq!(e.submit_with_limit(&[1], 0), Err(ServeError::ZeroTokenLimit));
    }

    #[test]
    fn batched_prefill_charge_matches_per_position_loop() {
        // The admission energy charge is a prefix-sum subtraction now; it
        // must reproduce the retired per-position loop *exactly* (the
        // prefix sums accumulate in the same order the loop did).
        use opal_hw::accelerator::{Accelerator, AcceleratorKind};
        let m = model();
        let acc = Accelerator::new(AcceleratorKind::OpalW4A47);
        let prompt: Vec<u32> = (0..9u32).collect();
        let limit = 3usize;

        let mut e = ServeEngine::new(
            &m,
            ServeConfig {
                max_batch: 1,
                max_tokens: limit,
                prefill_chunk: usize::MAX,
                ..ServeConfig::default()
            },
        )
        .with_accelerator(acc.clone());
        e.submit(&prompt).unwrap();
        let report = e.run();

        // Oracle: the blocking scheduler's charge order — per-position
        // prefill loop first, then one decode charge per forward pass.
        let mut expected = 0.0f64;
        for pos in 1..=prompt.len() {
            expected += acc.energy_per_token(m.config(), pos).total_j();
        }
        for step in 0..limit - 1 {
            expected += acc.energy_per_token(m.config(), prompt.len() + 1 + step).total_j();
        }
        assert_eq!(report.energy_j.to_bits(), expected.to_bits(), "energy drifted from the loop");
    }

    #[test]
    fn chunked_energy_matches_blocking_admission() {
        use opal_hw::accelerator::{Accelerator, AcceleratorKind};
        let m = model();
        let run = |chunk: usize| {
            let mut e = ServeEngine::new(
                &m,
                ServeConfig {
                    max_batch: 1,
                    max_tokens: 3,
                    prefill_chunk: chunk,
                    ..ServeConfig::default()
                },
            )
            .with_accelerator(Accelerator::new(AcceleratorKind::OpalW4A47));
            e.submit(&[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
            e.run().energy_j
        };
        let blocking = run(usize::MAX);
        for chunk in [2usize, 4] {
            let chunked = run(chunk);
            // Chunk-boundary prefix subtractions can round differently by a
            // few ULPs; the physical accounting must be identical.
            let rel = ((chunked - blocking) / blocking).abs();
            assert!(rel < 1e-12, "chunk {chunk}: energy drifted {rel}");
        }
    }

    #[test]
    fn balanced_cuts_weight_chunks_by_work() {
        // Uniform work: same boundaries as equal-count chunking.
        assert_eq!(balanced_cuts(&[1; 16], 4), vec![4, 8, 12]);
        // One heavy sequence (a big prefill grant) gets its own chunk
        // instead of dragging three decoders along as the straggler.
        assert_eq!(balanced_cuts(&[8, 1, 1, 1], 2), vec![1]);
        assert_eq!(balanced_cuts(&[1, 1, 1, 8], 2), vec![3]);
        // Every group keeps at least one element, even with zero work.
        assert_eq!(balanced_cuts(&[0, 0, 0], 3), vec![1, 2]);
        assert_eq!(balanced_cuts(&[5, 5], 4), vec![1]);
        assert_eq!(balanced_cuts(&[3], 1), Vec::<usize>::new());
    }

    #[test]
    fn queue_wait_is_recorded_per_request() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 1, max_tokens: 4, ..ServeConfig::default() },
        );
        let first = e.submit(&[1, 2]).unwrap();
        let second = e.submit(&[3, 4]).unwrap();
        let report = e.run();
        let (r1, r2) = (report.request(first).unwrap(), report.request(second).unwrap());
        // The second request sat in the queue while the first decoded.
        assert!(r2.queue_wait >= r1.queue_wait);
        assert!(r1.latency >= r1.queue_wait);
        assert!(r2.latency >= r2.queue_wait);
        assert!(report.mean_queue_wait() <= report.mean_latency());
    }

    #[test]
    fn idle_step_is_a_noop() {
        let m = model();
        let mut e = ServeEngine::new(&m, ServeConfig::default());
        assert_eq!(e.step(), StepSummary::default());
        let report = e.report(std::time::Duration::from_millis(1));
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn energy_accumulates_when_accelerator_attached() {
        use opal_hw::accelerator::{Accelerator, AcceleratorKind};
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 2, ..ServeConfig::default() },
        )
        .with_accelerator(Accelerator::new(AcceleratorKind::OpalW4A47));
        e.submit(&[1, 2, 3]).unwrap();
        let report = e.run();
        assert!(report.energy_j > 0.0);
    }

    #[test]
    fn step_summary_reports_kv_residency() {
        let m = model(); // tiny: 2 layers
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 2, max_tokens: 3, block_size: 2, ..ServeConfig::default() },
        );
        e.submit(&[1, 2, 3]).unwrap();
        // Step 1 prefills the 3-token prompt and decodes the first token:
        // 4 positions -> 2 blocks per layer x 2 layers.
        let s = e.step();
        assert_eq!(s.blocks_in_use, 4);
        assert_eq!(s.blocks_peak, 4);
        assert_eq!(s.preempted, 0);
        let report = e.run();
        assert!(report.blocks_peak >= 4);
        assert_eq!(report.preemptions, 0);
        // The drained engine keeps only the prefix cache (one full block
        // of the 3-token prompt per layer at block_size 2).
        assert_eq!(e.kv_blocks_in_use(), 2);
        assert_eq!(e.prefix_cache_len(), 1);
    }

    #[test]
    fn cancel_unknown_or_finished_is_refused() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 1, max_tokens: 1, ..ServeConfig::default() },
        );
        assert!(!e.cancel(RequestId(99)));
        let id = e.submit(&[1]).unwrap();
        let report = e.run();
        assert_eq!(report.request(id).unwrap().finish, crate::FinishReason::Limit);
        assert!(!e.cancel(id), "finished requests cannot be cancelled");
    }

    #[test]
    fn step_summary_counts() {
        let m = model();
        let mut e = ServeEngine::new(
            &m,
            ServeConfig { max_batch: 3, max_tokens: 1, ..ServeConfig::default() },
        );
        e.submit(&[1]).unwrap();
        e.submit(&[2]).unwrap();
        let s = e.step();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.generated, 2);
        assert_eq!(s.finished, 2);
        assert!(e.is_idle());
    }
}
